//! # fiveg-mobility
//!
//! Facade crate for the reproduction of *"Vivisecting Mobility Management in
//! 5G Cellular Networks"* (Hassan et al., SIGCOMM 2022). It re-exports every
//! workspace crate under one roof so examples and downstream users can depend
//! on a single package:
//!
//! * [`geo`] — planar geometry: routes, convex hulls.
//! * [`radio`] — bands, propagation, RSRP/RSRQ/SINR.
//! * [`rrc`] — RRC message model + binary codec.
//! * [`ran`] — towers, deployments, measurement engine, HO state machines.
//! * [`ue`] — UE model: mobility, connection management, power.
//! * [`sim`] — deterministic event engine, scenarios, traces.
//! * [`link`] — capacity, TCP CUBIC/BBR, RTT, HO interruption semantics.
//! * [`analysis`] — statistics and the paper's measurement analyses.
//! * [`prognos`] — **the paper's contribution**: the HO prediction system.
//! * [`baselines`] — GBC and stacked-LSTM comparison predictors.
//! * [`apps`] — ABR algorithms and application QoE models.
//! * [`telemetry`] — deterministic instrumentation: counters, phase timers,
//!   event journal (off by default, enable via `ScenarioBuilder::telemetry`).
//! * [`oracle`] — cross-layer invariant checker and deterministic scenario
//!   fuzzer (the shadow state machine behind `scenario_fuzz`).
//! * [`trace`] — causal handover tracing: per-HO spans vivisected into the
//!   paper's phases, assembled from the hook stream, with a bounded
//!   flight recorder that dumps the recent event ring on violations (the
//!   span layer behind `ho_vivisect`).
//! * [`serve`] — the online prediction service: a TCP/UDS server running
//!   one Prognos per connection behind an RRC-framed wire protocol, plus
//!   the trace-replay load generator (`serve` / `serve_load` binaries,
//!   `BENCH_serve.json`).
//!
//! ## Quickstart
//!
//! ```
//! use fiveg_mobility::prelude::*;
//!
//! // Simulate a short NSA low-band drive for carrier OpX and count HOs.
//! let scenario = ScenarioBuilder::city_loop(Carrier::OpX, 42)
//!     .duration_s(120.0)
//!     .build();
//! let trace = scenario.run();
//! assert!(trace.samples.len() > 0);
//! ```

pub use fiveg_analysis as analysis;
pub use fiveg_apps as apps;
pub use fiveg_baselines as baselines;
pub use fiveg_geo as geo;
pub use fiveg_link as link;
pub use fiveg_oracle as oracle;
pub use fiveg_radio as radio;
pub use fiveg_ran as ran;
pub use fiveg_rrc as rrc;
pub use fiveg_serve as serve;
pub use fiveg_sim as sim;
pub use fiveg_telemetry as telemetry;
pub use fiveg_trace as trace;
pub use fiveg_ue as ue;
pub use prognos;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use fiveg_geo::{Point, Polyline};
    pub use fiveg_radio::{Band, BandClass, Rrs};
    pub use fiveg_ran::{Carrier, HoType, RadioTech};
    pub use fiveg_sim::{Scenario, ScenarioBuilder, Trace};
    pub use fiveg_telemetry::{Telemetry, TelemetryConfig};
    pub use prognos::{Prognos, PrognosConfig};
}
