//! A miniature cross-country drive test: three carriers side by side, like
//! the paper's tethered-phones methodology (§3).
//!
//! ```sh
//! cargo run --release --example drive_test
//! ```

use fiveg_mobility::analysis::frequency::{is_4g_ho, is_nsa_5g_procedure, km_per_ho};
use fiveg_mobility::analysis::{colocated_sample_fraction, DatasetInventory};
use fiveg_mobility::prelude::*;
use fiveg_mobility::ran::Arch;

fn main() {
    println!("mini drive test: 20 km freeway + one city loop per carrier\n");

    for carrier in Carrier::ALL {
        let freeway = ScenarioBuilder::freeway(carrier, Arch::Nsa, 20.0, 7).sample_hz(10.0).build().run();
        let city = ScenarioBuilder::city_loop(carrier, 8).duration_s(600.0).sample_hz(10.0).build().run();
        let inv = DatasetInventory::over(&[&freeway, &city]);
        println!("=== {carrier}");
        println!("  towers seen {:>4}   NR bands {}   LTE bands {}", inv.unique_towers, inv.nr_bands, inv.lte_bands);
        println!(
            "  4G HOs {:>4}   NSA 5G procedures {:>4}   (freeway: 5G HO every {:.2} km, 4G every {:.2} km)",
            inv.lte_hos,
            inv.nsa_procedures,
            km_per_ho(&freeway, is_nsa_5g_procedure),
            km_per_ho(&freeway, is_4g_ho),
        );
        println!(
            "  eNB/gNB co-located samples in the city: {:.0}%  (paper: 5-36% depending on carrier)",
            colocated_sample_fraction(&city) * 100.0
        );
        println!();
    }

    // OpY also runs SA: show the HO-frequency advantage. This run is
    // instrumented: the summary below shows per-phase tick-loop timings,
    // HO counters, and the journaled event stream.
    let tele = Telemetry::new(TelemetryConfig::on());
    let sa = ScenarioBuilder::freeway(Carrier::OpY, Arch::Sa, 20.0, 7)
        .sample_hz(10.0)
        .telemetry(TelemetryConfig::on())
        .build()
        .run_instrumented(&tele);
    println!(
        "OpY SA bonus run: one MCGH every {:.2} km (paper: 0.9 km; NSA is ~2x more frequent)",
        km_per_ho(&sa, |_| true)
    );
    println!();
    print!("{}", tele.summary());
    println!("\nfirst journaled events of the SA run:");
    for entry in tele.events().iter().take(5) {
        println!("  {}", entry.to_json());
    }
}
