//! Quickstart: simulate a 5G drive and look at its handovers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fiveg_mobility::prelude::*;

fn main() {
    // A 10 km freeway drive on carrier OpY's NSA deployment at 130 km/h.
    let scenario =
        ScenarioBuilder::freeway(Carrier::OpY, fiveg_mobility::ran::Arch::Nsa, 10.0, 42).sample_hz(10.0).build();
    let trace = scenario.run();

    println!(
        "drove {:.1} km in {:.0} s, {} cross-layer samples recorded",
        trace.meta.traveled_m / 1000.0,
        trace.meta.duration_s,
        trace.samples.len()
    );

    println!("\nhandovers ({} total, one every {:.2} km):", trace.handovers.len(), trace.hos_per_km().recip());
    for h in trace.handovers.iter().take(12) {
        println!(
            "  t={:7.1}s {:\u{20}<4} {:>9}  T1={:3.0}ms T2={:3.0}ms  trigger={:?}",
            h.t_decision,
            h.ho_type.acronym(),
            h.ho_type.access_change(true),
            h.stages.t1_ms,
            h.stages.t2_ms,
            h.trigger_phase.iter().map(|e| e.label()).collect::<Vec<_>>(),
        );
    }
    if trace.handovers.len() > 12 {
        println!("  ... and {} more", trace.handovers.len() - 12);
    }

    println!(
        "\nsignaling: {} RRC/MAC messages, {} bytes on the wire",
        trace.signaling.total_msgs(),
        trace.signaling.bytes
    );

    let mean_capacity = trace.samples.iter().map(|s| s.capacity_mbps).sum::<f64>() / trace.samples.len() as f64;
    println!("mean downlink capacity: {mean_capacity:.0} Mbps");
}
