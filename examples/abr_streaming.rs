//! Stream a 16K panoramic video over a simulated 5G drive, with and without
//! HO-aware throughput prediction (§7.4).
//!
//! ```sh
//! cargo run --release --example abr_streaming
//! ```

use fiveg_mobility::apps::abr::AbrAlgorithm;
use fiveg_mobility::apps::emulator::BandwidthTrace;
use fiveg_mobility::apps::vod::{VodConfig, VodSession};
use fiveg_mobility::link::Cca;
use fiveg_mobility::prelude::*;
use fiveg_mobility::sim::Workload;

fn main() {
    // record a bandwidth trace by saturating the downlink on a city drive
    let drive = ScenarioBuilder::city_loop(Carrier::OpX, 77)
        .duration_s(300.0)
        .sample_hz(20.0)
        .workload(Workload::Bulk(Cca::Cubic))
        .build()
        .run();
    // 1 Hz bandwidth log, like the paper's Mahimahi traces
    let series: Vec<(f64, f64)> = (0..(drive.meta.duration_s as usize))
        .filter_map(|sec| {
            let vals: Vec<f64> = drive
                .samples
                .iter()
                .filter(|s| s.t >= sec as f64 && s.t < sec as f64 + 1.0)
                .map(|s| s.capacity_mbps)
                .collect();
            (!vals.is_empty()).then(|| (sec as f64, vals.iter().sum::<f64>() / vals.len() as f64))
        })
        .collect();
    let bw = BandwidthTrace::new(series);
    println!(
        "bandwidth trace: {:.0} s, mean {:.0} Mbps, min {:.0} Mbps, {} HOs during the drive\n",
        bw.duration_s(),
        bw.mean_mbps(),
        bw.min_mbps(),
        drive.handovers.len()
    );

    // ground-truth HO-aware corrector: capacity through each HO vs before it
    let hos: Vec<(f64, f64, f64)> =
        drive.handovers.iter().map(|h| (h.t_decision - 1.0, h.t_complete + 0.5, 0.3)).collect();
    for algo in [AbrAlgorithm::RateBased, AbrAlgorithm::FastMpc, AbrAlgorithm::RobustMpc] {
        let plain = VodSession::new(VodConfig { algorithm: algo, ..Default::default() }).run(&bw);
        let hos2 = hos.clone();
        let aware = VodSession::new(VodConfig {
            algorithm: algo,
            corrector: Some(Box::new(move |t| {
                hos2.iter().find(|&&(a, b, _)| t >= a && t <= b).map(|&(_, _, s)| s).unwrap_or(1.0)
            })),
            ..Default::default()
        })
        .run(&bw);
        println!(
            "{:<10} plain: stall {:5.2}% quality {:.2} | HO-aware: stall {:5.2}% quality {:.2}",
            algo.name(),
            plain.stall_frac * 100.0,
            plain.normalized_bitrate,
            aware.stall_frac * 100.0,
            aware.normalized_bitrate
        );
    }
}
