//! Drive Prognos online over a walking trace and watch it call handovers
//! before they happen.
//!
//! ```sh
//! cargo run --release --example predict_live
//! ```

use fiveg_mobility::prelude::*;
use fiveg_mobility::prognos::{CellObs, LegSnapshot, UeContext};
use fiveg_mobility::ran::Arch;
use fiveg_mobility::rrc::Pci;

fn main() {
    // a 20-minute walking loop on OpX (dense urban, mmWave present)
    let trace = ScenarioBuilder::walking_loop(Carrier::OpX, 20.0, 1, 99).sample_hz(20.0).build().run();
    println!(
        "trace: {:.0} min walk, {} HOs, {} measurement reports\n",
        trace.meta.duration_s / 60.0,
        trace.handovers.len(),
        trace.reports.len()
    );

    let mut pg = Prognos::new(PrognosConfig::default());
    pg.set_configs(trace.configs.clone());

    let pci_of = |c: u32| Pci(trace.cell(c).pci);
    let obs = |c: u32, rrs| CellObs { pci: pci_of(c), rrs, group: Some(trace.cell(c).tower) };

    let mut rep_i = 0;
    let mut ho_i = 0;
    let mut last_call: Option<(HoType, f64)> = None;
    let mut calls = 0u32;
    let mut hits = 0u32;

    for s in &trace.samples {
        let lte = LegSnapshot {
            serving: s.lte_cell.zip(s.lte_rrs).map(|(c, r)| CellObs { pci: pci_of(c), rrs: r, group: None }),
            neighbors: s.lte_neighbors.iter().map(|&(c, r)| CellObs { pci: pci_of(c), rrs: r, group: None }).collect(),
        };
        let nr = LegSnapshot {
            serving: s.nr_cell.zip(s.nr_rrs).map(|(c, r)| obs(c, r)),
            neighbors: s.nr_neighbors.iter().map(|&(c, r)| obs(c, r)).collect(),
        };
        pg.on_sample(s.t, &lte, &nr);
        while rep_i < trace.reports.len() && trace.reports[rep_i].t <= s.t {
            pg.on_report(trace.reports[rep_i].event);
            rep_i += 1;
        }
        while ho_i < trace.handovers.len() && trace.handovers[ho_i].t_command <= s.t {
            let h = &trace.handovers[ho_i];
            let verdict = match last_call {
                Some((ho, t_call)) if ho == h.ho_type && h.t_command - t_call < 3.0 => {
                    hits += 1;
                    format!("CALLED {:.0} ms early", (h.t_command - t_call) * 1000.0)
                }
                _ => "missed".to_string(),
            };
            println!("  t={:6.1}s  actual {:<4} -> {verdict}", h.t_command, h.ho_type.acronym());
            pg.on_handover(h.ho_type);
            last_call = None;
            ho_i += 1;
        }
        let ctx = UeContext {
            arch: Arch::Nsa,
            has_scg: s.nr_cell.is_some(),
            nr_band: s.nr_cell.map(|c| trace.cell(c).class),
        };
        let p = pg.predict(s.t, &ctx);
        if let Some(ho) = p.ho {
            if last_call.map(|(h, _)| h != ho).unwrap_or(true) {
                calls += 1;
                last_call = Some((ho, s.t));
            }
        }
    }

    println!(
        "\n{} of {} HOs called in advance; {} prediction episodes emitted; {} patterns learned",
        hits,
        trace.handovers.len(),
        calls,
        pg.learner().len()
    );
    println!("learned decision logic:");
    for p in pg.learner().patterns() {
        println!(
            "  [{}] -> {}  (support {})",
            p.seq.iter().map(|e| e.label()).collect::<Vec<_>>().join(", "),
            p.ho.acronym(),
            p.support
        );
    }
}
