//! Export the D1/D2-style walking datasets as JSON traces, mirroring the
//! paper's released artifact ("we make our dataset ... publicly
//! accessible").
//!
//! ```sh
//! cargo run --release --example export_dataset -- out_dir [laps]
//! ```

use fiveg_mobility::prelude::*;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let out: PathBuf = args.next().unwrap_or_else(|| "dataset".into()).into();
    let laps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    std::fs::create_dir_all(&out).expect("create output dir");

    for (name, minutes, base) in [("D1", 35.0, 0xD1_0000u64), ("D2", 25.0, 0xD2_0000u64)] {
        for lap in 0..laps {
            let trace = ScenarioBuilder::walking_loop(Carrier::OpX, minutes, 1, base + lap as u64)
                .sample_hz(20.0)
                .build()
                .run();
            let path = out.join(format!("{name}_lap{lap}.json"));
            trace.save(&path).expect("write trace");
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            println!(
                "{} -> {} samples, {} HOs, {} MRs, {:.1} MB",
                path.display(),
                trace.samples.len(),
                trace.handovers.len(),
                trace.reports.len(),
                bytes as f64 / 1e6
            );
        }
    }
    println!("\nreload with fiveg_mobility::sim::Trace::load(path)");
}
