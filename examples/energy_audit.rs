//! The §5.3 energy question, plus a fault-injection twist: how much battery
//! do handovers burn in an hour on the freeway, and what happens when
//! measurement reports start getting lost?
//!
//! ```sh
//! cargo run --release --example energy_audit
//! ```

use fiveg_mobility::analysis::frequency::is_nsa_5g_procedure;
use fiveg_mobility::analysis::EnergyReport;
use fiveg_mobility::prelude::*;
use fiveg_mobility::ran::Arch;
use fiveg_mobility::sim::FaultConfig;
use fiveg_mobility::ue::PowerModel;

fn main() {
    let model = PowerModel::default();

    // one hour at 130 km/h on OpX NSA low-band, keep-alive pings only
    let hour =
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 130.0, 5).duration_s(3600.0).sample_hz(10.0).build().run();
    let r5 = EnergyReport::over(&hour, &model, is_nsa_5g_procedure);
    let r4 = EnergyReport::over(&hour, &model, |h| !is_nsa_5g_procedure(h));
    println!("one hour at 130 km/h (NSA low-band):");
    println!("  5G HO procedures: {:>4} -> {:.1} mAh (paper: 553 HOs, 34.7 mAh)", r5.ho_count, r5.total_mah);
    println!("  4G HOs:           {:>4} -> {:.1} mAh", r4.ho_count, r4.total_mah);
    println!(
        "  equivalent data for the 5G HO budget: {:.1} GB of low-band download",
        r5.total_j / model.dl_energy_per_byte(fiveg_mobility::radio::BandClass::Low) / 1e9
    );

    // fault injection: a flaky uplink loses 40% of measurement reports —
    // fewer HOs happen (and the UE lingers on degrading cells instead)
    let flaky = ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 130.0, 5)
        .duration_s(3600.0)
        .sample_hz(10.0)
        .faults(FaultConfig { mr_loss_prob: 0.4, ho_failure_prob: 0.05 })
        .build()
        .run();
    let rf = EnergyReport::over(&flaky, &model, |_| true);
    let rc = EnergyReport::over(&hour, &model, |_| true);
    let cap = |t: &Trace| t.samples.iter().map(|s| s.capacity_mbps).sum::<f64>() / t.samples.len() as f64;
    println!("\nfault injection (40% MR loss, 5% HO failures):");
    println!(
        "  HOs {} -> {}   HO energy {:.1} -> {:.1} mAh   HO failures: {}",
        rc.ho_count, rf.ho_count, rc.total_mah, rf.total_mah, flaky.ho_failures
    );
    println!(
        "  ...but mean capacity drops {:.0} -> {:.0} Mbps: the saved signaling is paid for in throughput",
        cap(&hour),
        cap(&flaky)
    );
}
