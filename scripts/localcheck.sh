#!/usr/bin/env bash
# Offline workspace verification with raw rustc — no cargo, no registry.
#
# This container has no crates.io access, so `cargo build` cannot even
# resolve dependencies. This script builds the whole workspace anyway:
# external deps are replaced by the single-file stubs in scripts/stubs/
# (see their README for what is functional vs type-check-only), workspace
# crates compile in dependency order, and the sweep binary runs for real:
#
#   scripts/localcheck.sh           # build everything + tests + smoke gate
#   scripts/localcheck.sh build     # just compile the workspace
#   scripts/localcheck.sh test      # dependency-free unit tests (telemetry)
#   scripts/localcheck.sh smoke     # sweep determinism gate (1 vs 4 threads)
#   scripts/localcheck.sh tick      # tick_bench smoke (snapshot vs reference, des skip floor)
#   scripts/localcheck.sh des       # des equivalence harness (event-driven vs stepped engine)
#   scripts/localcheck.sh fleet     # fleet_bench smoke (1 vs 4 threads, deterministic fields)
#   scripts/localcheck.sh fuzz      # oracle self-test + corpus replay + bounded fuzz
#   scripts/localcheck.sh vivisect  # ho_vivisect smoke (span/counter reconciliation, 1 vs 4 threads)
#   scripts/localcheck.sh serve     # serve smoke (UDS server + serve_load replay, digest gate)
#   scripts/localcheck.sh doc       # rustdoc -D warnings on every crate (CI doc gate mirror)
#   scripts/localcheck.sh perf      # demo sweep speedup (1 vs 4 threads)
#
# This is a best-effort gate for offline machines; real CI (see
# .github/workflows/ci.yml) builds against the real crates.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=target/local
mkdir -p "$OUT"

step="${1:-all}"

# every --extern built so far; unused externs are not an error, so each
# crate just gets the full list
EXTERNS=()

stub() { # name [is_proc_macro]
    local name="$1" kind="${2:-rlib}"
    if [ "$kind" = proc-macro ]; then
        rustc --edition 2021 --crate-type proc-macro --crate-name "$name" \
            "scripts/stubs/$name.rs" --out-dir "$OUT" -L "$OUT" "${EXTERNS[@]}"
        EXTERNS+=(--extern "$name=$OUT/lib$name.so")
    else
        rustc --edition 2021 -O --crate-type rlib --crate-name "$name" \
            "scripts/stubs/$name.rs" --out-dir "$OUT" -L "$OUT" "${EXTERNS[@]}"
        EXTERNS+=(--extern "$name=$OUT/lib$name.rlib")
    fi
}

lib() { # crate_name src_path
    local name="$1" src="$2"
    echo "   lib $name"
    rustc --edition 2021 -O -D warnings --crate-type rlib --crate-name "$name" \
        "$src" --out-dir "$OUT" -L "$OUT" "${EXTERNS[@]}"
    EXTERNS+=(--extern "$name=$OUT/lib$name.rlib")
}

run_build() {
    echo "== stub deps (scripts/stubs/)"
    stub serde_derive proc-macro
    stub serde
    stub serde_json
    stub bytes
    stub parking_lot
    stub crossbeam
    stub proptest

    echo "== workspace crates (dependency order)"
    lib fiveg_telemetry crates/telemetry/src/lib.rs
    lib fiveg_geo crates/geo/src/lib.rs
    lib fiveg_radio crates/radio/src/lib.rs
    lib fiveg_rrc crates/rrc/src/lib.rs
    lib fiveg_ran crates/ran/src/lib.rs
    lib fiveg_ue crates/ue/src/lib.rs
    lib fiveg_link crates/link/src/lib.rs
    lib prognos crates/core/src/lib.rs
    lib fiveg_baselines crates/baselines/src/lib.rs
    lib fiveg_sim crates/sim/src/lib.rs
    lib fiveg_trace crates/trace/src/lib.rs
    lib fiveg_oracle crates/oracle/src/lib.rs
    lib fiveg_analysis crates/analysis/src/lib.rs
    lib fiveg_apps crates/apps/src/lib.rs
    lib fiveg_bench crates/bench/src/lib.rs
    lib fiveg_serve crates/serve/src/lib.rs
    lib fiveg_mobility src/lib.rs

    echo "== sweep_demo binary"
    rustc --edition 2021 -O -D warnings --crate-name sweep_demo \
        crates/bench/src/bin/sweep_demo.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/sweep_demo"

    echo "== tick_bench binary"
    rustc --edition 2021 -O -D warnings --crate-name tick_bench \
        crates/bench/src/bin/tick_bench.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/tick_bench"

    echo "== scenario_fuzz binary"
    rustc --edition 2021 -O -D warnings --crate-name scenario_fuzz \
        crates/bench/src/bin/scenario_fuzz.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/scenario_fuzz"

    echo "== fleet_bench binary"
    rustc --edition 2021 -O -D warnings --crate-name fleet_bench \
        crates/bench/src/bin/fleet_bench.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/fleet_bench"

    echo "== ho_vivisect binary"
    rustc --edition 2021 -O -D warnings --crate-name ho_vivisect \
        crates/bench/src/bin/ho_vivisect.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/ho_vivisect"

    echo "== serve binary"
    rustc --edition 2021 -O -D warnings --crate-name serve \
        crates/serve/src/bin/serve.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/serve"

    echo "== serve_load binary"
    rustc --edition 2021 -O -D warnings --crate-name serve_load \
        crates/serve/src/bin/serve_load.rs -L "$OUT" "${EXTERNS[@]}" \
        -o "$OUT/serve_load"
}

# Unit tests runnable offline: telemetry has zero external deps; the
# radio/ue/ran/sim/bench crates' tests (proptests included) run against the
# functional stubs; so do the workspace determinism integration tests. The
# handful of tests that exercise real serde_json at runtime are --skip'ed
# here and run under cargo in CI only.
run_test() {
    # reconstruct the extern list from a prior `build` when run standalone
    if [ ${#EXTERNS[@]} -eq 0 ]; then
        local f name
        for f in "$OUT"/lib*.rlib "$OUT"/lib*.so; do
            [ -e "$f" ] || continue
            name="$(basename "$f")"
            name="${name#lib}"
            name="${name%.rlib}"
            name="${name%.so}"
            EXTERNS+=(--extern "$name=$f")
        done
    fi

    echo "== telemetry unit tests (histogram/absorb proptests need the stub)"
    rustc --edition 2021 --test crates/telemetry/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/telemetry_test"
    "$OUT/telemetry_test" --quiet

    echo "== radio unit tests (noise memo bit-identity, smoothing/rrs proptests)"
    rustc --edition 2021 -O --test --crate-name fiveg_radio crates/radio/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/radio_test"
    "$OUT/radio_test" --quiet

    echo "== ue unit tests (mobility peek cursor, route proptests)"
    rustc --edition 2021 -O --test --crate-name fiveg_ue crates/ue/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/ue_test"
    "$OUT/ue_test" --quiet

    echo "== ran unit tests (deployment sup tables, pattern bounds, measure legs)"
    rustc --edition 2021 -O --test --crate-name fiveg_ran crates/ran/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/ran_test"
    "$OUT/ran_test" --quiet

    echo "== sim unit tests (wakeup soundness, fleet scheduler; serde-bound tests skipped)"
    rustc --edition 2021 -O --test --crate-name fiveg_sim crates/sim/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/sim_test"
    "$OUT/sim_test" --quiet --skip json --skip save_load_round_trips \
        --skip enabled_journal_is_deterministic --skip telemetry_does_not_perturb_trace \
        --skip zero_probability_faults_are_byte_identical_to_none

    echo "== trace unit tests (span assembler, flight recorder, absorb)"
    rustc --edition 2021 -O --test --crate-name fiveg_trace crates/trace/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/trace_test"
    "$OUT/trace_test" --quiet

    echo "== oracle unit tests (shadow checker, trace checks, fuzz codec, mutations)"
    rustc --edition 2021 -O --test --crate-name fiveg_oracle crates/oracle/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/oracle_test"
    "$OUT/oracle_test" --quiet

    echo "== bench unit tests (sweep harness, driver metrics, fuzz campaign, proptest)"
    rustc --edition 2021 -O --test --crate-name fiveg_bench crates/bench/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/bench_test"
    "$OUT/bench_test" --quiet

    echo "== workspace sweep determinism integration test"
    rustc --edition 2021 -O --test tests/sweep_determinism.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/sweep_determinism_test"
    "$OUT/sweep_determinism_test" --quiet

    echo "== workspace fleet determinism integration test (json tests skipped: stub serde)"
    rustc --edition 2021 -O --test tests/fleet_determinism.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/fleet_determinism_test"
    "$OUT/fleet_determinism_test" --quiet --skip json

    echo "== workspace vivisect determinism integration test"
    rustc --edition 2021 -O --test tests/vivisect_determinism.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/vivisect_determinism_test"
    "$OUT/vivisect_determinism_test" --quiet

    echo "== serve unit tests (wire codec, session core, replay, digest, server)"
    rustc --edition 2021 -O --test --crate-name fiveg_serve crates/serve/src/lib.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/serve_test"
    "$OUT/serve_test" --quiet

    echo "== workspace serve equivalence integration test (wire vs offline Prognos)"
    rustc --edition 2021 -O --test tests/serve_equivalence.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/serve_equivalence_test"
    "$OUT/serve_equivalence_test" --quiet
}

run_smoke() {
    echo "== sweep smoke determinism (1 thread vs 4 threads)"
    [ -x "$OUT/sweep_demo" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    "$OUT/sweep_demo" --smoke --threads 1 --out "$OUT/smoke_t1.json"
    "$OUT/sweep_demo" --smoke --threads 4 --out "$OUT/smoke_t4.json"
    if ! cmp -s "$OUT/smoke_t1.json" "$OUT/smoke_t4.json"; then
        echo "smoke sweep output differs across thread counts:" >&2
        diff "$OUT/smoke_t1.json" "$OUT/smoke_t4.json" >&2 || true
        exit 1
    fi
    echo "   reports are byte-identical ($(wc -c <"$OUT/smoke_t1.json") bytes)"
}

run_tick() {
    echo "== tick benchmark smoke (snapshot vs reference engine path)"
    [ -x "$OUT/tick_bench" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    "$OUT/tick_bench" --smoke --out "$OUT/tick_smoke.json"
    grep -q '"schema":"fiveg-tick/v2"' "$OUT/tick_smoke.json" || {
        echo "tick_bench report missing fiveg-tick/v2 schema" >&2
        exit 1
    }
    # the binary itself enforces the skip_ratio >= 0.5 floor and exits
    # nonzero below it; here we only require the v2 des section to exist
    grep -q '"skip_ratio":' "$OUT/tick_smoke.json" || {
        echo "tick_bench report missing des skip metrics" >&2
        exit 1
    }
    echo "   report OK ($(wc -c <"$OUT/tick_smoke.json") bytes)"
}

run_des() {
    echo "== workspace des equivalence harness (stepped engine as proof oracle)"
    if [ ${#EXTERNS[@]} -eq 0 ]; then
        local f name
        for f in "$OUT"/lib*.rlib "$OUT"/lib*.so; do
            [ -e "$f" ] || continue
            name="$(basename "$f")"
            name="${name#lib}"
            name="${name%.rlib}"
            name="${name%.so}"
            EXTERNS+=(--extern "$name=$f")
        done
    fi
    rustc --edition 2021 -O --test tests/des_equivalence.rs \
        -L "$OUT" "${EXTERNS[@]}" -o "$OUT/des_equivalence_test"
    "$OUT/des_equivalence_test" --quiet
}

run_fuzz() {
    echo "== scenario fuzz (oracle self-test, corpus replay, 40-case campaign, 1 vs 4 threads)"
    [ -x "$OUT/scenario_fuzz" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    # --no-roundtrip: the offline serde_json stub cannot serialize at runtime
    "$OUT/scenario_fuzz" --cases 40 --seed 1 --threads 1 --no-roundtrip \
        --out "$OUT/fuzz_t1.json"
    "$OUT/scenario_fuzz" --cases 40 --seed 1 --threads 4 --no-roundtrip --no-selftest \
        --out "$OUT/fuzz_t4.json"
    if ! cmp -s "$OUT/fuzz_t1.json" "$OUT/fuzz_t4.json"; then
        echo "fuzz report differs across thread counts:" >&2
        diff "$OUT/fuzz_t1.json" "$OUT/fuzz_t4.json" >&2 || true
        exit 1
    fi
    grep -q '"schema":"fiveg-fuzz/v1"' "$OUT/fuzz_t1.json" || {
        echo "fuzz report missing fiveg-fuzz/v1 schema" >&2
        exit 1
    }
    echo "   reports are byte-identical ($(wc -c <"$OUT/fuzz_t1.json") bytes)"
}

run_fleet() {
    echo "== fleet benchmark smoke (UE·ticks/s vs size, 1 thread/1 shard vs 4 threads/4 shards)"
    [ -x "$OUT/fleet_bench" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    # --sizes caps the sweep at 1k UEs: smoke's 10k point takes minutes on a
    # single-core box and adds no determinism coverage the 1k point lacks.
    # The two runs vary BOTH the worker count and the shard count, so the
    # deterministic-field comparison proves thread- and shard-invariance at
    # once; --verify-shards on the first run additionally byte-compares a
    # full FleetTrace (samples and all) at 1 vs 4 shards.
    "$OUT/fleet_bench" --smoke --sizes 1,10,100,1000 --threads 1 --shards 1 --verify-shards \
        --out "$OUT/fleet_smoke_t1.json"
    "$OUT/fleet_bench" --smoke --sizes 1,10,100,1000 --threads 4 --shards 4 \
        --out "$OUT/fleet_smoke_t4.json"
    # the event-driven run at 1 thread / 1 shard: --event-driven makes
    # bench_size itself fail if the event path's ue_ticks diverge from the
    # fixed run's, and the report carries the skip metrics we grep below
    "$OUT/fleet_bench" --smoke --sizes 1,10,100,1000 --threads 1 --shards 1 --event-driven \
        --out "$OUT/fleet_smoke_ev.json"
    grep -q '"schema":"fiveg-fleet/v3"' "$OUT/fleet_smoke_t1.json" || {
        echo "fleet_bench report missing fiveg-fleet/v3 schema" >&2
        exit 1
    }
    grep -q '"skipped_ue_ticks":' "$OUT/fleet_smoke_ev.json" || {
        echo "event-driven fleet report missing skip metrics" >&2
        exit 1
    }
    # wall-clock fields differ run to run (and migrations is shard-relative
    # bookkeeping); the workload-deterministic ones must not — across thread
    # counts, shard counts AND the fixed-vs-event-driven stepping mode
    local det1 det4 detev
    det1=$(grep -o '"ue_ticks":[0-9]*\|"ticks":[0-9]*\|"peak_cell_ues":[0-9]*\|"contended_ue_ticks":[0-9]*' "$OUT/fleet_smoke_t1.json")
    det4=$(grep -o '"ue_ticks":[0-9]*\|"ticks":[0-9]*\|"peak_cell_ues":[0-9]*\|"contended_ue_ticks":[0-9]*' "$OUT/fleet_smoke_t4.json")
    detev=$(grep -o '"ue_ticks":[0-9]*\|"ticks":[0-9]*\|"peak_cell_ues":[0-9]*\|"contended_ue_ticks":[0-9]*' "$OUT/fleet_smoke_ev.json")
    if [ "$det1" != "$det4" ]; then
        echo "fleet deterministic fields differ across thread/shard counts:" >&2
        diff <(echo "$det1") <(echo "$det4") >&2 || true
        exit 1
    fi
    if [ "$det1" != "$detev" ]; then
        echo "fleet deterministic fields differ between fixed and event-driven stepping:" >&2
        diff <(echo "$det1") <(echo "$detev") >&2 || true
        exit 1
    fi
    echo "   deterministic fields identical across thread/shard counts and stepping modes"
}

run_vivisect() {
    echo "== vivisect smoke (span/counter reconciliation, 1 thread vs 4 threads, forced violation)"
    [ -x "$OUT/ho_vivisect" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    rm -rf "$OUT/vivisect_dumps"
    "$OUT/ho_vivisect" --smoke --threads 1 --out "$OUT/vivisect_t1.json" \
        --dump-dir "$OUT/vivisect_dumps" --force-violation
    "$OUT/ho_vivisect" --smoke --threads 4 --out "$OUT/vivisect_t4.json" \
        --dump-dir "$OUT/vivisect_dumps"
    if ! cmp -s "$OUT/vivisect_t1.json" "$OUT/vivisect_t4.json"; then
        echo "vivisect report differs across thread counts:" >&2
        diff "$OUT/vivisect_t1.json" "$OUT/vivisect_t4.json" >&2 || true
        exit 1
    fi
    grep -q '"schema":"fiveg-vivisect/v1"' "$OUT/vivisect_t1.json" || {
        echo "vivisect report missing fiveg-vivisect/v1 schema" >&2
        exit 1
    }
    grep -q '"schema":"fiveg-flightrec/v1"' "$OUT/vivisect_dumps/forced_oracle_violation.jsonl" || {
        echo "forced violation did not produce a fiveg-flightrec/v1 dump" >&2
        exit 1
    }
    echo "   reports are byte-identical ($(wc -c <"$OUT/vivisect_t1.json") bytes), flight dump OK"
}

run_serve() {
    echo "== serve smoke (UDS server + serve_load trace replay, equivalence digest gate)"
    [ -x "$OUT/serve" ] && [ -x "$OUT/serve_load" ] || {
        echo "run 'scripts/localcheck.sh build' first" >&2; exit 1
    }
    local sock="$OUT/serve_smoke.sock"
    rm -f "$sock"
    "$OUT/serve" --uds "$sock" --workers 2 --duration-s 60 >"$OUT/serve_smoke.log" 2>&1 &
    local srv=$!
    # shellcheck disable=SC2064 — expand $srv/$sock now, at trap-set time
    trap "kill $srv 2>/dev/null || true; rm -f '$sock'" RETURN
    local i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "serve did not create $sock" >&2; exit 1; }
        sleep 0.1
    done
    "$OUT/serve_load" --pinned --uds "$sock" --sessions 8 \
        --out "$OUT/serve_smoke.json" \
        --baseline BENCH_serve.json --tol 0.15
    kill "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
    grep -q '"schema":"fiveg-serve/v1"' "$OUT/serve_smoke.json" || {
        echo "serve_load report missing fiveg-serve/v1 schema" >&2
        exit 1
    }
    echo "   wire replies match offline Prognos, gates hold ($(wc -c <"$OUT/serve_smoke.json") bytes)"
}

run_doc() {
    echo "== rustdoc -D warnings (offline mirror of the CI cargo-doc gate)"
    if [ ${#EXTERNS[@]} -eq 0 ]; then
        local f name
        for f in "$OUT"/lib*.rlib "$OUT"/lib*.so; do
            [ -e "$f" ] || continue
            name="$(basename "$f")"
            name="${name#lib}"
            name="${name%.rlib}"
            name="${name%.so}"
            EXTERNS+=(--extern "$name=$f")
        done
    fi
    local -A SRC=(
        [fiveg_telemetry]=crates/telemetry/src/lib.rs
        [fiveg_geo]=crates/geo/src/lib.rs
        [fiveg_radio]=crates/radio/src/lib.rs
        [fiveg_rrc]=crates/rrc/src/lib.rs
        [fiveg_ran]=crates/ran/src/lib.rs
        [fiveg_ue]=crates/ue/src/lib.rs
        [fiveg_link]=crates/link/src/lib.rs
        [prognos]=crates/core/src/lib.rs
        [fiveg_baselines]=crates/baselines/src/lib.rs
        [fiveg_sim]=crates/sim/src/lib.rs
        [fiveg_trace]=crates/trace/src/lib.rs
        [fiveg_oracle]=crates/oracle/src/lib.rs
        [fiveg_analysis]=crates/analysis/src/lib.rs
        [fiveg_apps]=crates/apps/src/lib.rs
        [fiveg_bench]=crates/bench/src/lib.rs
        [fiveg_serve]=crates/serve/src/lib.rs
        [fiveg_mobility]=src/lib.rs
    )
    local crate
    for crate in "${!SRC[@]}"; do
        echo "   doc $crate"
        rustdoc --edition 2021 -D warnings --crate-name "$crate" "${SRC[$crate]}" \
            -L "$OUT" "${EXTERNS[@]}" -o "$OUT/doc"
    done
}

run_perf() {
    echo "== demo sweep speedup (1 thread vs 4 threads)"
    [ -x "$OUT/sweep_demo" ] || { echo "run 'scripts/localcheck.sh build' first" >&2; exit 1; }
    local cores
    cores=$(nproc 2>/dev/null || echo 1)
    if [ "$cores" -lt 2 ]; then
        echo "   SKIP: only $cores core(s) available — speedup needs a multi-core machine"
        return 0
    fi
    local t0 t1 serial_ms parallel_ms
    t0=$(date +%s%N)
    "$OUT/sweep_demo" --threads 1 --out "$OUT/demo_t1.json" >/dev/null
    t1=$(date +%s%N)
    serial_ms=$(( (t1 - t0) / 1000000 ))
    t0=$(date +%s%N)
    "$OUT/sweep_demo" --threads 4 --out "$OUT/demo_t4.json" >/dev/null
    t1=$(date +%s%N)
    parallel_ms=$(( (t1 - t0) / 1000000 ))
    echo "   serial ${serial_ms} ms, 4 threads ${parallel_ms} ms"
    cmp -s "$OUT/demo_t1.json" "$OUT/demo_t4.json" || { echo "demo reports differ" >&2; exit 1; }
    if [ $((parallel_ms * 2)) -gt "$serial_ms" ]; then
        echo "   WARNING: <2x speedup at 4 threads" >&2
        exit 1
    fi
    echo "   speedup >= 2x"
}

case "$step" in
    all)
        run_build
        run_test
        run_smoke
        run_tick
        run_des
        run_fleet
        run_fuzz
        run_vivisect
        run_serve
        ;;
    build) run_build ;;
    test) run_test ;;
    smoke) run_smoke ;;
    tick) run_tick ;;
    des) run_des ;;
    fleet) run_fleet ;;
    fuzz) run_fuzz ;;
    vivisect) run_vivisect ;;
    serve) run_serve ;;
    doc) run_doc ;;
    perf) run_perf ;;
    *)
        echo "usage: scripts/localcheck.sh [all|build|test|smoke|tick|des|fleet|fuzz|vivisect|serve|doc|perf]" >&2
        exit 2
        ;;
esac

echo "OK (offline localcheck)"
