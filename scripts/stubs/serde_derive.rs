//! Offline stub for `serde_derive` (see README.md): the derives expand to
//! nothing; the blanket impls in the `serde` stub satisfy every bound.
//! `attributes(serde)` makes rustc accept `#[serde(...)]` field/container
//! attributes.

extern crate proc_macro;

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
