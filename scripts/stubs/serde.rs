//! Offline stub for `serde` (see README.md): type-check only. The traits
//! carry no methods and are blanket-implemented, so any `T: Serialize` /
//! `T: Deserialize` bound holds; the re-exported derive macros (same names,
//! macro namespace) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub mod de {
    /// Marker matching serde's `DeserializeOwned` bound.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
