//! Offline stub for `serde_json` (see README.md): type-check only. Every
//! entry point panics if actually called — nothing on the localcheck
//! execution path serializes.

use std::fmt;

/// Stub error; satisfies `std::io::Error::other`'s `Into<Box<dyn Error>>`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub: to_string")
}

pub fn to_vec<T: ?Sized>(_value: &T) -> Result<Vec<u8>> {
    unimplemented!("serde_json stub: to_vec")
}

pub fn from_str<T>(_s: &str) -> Result<T> {
    unimplemented!("serde_json stub: from_str")
}

pub fn from_slice<T>(_v: &[u8]) -> Result<T> {
    unimplemented!("serde_json stub: from_slice")
}

/// Minimal `Value` lookalike: indexing and numeric access, all stubbed.
#[derive(Debug, Clone)]
pub struct Value;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        unimplemented!("serde_json stub: Value::as_f64")
    }

    pub fn as_str(&self) -> Option<&str> {
        unimplemented!("serde_json stub: Value::as_str")
    }

    pub fn as_u64(&self) -> Option<u64> {
        unimplemented!("serde_json stub: Value::as_u64")
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, _key: &str) -> &Value {
        unimplemented!("serde_json stub: Value indexing")
    }
}
