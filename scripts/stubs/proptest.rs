//! Offline stub for `proptest` (see README.md): functional, minimal. Real
//! proptest does strategy composition, shrinking and persistence; this
//! stub supports what the workspace's property tests use — the `proptest!`
//! macro (with an optional `proptest_config` inner attribute), numeric
//! range strategies, `any::<T>()`, tuples of strategies, `prop_map`,
//! `prop_oneof!`, `Just`, `collection::vec`, `option::of`,
//! `sample::select` and `bool::ANY` — sampling a fixed number of
//! deterministic cases per test (no shrinking). Enough to execute the
//! properties offline; CI runs the real crate.

use std::marker::PhantomData;

/// SplitMix64 case generator (deterministic across runs).
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Per-test run configuration (real proptest has many more knobs; the
/// stub honors only the case count).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A source of sampled values (real proptest's Strategy, minus shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps sampled values through `f` — real proptest's `prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { s: self, f }
    }
}

/// [`Strategy::prop_map`]'s strategy.
pub struct Map<S, F> {
    s: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (self.f)(self.s.sample(rng))
    }
}

/// A constant strategy — real proptest's `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end);
                    self.start + (rng.next_u64() % (self.end - self.start) as u64) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end);
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi);
        // hit the endpoints occasionally — boundary/clamping code is what
        // inclusive-range properties usually exercise
        match rng.next_u64() % 16 {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
}

/// Types with a canonical unconstrained strategy — real proptest's
/// `Arbitrary`, reduced to direct sampling.
pub trait Arbitrary {
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut Rng) -> Option<T> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(T::arbitrary(rng))
        }
    }
}

macro_rules! tuple_arbitrary {
    ($(($($s:ident),+))+) => {
        $(
            impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
                fn arbitrary(rng: &mut Rng) -> Self {
                    ($($s::arbitrary(rng),)+)
                }
            }
        )+
    };
}

tuple_arbitrary! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// [`any`]'s strategy.
pub struct Any<T>(PhantomData<T>);

/// The unconstrained strategy for `T` — real proptest's `any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// Boxes a strategy for heterogeneous composition (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice between same-valued strategies — `prop_oneof!`'s
/// backing strategy (real proptest also supports weighted arms; the stub
/// does not).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

pub mod bool {
    use super::{Rng, Strategy};

    /// [`ANY`]'s strategy.
    pub struct AnyBool;

    /// `proptest::bool::ANY` — a uniform boolean.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Rng, Strategy};

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a Vec of sampled elements.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Rng, Strategy};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — `None` a quarter of the time, else `Some(sample)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod sample {
    use super::{Rng, Strategy};

    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// `select(items)` — a uniform draw from a non-empty Vec.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty Vec");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            let i = (rng.next_u64() % self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs each property as a plain test over a deterministic case sweep —
/// 48 cases unless a `proptest_config` inner attribute says otherwise.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng = $crate::Rng::new(0xC0FF_EE00_5EED_0001);
                for __case in 0..__cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
    ($($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::with_cases(48))]
            $($(#[$attr])+ fn $name($($arg in $strat),+) $body)+
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond)
    };
    ($cond:expr, $($arg:tt)+) => {
        assert!($cond, $($arg)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        assert_eq!($left, $right, $($arg)+)
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}
