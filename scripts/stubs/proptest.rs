//! Offline stub for `proptest` (see README.md): functional, minimal. Real
//! proptest does strategy composition, shrinking and persistence; this
//! stub supports exactly what `fiveg-bench`'s property tests use — the
//! `proptest!` macro, integer-range strategies and `collection::vec` —
//! sampling a fixed number of deterministic cases per test (no shrinking).
//! Enough to execute the properties offline; CI runs the real crate.

/// SplitMix64 case generator (deterministic across runs).
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// A source of sampled values (real proptest's Strategy, minus shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut Rng) -> Self::Value;
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end);
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end);
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

pub mod collection {
    use super::{Rng, Strategy};

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — a Vec of sampled elements.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runs each property as a plain test over 48 deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])+
            fn $name() {
                let mut __rng = $crate::Rng::new(0xC0FF_EE00_5EED_0001);
                for __case in 0..48u64 {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        assert_eq!($left, $right, $($arg)+)
    };
}
