//! Offline stub for `bytes` (see README.md): functional. The RRC codec
//! runs during every simulation (§5.1 counts encoded signaling bytes), so
//! this subset is a real Vec-backed implementation, not a panic shim.
//! Multi-byte integers are big-endian, like the real crate.

/// Immutable byte buffer with a cursor (consumed from the front).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: self.data[self.pos..][range].to_vec(), pos: 0 }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

/// Growable byte buffer (the encode side).
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// Read side of a buffer.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn advance(&mut self, n: usize);

    fn chunk(&self) -> &[u8];

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

/// Write side of a buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}
