//! Offline stub for `parking_lot` (see README.md): functional. A thin
//! wrapper over `std::sync::Mutex` with parking_lot's poison-free API —
//! a poisoned lock propagates the original panic instead of returning Err.

use std::sync::{self, PoisonError};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
