//! Offline stub for `crossbeam` (see README.md): functional. Implements
//! `crossbeam::thread::scope`/`Scope::spawn` over `std::thread::scope`
//! (available since Rust 1.63). One behavioral difference: a panicking
//! worker propagates through `std::thread::scope` instead of surfacing as
//! `Err` — acceptable for a verification harness, since callers treat both
//! as fatal.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope` and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; like crossbeam, the closure receives the
        /// scope so it can spawn further workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all workers are joined before return.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
