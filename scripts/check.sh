#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before pushing.
#
#   scripts/check.sh            # everything
#   scripts/check.sh fmt        # just the formatting check
#   scripts/check.sh clippy     # just the lints
#   scripts/check.sh test       # just the tests
#
# Offline-safe: everything runs with CARGO_NET_OFFLINE=true so a machine
# without registry access still works once dependencies are cached.
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

step="${1:-all}"

run_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "== cargo test"
    cargo test -q --workspace
}

case "$step" in
    all)
        run_fmt
        run_clippy
        run_test
        ;;
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    *)
        echo "usage: scripts/check.sh [all|fmt|clippy|test]" >&2
        exit 2
        ;;
esac

echo "OK"
