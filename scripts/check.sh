#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests, dep audit, smoke sweep.
# Run before pushing.
#
#   scripts/check.sh            # everything
#   scripts/check.sh fmt        # just the formatting check
#   scripts/check.sh clippy     # just the lints
#   scripts/check.sh test       # just the tests
#   scripts/check.sh deps       # declared-but-unused dependency audit
#   scripts/check.sh smoke      # sweep determinism gate (1 vs 4 threads)
#   scripts/check.sh fuzz       # oracle self-test + corpus replay + 200-case fuzz
#   scripts/check.sh vivisect   # ho_vivisect smoke (span/counter reconciliation, 1 vs 4 threads)
#   scripts/check.sh perf       # gating perf: tick_bench + fleet_bench vs BENCH_*.json (±15%)
#   scripts/check.sh serve      # serve smoke: UDS server + serve_load replay vs BENCH_serve.json
#   scripts/check.sh doc        # cargo doc --no-deps with warnings as errors
#
# Offline-safe: everything defaults to CARGO_NET_OFFLINE=true so a machine
# without registry access still works once dependencies are cached. CI sets
# CARGO_NET_OFFLINE=false explicitly for the first fetch on a fresh runner.
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

step="${1:-all}"

run_fmt() {
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "== cargo test"
    cargo test -q --workspace
}

# Flags external dependencies a crate declares but never names in its
# sources. cargo builds every declared dep, so a dead entry costs compile
# time in every CI run and rots silently — rustc's unused_crate_dependencies
# lint can't catch deps used only by bench/test targets, this scan can
# (it covers src, benches, examples and tests per crate).
run_deps() {
    echo "== dependency audit (declared vs used)"
    local bad=0
    for manifest in Cargo.toml crates/*/Cargo.toml; do
        local dir deps
        dir="$(dirname "$manifest")"
        # external [dependencies]/[dev-dependencies] entries; path deps
        # (fiveg-*, prognos) are internal and covered by cargo itself
        deps="$(awk '
            /^\[(dev-)?dependencies\]/ { in_deps = 1; next }
            /^\[/ { in_deps = 0 }
            in_deps && /^[a-z0-9_-]+[. ]/ { sub(/[. =].*/, ""); print }
        ' "$manifest" | grep -v -E '^(fiveg-|prognos)' | sort -u || true)"
        for dep in $deps; do
            local ident="${dep//-/_}"
            if ! grep -rqE "\b${ident}(::|!| *:)" \
                "$dir/src" "$dir/benches" "$dir/examples" "$dir/tests" 2>/dev/null; then
                echo "  UNUSED: $dep declared in $manifest" >&2
                bad=1
            fi
        done
    done
    if [ "$bad" -ne 0 ]; then
        echo "dependency audit failed: remove the entries above" >&2
        return 1
    fi
    echo "  all declared external deps are referenced"
}

# The sweep harness's headline guarantee, checked end to end: the smoke
# report must be byte-identical no matter how many workers produced it.
run_smoke() {
    echo "== sweep smoke determinism (1 thread vs 4 threads)"
    cargo build -q --release --bin sweep_demo
    local bin=target/release/sweep_demo
    local t1 t4
    t1="$(mktemp)" && t4="$(mktemp)"
    trap 'rm -f "$t1" "$t4"' RETURN
    "$bin" --smoke --threads 1 --out "$t1"
    "$bin" --smoke --threads 4 --out "$t4"
    if ! cmp -s "$t1" "$t4"; then
        echo "smoke sweep output differs across thread counts:" >&2
        diff "$t1" "$t4" >&2 || true
        return 1
    fi
    echo "  reports are byte-identical"
}

# The fuzz smoke gate: the oracle's mutation self-test, the committed
# repro corpus, and a bounded fixed-seed campaign (200 cases through both
# engines under the invariant oracle), byte-compared across thread counts.
run_fuzz() {
    echo "== scenario fuzz gate (self-test, corpus, 200 cases, 1 vs 4 threads)"
    cargo build -q --release --bin scenario_fuzz
    local bin=target/release/scenario_fuzz
    local t1 t4
    t1="$(mktemp)" && t4="$(mktemp)"
    trap 'rm -f "$t1" "$t4"' RETURN
    "$bin" --cases 200 --seed 1 --threads 1 --out "$t1"
    "$bin" --cases 200 --seed 1 --threads 4 --no-selftest --out "$t4"
    if ! cmp -s "$t1" "$t4"; then
        echo "fuzz report differs across thread counts:" >&2
        diff "$t1" "$t4" >&2 || true
        return 1
    fi
    echo "  reports are byte-identical"
}

# The vivisection gate: assemble causal HO spans across the pinned smoke
# matrix, reconcile them exactly against the engine's telemetry counters,
# byte-compare the report across thread counts, and exercise the
# flight-recorder crash path with a forced oracle violation. CI uploads
# BENCH_vivisect.json and the dumps as artifacts.
run_vivisect() {
    echo "== vivisect gate (span reconciliation, 1 vs 4 threads, forced violation)"
    cargo build -q --release --bin ho_vivisect
    local bin=target/release/ho_vivisect
    local t4 dumps
    t4="$(mktemp)" && dumps="$(mktemp -d)"
    trap 'rm -f "$t4"; rm -rf "$dumps"' RETURN
    "$bin" --smoke --threads 1 --out BENCH_vivisect.json --dump-dir vivisect_dumps --force-violation
    "$bin" --smoke --threads 4 --out "$t4" --dump-dir "$dumps"
    if ! cmp -s BENCH_vivisect.json "$t4"; then
        echo "vivisect report differs across thread counts:" >&2
        diff BENCH_vivisect.json "$t4" >&2 || true
        return 1
    fi
    grep -q '"schema":"fiveg-flightrec/v1"' vivisect_dumps/forced_oracle_violation.jsonl || {
        echo "forced violation did not produce a fiveg-flightrec/v1 dump" >&2
        return 1
    }
    echo "  reports are byte-identical; flight-recorder dump carries the span timeline"
}

# Gating perf job: rerun both benchmarks and compare against the committed
# BENCH_*.json baselines with a ±15% tolerance — the binaries exit nonzero
# on a regression. Only machine-independent metrics are gated (work counts,
# allocs per tick, the same-run snapshot-vs-reference speedup ratio):
# the baselines' absolute ticks/s were recorded on the development machine,
# and shared CI runners drift more than any sane tolerance, so raw
# throughput is printed as an advisory comparison, never a failure.
# tick_bench runs the full scenario set because the committed baseline is
# full-mode (smoke's smaller scenario has different work counts); its v2
# des section first proves each des scenario's event-driven summary equal
# to the stepped twin, then enforces the machine-independent
# skip_ratio >= 0.5 floor outright and bands logical tick counts and
# skip_ratio against the baseline (UE·ticks/s stays advisory);
# fleet_bench runs --smoke, whose per-size parameters match the full
# baseline's up to the 10k-UE point (full adds only 100k), and pins
# --threads 1 --shards 16 to match the committed baseline's geometry (a
# multi-worker barrier pool on a 2-core runner has genuinely different
# per-UE·tick costs, and the shard count shifts cache locality — 16
# shards is where the 10k-UE point peaks on one thread). Baseline rows
# are paired by their n_ues value, so a reordered
# or extended baseline can never gate against the wrong row.
# --verify-shards adds the other machine-independent gates: the same fleet
# run with 1 and 4 shards must produce identical FleetTraces, and the
# event-driven scheduler must be byte-identical to its FixedScheduled
# referee (plus control-plane-identical to the plain fixed path) before
# any timing starts. --event-driven then times every size in both
# fixed-step and event-driven modes: skip_ratio gates as a band (it is a
# deterministic work count for the pinned scenario) and event_speedup as
# higher-is-better (a same-run ratio, so runner speed cancels). CI uploads
# BENCH_tick_ci.json / BENCH_fleet_ci.json as artifacts.
run_perf() {
    echo "== perf gate (tick_bench + fleet_bench vs committed baselines, tol 15%)"
    cargo build -q --release --bin tick_bench --bin fleet_bench
    target/release/tick_bench --out BENCH_tick_ci.json --baseline BENCH_tick.json --tol 0.15
    target/release/fleet_bench --smoke --threads 1 --shards 16 --verify-shards --event-driven \
        --out BENCH_fleet_ci.json --baseline BENCH_fleet.json --tol 0.15
    python3 -m json.tool BENCH_tick_ci.json >/dev/null
    python3 -m json.tool BENCH_fleet_ci.json >/dev/null
    echo "  both reports parse; no gated metric regressed beyond tolerance"
}

# The serving gate, end to end on the real binaries: a `serve` server on a
# Unix socket, `serve_load` replaying the pinned fleet workload against it
# at 8-session fan-out. Every wire PROGNOSIS is compared field-by-field
# against an offline Prognos replay of the same frames (serve_load exits 2
# on any divergence), and the machine-independent report fields — session
# and frame counts, prediction counts, the FNV-1a-64 equivalence digest —
# gate against the committed BENCH_serve.json. Latency percentiles and
# predictions/s are advisory only: the baseline's wall clock came from a
# different machine. CI uploads BENCH_serve_ci.json as an artifact.
run_serve() {
    echo "== serve gate (UDS server + serve_load replay vs committed baseline, tol 15%)"
    cargo build -q --release --bin serve --bin serve_load
    local dir srv
    dir="$(mktemp -d)"
    target/release/serve --uds "$dir/serve.sock" --workers 2 --duration-s 300 \
        >"$dir/serve.log" 2>&1 &
    srv=$!
    # shellcheck disable=SC2064 — expand $srv/$dir now, at trap-set time
    trap "kill $srv 2>/dev/null || true; rm -rf '$dir'" RETURN
    local i=0
    while [ ! -S "$dir/serve.sock" ]; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "serve did not create its socket" >&2; cat "$dir/serve.log" >&2; return 1; }
        sleep 0.1
    done
    target/release/serve_load --pinned --uds "$dir/serve.sock" --sessions 8 \
        --out BENCH_serve_ci.json --baseline BENCH_serve.json --tol 0.15
    kill "$srv" 2>/dev/null || true
    wait "$srv" 2>/dev/null || true
    python3 -m json.tool BENCH_serve_ci.json >/dev/null
    echo "  wire predictions match offline Prognos; no gated metric regressed"
}

# The doc gate: rustdoc warnings (broken intra-doc links above all) are
# errors, matching what docs.rs would surface.
run_doc() {
    echo "== cargo doc --no-deps (warnings are errors)"
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
}

case "$step" in
    all)
        run_fmt
        run_clippy
        run_test
        run_deps
        run_smoke
        ;;
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    deps) run_deps ;;
    smoke) run_smoke ;;
    fuzz) run_fuzz ;;
    vivisect) run_vivisect ;;
    perf) run_perf ;;
    serve) run_serve ;;
    doc) run_doc ;;
    *)
        echo "usage: scripts/check.sh [all|fmt|clippy|test|deps|smoke|fuzz|vivisect|perf|serve|doc]" >&2
        exit 2
        ;;
esac

echo "OK"
