//! The sweep harness's core contract, enforced at the workspace level:
//! the report must not depend on how many workers executed the matrix.

use fiveg_bench::sweep::{self, RouteKind, SweepPredictor, SweepSpec};
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::FaultConfig;

fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "tiny".into(),
        routes: vec![RouteKind::Freeway(2.0)],
        carriers: vec![Carrier::OpY],
        archs: vec![Arch::Nsa, Arch::Sa],
        faults: vec![FaultConfig::NONE, FaultConfig { mr_loss_prob: 0.05, ho_failure_prob: 0.02 }],
        seeds: vec![3],
        predictors: vec![SweepPredictor::Prognos, SweepPredictor::Gbc],
        duration_s: 45.0,
        sample_hz: 5.0,
        tol_windows: 2,
        lstm_epochs: 2,
    }
}

#[test]
fn sweep_report_is_byte_identical_across_thread_counts() {
    let spec = tiny_spec();
    let serial = sweep::run(&spec, 1).to_json(false);
    for threads in [2, 4] {
        let pooled = sweep::run(&spec, threads).to_json(false);
        assert_eq!(serial, pooled, "report changed at {threads} threads");
    }
    assert!(serial.contains("\"schema\":\"fiveg-sweep/v1\""));
    assert!(serial.contains("\"predictor\":\"prognos\""));
}

#[test]
fn sweep_shares_traces_and_rolls_up_counters() {
    let spec = tiny_spec();
    let result = sweep::run(&spec, 4);
    // 4 scenario cells × 2 predictors
    assert_eq!(result.scenarios, 4);
    assert_eq!(result.jobs.len(), 8);
    // sim counters are per-scenario, not per-job: the tick count must
    // correspond to 4 scenario runs of ~45 s at 5 Hz, not 8
    let ticks = result.sim_counters.iter().find(|(n, _)| n == "sim.ticks").map(|&(_, v)| v).unwrap();
    assert!(ticks >= 4 * 200 && ticks <= 4 * 250, "ticks {ticks}");
    // the Prognos replays record their own deterministic counters
    let calls = result.predictor_counters.iter().find(|(n, _)| n == "prognos.predict_calls").map(|&(_, v)| v).unwrap();
    assert!(calls > 0);
}
