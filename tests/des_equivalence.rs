//! The event-driven core's headline harness: differential equivalence
//! between the stepped reference engine and the discrete-event scheduler,
//! at every layer that produces output.
//!
//! The stepped engine is the proof oracle. Four kinds of evidence, each
//! with its own failure mode:
//!
//! 1. **Traced byte-identity** — an event-driven fleet of one with trace
//!    recording on must reproduce [`run_reference`] exactly. A UE
//!    recording per-tick samples is never planner-eligible, so this leg
//!    proves the DES machinery is *transparent* when it cannot skip.
//! 2. **Summary-mode equality** — with sampling off the planner really
//!    skips (asserted non-vacuous), and every engine-invariant control
//!    field must still match the stepped twin.
//! 3. **Referee cross-examination** — [`EngineMode::Referee`] takes the
//!    *same* scheduling decisions as [`EngineMode::EventDriven`] but steps
//!    "sleeping" UEs with the full control plane. [`FleetTrace`] equality
//!    therefore proves every granted window was genuinely inert.
//! 4. **Downstream invariance** — handover [`SpanLog`]s, predictor feature
//!    tables and full Prognos replays derived from DES output must equal
//!    those derived from the reference engine: the paper's analyses may
//!    not be able to tell which engine produced their input.
//!
//! The matrix crosses NSA/SA/LTE × routes (city loop, freeway, walking)
//! × fault injection; predictors cover Prognos, the GBC features and the
//! LSTM sequences. Everything here is structural equality and runs under
//! the offline harness; `scripts/localcheck.sh` executes this file as the
//! `des` step.

use fiveg_baselines::{Gbc, GbcConfig};
use fiveg_bench::vivisect::VivisectObserver;
use fiveg_bench::{gbc_dataset, lstm_sequences, run_prognos};
use fiveg_ran::{Arch, Carrier, CellId, HoType, RadioTech};
use fiveg_sim::{
    run_des, run_fleet_exec, run_fleet_exec_observed, run_reference, run_stepped_summary, EngineMode, FaultConfig,
    FleetExec, FleetSpec, Scenario, ScenarioBuilder, Telemetry, Trace,
};
use fiveg_trace::{SpanLog, SpanOutcome};
use prognos::PrognosConfig;

const FAULTS: FaultConfig = FaultConfig { mr_loss_prob: 0.25, ho_failure_prob: 0.2 };

/// The equivalence matrix: architectures × routes × fault injection.
/// Modest durations — the point is coverage of control-plane shapes, not
/// wall-clock; the perf story lives in the benchmarks.
fn matrix() -> Vec<(&'static str, Scenario)> {
    vec![
        ("city-nsa", ScenarioBuilder::city_loop(Carrier::OpY, 11).duration_s(40.0).sample_hz(5.0).build()),
        (
            "city-sa",
            ScenarioBuilder::city_loop(Carrier::OpY, 12).arch(Arch::Sa).duration_s(40.0).sample_hz(5.0).build(),
        ),
        (
            "city-lte",
            ScenarioBuilder::city_loop(Carrier::OpY, 13).arch(Arch::Lte).duration_s(40.0).sample_hz(5.0).build(),
        ),
        (
            "freeway-nsa",
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 14).duration_s(40.0).sample_hz(5.0).build(),
        ),
        (
            "freeway-sa",
            ScenarioBuilder::freeway(Carrier::OpX, Arch::Sa, 3.0, 15).duration_s(40.0).sample_hz(5.0).build(),
        ),
        ("walking-sa", ScenarioBuilder::walking_loop(Carrier::OpY, 2.0, 1, 16).arch(Arch::Sa).sample_hz(5.0).build()),
        (
            "city-sa-faulted",
            ScenarioBuilder::city_loop(Carrier::OpY, 17)
                .arch(Arch::Sa)
                .faults(FAULTS)
                .duration_s(40.0)
                .sample_hz(5.0)
                .build(),
        ),
        (
            "freeway-nsa-faulted",
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 18)
                .faults(FAULTS)
                .duration_s(40.0)
                .sample_hz(5.0)
                .build(),
        ),
    ]
}

/// A DES fleet-of-one with traces kept: the event-driven engine's traced
/// output for `s`, at the given geometry.
fn des_trace_of(s: &Scenario, threads: usize, shards: usize) -> Trace {
    let spec = FleetSpec::new(s.clone(), 1).keep_traces(true);
    let mut ft = run_fleet_exec(&spec, FleetExec::threads(threads).shards(shards).engine(EngineMode::EventDriven));
    assert_eq!(ft.traces.len(), 1);
    ft.traces.pop().unwrap()
}

#[test]
fn des_traces_are_byte_identical_to_run_reference() {
    // Leg 1: transparency. Trace recording pins the planner to zero-length
    // windows, and the whole DES path — wheel, scheduler state, load
    // publication — must be invisible in the output, at any geometry.
    for (name, s) in matrix() {
        let reference = run_reference(&s);
        assert!(!reference.samples.is_empty());
        for (threads, shards) in [(1, 1), (2, 4)] {
            let des = des_trace_of(&s, threads, shards);
            assert_eq!(des, reference, "[{name}] DES trace diverged from run_reference at {threads}t/{shards}s");
        }
    }
}

#[test]
fn summary_mode_des_matches_stepped_across_the_matrix() {
    // Leg 2: with sampling off the planner is live. Control fields must
    // match the stepped twin everywhere; skipping must actually happen on
    // the sleep-eligible cells and never on NSA (whose SINR-quantity B1
    // config keeps every UE on the fixed step).
    let mut skipped_total = 0u64;
    for (name, s) in matrix() {
        let des = run_des(&s);
        let stepped = run_stepped_summary(&s);
        assert_eq!(des.control(), stepped.control(), "[{name}] single-UE DES control plane diverged");
        assert_eq!(stepped.skipped_ticks, 0);
        if s.arch == Arch::Nsa {
            assert_eq!(des.sleeps, 0, "[{name}] NSA UEs must never be granted a window");
        }
        skipped_total += des.skipped_ticks;
    }
    assert!(skipped_total > 0, "the matrix must exercise real skipping or this harness is vacuous");
}

#[test]
fn referee_equals_event_driven_at_any_geometry() {
    // Leg 3: the referee steps every "sleeping" tick with the control
    // plane on. FleetTrace equality (summaries, load coupling, scheduler
    // stats) proves the wakeup bounds sound for the whole matrix, across
    // thread × shard geometries.
    let mut slept_cells = 0u32;
    for (name, s) in matrix() {
        let sleepable = s.arch != Arch::Nsa;
        let spec = FleetSpec::new(s, 4);
        let referee = run_fleet_exec(&spec, FleetExec::threads(1).shards(1).engine(EngineMode::Referee));
        let sched = referee.sched.as_ref().expect("scheduled modes record a SchedSummary");
        if sleepable && sched.sleeps > 0 {
            slept_cells += 1;
        }
        for (threads, shards) in [(1, 2), (2, 4), (4, 8)] {
            let event =
                run_fleet_exec(&spec, FleetExec::threads(threads).shards(shards).engine(EngineMode::EventDriven));
            assert_eq!(referee, event, "[{name}] event-driven fleet diverged from referee at {threads}t/{shards}s");
        }
    }
    assert!(slept_cells >= 3, "most sleep-eligible cells must actually sleep, got {slept_cells}");
}

/// Order- and float-exact digest of one span; `PartialEq` over the full
/// log (SpanLog itself deliberately does not derive it).
#[derive(Debug, PartialEq)]
struct SpanDigest {
    key: (u32, u32),
    cause: &'static str,
    ho_type: Option<HoType>,
    leg: Option<RadioTech>,
    cells: (Option<CellId>, Option<CellId>),
    trigger: String,
    outcome: SpanOutcome,
    times: (u64, u64, Option<u64>, Option<u64>, Option<u64>),
}

fn digest(log: &SpanLog) -> Vec<SpanDigest> {
    log.spans
        .iter()
        .map(|s| SpanDigest {
            key: (s.ue, s.seq),
            cause: s.cause,
            ho_type: s.ho_type,
            leg: s.leg,
            cells: (s.source, s.target),
            trigger: s.trigger.clone(),
            outcome: s.outcome,
            times: (
                s.t_trigger.to_bits(),
                s.t_decision.to_bits(),
                s.t_command.map(f64::to_bits),
                s.t_complete.map(f64::to_bits),
                s.t_settled.map(f64::to_bits),
            ),
        })
        .collect()
}

fn span_log_of(s: &Scenario, exec: FleetExec) -> (SpanLog, u64) {
    let spec = FleetSpec::new(s.clone(), 6).stagger_s(5.0);
    let arch = s.arch;
    let seed = s.seed;
    let (_ft, observers) =
        run_fleet_exec_observed(&spec, exec, &Telemetry::disabled(), |ue| VivisectObserver::new(ue, arch, seed));
    let mut log = SpanLog::default();
    let mut violations = 0;
    for o in observers {
        let (l, v) = o.finish();
        violations += v;
        log.absorb(l);
    }
    (log, violations)
}

#[test]
fn span_logs_survive_event_driven_scheduling() {
    // Leg 4a: the causal span layer is assembled from the hook stream,
    // which an event-driven run thins out (skipped ticks fire no hooks).
    // Every span, anomaly count and timestamp bit must nonetheless match
    // the stepped engine's — HO activity only ever happens on awake ticks.
    for (name, s) in matrix().into_iter().filter(|(n, _)| matches!(*n, "city-sa" | "city-nsa" | "freeway-nsa-faulted"))
    {
        let (stepped, v_stepped) = span_log_of(&s, FleetExec::threads(1).shards(1));
        let (event, v_event) = span_log_of(&s, FleetExec::threads(2).shards(4).engine(EngineMode::EventDriven));
        assert_eq!(v_stepped, v_event, "[{name}] oracle violation counts diverged");
        assert_eq!(digest(&stepped), digest(&event), "[{name}] span logs diverged under DES");
        assert_eq!(stepped.anomalies.len(), event.anomalies.len(), "[{name}] anomaly counts diverged");
        if name != "freeway-nsa-faulted" {
            assert_eq!(v_stepped, 0, "[{name}] clean cells must stay clean");
        }
        assert!(
            stepped.count(SpanOutcome::Completed) > 0,
            "[{name}] the fleet must complete handovers for span equality to mean anything"
        );
    }
}

#[test]
fn predictors_cannot_tell_the_engines_apart() {
    // Leg 4b: the predictor pipeline — Prognos replay, GBC feature table,
    // LSTM sequences — fed a DES-produced trace must produce outputs
    // identical to the reference engine's, including trained-model
    // predictions.
    let scenarios = [
        ScenarioBuilder::city_loop(Carrier::OpY, 21).duration_s(90.0).sample_hz(5.0).build(),
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 5.0, 22).duration_s(90.0).sample_hz(5.0).build(),
    ];
    for s in &scenarios {
        let reference = run_reference(s);
        let des = des_trace_of(s, 2, 2);
        assert_eq!(des, reference); // guards the legs below from vacuity

        // Prognos: full trace-driven replay on both engines' output
        let (run_ref, _) = run_prognos(&reference, PrognosConfig::default(), None, None);
        let (run_des_tr, _) = run_prognos(&des, PrognosConfig::default(), None, None);
        assert_eq!(run_ref.windows, run_des_tr.windows, "Prognos window outcomes diverged");
        assert_eq!(run_ref.episodes, run_des_tr.episodes);
        assert_eq!(run_ref.events, run_des_tr.events);
        assert_eq!((run_ref.learned, run_ref.evicted), (run_des_tr.learned, run_des_tr.evicted));

        // GBC: identical feature tables, and a model trained on one
        // engine's output scores the other's rows identically
        let data_ref = gbc_dataset(&[&reference], 1.0);
        let data_des = gbc_dataset(&[&des], 1.0);
        assert_eq!(data_ref, data_des, "GBC feature tables diverged");
        if data_ref.num_classes() >= 2 {
            let model_ref = Gbc::train(&data_ref, &GbcConfig::default());
            let model_des = Gbc::train(&data_des, &GbcConfig::default());
            for row in &data_ref.features {
                assert_eq!(model_ref.predict_proba(row), model_des.predict_proba(row));
            }
        }

        // LSTM: identical input sequences
        assert_eq!(lstm_sequences(&[&reference], 1.0), lstm_sequences(&[&des], 1.0));
    }
}
