//! Integration: the Prognos pipeline over simulated traces.

use fiveg_mobility::prelude::*;
use fiveg_mobility::prognos::{CellObs, LegSnapshot, UeContext};
use fiveg_mobility::ran::Arch;
use fiveg_mobility::rrc::Pci;

fn drive_prognos(trace: &Trace) -> (Prognos, usize, usize) {
    let mut pg = Prognos::new(PrognosConfig::default());
    pg.set_configs(trace.configs.clone());
    let pci_of = |c: u32| Pci(trace.cell(c).pci);
    let mut rep_i = 0;
    let mut ho_i = 0;
    let mut positives = 0usize;
    let mut anticipated = 0usize;
    let mut last_call: Option<(HoType, f64)> = None;
    for s in &trace.samples {
        let lte = LegSnapshot {
            serving: s.lte_cell.zip(s.lte_rrs).map(|(c, r)| CellObs { pci: pci_of(c), rrs: r, group: None }),
            neighbors: s.lte_neighbors.iter().map(|&(c, r)| CellObs { pci: pci_of(c), rrs: r, group: None }).collect(),
        };
        let nr = LegSnapshot {
            serving: s.nr_cell.zip(s.nr_rrs).map(|(c, r)| CellObs {
                pci: pci_of(c),
                rrs: r,
                group: Some(trace.cell(c).tower),
            }),
            neighbors: s
                .nr_neighbors
                .iter()
                .map(|&(c, r)| CellObs { pci: pci_of(c), rrs: r, group: Some(trace.cell(c).tower) })
                .collect(),
        };
        pg.on_sample(s.t, &lte, &nr);
        while rep_i < trace.reports.len() && trace.reports[rep_i].t <= s.t {
            pg.on_report(trace.reports[rep_i].event);
            rep_i += 1;
        }
        while ho_i < trace.handovers.len() && trace.handovers[ho_i].t_command <= s.t {
            let h = &trace.handovers[ho_i];
            if let Some((ho, t_call)) = last_call {
                if ho == h.ho_type && h.t_command - t_call < 3.0 {
                    anticipated += 1;
                }
            }
            pg.on_handover(h.ho_type);
            last_call = None;
            ho_i += 1;
        }
        let ctx = UeContext {
            arch: Arch::Nsa,
            has_scg: s.nr_cell.is_some(),
            nr_band: s.nr_cell.map(|c| trace.cell(c).class),
        };
        let p = pg.predict(s.t, &ctx);
        if let Some(ho) = p.ho {
            positives += 1;
            last_call = Some((ho, s.t));
        }
    }
    (pg, positives, anticipated)
}

fn walk(seed: u64) -> Trace {
    ScenarioBuilder::walking_loop(Carrier::OpX, 15.0, 1, seed).sample_hz(20.0).build().run()
}

#[test]
fn prognos_learns_the_simulated_carrier_policy() {
    let t = walk(31);
    let (pg, _, _) = drive_prognos(&t);
    let patterns = pg.learner().patterns();
    assert!(!patterns.is_empty(), "must learn patterns");
    // the canonical Fig. 16 sequences must be among them
    use fiveg_mobility::rrc::{EventKind, MeasEvent};
    let has = |seq: Vec<MeasEvent>, ho: HoType| patterns.iter().any(|p| p.seq == seq && p.ho == ho);
    assert!(
        has(vec![MeasEvent::nr(EventKind::B1)], HoType::Scga),
        "[NR-B1] -> SCGA must be learned; got {:?}",
        patterns
            .iter()
            .map(|p| (p.seq.iter().map(|e| e.label()).collect::<Vec<_>>(), p.ho.acronym()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn prognos_anticipates_a_reasonable_share_of_hos() {
    let t = walk(32);
    let (_, positives, anticipated) = drive_prognos(&t);
    assert!(positives > 0, "must emit predictions");
    assert!(anticipated * 5 >= t.handovers.len(), "must anticipate ≥20% of HOs: {anticipated}/{}", t.handovers.len());
}

#[test]
fn sanity_checks_suppress_impossible_predictions() {
    // feed a trained system a context that forbids its favourite pattern
    let t = walk(33);
    let (mut pg, _, _) = drive_prognos(&t);
    use fiveg_mobility::rrc::{EventKind, MeasEvent};
    pg.on_report(MeasEvent::nr(EventKind::B1));
    let with_scg = UeContext { arch: Arch::Nsa, has_scg: true, nr_band: None };
    let p = pg.predict(1e7, &with_scg);
    assert_ne!(p.ho, Some(HoType::Scga), "SCGA cannot be predicted with an SCG attached");
}

#[test]
fn ho_score_reflects_predicted_direction() {
    let t = walk(34);
    let (mut pg, _, _) = drive_prognos(&t);
    use fiveg_mobility::radio::BandClass;
    use fiveg_mobility::rrc::{EventKind, MeasEvent};
    // a B1 report with no SCG predicts SCGA: score must be an improvement
    pg.on_report(MeasEvent::nr(EventKind::B1));
    let ctx = UeContext { arch: Arch::Nsa, has_scg: false, nr_band: Some(BandClass::MmWave) };
    let p = pg.predict(2e7, &ctx);
    if p.ho == Some(HoType::Scga) {
        assert!(p.ho_score > 1.0, "SCGA onto mmWave must predict a boost: {}", p.ho_score);
    }
}

#[test]
fn baselines_train_and_predict_on_sim_features() {
    use fiveg_mobility::baselines::{Dataset, Gbc, GbcConfig};
    let t = walk(35);
    // minimal feature extraction: serving RSRPs per second
    let mut data = Dataset::new();
    let mut sec = 0.0;
    while sec + 1.0 < t.meta.duration_s {
        let ws: Vec<_> = t.samples.iter().filter(|s| s.t >= sec && s.t < sec + 1.0).collect();
        if !ws.is_empty() {
            let lte = ws.iter().filter_map(|s| s.lte_rrs.map(|r| r.rsrp_dbm)).sum::<f64>() / ws.len() as f64;
            let nr = ws.iter().filter_map(|s| s.nr_rrs.map(|r| r.sinr_db)).sum::<f64>() / ws.len().max(1) as f64;
            let label = usize::from(t.handovers.iter().any(|h| h.t_command >= sec && h.t_command < sec + 1.0));
            data.push(vec![lte, nr], label);
        }
        sec += 1.0;
    }
    let (train, test) = data.split(0.6);
    let g = Gbc::train(&train, &GbcConfig::default());
    // the model must at least run over the test rows
    let preds: Vec<usize> = test.features.iter().map(|x| g.predict(x)).collect();
    assert_eq!(preds.len(), test.len());
}
