//! The snapshot engine's core contract, enforced at the workspace level:
//! the per-tick [`fiveg_ran::RadioSnapshot`] is a pure memoization layer, so
//! the production engine must produce byte-identical traces to the retained
//! naive reference path that re-scans the deployment from every consumer.
//!
//! One small scenario per architecture covers the three tick-loop shapes
//! (NSA dual-leg, SA single-leg): the traces are compared in memory
//! (`PartialEq`) and as serialized bytes through a save/load round trip, so
//! even a serialization-ordering drift would be caught.

use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{engine, run_fleet_exec, FleetExec, EngineMode, FleetSpec, Scenario, ScenarioBuilder, Trace};

fn scenario(arch: Arch, seed: u64) -> Scenario {
    let carrier = if arch == Arch::Sa { Carrier::OpX } else { Carrier::OpY };
    ScenarioBuilder::freeway(carrier, arch, 4.0, seed).duration_s(120.0).sample_hz(10.0).build()
}

fn saved_bytes(tr: &Trace, path: &std::path::Path) -> Vec<u8> {
    tr.save(path).expect("save trace");
    std::fs::read(path).expect("read trace back")
}

#[test]
fn snapshot_and_reference_paths_produce_byte_identical_traces() {
    let dir = std::env::temp_dir();
    for (arch, seed) in [(Arch::Nsa, 31_u64), (Arch::Sa, 32)] {
        let s = scenario(arch, seed);
        let snapshot = s.run();
        let reference = engine::run_reference(&s);
        assert_eq!(snapshot, reference, "{arch:?}: snapshot trace diverges from the reference path");

        let snap_path = dir.join(format!("trace_eq_snap_{arch:?}_{seed}.json"));
        let ref_path = dir.join(format!("trace_eq_ref_{arch:?}_{seed}.json"));
        let snap_bytes = saved_bytes(&snapshot, &snap_path);
        let ref_bytes = saved_bytes(&reference, &ref_path);
        assert_eq!(snap_bytes, ref_bytes, "{arch:?}: serialized traces are not byte-identical");

        // and the round trip still loads to the same in-memory trace
        let reloaded = Trace::load(&snap_path).expect("load trace");
        assert_eq!(reloaded, snapshot, "{arch:?}: save/load round trip drifted");
        let _ = std::fs::remove_file(&snap_path);
        let _ = std::fs::remove_file(&ref_path);
    }
}

#[test]
fn event_driven_fleet_matches_reference_path_byte_for_byte() {
    // closes the triangle: run_reference (naive fixed-step) == snapshot
    // engine == event-driven fleet scheduler, for every architecture, down
    // to serialized bytes. run_reference stays fixed-step on purpose — it
    // is the referee the event-driven path is judged against.
    let dir = std::env::temp_dir();
    for (arch, seed) in [(Arch::Nsa, 34_u64), (Arch::Sa, 35), (Arch::Lte, 36)] {
        let carrier = if arch == Arch::Sa { Carrier::OpX } else { Carrier::OpY };
        let s = ScenarioBuilder::city_loop(carrier, seed).arch(arch).duration_s(60.0).sample_hz(5.0).build();
        let reference = engine::run_reference(&s);
        let event = run_fleet_exec(
            &FleetSpec::new(s, 1).keep_traces(true),
            FleetExec::threads(1).shards(1).engine(EngineMode::EventDriven),
        );
        assert_eq!(event.traces[0], reference, "{arch:?}: event-driven trace diverges from the reference path");

        let ref_path = dir.join(format!("trace_eq_ref_ed_{arch:?}_{seed}.json"));
        let ev_path = dir.join(format!("trace_eq_ev_{arch:?}_{seed}.json"));
        let ref_bytes = saved_bytes(&reference, &ref_path);
        let ev_bytes = saved_bytes(&event.traces[0], &ev_path);
        assert_eq!(ref_bytes, ev_bytes, "{arch:?}: serialized traces are not byte-identical");
        let _ = std::fs::remove_file(&ref_path);
        let _ = std::fs::remove_file(&ev_path);
    }
}

#[test]
fn reference_path_is_deterministic_too() {
    let s = scenario(Arch::Nsa, 33);
    let a = engine::run_reference(&s);
    let b = engine::run_reference(&s);
    assert_eq!(a, b, "reference path must be as deterministic as the production path");
}
