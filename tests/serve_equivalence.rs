//! Wire-vs-offline equivalence for the online prediction service.
//!
//! The `fiveg-serve` contract is that a PROGNOSIS answered over a socket is
//! *the same bytes* Prognos would produce in an offline replay of the same
//! frames — the server adds transport and concurrency, never drift. These
//! tests prove it end to end over both transports and at fan-out, plus the
//! failure-isolation half of the contract: one malformed session dies with
//! an ERROR frame without poisoning its neighbors.

use fiveg_mobility::serve::proto::{self, Frame};
use fiveg_mobility::serve::replay::{replay_offline, trace_frames};
use fiveg_mobility::serve::server::{start, ServeConfig};
use fiveg_mobility::serve::{combine_sessions, digest_replies};
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{ScenarioBuilder, Trace};
use std::io::{Read, Write};

fn small_trace(seed: u64) -> Trace {
    let sc = ScenarioBuilder::city_loop(Carrier::OpY, seed).arch(Arch::Sa).duration_s(15.0).sample_hz(10.0).build();
    fiveg_sim::engine::run(&sc)
}

/// Closed-loop client over any stream: send frames, read one reply per
/// PREDICT, return the replies in request order.
fn replay_over<S: Read + Write>(mut conn: S, frames: &[Frame]) -> Vec<Frame> {
    let mut out = Vec::new();
    let mut inbuf = Vec::new();
    let mut replies = Vec::new();
    let read_one = |conn: &mut S, inbuf: &mut Vec<u8>| -> Frame {
        loop {
            if let Some((f, used)) = proto::try_read_frame(inbuf).expect("clean reply stream") {
                inbuf.drain(..used);
                return f;
            }
            let mut tmp = [0u8; 4096];
            let n = conn.read(&mut tmp).expect("read reply");
            assert!(n > 0, "server closed mid-exchange");
            inbuf.extend_from_slice(&tmp[..n]);
        }
    };
    for f in frames {
        proto::write_frame(&mut out, f);
        if matches!(f, Frame::Predict { .. }) {
            conn.write_all(&out).expect("send request batch");
            out.clear();
            replies.push(read_one(&mut conn, &mut inbuf));
        }
    }
    conn.write_all(&out).expect("send trailing frames");
    let mut tmp = [0u8; 64];
    assert_eq!(conn.read(&mut tmp).unwrap_or(0), 0, "server must close after BYE");
    replies
}

/// Runs `n_sessions` concurrent replays against `connect` and asserts
/// every wire reply equals the offline ground truth, byte for byte.
/// Returns the total number of predictions exchanged.
fn assert_equivalence<S, C>(n_sessions: usize, connect: C) -> u64
where
    S: Read + Write + Send,
    C: Fn() -> S,
{
    let traces: Vec<Trace> = vec![small_trace(301), small_trace(302)];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..n_sessions {
            let frames = trace_frames(&traces[i % traces.len()], i as u32);
            let conn = connect();
            handles.push(scope.spawn(move || {
                let replies = replay_over(conn, &frames);
                (i as u32, frames, replies)
            }));
        }
        let mut wire = Vec::new();
        let mut offline = Vec::new();
        let mut total = 0u64;
        for h in handles {
            let (ue, frames, replies) = h.join().expect("session thread");
            let truth = replay_offline(&frames).expect("offline replay");
            assert_eq!(truth.replies.len(), replies.len(), "ue {ue}: one reply per PREDICT");
            for (k, (w, o)) in replies.iter().zip(&truth.replies).enumerate() {
                assert_eq!(w, o, "ue {ue} prediction {k}: wire differs from offline Prognos");
            }
            total += replies.len() as u64;
            wire.push((ue, digest_replies(&replies)));
            offline.push((ue, digest_replies(&truth.replies)));
        }
        assert_eq!(combine_sessions(&wire), combine_sessions(&offline), "fleet-level equivalence digest must match");
        total
    })
}

#[test]
fn tcp_single_session_matches_offline_prognos() {
    let server = start(ServeConfig { tcp: Some("127.0.0.1:0".into()), workers: 1, ..ServeConfig::default() })
        .expect("server start");
    let addr = server.tcp_addr.expect("bound tcp addr");
    assert_equivalence(1, || std::net::TcpStream::connect(addr).expect("connect"));
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.dropped_malformed, 0);
}

#[test]
fn tcp_eight_concurrent_sessions_match_offline_prognos() {
    let server = start(ServeConfig { tcp: Some("127.0.0.1:0".into()), workers: 3, ..ServeConfig::default() })
        .expect("server start");
    let addr = server.tcp_addr.expect("bound tcp addr");
    let total = assert_equivalence(8, || std::net::TcpStream::connect(addr).expect("connect"));
    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.predictions, total, "server must count every answered PREDICT");
}

#[cfg(unix)]
#[test]
fn uds_single_session_matches_offline_prognos() {
    let dir = std::env::temp_dir().join(format!("fiveg_serve_eq_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    let sock = dir.join("one.sock");
    let server =
        start(ServeConfig { uds: Some(sock.clone()), workers: 1, ..ServeConfig::default() }).expect("server start");
    assert_equivalence(1, || std::os::unix::net::UnixStream::connect(&sock).expect("connect"));
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn uds_eight_concurrent_sessions_match_offline_prognos() {
    let dir = std::env::temp_dir().join(format!("fiveg_serve_eq8_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    let sock = dir.join("eight.sock");
    let server =
        start(ServeConfig { uds: Some(sock.clone()), workers: 3, ..ServeConfig::default() }).expect("server start");
    assert_equivalence(8, || std::os::unix::net::UnixStream::connect(&sock).expect("connect"));
    let stats = server.shutdown();
    assert_eq!(stats.completed, 8);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_session_is_dropped_without_poisoning_others() {
    let server = start(ServeConfig { tcp: Some("127.0.0.1:0".into()), workers: 2, ..ServeConfig::default() })
        .expect("server start");
    let addr = server.tcp_addr.expect("bound tcp addr");

    // a well-formed session starts its replay...
    let frames = trace_frames(&small_trace(303), 0);
    let good =
        std::thread::spawn({ move || replay_over(std::net::TcpStream::connect(addr).expect("connect"), &frames) });

    // ...while a malformed one sends a frame with an unknown kind byte
    let mut bad = std::net::TcpStream::connect(addr).expect("connect");
    bad.write_all(&[0, 0, 0, 1, 0x42]).expect("send garbage");
    let mut buf = Vec::new();
    let mut tmp = [0u8; 256];
    loop {
        match bad.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => break,
        }
    }
    let (reply, _) =
        proto::try_read_frame(&buf).expect("parsable ERROR frame").expect("an ERROR frame before the drop");
    assert!(matches!(reply, Frame::Error { .. }), "got {reply:?}");

    // and a short-read session: half a valid HELLO, then EOF
    let mut hello = Vec::new();
    proto::write_frame(&mut hello, &Frame::Hello { ver: proto::PROTO_VERSION, arch: Arch::Sa, ue: 9 });
    let mut short = std::net::TcpStream::connect(addr).expect("connect");
    short.write_all(&hello[..hello.len() / 2]).expect("send half a frame");
    drop(short);

    // the short-read drop is asynchronous: wait until the worker sees EOF
    for _ in 0..200 {
        if server.stats().dropped_malformed >= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // the good session is unaffected by either neighbor
    let replies = good.join().expect("good session");
    let frames = trace_frames(&small_trace(303), 0);
    let truth = replay_offline(&frames).expect("offline replay");
    assert_eq!(replies, truth.replies, "good session must match offline exactly");

    // both bad sessions were dropped as malformed, the good one completed
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.dropped_malformed, 2);
}
