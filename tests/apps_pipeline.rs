//! Integration: application QoE over simulated radio conditions.

use fiveg_mobility::apps::abr::AbrAlgorithm;
use fiveg_mobility::apps::emulator::BandwidthTrace;
use fiveg_mobility::apps::vod::{VodConfig, VodSession};
use fiveg_mobility::apps::volumetric::{VolumetricConfig, VolumetricSession};
use fiveg_mobility::apps::{conferencing_report, gaming_report};
use fiveg_mobility::link::Cca;
use fiveg_mobility::prelude::*;
use fiveg_mobility::sim::Workload;

fn bw_from_sim(seed: u64) -> (Trace, BandwidthTrace) {
    let t = ScenarioBuilder::city_loop(Carrier::OpX, seed)
        .duration_s(300.0)
        .sample_hz(10.0)
        .workload(Workload::Bulk(Cca::Cubic))
        .build()
        .run();
    let series: Vec<(f64, f64)> = (0..(t.meta.duration_s as usize))
        .filter_map(|sec| {
            let vals: Vec<f64> = t
                .samples
                .iter()
                .filter(|s| s.t >= sec as f64 && s.t < sec as f64 + 1.0)
                .map(|s| s.capacity_mbps)
                .collect();
            (!vals.is_empty()).then(|| (sec as f64, vals.iter().sum::<f64>() / vals.len() as f64))
        })
        .collect();
    let bw = BandwidthTrace::new(series);
    (t, bw)
}

#[test]
fn vod_runs_on_simulated_bandwidth() {
    let (_, bw) = bw_from_sim(61);
    for algo in [AbrAlgorithm::RateBased, AbrAlgorithm::FastMpc, AbrAlgorithm::RobustMpc, AbrAlgorithm::Festive] {
        let r = VodSession::new(VodConfig { algorithm: algo, ..Default::default() }).run(&bw);
        assert!(r.normalized_bitrate > 0.0 && r.normalized_bitrate <= 1.0, "{algo:?}: {r:?}");
        assert!(r.stall_frac >= 0.0 && r.stall_frac < 1.0);
    }
}

#[test]
fn volumetric_runs_on_simulated_bandwidth() {
    let (_, bw) = bw_from_sim(62);
    let r = VolumetricSession::new(VolumetricConfig::default()).run(&bw);
    assert!(r.mean_bitrate_mbps >= 43.0, "{r:?}");
    assert!(r.normalized_quality <= 1.0);
}

#[test]
fn conferencing_and_gaming_reports_extract() {
    let t = ScenarioBuilder::city_loop(Carrier::OpX, 63)
        .duration_s(400.0)
        .sample_hz(20.0)
        .workload(Workload::Cbr { rate_mbps: 1.0, deadline_ms: 150.0 })
        .build()
        .run();
    if !t.handovers.is_empty() {
        let r = conferencing_report(&t, 1.0).expect("conferencing report");
        assert!(r.latency_no_ho_ms > 0.0);
        assert!(r.latency_ho_ms >= r.latency_no_ho_ms * 0.5);
    }
    let g = ScenarioBuilder::city_loop_dense(Carrier::OpX, 64)
        .duration_s(300.0)
        .sample_hz(20.0)
        .workload(Workload::Cbr { rate_mbps: 25.0, deadline_ms: 34.0 })
        .build()
        .run();
    if !g.handovers.is_empty() {
        assert!(gaming_report(&g, 1.0).is_some());
    }
}

#[test]
fn robust_mpc_is_more_conservative_than_fast_mpc() {
    // a deliberately nasty trace: alternating feast and famine; robustMPC's
    // error-discounted prediction must not stall more than fastMPC's
    let pts: Vec<(f64, f64)> = (0..=400).map(|i| (i as f64, if (i / 20) % 2 == 0 { 250.0 } else { 15.0 })).collect();
    let bw = BandwidthTrace::new(pts);
    let fast = VodSession::new(VodConfig { algorithm: AbrAlgorithm::FastMpc, ..Default::default() }).run(&bw);
    let robust = VodSession::new(VodConfig { algorithm: AbrAlgorithm::RobustMpc, ..Default::default() }).run(&bw);
    assert!(
        robust.stall_frac <= fast.stall_frac + 1e-9,
        "robustMPC should stall no more than fastMPC: {} vs {}",
        robust.stall_frac,
        fast.stall_frac
    );
    // and it pays for that with (at most) equal quality
    assert!(robust.normalized_bitrate <= fast.normalized_bitrate + 0.05);
}
