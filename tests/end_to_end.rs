//! Cross-crate integration: scenario → trace → analysis invariants.

use fiveg_mobility::analysis::frequency::{is_4g_ho, is_nsa_5g_procedure, km_per_ho};
use fiveg_mobility::prelude::*;
use fiveg_mobility::ran::Arch;

fn nsa_trace(seed: u64) -> Trace {
    ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 10.0, seed).duration_s(300.0).sample_hz(10.0).build().run()
}

#[test]
fn trace_is_bitwise_deterministic() {
    let a = nsa_trace(1);
    let b = nsa_trace(1);
    assert_eq!(a, b);
}

#[test]
fn trace_serde_round_trip() {
    let t = nsa_trace(2);
    let dir = std::env::temp_dir().join("fiveg_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    t.save(&path).unwrap();
    let back = Trace::load(&path).unwrap();
    assert_eq!(back, t);
    std::fs::remove_file(&path).ok();
}

#[test]
fn handover_timeline_is_coherent() {
    let t = nsa_trace(3);
    assert!(!t.handovers.is_empty());
    for h in &t.handovers {
        assert!(h.t_decision < h.t_command, "{h:?}");
        assert!(h.t_command < h.t_complete, "{h:?}");
        assert!(h.stages.t1_ms > 0.0 && h.stages.t2_ms > 0.0);
        // stage durations must match the timeline
        assert!(((h.t_command - h.t_decision) * 1000.0 - h.stages.t1_ms).abs() < 1.0);
        assert!(((h.t_complete - h.t_command) * 1000.0 - h.stages.t2_ms).abs() < 1.0);
    }
    for w in t.handovers.windows(2) {
        assert!(w[0].t_complete <= w[1].t_decision + 1e-6, "HOs must not overlap");
    }
}

#[test]
fn scg_state_transitions_match_samples() {
    let t = nsa_trace(4);
    let sample_before = |time: f64| t.samples.iter().take_while(|s| s.t < time).last();
    let sample_after = |time: f64| t.samples.iter().find(|s| s.t > time + 0.11);
    for h in &t.handovers {
        match h.ho_type {
            HoType::Scga => {
                if let Some(s) = sample_before(h.t_decision) {
                    assert!(s.nr_cell.is_none(), "SCGA must start without an SCG");
                }
                if let Some(s) = sample_after(h.t_complete) {
                    assert!(s.nr_cell.is_some(), "SCGA must end with an SCG");
                }
            }
            HoType::Scgr => {
                if let Some(s) = sample_before(h.t_decision) {
                    assert!(s.nr_cell.is_some(), "SCGR must start with an SCG");
                }
            }
            _ => {}
        }
    }
}

#[test]
fn signaling_counts_are_consistent_with_the_event_log() {
    let t = nsa_trace(5);
    // every logged MR was tallied (no faults configured)
    assert_eq!(t.signaling.meas_reports as usize, t.reports.len());
    // every completed HO contributed a completion + 2 RACH messages
    assert_eq!(t.signaling.rach_msgs as usize, 2 * t.handovers.len());
    assert_eq!(t.signaling.reconfiguration_completes as usize, t.handovers.len());
}

#[test]
fn architecture_frequency_ordering_holds() {
    // the paper's §5.1 ordering, averaged over seeds for stability
    let mean_km = |arch: Arch, f: fn(&fiveg_mobility::ran::HandoverRecord) -> bool| -> f64 {
        (10..13u64)
            .map(|s| {
                let t = ScenarioBuilder::freeway(Carrier::OpY, arch, 12.0, s)
                    .duration_s(340.0)
                    .sample_hz(10.0)
                    .build()
                    .run();
                km_per_ho(&t, f)
            })
            .sum::<f64>()
            / 3.0
    };
    let nsa = mean_km(Arch::Nsa, is_nsa_5g_procedure);
    let lte = mean_km(Arch::Lte, is_4g_ho);
    let sa = mean_km(Arch::Sa, |_| true);
    assert!(nsa < lte, "NSA 5G HOs must be most frequent: {nsa} vs {lte}");
    assert!(nsa < sa, "SA must HO less than NSA: {nsa} vs {sa}");
}

#[test]
fn taxonomy_matches_table2() {
    assert_eq!(HoType::Scgc.access_change(true), "5G→4G→5G");
    assert_eq!(HoType::Scga.acronym(), "SCGA");
    assert_eq!(HoType::ALL.len(), 7);
}

#[test]
fn dual_mode_softens_interruptions() {
    use fiveg_mobility::sim::{FlowLog, Workload};
    let run = |dual: bool| {
        ScenarioBuilder::city_loop(Carrier::OpX, 21)
            .duration_s(300.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(fiveg_mobility::link::Cca::Bbr))
            .force_dual(dual)
            .build()
            .run()
    };
    let dual = run(true);
    let only = run(false);
    let zero_frac = |t: &Trace| match &t.flow {
        FlowLog::Tcp(v) => v.iter().filter(|s| s.goodput_mbps < 0.5).count() as f64 / v.len() as f64,
        _ => panic!(),
    };
    assert!(
        zero_frac(&dual) < zero_frac(&only),
        "dual mode must stall less: {} vs {}",
        zero_frac(&dual),
        zero_frac(&only)
    );
}
