//! Workspace-level contract of the vivisection harness: the
//! `BENCH_vivisect.json` report is a pure function of the pinned matrix —
//! byte-identical at any thread count — its span counts reconcile exactly
//! with the engine's telemetry counters, and a forced oracle violation
//! produces a flight-recorder dump carrying the offending span's full
//! phase timeline. This is the in-process twin of the `vivisect-smoke` CI
//! step (which additionally diffs the files two separate processes wrote).

use fiveg_bench::vivisect::{matrix, reconcile, report, run_matrix};
use fiveg_oracle::{mutation_self_test_traced, MutationKind};
use fiveg_trace::{SpanOutcome, FLIGHTREC_SCHEMA};

#[test]
fn vivisect_report_is_byte_identical_across_thread_counts() {
    let cells = matrix(true);
    let one = report("smoke", &run_matrix(&cells, 1));
    for threads in [2, 4] {
        let pooled = report("smoke", &run_matrix(&cells, threads));
        assert_eq!(one, pooled, "vivisect report changed at {threads} threads");
    }
    assert!(one.contains("\"schema\":\"fiveg-vivisect/v1\""));
    assert!(!one.contains("\"threads\""), "report must not embed the thread count");
}

#[test]
fn span_counts_reconcile_with_telemetry_in_every_cell() {
    for o in run_matrix(&matrix(true), 2) {
        assert!(o.reconciled.is_ok(), "{}: {:?}", o.cell.name, o.reconciled);
        assert!(o.log.anomalies.is_empty(), "{}: {:?}", o.cell.name, o.log.anomalies);
        assert_eq!(o.violations, 0, "{}: oracle violations in a clean cell", o.cell.name);
        // and the check itself has teeth: perturbing the log must fail it
        let mut broken = o.log.clone();
        if let Some(i) = broken.spans.iter().position(|s| s.outcome == SpanOutcome::Completed) {
            broken.spans.remove(i);
            assert!(reconcile(&broken, &o.counters).is_err(), "{}: reconcile accepted a dropped span", o.cell.name);
        }
    }
}

#[test]
fn forced_oracle_violation_dumps_the_span_timeline() {
    let (rep, log) = mutation_self_test_traced(MutationKind::SwapServingLegs, 1);
    assert!(rep.caught_within(0.5), "oracle missed the forced corruption: {rep:?}");
    let dump = log
        .dumps
        .iter()
        .find(|d| d.reason == "oracle_violation")
        .expect("the first violation must snapshot the flight recorder");
    assert!(dump.jsonl.contains(FLIGHTREC_SCHEMA));
    for key in ["\"trigger_ms\"", "\"prep_ms\"", "\"exec_ms\"", "\"t_decision\"", "\"event\""] {
        assert!(dump.jsonl.contains(key), "dump is missing {key}:\n{}", dump.jsonl);
    }
}
