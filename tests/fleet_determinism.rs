//! The fleet engine's core contract, enforced at the workspace level: the
//! output must not depend on how many workers stepped the UEs, and a fleet
//! of one must be indistinguishable — byte for byte once serialized — from
//! the single-UE engine.
//!
//! Tests with `json` in the name serialize through real `serde_json` and run
//! under cargo only; `scripts/localcheck.sh fleet` skips them (the offline
//! stub cannot serialize) and runs the structural ones.

use fiveg_oracle::Oracle;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{run_fleet, run_fleet_observed, FleetSpec, Scenario, ScenarioBuilder, Telemetry};

fn base(seed: u64) -> Scenario {
    ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 4.0, seed).duration_s(60.0).sample_hz(5.0).build()
}

#[test]
fn fleet_trace_is_identical_across_thread_counts() {
    let spec = FleetSpec::new(base(31), 9).keep_traces(true);
    let one = run_fleet(&spec, 1);
    for threads in [2, 4] {
        assert_eq!(one, run_fleet(&spec, threads), "fleet output changed at {threads} threads");
    }
}

#[test]
fn size_one_fleet_reproduces_single_run() {
    let s = base(35);
    let single = s.run();
    let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 2);
    assert_eq!(ft.traces.len(), 1);
    assert_eq!(ft.traces[0], single, "a fleet of one must reproduce the single-UE engine exactly");
    assert_eq!(ft.load.contended_ue_ticks, 0);
}

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts_json() {
    let spec = FleetSpec::new(base(32), 9).keep_traces(true);
    let one = serde_json::to_string(&run_fleet(&spec, 1)).unwrap();
    for threads in [2, 4] {
        let pooled = serde_json::to_string(&run_fleet(&spec, threads)).unwrap();
        assert_eq!(one, pooled, "serialized fleet changed at {threads} threads");
    }
}

#[test]
fn size_one_fleet_is_byte_identical_to_single_run_json() {
    let s = base(33);
    let single = serde_json::to_string(&s.run()).unwrap();
    let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 4);
    assert_eq!(serde_json::to_string(&ft.traces[0]).unwrap(), single);
}

#[test]
fn per_ue_oracles_stay_clean_under_load() {
    // every UE in a contended fleet must still satisfy the cross-layer
    // invariants — load coupling only scales capacity, never the control
    // plane the oracle shadows
    let spec = FleetSpec::new(base(34), 6).stagger_s(5.0);
    let (ft, oracles) =
        run_fleet_observed(&spec, 2, &Telemetry::disabled(), |ue| Oracle::new(spec.base.arch, u64::from(ue)));
    assert_eq!(oracles.len(), 6);
    for (ue, o) in oracles.iter().enumerate() {
        assert!(o.is_clean(), "UE {ue} violated invariants: {:?}", o.violations());
    }
    assert!(ft.meta.ticks > 0);
    assert_eq!(ft.load.peak_active_ues as usize, 6.min(ft.ues.len()));
}
