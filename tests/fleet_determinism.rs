//! The fleet engine's core contract, enforced at the workspace level: the
//! output must not depend on how many workers stepped the UEs, and a fleet
//! of one must be indistinguishable — byte for byte once serialized — from
//! the single-UE engine.
//!
//! Tests with `json` in the name serialize through real `serde_json` and run
//! under cargo only; `scripts/localcheck.sh fleet` skips them (the offline
//! stub cannot serialize) and runs the structural ones.

use fiveg_oracle::Oracle;
use fiveg_ran::{Arch, Carrier, Deployment};
use fiveg_sim::{
    run_fleet, run_fleet_exec, run_fleet_exec_instrumented, EngineMode, FleetExec, FleetSpec, Scenario,
    ScenarioBuilder, ShardMap, Telemetry, TelemetryConfig,
};

fn base(seed: u64) -> Scenario {
    ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 4.0, seed).duration_s(60.0).sample_hz(5.0).build()
}

/// A sleep-eligible base: SA (no SINR-quantity B1 config) on the city loop
/// with an idle workload, so the event-driven scheduler actually parks UEs.
fn quiet_base(seed: u64) -> Scenario {
    ScenarioBuilder::city_loop(Carrier::OpY, seed).arch(Arch::Sa).duration_s(50.0).sample_hz(5.0).build()
}

#[test]
fn fleet_trace_is_identical_across_thread_counts() {
    let spec = FleetSpec::new(base(31), 9).keep_traces(true);
    let one = run_fleet(&spec, 1);
    for threads in [2, 4] {
        assert_eq!(one, run_fleet(&spec, threads), "fleet output changed at {threads} threads");
    }
}

#[test]
fn fleet_trace_is_identical_across_shard_counts() {
    let spec = FleetSpec::new(base(31), 9).keep_traces(true);
    let one = run_fleet_exec(&spec, FleetExec::threads(2).shards(1));
    for shards in [2, 8] {
        let many = run_fleet_exec(&spec, FleetExec::threads(2).shards(shards));
        assert_eq!(one, many, "fleet output changed at {shards} shards");
    }
}

#[test]
fn ue_crosses_shard_boundary_mid_handover() {
    // A handover must survive its UE migrating between shards while the
    // procedure is in flight: the sharded run must (a) actually migrate
    // UEs, (b) contain at least one HO whose decision and completion happen
    // on different shards, and (c) still match the single-shard output
    // byte for byte.
    let spec = FleetSpec::new(base(36), 10).keep_traces(true);
    let tele = Telemetry::new(TelemetryConfig::deterministic());
    let sharded = run_fleet_exec_instrumented(&spec, FleetExec::threads(2).shards(8), &tele);
    assert!(tele.counter_value("fleet.migrations") > 0, "freeway UEs must cross 8 shard bands");

    let s = &spec.base;
    let d = Deployment::generate(&s.route, s.carrier, s.env, s.arch, s.seed);
    let map = ShardMap::new(&d, 8);
    let shard_at = |trace: &fiveg_sim::Trace, t: f64| {
        let p = trace
            .samples
            .iter()
            .min_by(|a, b| (a.t - t).abs().partial_cmp(&(b.t - t).abs()).unwrap())
            .map(|smp| fiveg_geo::Point::new(smp.pos.0, smp.pos.1))
            .expect("trace has samples");
        map.shard_of(&p)
    };
    let crossing = sharded
        .traces
        .iter()
        .flat_map(|tr| tr.handovers.iter().map(move |h| (tr, h)))
        .any(|(tr, h)| shard_at(tr, h.t_decision) != shard_at(tr, h.t_complete));
    assert!(crossing, "expected at least one handover spanning a shard boundary");

    let single = run_fleet_exec(&spec, FleetExec::threads(1).shards(1));
    assert_eq!(single, sharded, "a mid-handover migration must not change the output");
}

#[test]
fn cell_load_shares_sum_correctly_after_boundary_exchange() {
    // The boundary exchange folds shard-local attach counts into the global
    // table; its aggregate statistics must equal what the retained traces
    // imply. With no stagger every UE's sample k happens at global tick k,
    // so the per-tick per-cell attach counts can be rebuilt exactly.
    let spec = FleetSpec::new(base(37), 8).stagger_s(0.0).keep_traces(true);
    let ft = run_fleet_exec(&spec, FleetExec::threads(2).shards(8));

    let n_cells = ft.meta.cells as usize;
    let max_ticks = ft.traces.iter().map(|tr| tr.samples.len()).max().unwrap();
    let (mut attach, mut contended, mut peak) = (0u64, 0u64, 0u32);
    let mut counts = vec![0u32; n_cells];
    for k in 0..max_ticks {
        counts.iter_mut().for_each(|c| *c = 0);
        for tr in &ft.traces {
            if let Some(smp) = tr.samples.get(k) {
                if let Some(c) = smp.lte_cell {
                    counts[c as usize] += 1;
                }
                if let Some(c) = smp.nr_cell {
                    counts[c as usize] += 1;
                }
            }
        }
        for &c in &counts {
            attach += u64::from(c);
            peak = peak.max(c);
            if c >= 2 {
                contended += u64::from(c);
            }
        }
    }
    assert_eq!(ft.load.attach_ue_ticks, attach, "merged attach counts must equal the trace-derived sum");
    assert_eq!(ft.load.contended_ue_ticks, contended);
    assert_eq!(ft.load.peak_cell_ues, peak);
    assert!(contended > 0, "co-routed UEs must actually contend for this oracle to bite");
}

#[test]
fn size_one_fleet_reproduces_single_run() {
    let s = base(35);
    let single = s.run();
    let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 2);
    assert_eq!(ft.traces.len(), 1);
    assert_eq!(ft.traces[0], single, "a fleet of one must reproduce the single-UE engine exactly");
    assert_eq!(ft.load.contended_ue_ticks, 0);
}

#[test]
fn event_driven_fleet_matches_referee_across_geometries() {
    // the FixedScheduled referee steps sleeping UEs with the full control
    // plane (just unsampled), so FleetTrace equality proves every granted
    // sleep window was genuinely inert — at any thread/shard geometry
    let spec = FleetSpec::new(quiet_base(41), 12);
    let referee = run_fleet_exec(&spec, FleetExec::threads(1).shards(1).engine(EngineMode::Referee));
    let sched = referee.sched.as_ref().expect("scheduled mode records a SchedSummary");
    assert!(sched.sleeps > 0, "the quiet fleet must actually sleep or this test is vacuous");
    assert!(sched.skipped_ue_ticks > 0);
    for (threads, shards) in [(1, 1), (2, 4), (4, 8)] {
        let event = run_fleet_exec(&spec, FleetExec::threads(threads).shards(shards).engine(EngineMode::EventDriven));
        assert_eq!(referee, event, "event-driven output diverged at {threads} threads / {shards} shards");
    }
}

#[test]
fn event_driven_matrix_is_byte_identical_across_geometries() {
    // the full worker × shard matrix: every geometry must produce the same
    // FleetTrace bit pattern, scheduler accounting included — a sleep
    // schedule that depends on which shard owns a UE, or on how wakeups
    // interleave with migration, shows up here as a single-cell divergence
    let spec = FleetSpec::new(quiet_base(44), 10);
    let baseline = run_fleet_exec(&spec, FleetExec::threads(1).shards(1).engine(EngineMode::EventDriven));
    assert!(
        baseline.sched.as_ref().is_some_and(|s| s.sleeps > 0 && s.skipped_ue_ticks > 0),
        "the quiet fleet must actually sleep or the matrix is vacuous"
    );
    for threads in [1, 2, 4] {
        for shards in [1, 2, 8] {
            let run = run_fleet_exec(&spec, FleetExec::threads(threads).shards(shards).engine(EngineMode::EventDriven));
            assert_eq!(baseline, run, "event-driven output changed at {threads} threads / {shards} shards");
        }
    }
}

#[test]
fn event_driven_fleet_preserves_fixed_control_plane() {
    // fixed vs event-driven: identical meta, load summary and per-UE
    // control-plane fields; only the data-plane sampling aggregates may
    // differ (sleeping UEs do not sample)
    let spec = FleetSpec::new(quiet_base(42), 10);
    let fixed = run_fleet_exec(&spec, FleetExec::threads(2).shards(4));
    let event = run_fleet_exec(&spec, FleetExec::threads(2).shards(4).engine(EngineMode::EventDriven));
    assert!(fixed.sched.is_none(), "the fixed path must not grow scheduler state");
    assert_eq!(fixed.meta, event.meta);
    assert_eq!(fixed.load, event.load);
    assert_eq!(fixed.ues.len(), event.ues.len());
    for (f, e) in fixed.ues.iter().zip(event.ues.iter()) {
        assert_eq!((f.ue, f.seed, f.start_tick, f.reversed), (e.ue, e.seed, e.start_tick, e.reversed));
        assert_eq!(f.ticks, e.ticks, "UE {} executed a different number of ticks", f.ue);
        assert_eq!(f.traveled_m, e.traveled_m);
        assert_eq!(
            (f.handovers, f.ho_failures, f.rlf_count, f.reports),
            (e.handovers, e.ho_failures, e.rlf_count, e.reports),
            "UE {} control plane diverged under event-driven stepping",
            f.ue
        );
    }
}

#[test]
fn fleet_trace_is_byte_identical_across_thread_counts_json() {
    let spec = FleetSpec::new(base(32), 9).keep_traces(true);
    let one = serde_json::to_string(&run_fleet(&spec, 1)).unwrap();
    for threads in [2, 4] {
        let pooled = serde_json::to_string(&run_fleet(&spec, threads)).unwrap();
        assert_eq!(one, pooled, "serialized fleet changed at {threads} threads");
    }
}

#[test]
fn fleet_trace_is_byte_identical_across_shard_counts_json() {
    let spec = FleetSpec::new(base(32), 9).keep_traces(true);
    let one = serde_json::to_string(&run_fleet_exec(&spec, FleetExec::threads(2).shards(1))).unwrap();
    for shards in [2, 8] {
        let sharded = serde_json::to_string(&run_fleet_exec(&spec, FleetExec::threads(2).shards(shards))).unwrap();
        assert_eq!(one, sharded, "serialized fleet changed at {shards} shards");
    }
}

#[test]
fn event_driven_fleet_is_byte_identical_to_referee_json() {
    let spec = FleetSpec::new(quiet_base(43), 8);
    let referee = run_fleet_exec(&spec, FleetExec::threads(2).shards(1).engine(EngineMode::Referee));
    let event = run_fleet_exec(&spec, FleetExec::threads(2).shards(8).engine(EngineMode::EventDriven));
    assert!(referee.sched.as_ref().is_some_and(|s| s.sleeps > 0), "fleet must sleep for the bytes to mean anything");
    assert_eq!(serde_json::to_string(&referee).unwrap(), serde_json::to_string(&event).unwrap());
}

#[test]
fn size_one_fleet_is_byte_identical_to_single_run_json() {
    let s = base(33);
    let single = serde_json::to_string(&s.run()).unwrap();
    let ft = run_fleet(&FleetSpec::new(s, 1).keep_traces(true), 4);
    assert_eq!(serde_json::to_string(&ft.traces[0]).unwrap(), single);
}

#[test]
fn per_ue_oracles_stay_clean_under_load() {
    // every UE in a contended fleet must still satisfy the cross-layer
    // invariants — load coupling only scales capacity, never the control
    // plane the oracle shadows
    let spec = FleetSpec::new(base(34), 6).stagger_s(5.0);
    let (ft, oracles) =
        fiveg_sim::run_fleet_exec_observed(&spec, FleetExec::threads(2).shards(8), &Telemetry::disabled(), |ue| {
            Oracle::new(spec.base.arch, u64::from(ue))
        });
    assert_eq!(oracles.len(), 6);
    for (ue, o) in oracles.iter().enumerate() {
        assert!(o.is_clean(), "UE {ue} violated invariants: {:?}", o.violations());
    }
    assert!(ft.meta.ticks > 0);
    assert_eq!(ft.load.peak_active_ues as usize, 6.min(ft.ues.len()));
}
