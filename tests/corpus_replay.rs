//! Gating corpus replay: every case under `tests/corpus/` re-runs through
//! both engines under the full oracle on every CI run.
//!
//! The corpus holds hand-picked coverage cases plus every shrunk repro the
//! fuzzer ever wrote (`scenario_fuzz` saves minimal failing cases here) —
//! once a bug is found, its repro gates forever. Reproduce one locally with
//! `cargo run --release --bin scenario_fuzz -- --replay tests/corpus/<case>.toml`.

use fiveg_bench::fuzz::replay_corpus;
use fiveg_oracle::RunOpts;
use std::path::Path;

#[test]
fn corpus_cases_stay_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let outcomes = replay_corpus(&dir, &RunOpts::default()).expect("corpus cases must parse");
    assert!(!outcomes.is_empty(), "corpus directory missing or empty: {}", dir.display());
    for o in &outcomes {
        assert!(
            o.passed(),
            "corpus case {} regressed: divergence={:?} violations={:?}",
            o.label,
            o.result.divergence,
            o.result.violations
        );
    }
}
