//! UE mobility: where is the phone at time `t`?
//!
//! The driver integrates a speed profile over time and maps the accumulated
//! distance onto a [`Polyline`] route. Profiles cover the study's modes:
//! freeway driving (≈constant high speed), city driving (stop-and-go), and
//! the walking loops of datasets D1/D2.

use fiveg_geo::{Point, Polyline};
use serde::{Deserialize, Serialize};

/// A speed profile in m/s as a function of time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedProfile {
    /// Constant speed (freeway cruise, walking).
    Constant {
        /// Speed in m/s.
        mps: f64,
    },
    /// Stop-and-go city driving: sinusoidal speed between 0 and `peak_mps`
    /// with period `period_s`, holding full stops (`stop_s` per cycle).
    StopAndGo {
        /// Peak speed in m/s.
        peak_mps: f64,
        /// Acceleration/deceleration cycle period, s.
        period_s: f64,
        /// Stopped time appended to each cycle (traffic lights), s.
        stop_s: f64,
    },
}

impl SpeedProfile {
    /// Freeway cruise at `kmh` km/h.
    pub fn freeway(kmh: f64) -> Self {
        SpeedProfile::Constant { mps: kmh / 3.6 }
    }

    /// Typical walking pace (~4.7 km/h).
    pub fn walking() -> Self {
        SpeedProfile::Constant { mps: 1.3 }
    }

    /// City driving peaking at `kmh` km/h with ~8 s light stops.
    pub fn city(kmh: f64) -> Self {
        SpeedProfile::StopAndGo { peak_mps: kmh / 3.6, period_s: 45.0, stop_s: 8.0 }
    }

    /// Speed at time `t`, m/s.
    pub fn speed_at(&self, t: f64) -> f64 {
        match *self {
            SpeedProfile::Constant { mps } => mps,
            SpeedProfile::StopAndGo { peak_mps, period_s, stop_s } => {
                let cycle = period_s + stop_s;
                let phase = t.rem_euclid(cycle);
                if phase >= period_s {
                    0.0
                } else {
                    // raised-cosine between 0 and peak
                    let x = phase / period_s * std::f64::consts::TAU;
                    peak_mps * 0.5 * (1.0 - x.cos())
                }
            }
        }
    }

    /// Mean speed of the profile, m/s.
    pub fn mean_mps(&self) -> f64 {
        match *self {
            SpeedProfile::Constant { mps } => mps,
            SpeedProfile::StopAndGo { peak_mps, period_s, stop_s } => {
                // mean of the raised cosine is peak/2, diluted by stops
                peak_mps * 0.5 * period_s / (period_s + stop_s)
            }
        }
    }
}

/// Integrates a [`SpeedProfile`] along a route.
///
/// Stepped rather than closed-form so any profile shape works; steps are
/// the simulation tick, so the integration error is far below the spatial
/// scales that matter (cells are tens of meters at the smallest).
#[derive(Debug, Clone)]
pub struct MobilityDriver {
    route: Polyline,
    profile: SpeedProfile,
    t: f64,
    dist: f64,
}

impl MobilityDriver {
    /// Creates a driver at the start of `route`.
    pub fn new(route: Polyline, profile: SpeedProfile) -> Self {
        Self { route, profile, t: 0.0, dist: 0.0 }
    }

    /// The route being driven.
    pub fn route(&self) -> &Polyline {
        &self.route
    }

    /// Current time, s.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Distance traveled so far, m.
    pub fn distance(&self) -> f64 {
        self.dist
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.route.point_at(self.dist)
    }

    /// Current speed, m/s.
    pub fn speed(&self) -> f64 {
        self.profile.speed_at(self.t)
    }

    /// True once the route is fully traversed.
    pub fn finished(&self) -> bool {
        self.dist >= self.route.length()
    }

    /// Advances by `dt` seconds (midpoint rule on the speed profile).
    pub fn step(&mut self, dt: f64) {
        let v = self.profile.speed_at(self.t + dt / 2.0);
        self.dist = (self.dist + v * dt).min(self.route.length());
        self.t += dt;
    }

    /// Replays `steps` future [`MobilityDriver::step`] calls of `dt` without
    /// mutating the driver, returning `(travel_m, finished)` — the exact
    /// distance the driver will cover and whether it reaches the route end.
    /// Bit-identical to stepping a clone: same midpoint rule, same clamp,
    /// same accumulation order, so schedulers can bound future movement
    /// without risking drift from a closed-form approximation.
    pub fn peek_steps(&self, dt: f64, steps: u64) -> (f64, bool) {
        let mut peek = self.peek();
        for _ in 0..steps {
            peek.step(dt);
        }
        (peek.travel(), peek.finished())
    }

    /// A forward scanner over the driver's future: starts at the current
    /// state and advances tick by tick without mutating (or cloning — the
    /// route stays borrowed) the driver. Each [`MobilityPeek::step`] is
    /// bit-identical to a [`MobilityDriver::step`] on a stepped clone, so a
    /// scheduler can interrogate every intermediate position of a candidate
    /// window, not just its end state.
    pub fn peek(&self) -> MobilityPeek<'_> {
        MobilityPeek { drv: self, t: self.t, dist: self.dist }
    }
}

/// Zero-allocation cursor over a [`MobilityDriver`]'s future steps — see
/// [`MobilityDriver::peek`].
#[derive(Debug, Clone)]
pub struct MobilityPeek<'a> {
    drv: &'a MobilityDriver,
    t: f64,
    dist: f64,
}

impl MobilityPeek<'_> {
    /// Advances the cursor by one future `step(dt)`: same midpoint rule,
    /// same end-of-route clamp, same accumulation order as the driver.
    pub fn step(&mut self, dt: f64) {
        let v = self.drv.profile.speed_at(self.t + dt / 2.0);
        self.dist = (self.dist + v * dt).min(self.drv.route.length());
        self.t += dt;
    }

    /// Position at the cursor.
    pub fn position(&self) -> Point {
        self.drv.route.point_at(self.dist)
    }

    /// Path distance covered between the driver's current state and the
    /// cursor, m.
    pub fn travel(&self) -> f64 {
        self.dist - self.drv.dist
    }

    /// True once the cursor has consumed the whole route.
    pub fn finished(&self) -> bool {
        self.dist >= self.drv.route.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::routes;

    #[test]
    fn constant_profile_integrates_linearly() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 10_000.0);
        let mut d = MobilityDriver::new(route, SpeedProfile::freeway(130.0));
        for _ in 0..(60.0 / 0.05) as usize {
            d.step(0.05);
        }
        // 130 km/h for 60 s ≈ 2166.7 m
        assert!((d.distance() - 2166.7).abs() < 1.0, "{}", d.distance());
    }

    #[test]
    fn stop_and_go_is_slower_than_peak() {
        let p = SpeedProfile::city(50.0);
        let mean = p.mean_mps();
        assert!(mean < 50.0 / 3.6 * 0.6);
        assert!(mean > 2.0);
    }

    #[test]
    fn stop_and_go_actually_stops() {
        let p = SpeedProfile::city(50.0);
        let mut stopped = false;
        for i in 0..1060 {
            if p.speed_at(i as f64 * 0.1) == 0.0 {
                stopped = true;
            }
        }
        assert!(stopped);
    }

    #[test]
    fn numeric_mean_matches_analytic() {
        let p = SpeedProfile::city(60.0);
        let n = 100_000;
        let cycle = 53.0;
        let numeric = (0..n).map(|i| p.speed_at(i as f64 * cycle / n as f64)).sum::<f64>() / n as f64;
        assert!((numeric - p.mean_mps()).abs() < 0.05, "{numeric} vs {}", p.mean_mps());
    }

    #[test]
    fn driver_clamps_at_route_end() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 100.0);
        let mut d = MobilityDriver::new(route, SpeedProfile::freeway(130.0));
        for _ in 0..10_000 {
            d.step(0.05);
        }
        assert!(d.finished());
        assert_eq!(d.distance(), 100.0);
    }

    #[test]
    fn position_follows_route() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 1000.0);
        let mut d = MobilityDriver::new(route, SpeedProfile::walking());
        d.step(10.0);
        let p = d.position();
        assert!((p.x - 13.0).abs() < 0.1);
        assert_eq!(p.y, 0.0);
    }

    #[test]
    fn peek_matches_stepped_clone_exactly() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 2_000.0);
        let mut d = MobilityDriver::new(route, SpeedProfile::city(50.0));
        for i in 0..400u64 {
            let (travel, fin) = d.peek_steps(0.1, 1 + i % 37);
            let mut clone = d.clone();
            for _ in 0..(1 + i % 37) {
                clone.step(0.1);
            }
            assert_eq!(travel, clone.distance() - d.distance(), "step {i}");
            assert_eq!(fin, clone.finished(), "step {i}");
            d.step(0.1);
        }
    }

    #[test]
    fn peek_cursor_matches_stepped_clone_exactly() {
        let route = routes::freeway_leg(Point::ORIGIN, 0.0, 1_500.0);
        let mut d = MobilityDriver::new(route, SpeedProfile::city(40.0));
        for i in 0..300u64 {
            let mut peek = d.peek();
            let mut clone = d.clone();
            for j in 0..40 {
                peek.step(0.1);
                clone.step(0.1);
                assert_eq!(peek.position(), clone.position(), "step {i} sub {j}");
                assert_eq!(peek.travel(), clone.distance() - d.distance(), "step {i} sub {j}");
                assert_eq!(peek.finished(), clone.finished(), "step {i} sub {j}");
            }
            d.step(0.1);
        }
    }

    #[test]
    fn walking_pace_sanity() {
        // a 35-minute walking loop covers ~2.7 km
        let v = SpeedProfile::walking().mean_mps();
        assert!((v * 35.0 * 60.0 - 2730.0).abs() < 100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fiveg_geo::routes;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn distance_is_monotone_and_bounded(
            kmh in 5.0..140.0f64,
            steps in 10usize..2000,
        ) {
            let route = routes::freeway_leg(Point::ORIGIN, 0.0, 5_000.0);
            let mut d = MobilityDriver::new(route, SpeedProfile::freeway(kmh));
            let mut prev = 0.0;
            for _ in 0..steps {
                d.step(0.05);
                prop_assert!(d.distance() >= prev);
                prop_assert!(d.distance() <= 5_000.0);
                prev = d.distance();
            }
        }

        #[test]
        fn stop_and_go_never_reverses(peak in 10.0..100.0f64, t in 0.0..500.0f64) {
            let p = SpeedProfile::city(peak);
            prop_assert!(p.speed_at(t) >= 0.0);
            prop_assert!(p.speed_at(t) <= peak / 3.6 + 1e-9);
        }
    }
}
