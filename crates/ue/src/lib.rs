//! User equipment (UE) model.
//!
//! The study's UEs are Samsung S21U/S20U phones driven around on routes,
//! kept in RRC-connected state with periodic pings, and power-profiled with
//! a Monsoon monitor (§3, §5.3). This crate models those pieces:
//!
//! * [`mobility`] — position/speed along a route over time (driving with
//!   stop-and-go city profiles, constant freeway speed, walking loops);
//! * [`conn`] — RRC connected/idle state with the observed 5 s tail timer
//!   and the keep-alive ping schedule of the energy methodology;
//! * [`power`] — the energy model: baseline draw, per-HO energy (by
//!   architecture and band class, calibrated to §5.3's mAh budgets) and
//!   per-byte data-plane energy (from the throughput–power slopes the paper
//!   takes from Narayanan et al.).

pub mod conn;
pub mod mobility;
pub mod power;

pub use conn::{RrcConnState, PING_INTERVAL_S, RRC_TAIL_S};
pub use mobility::{MobilityDriver, MobilityPeek, SpeedProfile};
pub use power::PowerModel;
