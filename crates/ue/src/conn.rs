//! RRC connection state: connected vs idle, tail timer, keep-alive pings.
//!
//! §5.3's energy methodology: "To keep the UE in RRC connected state, we
//! send a 32-byte ping packet every 5 seconds" — 5 s being "the shortest RRC
//! tail timer observed in our survey". Handovers only happen in connected
//! state, so the keep-alive schedule matters for HO accounting too.

use serde::{Deserialize, Serialize};

/// The RRC tail timer observed in the survey (footnote 2, §5.3), seconds.
pub const RRC_TAIL_S: f64 = 5.0;

/// The keep-alive ping interval used by the energy experiments, seconds.
pub const PING_INTERVAL_S: f64 = 5.0;

/// Connected/idle tracking with a tail timer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrcConnState {
    last_activity: f64,
    tail_s: f64,
    /// Next scheduled keep-alive ping time (None = keep-alive disabled).
    next_ping: Option<f64>,
    pings_sent: u64,
}

impl RrcConnState {
    /// Creates the state with activity at t = 0 and keep-alive enabled.
    pub fn with_keepalive() -> Self {
        Self { last_activity: 0.0, tail_s: RRC_TAIL_S, next_ping: Some(0.0), pings_sent: 0 }
    }

    /// Creates the state without keep-alive (data traffic keeps it alive).
    pub fn new() -> Self {
        Self { last_activity: 0.0, tail_s: RRC_TAIL_S, next_ping: None, pings_sent: 0 }
    }

    /// Notes data activity at time `t` (any tx/rx restarts the tail).
    pub fn on_activity(&mut self, t: f64) {
        if t > self.last_activity {
            self.last_activity = t;
        }
    }

    /// Advances to `t`; returns `true` if a keep-alive ping fires now.
    pub fn step(&mut self, t: f64) -> bool {
        if let Some(next) = self.next_ping {
            if t + 1e-9 >= next {
                self.next_ping = Some(next + PING_INTERVAL_S);
                self.on_activity(t);
                self.pings_sent += 1;
                return true;
            }
        }
        false
    }

    /// True while within the tail of the last activity.
    pub fn is_connected(&self, t: f64) -> bool {
        t - self.last_activity <= self.tail_s + 1e-9
    }

    /// Keep-alive pings sent so far.
    pub fn pings_sent(&self) -> u64 {
        self.pings_sent
    }
}

impl Default for RrcConnState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_never_goes_idle() {
        let mut s = RrcConnState::with_keepalive();
        let mut t = 0.0;
        while t < 60.0 {
            s.step(t);
            assert!(s.is_connected(t), "went idle at {t}");
            t += 0.05;
        }
        // one ping per PING_INTERVAL_S
        assert_eq!(s.pings_sent(), 12 + 1); // fires at 0,5,...,60
    }

    #[test]
    fn no_keepalive_goes_idle_after_tail() {
        let mut s = RrcConnState::new();
        s.on_activity(1.0);
        assert!(s.is_connected(5.9));
        assert!(!s.is_connected(6.1));
    }

    #[test]
    fn activity_restarts_tail() {
        let mut s = RrcConnState::new();
        s.on_activity(0.0);
        s.on_activity(4.0);
        assert!(s.is_connected(8.9));
        assert!(!s.is_connected(9.2));
    }

    #[test]
    fn activity_never_moves_backwards() {
        let mut s = RrcConnState::new();
        s.on_activity(10.0);
        s.on_activity(3.0); // late-arriving stale notification
        assert!(s.is_connected(14.9));
    }

    #[test]
    fn ping_cadence_is_5s() {
        let mut s = RrcConnState::with_keepalive();
        let mut fire_times = Vec::new();
        let mut t = 0.0;
        while t < 21.0 {
            if s.step(t) {
                fire_times.push(t);
            }
            t += 0.01;
        }
        assert_eq!(fire_times.len(), 5); // 0,5,10,15,20
        for w in fire_times.windows(2) {
            assert!((w[1] - w[0] - PING_INTERVAL_S).abs() < 0.02);
        }
    }
}
