//! UE power/energy model (§5.3).
//!
//! The paper measures per-HO power with a Monsoon monitor after subtracting
//! a stationary baseline, then scales by HO frequency to get the headline
//! budgets: **553 NSA low-band HOs/hour at 130 km/h → 34.7 mAh**, 4G → 3.4
//! mAh, mmWave 998 HOs → 81.7 mAh. Two distinct per-HO quantities appear in
//! Fig. 10 and we model both:
//!
//! * the *power* drawn during a HO (W) — NSA 1.2–2.3× LTE; a single mmWave
//!   HO draws ~54% less than a low-band HO thanks to the shorter PRACH;
//! * the *energy* per HO (mAh) — power × the elevated-activity window,
//!   which for mmWave is much longer (beam search/tracking around the HO),
//!   so mmWave still loses per HO and badly per km.
//!
//! The data-plane side uses the throughput–power slopes the paper cites
//! (Narayanan et al., Table 8): 34.7 mAh moves ≈4.3 GB down / 2.0 GB up on
//! NSA low-band, and 81.7 mAh ≈75.4 GB down on mmWave.

use fiveg_radio::BandClass;
use fiveg_ran::{Arch, HandoverRecord, HoCategory};
use serde::{Deserialize, Serialize};

/// Nominal battery voltage used for J ↔ mAh conversion.
pub const BATTERY_V: f64 = 3.85;

/// Converts Joules to mAh at [`BATTERY_V`].
pub fn joules_to_mah(j: f64) -> f64 {
    j / (BATTERY_V * 3.6)
}

/// The calibrated power/energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Screen-on baseline (25% brightness, stationary), W. Subtracted in
    /// all reported results, like the paper's methodology.
    pub baseline_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self { baseline_w: 1.25 }
    }
}

impl PowerModel {
    /// Power drawn (above baseline) during a HO of this kind, W.
    ///
    /// Fig. 10's left axis. LTE ≈ 0.75 W; NSA low-band 0.9–1.7 W depending
    /// on type (both radios are involved); mmWave ≈ 46% of low-band (the
    /// improved mmWave RACH, §5.3).
    pub fn ho_power_w(&self, arch: Arch, band: Option<BandClass>, category: HoCategory) -> f64 {
        let base = match arch {
            Arch::Lte => 0.75,
            Arch::Sa => 0.95,
            Arch::Nsa => match category {
                // 4G-category HOs under NSA touch both radios: priciest
                HoCategory::FourG => 1.70,
                HoCategory::FiveG => 1.35,
            },
        };
        if arch == Arch::Nsa && band == Some(BandClass::MmWave) {
            base * 0.46
        } else {
            base
        }
    }

    /// Length of the elevated-activity window around one HO, s.
    ///
    /// Covers the HO stages plus the measurement/radio-management burst
    /// around them; mmWave pays a long beam-search tail.
    pub fn ho_window_s(&self, arch: Arch, band: Option<BandClass>, duration_s: f64) -> f64 {
        let overhead = match (arch, band) {
            (Arch::Lte, _) => 0.21,
            (Arch::Sa, _) => 0.30,
            (Arch::Nsa, Some(BandClass::MmWave)) => 1.85,
            (Arch::Nsa, _) => 0.51,
        };
        duration_s + overhead
    }

    /// Energy of one handover (above baseline), in Joules.
    pub fn ho_energy_j(&self, rec: &HandoverRecord) -> f64 {
        let p = self.ho_power_w(rec.arch, rec.nr_band, rec.ho_type.category());
        let w = self.ho_window_s(rec.arch, rec.nr_band, rec.duration_ms() / 1000.0);
        p * w
    }

    /// Energy of one handover in mAh.
    pub fn ho_energy_mah(&self, rec: &HandoverRecord) -> f64 {
        joules_to_mah(self.ho_energy_j(rec))
    }

    /// Data-plane energy per downloaded byte, J/B (slope of the
    /// throughput–power curve for the S20U).
    pub fn dl_energy_per_byte(&self, band: BandClass) -> f64 {
        match band {
            // 34.7 mAh ≈ 481 J moves 4.3 GB on NSA low-band
            BandClass::Low => 481.0 / 4.3e9,
            BandClass::Mid => 481.0 / 11.0e9,
            // 81.7 mAh ≈ 1132 J moves 75.4 GB on mmWave
            BandClass::MmWave => 1132.0 / 75.4e9,
        }
    }

    /// Data-plane energy per uploaded byte, J/B.
    pub fn ul_energy_per_byte(&self, band: BandClass) -> f64 {
        match band {
            // 481 J uploads 2.0 GB on low-band
            BandClass::Low => 481.0 / 2.0e9,
            BandClass::Mid => 481.0 / 4.5e9,
            // 1132 J uploads 14.5 GB on mmWave
            BandClass::MmWave => 1132.0 / 14.5e9,
        }
    }

    /// Total data-plane energy in Joules.
    pub fn data_energy_j(&self, band: BandClass, bytes_down: f64, bytes_up: f64) -> f64 {
        bytes_down * self.dl_energy_per_byte(band) + bytes_up * self.ul_energy_per_byte(band)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{HoType, StageSample};

    fn record(ho_type: HoType, arch: Arch, band: Option<BandClass>, total_ms: f64) -> HandoverRecord {
        HandoverRecord {
            ho_type,
            arch,
            nr_band: band,
            t_decision: 0.0,
            t_command: total_ms / 2000.0,
            t_complete: total_ms / 1000.0,
            stages: StageSample { t1_ms: total_ms * 0.41, t2_ms: total_ms * 0.59 },
            source_lte: None,
            source_nr: None,
            target: None,
            co_located: false,
            same_pci: false,
            trigger_phase: vec![],
            interrupts: ho_type.interrupts(),
        }
    }

    #[test]
    fn nsa_ho_power_is_1_2_to_2_3x_lte() {
        let m = PowerModel::default();
        let lte = m.ho_power_w(Arch::Lte, None, HoCategory::FourG);
        for cat in [HoCategory::FourG, HoCategory::FiveG] {
            let nsa = m.ho_power_w(Arch::Nsa, Some(BandClass::Low), cat);
            let r = nsa / lte;
            assert!((1.2..=2.3).contains(&r), "{cat:?}: {r}");
        }
    }

    #[test]
    fn mmwave_ho_power_54pct_lower() {
        let m = PowerModel::default();
        let low = m.ho_power_w(Arch::Nsa, Some(BandClass::Low), HoCategory::FiveG);
        let mm = m.ho_power_w(Arch::Nsa, Some(BandClass::MmWave), HoCategory::FiveG);
        assert!(((low - mm) / low - 0.54).abs() < 0.01);
    }

    #[test]
    fn hourly_budget_low_band_near_34_7_mah() {
        // §5.3: 553 NSA low-band HOs ≈ 34.7 mAh.
        let m = PowerModel::default();
        let per_ho = m.ho_energy_mah(&record(HoType::Scga, Arch::Nsa, Some(BandClass::Low), 167.0));
        let total = 553.0 * per_ho;
        assert!((total - 34.7).abs() < 6.0, "NSA low budget {total}");
    }

    #[test]
    fn hourly_budget_lte_near_3_4_mah() {
        // 130 km at a HO per 0.6 km ≈ 217 LTE HOs ≈ 3.4 mAh.
        let m = PowerModel::default();
        let per_ho = m.ho_energy_mah(&record(HoType::Lteh, Arch::Lte, None, 76.0));
        let total = 217.0 * per_ho;
        assert!((total - 3.4).abs() < 1.3, "LTE budget {total}");
    }

    #[test]
    fn hourly_budget_mmwave_near_81_7_mah() {
        let m = PowerModel::default();
        let per_ho = m.ho_energy_mah(&record(HoType::Scgm, Arch::Nsa, Some(BandClass::MmWave), 210.0));
        let total = 998.0 * per_ho;
        assert!((total - 81.7).abs() < 14.0, "mmWave budget {total}");
    }

    #[test]
    fn data_budgets_match_paper() {
        let m = PowerModel::default();
        // 4.3 GB down on low-band should cost ≈ 34.7 mAh
        let j = m.data_energy_j(BandClass::Low, 4.3e9, 0.0);
        assert!((joules_to_mah(j) - 34.7).abs() < 0.5);
        // 75.4 GB down on mmWave ≈ 81.7 mAh
        let j = m.data_energy_j(BandClass::MmWave, 75.4e9, 0.0);
        assert!((joules_to_mah(j) - 81.7).abs() < 1.0);
        // 2.0 GB up on low-band ≈ 34.7 mAh
        let j = m.data_energy_j(BandClass::Low, 0.0, 2.0e9);
        assert!((joules_to_mah(j) - 34.7).abs() < 0.5);
    }

    #[test]
    fn upload_costs_more_per_byte_than_download() {
        let m = PowerModel::default();
        for b in [BandClass::Low, BandClass::Mid, BandClass::MmWave] {
            assert!(m.ul_energy_per_byte(b) > m.dl_energy_per_byte(b));
        }
    }

    #[test]
    fn joules_mah_round_trip() {
        let mah = 10.0;
        let j = mah * BATTERY_V * 3.6;
        assert!((joules_to_mah(j) - mah).abs() < 1e-12);
    }

    #[test]
    fn mmwave_energy_per_ho_exceeds_low_band_despite_lower_power() {
        // the Fig. 10 tension: lower power but longer window
        let m = PowerModel::default();
        let low = m.ho_energy_j(&record(HoType::Scgm, Arch::Nsa, Some(BandClass::Low), 167.0));
        let mm = m.ho_energy_j(&record(HoType::Scgm, Arch::Nsa, Some(BandClass::MmWave), 210.0));
        assert!(mm > low, "mm {mm} vs low {low}");
    }
}
