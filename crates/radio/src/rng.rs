//! Deterministic pseudo-random number generator.
//!
//! Scenario reproducibility is a hard requirement: every experiment in the
//! paper is replayed from its seed, and `rand`'s default generators do not
//! guarantee stream stability across versions. `DetRng` is a self-contained
//! xoshiro256** (seeded via SplitMix64) whose output is fixed forever by
//! this crate, used everywhere the simulator needs sequential draws
//! (deployment jitter, HO stage durations, workload generation).

/// SplitMix64 step, used for seeding and one-shot hashing.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a pair of values into a u64 — handy for keyed sub-seeds
/// (`hash2(scenario_seed, cell_id)`).
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F))
}

/// A deterministic xoshiro256** stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = splitmix64(z);
            *slot = z;
        }
        Self { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Returns 0 for `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller.
    pub fn gauss(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-15);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gauss()
    }

    /// Log-normal draw parameterized by the *target* mean and the sigma of
    /// the underlying normal (shape). Used for HO stage durations, which are
    /// positive and right-skewed in the measurements.
    pub fn lognormal_mean(&mut self, mean: f64, shape_sigma: f64) -> f64 {
        // E[lognormal(mu, s)] = exp(mu + s^2/2) => mu = ln(mean) - s^2/2
        let mu = mean.max(1e-9).ln() - shape_sigma * shape_sigma / 2.0;
        (mu + shape_sigma * self.gauss()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = DetRng::new(11);
        let mean = (0..20_000).map(|_| r.uniform()).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn gauss_moments() {
        let mut r = DetRng::new(13);
        let n = 30_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "{mean}");
        assert!((var - 1.0).abs() < 0.05, "{var}");
    }

    #[test]
    fn lognormal_hits_target_mean() {
        let mut r = DetRng::new(17);
        let n = 50_000;
        let target = 167.0;
        let mean = (0..n).map(|_| r.lognormal_mean(target, 0.4)).sum::<f64>() / n as f64;
        assert!((mean - target).abs() < target * 0.03, "{mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = DetRng::new(19);
        for _ in 0..1000 {
            assert!(r.lognormal_mean(50.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn below_bounds() {
        let mut r = DetRng::new(23);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn hash2_differs_by_key() {
        assert_ne!(hash2(1, 2), hash2(1, 3));
        assert_ne!(hash2(1, 2), hash2(2, 2));
        assert_eq!(hash2(5, 9), hash2(5, 9));
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(29);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
