//! Radio substrate for the 5G mobility simulator.
//!
//! The paper's measurements hinge on radio signal quality indicators — RSRP,
//! RSRQ, SINR, collectively "RRS" (§2) — observed by the UE per cell. This
//! crate reproduces the physical layer that generates them:
//!
//! * [`band`] — LTE and 5G-NR frequency bands grouped into the paper's
//!   low/mid/mmWave classes, with per-class bandwidth and coverage behaviour.
//! * [`noise`] — deterministic hash-based value noise: spatially correlated
//!   log-normal shadowing and temporally correlated fast fading, reproducible
//!   from a seed (no per-link mutable state).
//! * [`propagation`] — 3GPP-flavoured log-distance path loss with a frequency
//!   term, shadowing, fading and mmWave blockage.
//! * [`rrs`] — the RRS triple and its computation from received powers.
//! * [`smoothing`] — the triangular-kernel signal smoother the paper cites
//!   (\[46\], Long & Sikdar) plus ordinary-least-squares series extrapolation,
//!   the two ingredients of Prognos's RRS predictor.
//! * [`capacity`] — truncated-Shannon SINR→throughput mapping per band.

pub mod band;
pub mod capacity;
pub mod noise;
pub mod propagation;
pub mod rng;
pub mod rrs;
pub mod smoothing;

pub use band::{Band, BandClass};
pub use capacity::shannon_capacity_mbps;
pub use noise::{LatticeCache, NodeCache, SpatialNoise, TemporalNoise};
pub use propagation::{ChannelCache, PathLoss, Propagation};
pub use rng::{hash2, DetRng};
pub use rrs::{combine_dbm, compute_rrs, compute_rrs_with_mw, Rrs, NOISE_FLOOR_DBM};
pub use smoothing::{linear_fit, predict_at, triangular_smooth, LinearFit};
