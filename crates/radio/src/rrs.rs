//! RRS: the RSRP/RSRQ/SINR triple (§2).
//!
//! "Carriers use multiple radio signal quality indicators such as RSRP, RSRQ,
//! SINR ... We refer to these radio quality indicators as RRS for the rest of
//! the paper." Measurement events (Table 4) trigger on these values, so the
//! whole HO pipeline starts here.

use serde::{Deserialize, Serialize};

/// Thermal noise floor for a ~20 MHz channel at the UE, in dBm.
pub const NOISE_FLOOR_DBM: f64 = -100.0;

/// A radio-quality sample for one cell as seen by the UE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rrs {
    /// Reference Signal Received Power, dBm. Typical range [-140, -44].
    pub rsrp_dbm: f64,
    /// Reference Signal Received Quality, dB. Typical range [-20, -3].
    pub rsrq_db: f64,
    /// Signal to Interference & Noise Ratio, dB.
    pub sinr_db: f64,
}

impl Rrs {
    /// A placeholder for "cell not measurable" (below UE sensitivity).
    pub const OUT_OF_RANGE: Rrs = Rrs { rsrp_dbm: -140.0, rsrq_db: -20.0, sinr_db: -20.0 };

    /// True when the cell is strong enough to be detected at all.
    pub fn detectable(&self) -> bool {
        self.rsrp_dbm > -125.0
    }
}

/// Converts dBm to milliwatts.
#[inline]
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm (clamped away from -inf).
#[inline]
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.max(1e-30).log10()
}

/// Power-sum of dBm values: `10 log10(sum(10^(x/10)))`.
pub fn combine_dbm(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NEG_INFINITY;
    }
    mw_to_dbm(values.iter().copied().map(dbm_to_mw).sum())
}

/// Computes the RRS triple for a serving (or candidate) cell.
///
/// * `serving_dbm` — received power of the measured cell;
/// * `interferers_dbm` — received powers of co-channel neighbor cells;
/// * `noise_dbm` — receiver noise floor.
///
/// SINR is the literal ratio; RSRQ follows the LTE definition shape
/// `N * RSRP / RSSI` collapsed to `RSRP - RSSI` in dB with a -3 dB offset for
/// the serving cell's own contribution to RSSI.
pub fn compute_rrs(serving_dbm: f64, interferers_dbm: &[f64], noise_dbm: f64) -> Rrs {
    let i: f64 = interferers_dbm.iter().copied().map(dbm_to_mw).sum();
    compute_rrs_with_mw(serving_dbm, i, noise_dbm)
}

/// [`compute_rrs`] with the interference already power-summed in milliwatts.
///
/// Hot-path variant: a caller maintaining a per-candidate interference table
/// can accumulate `dbm_to_mw` terms itself and skip the slice round-trip.
/// `compute_rrs` delegates here, so the two are result-identical as long as
/// the caller sums terms in the same order the slice would.
pub fn compute_rrs_with_mw(serving_dbm: f64, interference_mw: f64, noise_dbm: f64) -> Rrs {
    let s = dbm_to_mw(serving_dbm);
    let i = interference_mw;
    let n = dbm_to_mw(noise_dbm);
    let sinr_db = 10.0 * (s / (i + n)).log10();
    let rssi_dbm = mw_to_dbm(s + i + n);
    let rsrq_db = (serving_dbm - rssi_dbm - 3.0).clamp(-20.0, -3.0);
    Rrs { rsrp_dbm: serving_dbm.clamp(-140.0, -44.0), rsrq_db, sinr_db: sinr_db.clamp(-20.0, 40.0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_dbm_of_equal_powers_adds_3db() {
        let c = combine_dbm(&[-100.0, -100.0]);
        assert!((c - -96.99).abs() < 0.02, "{c}");
    }

    #[test]
    fn combine_dbm_empty_is_neg_inf() {
        assert_eq!(combine_dbm(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn combine_dbm_dominated_by_strongest() {
        let c = combine_dbm(&[-60.0, -100.0]);
        assert!((c - -60.0).abs() < 0.01);
    }

    #[test]
    fn sinr_without_interference_is_snr() {
        let r = compute_rrs(-80.0, &[], -100.0);
        assert!((r.sinr_db - 20.0).abs() < 1e-9);
    }

    #[test]
    fn interference_reduces_sinr_and_rsrq() {
        let clean = compute_rrs(-80.0, &[], -100.0);
        let dirty = compute_rrs(-80.0, &[-85.0], -100.0);
        assert!(dirty.sinr_db < clean.sinr_db);
        assert!(dirty.rsrq_db < clean.rsrq_db);
        assert_eq!(dirty.rsrp_dbm, clean.rsrp_dbm);
    }

    #[test]
    fn rsrp_is_clamped_to_3gpp_range() {
        assert_eq!(compute_rrs(-200.0, &[], -100.0).rsrp_dbm, -140.0);
        assert_eq!(compute_rrs(0.0, &[], -100.0).rsrp_dbm, -44.0);
    }

    #[test]
    fn detectable_threshold() {
        assert!(compute_rrs(-90.0, &[], -100.0).detectable());
        assert!(!Rrs::OUT_OF_RANGE.detectable());
    }

    #[test]
    fn mw_dbm_round_trip() {
        for x in [-120.0, -90.0, -44.0, 0.0] {
            assert!((mw_to_dbm(dbm_to_mw(x)) - x).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn sinr_monotone_in_serving_power(
            s in -130.0..-50.0f64,
            bump in 0.1..20.0f64,
            i in -130.0..-60.0f64,
        ) {
            let a = compute_rrs(s, &[i], NOISE_FLOOR_DBM);
            let b = compute_rrs(s + bump, &[i], NOISE_FLOOR_DBM);
            prop_assert!(b.sinr_db >= a.sinr_db);
        }

        #[test]
        fn more_interferers_never_help(
            s in -110.0..-60.0f64,
            i1 in -120.0..-70.0f64,
            i2 in -120.0..-70.0f64,
        ) {
            let one = compute_rrs(s, &[i1], NOISE_FLOOR_DBM);
            let two = compute_rrs(s, &[i1, i2], NOISE_FLOOR_DBM);
            prop_assert!(two.sinr_db <= one.sinr_db);
            prop_assert!(two.rsrq_db <= one.rsrq_db);
        }

        #[test]
        fn combine_dbm_ge_max_input(vals in proptest::collection::vec(-130.0..-40.0f64, 1..8)) {
            let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(combine_dbm(&vals) >= max - 1e-9);
        }
    }
}
