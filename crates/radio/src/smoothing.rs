//! Signal smoothing and short-horizon extrapolation.
//!
//! Prognos's report predictor (§7.2) feeds "RRS values in the last history
//! window ... into a linear regression model" after "a triangular
//! kernel-based method \[46\] is used for signal smoothing in order to
//! eliminate the variations caused by small scale fading and measurement
//! noise". Both primitives live here so that the sim, analysis and Prognos
//! share one implementation.

use serde::{Deserialize, Serialize};

/// Smooths `series` with a triangular (Bartlett) kernel of half-width
/// `half_width` samples.
///
/// Sample `i` is replaced by the weighted mean of its neighbours with weights
/// `1 - |j| / (half_width + 1)`; the window is truncated at the series edges.
/// A `half_width` of 0 returns the input unchanged.
pub fn triangular_smooth(series: &[f64], half_width: usize) -> Vec<f64> {
    if half_width == 0 || series.len() <= 1 {
        return series.to_vec();
    }
    let hw = half_width as isize;
    let n = series.len() as isize;
    let mut out = Vec::with_capacity(series.len());
    for i in 0..n {
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for j in -hw..=hw {
            let k = i + j;
            if k < 0 || k >= n {
                continue;
            }
            let w = 1.0 - (j.unsigned_abs() as f64) / (hw as f64 + 1.0);
            acc += w * series[k as usize];
            wsum += w;
        }
        out.push(acc / wsum);
    }
    out
}

/// Result of an ordinary-least-squares line fit `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Intercept at x = 0.
    pub intercept: f64,
    /// Slope per unit x.
    pub slope: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits a least-squares line through `(x[i], y[i])`.
///
/// Returns a flat line through the mean when the x values are degenerate
/// (all equal or fewer than 2 points), which is the right behaviour for
/// signal prediction: with no trend information, predict persistence.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return LinearFit { intercept: 0.0, slope: 0.0 };
    }
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx < 1e-12 {
        return LinearFit { intercept: mean_y, slope: 0.0 };
    }
    let slope = sxy / sxx;
    LinearFit { intercept: mean_y - slope * mean_x, slope }
}

/// Convenience: smooth a uniformly sampled history window and predict the
/// value `horizon` samples past its end.
///
/// This is exactly the report predictor's RRS forecast: triangular smoothing
/// followed by linear extrapolation.
pub fn predict_at(series: &[f64], half_width: usize, horizon: f64) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let smoothed = triangular_smooth(series, half_width);
    let xs: Vec<f64> = (0..smoothed.len()).map(|i| i as f64).collect();
    let fit = linear_fit(&xs, &smoothed);
    fit.at((series.len() - 1) as f64 + horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_preserves_constant_series() {
        let s = vec![5.0; 20];
        assert_eq!(triangular_smooth(&s, 3), s);
    }

    #[test]
    fn smoothing_zero_width_is_identity() {
        let s = vec![1.0, -2.0, 3.0];
        assert_eq!(triangular_smooth(&s, 0), s);
    }

    #[test]
    fn smoothing_reduces_noise_variance() {
        // alternating +/-1 noise around 0
        let s: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let sm = triangular_smooth(&s, 4);
        let var = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        assert!(var(&sm) < var(&s) / 4.0);
    }

    #[test]
    fn smoothing_preserves_linear_trend_interior() {
        let s: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        let sm = triangular_smooth(&s, 3);
        for i in 5..45 {
            assert!((sm[i] - s[i]).abs() < 1e-9, "interior point {i} distorted");
        }
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 0.5 * x).collect();
        let f = linear_fit(&xs, &ys);
        assert!((f.intercept - 3.0).abs() < 1e-9);
        assert!((f.slope + 0.5).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_x_returns_mean() {
        let f = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 3.0, 5.0]);
        assert_eq!(f.slope, 0.0);
        assert!((f.intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_empty_is_zero() {
        let f = linear_fit(&[], &[]);
        assert_eq!(f.at(100.0), 0.0);
    }

    #[test]
    fn predict_extrapolates_declining_signal() {
        // RSRP declining 0.2 dB per sample — the classic approach-to-HO ramp.
        let s: Vec<f64> = (0..20).map(|i| -90.0 - 0.2 * i as f64).collect();
        let p = predict_at(&s, 2, 10.0);
        let expect = -90.0 - 0.2 * 29.0;
        assert!((p - expect).abs() < 0.3, "{p} vs {expect}");
    }

    #[test]
    fn predict_on_noisy_trend_is_close() {
        let s: Vec<f64> = (0..40).map(|i| -85.0 - 0.3 * i as f64 + if i % 2 == 0 { 1.5 } else { -1.5 }).collect();
        let p = predict_at(&s, 3, 5.0);
        let expect = -85.0 - 0.3 * 44.0;
        assert!((p - expect).abs() < 1.5, "{p} vs {expect}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn smoothing_output_within_input_range(
            s in proptest::collection::vec(-140.0..-40.0f64, 1..60),
            hw in 0usize..6,
        ) {
            let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in triangular_smooth(&s, hw) {
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }

        #[test]
        fn smoothing_preserves_length(
            s in proptest::collection::vec(-140.0..-40.0f64, 0..60),
            hw in 0usize..6,
        ) {
            prop_assert_eq!(triangular_smooth(&s, hw).len(), s.len());
        }

        #[test]
        fn fit_residuals_orthogonal_to_x(
            ys in proptest::collection::vec(-100.0..100.0f64, 2..30),
        ) {
            let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
            let f = linear_fit(&xs, &ys);
            let dot: f64 = xs.iter().zip(&ys).map(|(x, y)| (y - f.at(*x)) * x).sum();
            prop_assert!(dot.abs() < 1e-6 * ys.len() as f64 * 100.0);
        }
    }
}
