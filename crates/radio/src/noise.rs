//! Deterministic correlated noise fields.
//!
//! Real drive-test signal traces show two stochastic layers on top of path
//! loss: **shadowing** (log-normal, spatially correlated over tens of
//! meters — buildings, terrain) and **fast fading** (temporally correlated
//! over tens of milliseconds). Reproducing them with mutable per-link RNG
//! state would make signal strength depend on evaluation order; instead both
//! are *pure functions* of (seed, position/time) built from hash-based value
//! noise, so any component can query the channel at any point and always get
//! the same answer. This is what makes the whole simulation deterministic
//! and replayable.

use fiveg_geo::Point;
use serde::{Deserialize, Serialize};

/// SplitMix64: the 64-bit finalizer used as our lattice hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a tuple of integers into a uniform f64 in [0, 1).
#[inline]
fn hash_uniform(seed: u64, a: i64, b: i64, salt: u64) -> f64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ (a as u64).wrapping_mul(0x9E3779B97F4A7C15));
    h = splitmix64(h ^ (b as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
    // 53 random mantissa bits -> uniform in [0,1)
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal value at a lattice point, via Box–Muller on two hashes.
#[inline]
fn hash_gaussian(seed: u64, a: i64, b: i64) -> f64 {
    let u1 = hash_uniform(seed, a, b, 0x5bf0_3635).max(1e-12);
    let u2 = hash_uniform(seed, a, b, 0x94d0_49bb);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Smoothstep interpolation weight.
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Memoized lattice corners of one [`SpatialNoise`] field.
///
/// The four corner gaussians of the bilinear blend depend only on which
/// lattice cell the query point falls in, and a UE moving at vehicular speed
/// stays inside one shadowing lattice cell (tens of meters) for many
/// consecutive ticks. A cache holds the corners of the last lattice cell
/// visited; [`SpatialNoise::sample_cached`] recomputes them only when the
/// query crosses into a new cell. Values are memoized, never approximated:
/// a cached sample is bit-identical to [`SpatialNoise::sample`].
///
/// A cache is only valid for the *one* field it has been fed to — reusing it
/// across different `SpatialNoise` instances returns wrong values whenever
/// the lattice keys collide. Keep one cache per (field, receiver) pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatticeCache {
    key: Option<(i64, i64)>,
    v00: f64,
    v10: f64,
    v01: f64,
    v11: f64,
    /// Separate key/value pair for [`SpatialNoise::sample_uniform_cell_cached`]
    /// (blockage lookups use a different salt and no interpolation).
    ukey: Option<(i64, i64)>,
    uval: f64,
}

/// Spatially correlated Gaussian field with a given correlation length,
/// standard deviation and zero mean.
///
/// Implemented as value noise: i.i.d. standard normals on a square lattice
/// of spacing `corr_len`, bilinearly blended with smoothstep weights. Two
/// positions closer than the correlation length see similar values; positions
/// farther apart are effectively independent, matching the standard
/// exponential-decorrelation model of log-normal shadowing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpatialNoise {
    seed: u64,
    corr_len: f64,
    sigma: f64,
}

impl SpatialNoise {
    /// Creates a field with decorrelation distance `corr_len` meters and
    /// standard deviation `sigma` (dB for shadowing).
    pub fn new(seed: u64, corr_len: f64, sigma: f64) -> Self {
        assert!(corr_len > 0.0, "correlation length must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { seed, corr_len, sigma }
    }

    /// Samples the field at `p`.
    pub fn sample(&self, p: &Point) -> f64 {
        let mut scratch = LatticeCache::default();
        self.sample_cached(p, &mut scratch)
    }

    /// Samples the field at `p`, memoizing the lattice-corner gaussians in
    /// `cache`. Bit-identical to [`SpatialNoise::sample`]; the cache must be
    /// dedicated to this field (see [`LatticeCache`]).
    pub fn sample_cached(&self, p: &Point, cache: &mut LatticeCache) -> f64 {
        let gx = p.x / self.corr_len;
        let gy = p.y / self.corr_len;
        let x0 = gx.floor() as i64;
        let y0 = gy.floor() as i64;
        if cache.key != Some((x0, y0)) {
            cache.v00 = hash_gaussian(self.seed, x0, y0);
            cache.v10 = hash_gaussian(self.seed, x0 + 1, y0);
            cache.v01 = hash_gaussian(self.seed, x0, y0 + 1);
            cache.v11 = hash_gaussian(self.seed, x0 + 1, y0 + 1);
            cache.key = Some((x0, y0));
        }
        let tx = smooth(gx - gx.floor());
        let ty = smooth(gy - gy.floor());
        let a = cache.v00 + (cache.v10 - cache.v00) * tx;
        let b = cache.v01 + (cache.v11 - cache.v01) * tx;
        // Bilinear blending of unit normals shrinks variance away from the
        // lattice corners (to 0.5 at the cell center); 1.2 restores sigma
        // on average over a cell.
        self.sigma * 1.2 * (a + (b - a) * ty)
    }

    /// Tight `(min, max)` of the field over the axis-aligned box of
    /// half-width `reach_m` centered at `p`.
    ///
    /// A sample is `sigma * 1.2 *` a bilinear blend of the four corner
    /// gaussians of its lattice cell, in *smoothstepped* local coordinates.
    /// Within one cell the blend is bilinear in `(s(tx), s(ty))`, and a
    /// bilinear function over an axis-aligned rectangle attains its
    /// extremes at the rectangle's corners; smoothstep is monotone, so
    /// clamping the box to the cell in raw coordinates and evaluating the
    /// blend at the four clamped corners yields the cell's exact extremes
    /// over the box. The box range is the extreme of that over every cell
    /// the box intersects — so a sub-meter box inside one 50 m lattice cell
    /// costs the local field variation (fractions of a dB), not the whole
    /// cell's corner spread. That tightness is what lets a sleep planner
    /// find positive margins at vehicular travel distances at all. The
    /// corner evaluations reuse the arithmetic of [`SpatialNoise::sample`]
    /// term for term, so the bound and the samples can only disagree by
    /// interior-point rounding (well under any sane margin epsilon).
    pub fn range_over_box(&self, p: &Point, reach_m: f64) -> (f64, f64) {
        let bx_lo = (p.x - reach_m) / self.corr_len;
        let bx_hi = (p.x + reach_m) / self.corr_len;
        let by_lo = (p.y - reach_m) / self.corr_len;
        let by_hi = (p.y + reach_m) / self.corr_len;
        let mut g_min = f64::INFINITY;
        let mut g_max = f64::NEG_INFINITY;
        for cx in bx_lo.floor() as i64..=bx_hi.floor() as i64 {
            for cy in by_lo.floor() as i64..=by_hi.floor() as i64 {
                let v00 = hash_gaussian(self.seed, cx, cy);
                let v10 = hash_gaussian(self.seed, cx + 1, cy);
                let v01 = hash_gaussian(self.seed, cx, cy + 1);
                let v11 = hash_gaussian(self.seed, cx + 1, cy + 1);
                // the box clamped to this cell, in smoothstepped local
                // coordinates — same `g - floor` subtraction as sample()
                let sx = [smooth((bx_lo - cx as f64).clamp(0.0, 1.0)), smooth((bx_hi - cx as f64).clamp(0.0, 1.0))];
                let sy = [smooth((by_lo - cy as f64).clamp(0.0, 1.0)), smooth((by_hi - cy as f64).clamp(0.0, 1.0))];
                for &tx in &sx {
                    for &ty in &sy {
                        let a = v00 + (v10 - v00) * tx;
                        let b = v01 + (v11 - v01) * tx;
                        let v = a + (b - a) * ty;
                        g_min = g_min.min(v);
                        g_max = g_max.max(v);
                    }
                }
            }
        }
        (self.sigma * 1.2 * g_min, self.sigma * 1.2 * g_max)
    }

    /// Sound upper bound on the field anywhere in the axis-aligned rectangle
    /// `[x0, x1] × [y0, y1]`: every sample is a convex combination of its
    /// lattice cell's four corner gaussians, so the field's supremum is at
    /// most the maximum corner gaussian of the rectangle's lattice cover.
    /// One hash per covered corner — meant to be computed once per field
    /// over a deployment-sized region and memoized, giving schedulers an
    /// O(1) screen that dominates [`SpatialNoise::range_over_box`] without
    /// touching the lattice per query.
    pub fn sup_over_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        let cx0 = (x0 / self.corr_len).floor() as i64;
        let cx1 = (x1 / self.corr_len).floor() as i64 + 1;
        let cy0 = (y0 / self.corr_len).floor() as i64;
        let cy1 = (y1 / self.corr_len).floor() as i64 + 1;
        let mut g_max = f64::NEG_INFINITY;
        for x in cx0..=cx1 {
            for y in cy0..=cy1 {
                g_max = g_max.max(hash_gaussian(self.seed, x, y));
            }
        }
        self.sigma * 1.2 * g_max
    }

    /// `(min, max)` of the per-lattice-cell uniform draw over the
    /// axis-aligned box of half-width `reach_m` centered at `p` — the
    /// threshold-field analogue of [`SpatialNoise::range_over_box`].
    ///
    /// **Exact**, not merely conservative: [`SpatialNoise::sample_uniform_cell`]
    /// is piecewise constant per lattice cell (no interpolation), so the
    /// extremes over the box are exactly the extremes over the cells the
    /// box intersects — no `+1` corner row is needed. This is what lets a
    /// sleep planner decide blockage over a travel window precisely: a box
    /// whose every cell draws above the blockage probability provably never
    /// blocks, one whose every cell draws below it provably always does.
    pub fn uniform_cell_range_over_box(&self, p: &Point, reach_m: f64) -> (f64, f64) {
        let x_lo = ((p.x - reach_m) / self.corr_len).floor() as i64;
        let x_hi = ((p.x + reach_m) / self.corr_len).floor() as i64;
        let y_lo = ((p.y - reach_m) / self.corr_len).floor() as i64;
        let y_hi = ((p.y + reach_m) / self.corr_len).floor() as i64;
        let mut u_min = f64::INFINITY;
        let mut u_max = f64::NEG_INFINITY;
        for x in x_lo..=x_hi {
            for y in y_lo..=y_hi {
                let u = hash_uniform(self.seed, x, y, 0xb10c_4a6e);
                u_min = u_min.min(u);
                u_max = u_max.max(u);
            }
        }
        (u_min, u_max)
    }

    /// Uniform sample in `[0, 1)` at `p` with no interpolation — used for
    /// threshold events such as mmWave blockage.
    pub fn sample_uniform_cell(&self, p: &Point) -> f64 {
        let x0 = (p.x / self.corr_len).floor() as i64;
        let y0 = (p.y / self.corr_len).floor() as i64;
        hash_uniform(self.seed, x0, y0, 0xb10c_4a6e)
    }

    /// [`SpatialNoise::sample_uniform_cell`] with the per-lattice-cell hash
    /// memoized in `cache`; bit-identical, same cache contract.
    pub fn sample_uniform_cell_cached(&self, p: &Point, cache: &mut LatticeCache) -> f64 {
        let x0 = (p.x / self.corr_len).floor() as i64;
        let y0 = (p.y / self.corr_len).floor() as i64;
        if cache.ukey != Some((x0, y0)) {
            cache.uval = hash_uniform(self.seed, x0, y0, 0xb10c_4a6e);
            cache.ukey = Some((x0, y0));
        }
        cache.uval
    }
}

/// Ring memo for one [`TemporalNoise`] process's node gaussians.
///
/// A node value is a pure function of `(seed, index)`, so it is shared by
/// every sample whose interpolation window touches it — across receivers,
/// across queries, across time. The memo is a direct-mapped ring keyed by
/// the absolute node index: hits cost two loads, misses recompute the one
/// Box–Muller draw and overwrite the slot, so memory stays bounded no
/// matter how far the process is scanned. Values are memoized, never
/// approximated: a cached sample is bit-identical to
/// [`TemporalNoise::sample`].
///
/// Like [`LatticeCache`], a cache belongs to *one* process — reusing it
/// across different `TemporalNoise` instances returns wrong values whenever
/// node indices collide. Keep one cache per process.
#[derive(Debug, Clone, Default)]
pub struct NodeCache {
    key: Vec<i64>,
    val: Vec<f64>,
}

/// Slots in a [`NodeCache`] ring (power of two). At the 50 ms fading
/// correlation time this spans ~51 s of process history — comfortably more
/// than any planning window plus fleet spawn stagger, so steady-state scans
/// almost never evict a node they still need.
const NODE_CACHE_SLOTS: usize = 1024;

impl NodeCache {
    /// The node gaussian at absolute index `i`, memoized.
    #[inline]
    fn node(&mut self, seed: u64, i: i64) -> f64 {
        if self.key.is_empty() {
            self.key = vec![i64::MIN; NODE_CACHE_SLOTS];
            self.val = vec![0.0; NODE_CACHE_SLOTS];
        }
        let s = (i & (NODE_CACHE_SLOTS as i64 - 1)) as usize;
        if self.key[s] != i {
            self.key[s] = i;
            self.val[s] = hash_gaussian(seed, i, 0);
        }
        self.val[s]
    }
}

/// Temporally correlated Gaussian process: value noise over the time axis.
///
/// Used for fast fading (correlation time tens of ms) and any other
/// time-varying perturbation that must be reproducible.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TemporalNoise {
    seed: u64,
    corr_s: f64,
    sigma: f64,
}

impl TemporalNoise {
    /// Creates a process with correlation time `corr_s` seconds and standard
    /// deviation `sigma`.
    pub fn new(seed: u64, corr_s: f64, sigma: f64) -> Self {
        assert!(corr_s > 0.0, "correlation time must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { seed, corr_s, sigma }
    }

    /// Samples the process at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        let g = t / self.corr_s;
        let i0 = g.floor() as i64;
        let tt = smooth(g - g.floor());
        let v0 = hash_gaussian(self.seed, i0, 0);
        let v1 = hash_gaussian(self.seed, i0 + 1, 0);
        self.sigma * (v0 + (v1 - v0) * tt)
    }

    /// Conservative `(min, max)` of the process over `[t0, t1]`.
    ///
    /// Between nodes the process is a convex blend of two adjacent node
    /// gaussians, so the window extreme is the extreme over every node the
    /// window touches (`floor(t0/corr)` through `floor(t1/corr) + 1`).
    pub fn range_over(&self, t0: f64, t1: f64) -> (f64, f64) {
        let i_lo = (t0 / self.corr_s).floor() as i64;
        let i_hi = (t1 / self.corr_s).floor() as i64 + 1;
        let mut g_min = f64::INFINITY;
        let mut g_max = f64::NEG_INFINITY;
        for i in i_lo..=i_hi {
            let g = hash_gaussian(self.seed, i, 0);
            g_min = g_min.min(g);
            g_max = g_max.max(g);
        }
        (self.sigma * g_min, self.sigma * g_max)
    }

    /// Hard global bound on `|sample(t)|`, from the Box–Muller clamp
    /// `u1 >= 1e-12` (|gaussian| <= sqrt(-2 ln 1e-12) ≈ 7.434): a cheap
    /// screen before paying for the exact node scan of
    /// [`TemporalNoise::range_over`].
    pub fn global_bound(&self) -> f64 {
        self.sigma * (-2.0 * 1e-12f64.ln()).sqrt()
    }

    /// [`TemporalNoise::sample`] with the two node gaussians memoized in
    /// `nodes`; bit-identical, same cache contract as [`NodeCache`].
    pub fn sample_cached(&self, t: f64, nodes: &mut NodeCache) -> f64 {
        let g = t / self.corr_s;
        let i0 = g.floor() as i64;
        let tt = smooth(g - g.floor());
        let v0 = nodes.node(self.seed, i0);
        let v1 = nodes.node(self.seed, i0 + 1);
        self.sigma * (v0 + (v1 - v0) * tt)
    }

    /// Upper bound on `sample(t)` at exactly `t`: the sample is a convex
    /// blend of its two adjacent node gaussians, so it never exceeds
    /// `sigma * max(node0, node1)`. Two memoized loads — the screen a
    /// scheduler runs per candidate tick before paying for an exact sample.
    pub fn sup_at_cached(&self, t: f64, nodes: &mut NodeCache) -> f64 {
        let i0 = (t / self.corr_s).floor() as i64;
        self.sigma * nodes.node(self.seed, i0).max(nodes.node(self.seed, i0 + 1))
    }

    /// The max side of [`TemporalNoise::range_over`] with every node
    /// gaussian memoized in `nodes` — identical value, amortized cost.
    pub fn sup_over_cached(&self, t0: f64, t1: f64, nodes: &mut NodeCache) -> f64 {
        let i_lo = (t0 / self.corr_s).floor() as i64;
        let i_hi = (t1 / self.corr_s).floor() as i64 + 1;
        let mut g_max = f64::NEG_INFINITY;
        for i in i_lo..=i_hi {
            g_max = g_max.max(nodes.node(self.seed, i));
        }
        self.sigma * g_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let n = SpatialNoise::new(7, 50.0, 8.0);
        let p = Point::new(123.4, -56.7);
        assert_eq!(n.sample(&p), n.sample(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpatialNoise::new(1, 50.0, 8.0);
        let b = SpatialNoise::new(2, 50.0, 8.0);
        let p = Point::new(10.0, 10.0);
        assert_ne!(a.sample(&p), b.sample(&p));
    }

    #[test]
    fn nearby_points_are_correlated_far_points_not() {
        let n = SpatialNoise::new(3, 100.0, 8.0);
        let mut close_diff = 0.0;
        let mut far_diff = 0.0;
        let m = 200;
        for i in 0..m {
            let p = Point::new(i as f64 * 137.0, i as f64 * 91.0);
            let q_close = Point::new(p.x + 5.0, p.y);
            let q_far = Point::new(p.x + 5000.0, p.y + 7000.0);
            close_diff += (n.sample(&p) - n.sample(&q_close)).abs();
            far_diff += (n.sample(&p) - n.sample(&q_far)).abs();
        }
        assert!(
            close_diff < far_diff / 3.0,
            "5 m apart should be much more similar than 5 km apart: {close_diff} vs {far_diff}"
        );
    }

    #[test]
    fn spatial_mean_near_zero_and_spread_near_sigma() {
        let sigma = 8.0;
        let n = SpatialNoise::new(11, 50.0, sigma);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let m = 4000;
        for i in 0..m {
            // sample far apart so draws are independent
            let p = Point::new(i as f64 * 1000.0, (i % 97) as f64 * 1000.0);
            let v = n.sample(&p);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / m as f64;
        let std = (sum_sq / m as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 1.0, "mean {mean}");
        assert!((std - sigma).abs() < sigma * 0.35, "std {std} vs sigma {sigma}");
    }

    #[test]
    fn temporal_noise_is_continuousish() {
        let n = TemporalNoise::new(5, 0.05, 3.0);
        // adjacent 1 ms samples should differ by far less than sigma
        let mut max_step = 0.0f64;
        for i in 0..1000 {
            let t = i as f64 * 0.001;
            let d = (n.sample(t) - n.sample(t + 0.001)).abs();
            max_step = max_step.max(d);
        }
        assert!(max_step < 1.5, "max 1 ms step {max_step}");
    }

    #[test]
    fn zero_sigma_is_silent() {
        let n = SpatialNoise::new(9, 50.0, 0.0);
        assert_eq!(n.sample(&Point::new(33.0, 44.0)), 0.0);
        let t = TemporalNoise::new(9, 0.1, 0.0);
        assert_eq!(t.sample(1.23), 0.0);
    }

    #[test]
    fn cached_samples_are_bit_identical() {
        let n = SpatialNoise::new(21, 50.0, 8.0);
        let mut cache = LatticeCache::default();
        // walk far enough to cross several lattice cells, in small steps so
        // the cache both hits and misses
        for i in 0..2000 {
            let p = Point::new(i as f64 * 0.3, (i as f64 * 0.11).sin() * 40.0);
            assert_eq!(n.sample_cached(&p, &mut cache), n.sample(&p), "shadowing diverged at step {i}");
            assert_eq!(
                n.sample_uniform_cell_cached(&p, &mut cache),
                n.sample_uniform_cell(&p),
                "uniform diverged at step {i}"
            );
        }
    }

    #[test]
    fn temporal_node_cache_is_bit_identical_and_bounds() {
        let n = TemporalNoise::new(99, 0.05, 4.0);
        let mut nodes = NodeCache::default();
        for k in 0..4000 {
            let t = k as f64 * 0.0137 + 3.0;
            let s = n.sample(t);
            assert_eq!(n.sample_cached(t, &mut nodes), s, "cached sample diverged at {t}");
            assert!(n.sup_at_cached(t, &mut nodes) >= s, "per-tick sup below sample at {t}");
        }
        // the cached window sup matches the uncached node scan exactly,
        // including after the ring has wrapped and evicted old nodes
        for w in 0..80 {
            let t0 = w as f64 * 1.7;
            let t1 = t0 + 12.6;
            assert_eq!(n.sup_over_cached(t0, t1, &mut nodes), n.range_over(t0, t1).1, "window [{t0}, {t1}]");
        }
    }

    #[test]
    fn box_range_bounds_every_sample_inside() {
        let n = SpatialNoise::new(77, 50.0, 8.0);
        for k in 0..200 {
            let p = Point::new(k as f64 * 61.3 - 3000.0, (k as f64 * 0.7).sin() * 900.0);
            let reach = 5.0 + (k % 17) as f64 * 7.0;
            let (lo, hi) = n.range_over_box(&p, reach);
            assert!(lo <= hi);
            for i in -4..=4 {
                for j in -4..=4 {
                    let q = Point::new(p.x + reach * i as f64 / 4.0, p.y + reach * j as f64 / 4.0);
                    let v = n.sample(&q);
                    assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "sample {v} outside [{lo}, {hi}] at box {k}");
                }
            }
        }
    }

    #[test]
    fn temporal_range_bounds_every_sample_inside() {
        let n = TemporalNoise::new(41, 0.05, 3.0);
        for k in 0..200 {
            let t0 = k as f64 * 0.137;
            let t1 = t0 + 0.01 + (k % 13) as f64 * 0.11;
            let (lo, hi) = n.range_over(t0, t1);
            assert!(lo <= hi);
            assert!(lo >= -n.global_bound() - 1e-9 && hi <= n.global_bound() + 1e-9);
            for i in 0..=40 {
                let t = t0 + (t1 - t0) * i as f64 / 40.0;
                let v = n.sample(t);
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "sample {v} outside [{lo}, {hi}] in window {k}");
            }
        }
    }

    #[test]
    fn uniform_cell_box_range_is_exact_over_cells() {
        let n = SpatialNoise::new(29, 15.0, 1.0);
        for k in 0..200 {
            let p = Point::new(k as f64 * 43.7 - 2000.0, (k as f64 * 1.3).cos() * 700.0);
            // max reach 80.5 keeps the 13-point grid finer than the 15 m
            // lattice, so the exactness assert below stays valid
            let reach = 0.5 + (k % 11) as f64 * 8.0;
            let (lo, hi) = n.uniform_cell_range_over_box(&p, reach);
            assert!(lo <= hi);
            let (mut seen_lo, mut seen_hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for i in -6..=6 {
                for j in -6..=6 {
                    let q = Point::new(p.x + reach * i as f64 / 6.0, p.y + reach * j as f64 / 6.0);
                    let u = n.sample_uniform_cell(&q);
                    assert!(u >= lo && u <= hi, "draw {u} outside [{lo}, {hi}] at box {k}");
                    seen_lo = seen_lo.min(u);
                    seen_hi = seen_hi.max(u);
                }
            }
            // exactness: a dense grid over the box must actually attain the
            // reported extremes (every intersected cell contains a grid
            // point once the grid is finer than the lattice)
            if reach >= 15.0 {
                assert_eq!(seen_lo, lo, "box {k} min never attained");
                assert_eq!(seen_hi, hi, "box {k} max never attained");
            }
        }
    }

    #[test]
    fn uniform_cell_in_range() {
        let n = SpatialNoise::new(13, 25.0, 1.0);
        for i in 0..500 {
            let u = n.sample_uniform_cell(&Point::new(i as f64 * 31.0, i as f64 * 17.0));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
