//! Deterministic correlated noise fields.
//!
//! Real drive-test signal traces show two stochastic layers on top of path
//! loss: **shadowing** (log-normal, spatially correlated over tens of
//! meters — buildings, terrain) and **fast fading** (temporally correlated
//! over tens of milliseconds). Reproducing them with mutable per-link RNG
//! state would make signal strength depend on evaluation order; instead both
//! are *pure functions* of (seed, position/time) built from hash-based value
//! noise, so any component can query the channel at any point and always get
//! the same answer. This is what makes the whole simulation deterministic
//! and replayable.

use fiveg_geo::Point;
use serde::{Deserialize, Serialize};

/// SplitMix64: the 64-bit finalizer used as our lattice hash.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a tuple of integers into a uniform f64 in [0, 1).
#[inline]
fn hash_uniform(seed: u64, a: i64, b: i64, salt: u64) -> f64 {
    let mut h = splitmix64(seed ^ salt);
    h = splitmix64(h ^ (a as u64).wrapping_mul(0x9E3779B97F4A7C15));
    h = splitmix64(h ^ (b as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
    // 53 random mantissa bits -> uniform in [0,1)
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal value at a lattice point, via Box–Muller on two hashes.
#[inline]
fn hash_gaussian(seed: u64, a: i64, b: i64) -> f64 {
    let u1 = hash_uniform(seed, a, b, 0x5bf0_3635).max(1e-12);
    let u2 = hash_uniform(seed, a, b, 0x94d0_49bb);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Smoothstep interpolation weight.
#[inline]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Memoized lattice corners of one [`SpatialNoise`] field.
///
/// The four corner gaussians of the bilinear blend depend only on which
/// lattice cell the query point falls in, and a UE moving at vehicular speed
/// stays inside one shadowing lattice cell (tens of meters) for many
/// consecutive ticks. A cache holds the corners of the last lattice cell
/// visited; [`SpatialNoise::sample_cached`] recomputes them only when the
/// query crosses into a new cell. Values are memoized, never approximated:
/// a cached sample is bit-identical to [`SpatialNoise::sample`].
///
/// A cache is only valid for the *one* field it has been fed to — reusing it
/// across different `SpatialNoise` instances returns wrong values whenever
/// the lattice keys collide. Keep one cache per (field, receiver) pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatticeCache {
    key: Option<(i64, i64)>,
    v00: f64,
    v10: f64,
    v01: f64,
    v11: f64,
    /// Separate key/value pair for [`SpatialNoise::sample_uniform_cell_cached`]
    /// (blockage lookups use a different salt and no interpolation).
    ukey: Option<(i64, i64)>,
    uval: f64,
}

/// Spatially correlated Gaussian field with a given correlation length,
/// standard deviation and zero mean.
///
/// Implemented as value noise: i.i.d. standard normals on a square lattice
/// of spacing `corr_len`, bilinearly blended with smoothstep weights. Two
/// positions closer than the correlation length see similar values; positions
/// farther apart are effectively independent, matching the standard
/// exponential-decorrelation model of log-normal shadowing.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SpatialNoise {
    seed: u64,
    corr_len: f64,
    sigma: f64,
}

impl SpatialNoise {
    /// Creates a field with decorrelation distance `corr_len` meters and
    /// standard deviation `sigma` (dB for shadowing).
    pub fn new(seed: u64, corr_len: f64, sigma: f64) -> Self {
        assert!(corr_len > 0.0, "correlation length must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { seed, corr_len, sigma }
    }

    /// Samples the field at `p`.
    pub fn sample(&self, p: &Point) -> f64 {
        let mut scratch = LatticeCache::default();
        self.sample_cached(p, &mut scratch)
    }

    /// Samples the field at `p`, memoizing the lattice-corner gaussians in
    /// `cache`. Bit-identical to [`SpatialNoise::sample`]; the cache must be
    /// dedicated to this field (see [`LatticeCache`]).
    pub fn sample_cached(&self, p: &Point, cache: &mut LatticeCache) -> f64 {
        let gx = p.x / self.corr_len;
        let gy = p.y / self.corr_len;
        let x0 = gx.floor() as i64;
        let y0 = gy.floor() as i64;
        if cache.key != Some((x0, y0)) {
            cache.v00 = hash_gaussian(self.seed, x0, y0);
            cache.v10 = hash_gaussian(self.seed, x0 + 1, y0);
            cache.v01 = hash_gaussian(self.seed, x0, y0 + 1);
            cache.v11 = hash_gaussian(self.seed, x0 + 1, y0 + 1);
            cache.key = Some((x0, y0));
        }
        let tx = smooth(gx - gx.floor());
        let ty = smooth(gy - gy.floor());
        let a = cache.v00 + (cache.v10 - cache.v00) * tx;
        let b = cache.v01 + (cache.v11 - cache.v01) * tx;
        // Bilinear blending of unit normals shrinks variance away from the
        // lattice corners (to 0.5 at the cell center); 1.2 restores sigma
        // on average over a cell.
        self.sigma * 1.2 * (a + (b - a) * ty)
    }

    /// Uniform sample in `[0, 1)` at `p` with no interpolation — used for
    /// threshold events such as mmWave blockage.
    pub fn sample_uniform_cell(&self, p: &Point) -> f64 {
        let x0 = (p.x / self.corr_len).floor() as i64;
        let y0 = (p.y / self.corr_len).floor() as i64;
        hash_uniform(self.seed, x0, y0, 0xb10c_4a6e)
    }

    /// [`SpatialNoise::sample_uniform_cell`] with the per-lattice-cell hash
    /// memoized in `cache`; bit-identical, same cache contract.
    pub fn sample_uniform_cell_cached(&self, p: &Point, cache: &mut LatticeCache) -> f64 {
        let x0 = (p.x / self.corr_len).floor() as i64;
        let y0 = (p.y / self.corr_len).floor() as i64;
        if cache.ukey != Some((x0, y0)) {
            cache.uval = hash_uniform(self.seed, x0, y0, 0xb10c_4a6e);
            cache.ukey = Some((x0, y0));
        }
        cache.uval
    }
}

/// Temporally correlated Gaussian process: value noise over the time axis.
///
/// Used for fast fading (correlation time tens of ms) and any other
/// time-varying perturbation that must be reproducible.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TemporalNoise {
    seed: u64,
    corr_s: f64,
    sigma: f64,
}

impl TemporalNoise {
    /// Creates a process with correlation time `corr_s` seconds and standard
    /// deviation `sigma`.
    pub fn new(seed: u64, corr_s: f64, sigma: f64) -> Self {
        assert!(corr_s > 0.0, "correlation time must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { seed, corr_s, sigma }
    }

    /// Samples the process at time `t` seconds.
    pub fn sample(&self, t: f64) -> f64 {
        let g = t / self.corr_s;
        let i0 = g.floor() as i64;
        let tt = smooth(g - g.floor());
        let v0 = hash_gaussian(self.seed, i0, 0);
        let v1 = hash_gaussian(self.seed, i0 + 1, 0);
        self.sigma * (v0 + (v1 - v0) * tt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let n = SpatialNoise::new(7, 50.0, 8.0);
        let p = Point::new(123.4, -56.7);
        assert_eq!(n.sample(&p), n.sample(&p));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SpatialNoise::new(1, 50.0, 8.0);
        let b = SpatialNoise::new(2, 50.0, 8.0);
        let p = Point::new(10.0, 10.0);
        assert_ne!(a.sample(&p), b.sample(&p));
    }

    #[test]
    fn nearby_points_are_correlated_far_points_not() {
        let n = SpatialNoise::new(3, 100.0, 8.0);
        let mut close_diff = 0.0;
        let mut far_diff = 0.0;
        let m = 200;
        for i in 0..m {
            let p = Point::new(i as f64 * 137.0, i as f64 * 91.0);
            let q_close = Point::new(p.x + 5.0, p.y);
            let q_far = Point::new(p.x + 5000.0, p.y + 7000.0);
            close_diff += (n.sample(&p) - n.sample(&q_close)).abs();
            far_diff += (n.sample(&p) - n.sample(&q_far)).abs();
        }
        assert!(
            close_diff < far_diff / 3.0,
            "5 m apart should be much more similar than 5 km apart: {close_diff} vs {far_diff}"
        );
    }

    #[test]
    fn spatial_mean_near_zero_and_spread_near_sigma() {
        let sigma = 8.0;
        let n = SpatialNoise::new(11, 50.0, sigma);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let m = 4000;
        for i in 0..m {
            // sample far apart so draws are independent
            let p = Point::new(i as f64 * 1000.0, (i % 97) as f64 * 1000.0);
            let v = n.sample(&p);
            sum += v;
            sum_sq += v * v;
        }
        let mean = sum / m as f64;
        let std = (sum_sq / m as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 1.0, "mean {mean}");
        assert!((std - sigma).abs() < sigma * 0.35, "std {std} vs sigma {sigma}");
    }

    #[test]
    fn temporal_noise_is_continuousish() {
        let n = TemporalNoise::new(5, 0.05, 3.0);
        // adjacent 1 ms samples should differ by far less than sigma
        let mut max_step = 0.0f64;
        for i in 0..1000 {
            let t = i as f64 * 0.001;
            let d = (n.sample(t) - n.sample(t + 0.001)).abs();
            max_step = max_step.max(d);
        }
        assert!(max_step < 1.5, "max 1 ms step {max_step}");
    }

    #[test]
    fn zero_sigma_is_silent() {
        let n = SpatialNoise::new(9, 50.0, 0.0);
        assert_eq!(n.sample(&Point::new(33.0, 44.0)), 0.0);
        let t = TemporalNoise::new(9, 0.1, 0.0);
        assert_eq!(t.sample(1.23), 0.0);
    }

    #[test]
    fn cached_samples_are_bit_identical() {
        let n = SpatialNoise::new(21, 50.0, 8.0);
        let mut cache = LatticeCache::default();
        // walk far enough to cross several lattice cells, in small steps so
        // the cache both hits and misses
        for i in 0..2000 {
            let p = Point::new(i as f64 * 0.3, (i as f64 * 0.11).sin() * 40.0);
            assert_eq!(n.sample_cached(&p, &mut cache), n.sample(&p), "shadowing diverged at step {i}");
            assert_eq!(
                n.sample_uniform_cell_cached(&p, &mut cache),
                n.sample_uniform_cell(&p),
                "uniform diverged at step {i}"
            );
        }
    }

    #[test]
    fn uniform_cell_in_range() {
        let n = SpatialNoise::new(13, 25.0, 1.0);
        for i in 0..500 {
            let u = n.sample_uniform_cell(&Point::new(i as f64 * 31.0, i as f64 * 17.0));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
