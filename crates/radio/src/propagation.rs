//! Path loss, shadowing, fading and mmWave blockage.
//!
//! The coverage landscape of §6.1 ("higher frequency bands are more
//! attenuated than lower ones, thus reducing cell coverage") falls out of the
//! frequency term of the path-loss model below; the wild mmWave fluctuations
//! of §4.1 come from blockage plus fast fading.

use crate::band::{Band, BandClass};
use crate::noise::{LatticeCache, NodeCache, SpatialNoise, TemporalNoise};
use fiveg_geo::Point;
use serde::{Deserialize, Serialize};

/// Per-receiver memo for one cell's stochastic channel: the shadowing and
/// blockage lattice caches (see [`LatticeCache`]). Pure memoization — a
/// cached [`Propagation::received_dbm_cached`] call is bit-identical to
/// [`Propagation::received_dbm`]. One cache belongs to one `Propagation`;
/// index caches by cell, never share across cells.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelCache {
    shadowing: LatticeCache,
    blockage: LatticeCache,
}

/// Static path-loss model parameters for one link class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathLoss {
    /// Fixed offset in dB (antenna heights, constants of the 3GPP formula).
    pub offset_db: f64,
    /// Distance exponent coefficient: `exp10 * log10(d_m)` dB.
    pub exp10: f64,
    /// Frequency coefficient: `freq10 * log10(f_ghz)` dB.
    pub freq10: f64,
}

impl PathLoss {
    /// 3GPP UMa-flavoured NLOS model used for sub-6 GHz links.
    pub const SUB6: PathLoss = PathLoss { offset_db: 28.0, exp10: 30.0, freq10: 20.0 };
    /// Steeper model for mmWave links (higher exponent; dense urban NLOS).
    pub const MMWAVE: PathLoss = PathLoss { offset_db: 32.0, exp10: 34.0, freq10: 20.0 };

    /// Median path loss in dB at `dist_m` meters for carrier `freq_mhz`.
    ///
    /// Distances under 10 m are clamped: the UE never sits on the antenna.
    pub fn loss_db(&self, dist_m: f64, freq_mhz: f64) -> f64 {
        let d = dist_m.max(10.0);
        self.offset_db + self.exp10 * d.log10() + self.freq10 * (freq_mhz / 1000.0).log10()
    }
}

/// A complete stochastic channel for one cell: median path loss plus
/// correlated shadowing, fast fading, and (for mmWave) blockage.
///
/// Everything is a pure function of (seed, position, time) — see
/// [`crate::noise`] — so the channel can be sampled in any order.
#[derive(Debug, Clone, Copy)]
pub struct Propagation {
    band: Band,
    model: PathLoss,
    /// Transmit power + antenna gain in dBm EIRP.
    tx_power_dbm: f64,
    shadowing: SpatialNoise,
    fading: TemporalNoise,
    /// Blockage field: cells of ~15 m; a fraction of cells attenuate hard.
    blockage: SpatialNoise,
    blockage_prob: f64,
    blockage_loss_db: f64,
    /// Precomputed `freq10 * log10(freq_mhz / 1000)` — the carrier frequency
    /// never changes after construction, so the hot path pays one add instead
    /// of a `log10` per sample. Same product as the inline form, so the loss
    /// is bit-identical.
    freq_term_db: f64,
}

impl Propagation {
    /// Builds the channel for a cell on `band`, seeded by the cell identity.
    ///
    /// Per-class defaults:
    /// * sub-6: 8 dB shadowing @ 50 m correlation, 2 dB fading, no blockage;
    /// * mmWave: 10 dB shadowing @ 20 m, 4 dB fading, 30% blockage cells at
    ///   20 dB extra loss — the source of the ~2 Gbps throughput swings the
    ///   paper reports (§6.2).
    pub fn new(seed: u64, band: Band, tx_power_dbm: f64) -> Self {
        Self::with_shadowing(seed, band, tx_power_dbm, 1.0, 1.0)
    }

    /// Like [`Propagation::new`], scaling the default shadowing correlation
    /// length and sigma — open terrain (freeways) has milder, slower-varying
    /// shadowing than dense urban cores.
    pub fn with_shadowing(seed: u64, band: Band, tx_power_dbm: f64, corr_scale: f64, sigma_scale: f64) -> Self {
        let (model, sh_len, sh_sigma, fad_sigma, b_prob, b_loss) = match band.class() {
            BandClass::MmWave => (PathLoss::MMWAVE, 20.0, 10.0, 4.0, 0.30, 20.0),
            _ => (PathLoss::SUB6, 50.0, 8.0, 2.0, 0.0, 0.0),
        };
        let (sh_len, sh_sigma) = (sh_len * corr_scale, sh_sigma * sigma_scale);
        Self {
            band,
            model,
            tx_power_dbm,
            shadowing: SpatialNoise::new(seed ^ 0x5AAD_0001, sh_len, sh_sigma),
            fading: TemporalNoise::new(seed ^ 0xFAD0_0001, 0.05, fad_sigma),
            blockage: SpatialNoise::new(seed ^ 0xB10C_0001, 15.0, 1.0),
            blockage_prob: b_prob,
            blockage_loss_db: b_loss,
            freq_term_db: model.freq10 * (band.freq_mhz / 1000.0).log10(),
        }
    }

    /// Median path loss at `dist_m` with the precomputed frequency term;
    /// bit-identical to `model.loss_db(dist_m, band.freq_mhz)`.
    #[inline]
    fn path_loss_db(&self, dist_m: f64) -> f64 {
        let d = dist_m.max(10.0);
        self.model.offset_db + self.model.exp10 * d.log10() + self.freq_term_db
    }

    /// The band this channel carries.
    pub fn band(&self) -> Band {
        self.band
    }

    /// Received power (RSRP-like) in dBm at `ue` position and time `t`,
    /// for a cell located at `site`.
    pub fn received_dbm(&self, site: &Point, ue: &Point, t: f64) -> f64 {
        let mut scratch = ChannelCache::default();
        self.received_dbm_cached(site, ue, t, &mut scratch)
    }

    /// [`Propagation::received_dbm`] with the noise-lattice hashes memoized
    /// in `cache` — the per-tick snapshot's fast path. Bit-identical; `cache`
    /// must be dedicated to this cell's channel (see [`ChannelCache`]).
    pub fn received_dbm_cached(&self, site: &Point, ue: &Point, t: f64, cache: &mut ChannelCache) -> f64 {
        let dist = site.distance(ue);
        let mut rx = self.tx_power_dbm - self.path_loss_db(dist)
            + self.shadowing.sample_cached(ue, &mut cache.shadowing)
            + self.fading.sample(t);
        let blocked = self.blockage_prob > 0.0
            && self.blockage.sample_uniform_cell_cached(ue, &mut cache.blockage) < self.blockage_prob;
        if blocked {
            rx -= self.blockage_loss_db;
        }
        rx
    }

    /// [`Propagation::received_dbm_cached`] with the fast-fading node
    /// gaussians additionally memoized in `nodes` — bit-identical (the node
    /// memo is exact, see [`NodeCache`]). `nodes` must be dedicated to this
    /// cell's channel, like `cache`. Fading nodes are pure functions of
    /// time, so unlike the position-keyed lattice memo they are shared by
    /// every receiver that samples the cell in the same time span — the
    /// sleep planner's dominant reuse.
    pub fn received_dbm_memo(
        &self,
        site: &Point,
        ue: &Point,
        t: f64,
        cache: &mut ChannelCache,
        nodes: &mut NodeCache,
    ) -> f64 {
        let dist = site.distance(ue);
        let mut rx = self.tx_power_dbm - self.path_loss_db(dist)
            + self.shadowing.sample_cached(ue, &mut cache.shadowing)
            + self.fading.sample_cached(t, nodes);
        let blocked = self.blockage_prob > 0.0
            && self.blockage.sample_uniform_cell_cached(ue, &mut cache.blockage) < self.blockage_prob;
        if blocked {
            rx -= self.blockage_loss_db;
        }
        rx
    }

    /// Median (no shadowing/fading/blockage) received power at distance `d`.
    pub fn median_received_dbm(&self, dist_m: f64) -> f64 {
        self.tx_power_dbm - self.path_loss_db(dist_m)
    }

    /// `(min, max)` of the shadowing term anywhere within `reach_m` meters
    /// (axis-aligned box) of `ue` — see [`SpatialNoise::range_over_box`].
    pub fn shadowing_range(&self, ue: &Point, reach_m: f64) -> (f64, f64) {
        self.shadowing.range_over_box(ue, reach_m)
    }

    /// `(min, max)` of the fast-fading term over `[t0, t1]` — the exact node
    /// scan of [`TemporalNoise::range_over`].
    pub fn fading_range(&self, t0: f64, t1: f64) -> (f64, f64) {
        self.fading.range_over(t0, t1)
    }

    /// Hard bound on `|fading|` at any time — a cheap screen that avoids the
    /// per-node scan when the link's margin is already decisive.
    pub fn fading_bound(&self) -> f64 {
        self.fading.global_bound()
    }

    /// Upper bound on the fading term at exactly time `t`, from the two
    /// node gaussians the sample interpolates (memoized in `nodes`) — see
    /// [`TemporalNoise::sup_at_cached`].
    pub fn fading_sup_at(&self, t: f64, nodes: &mut NodeCache) -> f64 {
        self.fading.sup_at_cached(t, nodes)
    }

    /// Exact supremum of the fading term over `[t0, t1]` —
    /// `fading_range(t0, t1).1` with the node gaussians memoized in `nodes`.
    pub fn fading_sup_over(&self, t0: f64, t1: f64, nodes: &mut NodeCache) -> f64 {
        self.fading.sup_over_cached(t0, t1, nodes)
    }

    /// Supremum of the shadowing term anywhere inside the rectangle
    /// `[x0, x1] × [y0, y1]` — the position-only part of
    /// [`Propagation::noise_sup_over_rect`], for callers that bound the
    /// time-varying fading term separately (and usually far more tightly
    /// than the global Box–Muller bound).
    pub fn shadow_sup_over_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        self.shadowing.sup_over_rect(x0, y0, x1, y1)
    }

    /// Sound upper bound on `shadowing + fading` (dB) at any position inside
    /// the rectangle `[x0, x1] × [y0, y1]` and at any time: the shadowing
    /// field's corner supremum over the rectangle
    /// ([`SpatialNoise::sup_over_rect`]) plus the fading process's global
    /// bound. Blockage only attenuates and pattern loss is nonnegative, so
    /// `median_received_dbm(closest reachable distance) + noise_sup` screens
    /// the exact upper envelope from above at O(1) per query once this is
    /// memoized per cell over the deployment's region.
    pub fn noise_sup_over_rect(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        self.shadow_sup_over_rect(x0, y0, x1, y1) + self.fading.global_bound()
    }

    /// Worst-case extra attenuation the blockage field can apply (dB): the
    /// full blockage loss when this channel draws blockage at all, else 0.
    /// Used for one-sided envelopes — a lower bound subtracts this, an upper
    /// bound ignores blockage entirely (it only ever attenuates).
    pub fn blockage_penalty_db(&self) -> f64 {
        if self.blockage_prob > 0.0 {
            self.blockage_loss_db
        } else {
            0.0
        }
    }

    /// `(min, max)` extra blockage loss (dB) anywhere within `reach_m`
    /// meters of `ue` — the two-sided refinement of
    /// [`Propagation::blockage_penalty_db`].
    ///
    /// Blockage is a pure threshold on a per-lattice-cell uniform draw
    /// (see [`Propagation::received_dbm_cached`]), so its state over a
    /// travel box is **exactly** decidable, not just boundable: `(0, 0)`
    /// when no reachable 15 m cell draws below the blockage probability
    /// (never blocked), `(loss, loss)` when all do (always blocked), and
    /// `(0, loss)` only in genuinely mixed boxes. Envelope callers subtract
    /// the max on their lower side and the min on their upper side; for
    /// mmWave this decides 20 dB of envelope width that the one-sided
    /// penalty had to concede everywhere.
    pub fn blockage_range(&self, ue: &Point, reach_m: f64) -> (f64, f64) {
        if self.blockage_prob <= 0.0 {
            return (0.0, 0.0);
        }
        let (u_min, u_max) = self.blockage.uniform_cell_range_over_box(ue, reach_m);
        let all = u_max < self.blockage_prob;
        let any = u_min < self.blockage_prob;
        (if all { self.blockage_loss_db } else { 0.0 }, if any { self.blockage_loss_db } else { 0.0 })
    }

    /// Distance at which the median received power crosses `threshold_dbm`.
    ///
    /// This is the analytic cell radius used by the deployment generator to
    /// derive sensible inter-site distances per band.
    pub fn median_range_m(&self, threshold_dbm: f64) -> f64 {
        // threshold = tx - (offset + exp10*log10(d) + freq10*log10(f))
        let budget = self.tx_power_dbm
            - threshold_dbm
            - self.model.offset_db
            - self.model.freq10 * (self.band.freq_mhz / 1000.0).log10();
        10f64.powf(budget / self.model.exp10).max(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::catalog::*;

    #[test]
    fn loss_grows_with_distance() {
        let m = PathLoss::SUB6;
        assert!(m.loss_db(100.0, 600.0) < m.loss_db(1000.0, 600.0));
    }

    #[test]
    fn loss_grows_with_frequency() {
        let m = PathLoss::SUB6;
        assert!(m.loss_db(500.0, 600.0) < m.loss_db(500.0, 2500.0));
        assert!(m.loss_db(500.0, 2500.0) < PathLoss::MMWAVE.loss_db(500.0, 39000.0));
    }

    #[test]
    fn distance_is_clamped_near_site() {
        let m = PathLoss::SUB6;
        assert_eq!(m.loss_db(0.0, 600.0), m.loss_db(10.0, 600.0));
    }

    #[test]
    fn cell_radius_ordering_low_mid_mmwave() {
        // The paper's coverage ordering (§6.1): low > mid > mmWave.
        let low = Propagation::new(1, N71, 46.0).median_range_m(-110.0);
        let mid = Propagation::new(2, N41, 46.0).median_range_m(-110.0);
        let mm = Propagation::new(3, N260, 55.0).median_range_m(-110.0);
        assert!(low > mid, "low {low} should out-range mid {mid}");
        assert!(mid > mm, "mid {mid} should out-range mmWave {mm}");
    }

    #[test]
    fn median_range_round_trips() {
        let p = Propagation::new(4, N41, 46.0);
        let r = p.median_range_m(-105.0);
        assert!((p.median_received_dbm(r) - -105.0).abs() < 1e-6);
    }

    #[test]
    fn received_power_is_deterministic() {
        let p = Propagation::new(5, N71, 46.0);
        let site = Point::ORIGIN;
        let ue = Point::new(400.0, 120.0);
        assert_eq!(p.received_dbm(&site, &ue, 3.2), p.received_dbm(&site, &ue, 3.2));
    }

    #[test]
    fn received_power_declines_with_distance_on_average() {
        let p = Propagation::new(6, N71, 46.0);
        let site = Point::ORIGIN;
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..100 {
            let bearing = i as f64 * 0.063;
            near += p.received_dbm(&site, &site.displaced(bearing, 200.0), 0.0);
            far += p.received_dbm(&site, &site.displaced(bearing, 2000.0), 0.0);
        }
        assert!(near / 100.0 > far / 100.0 + 10.0);
    }

    #[test]
    fn cached_received_power_is_bit_identical() {
        // one cache per cell, reused along a route — both band classes so the
        // blockage branch is exercised
        for (seed, band, tx) in [(41u64, N71, 46.0), (42, N260, 55.0)] {
            let p = Propagation::new(seed, band, tx);
            let site = Point::ORIGIN;
            let mut cache = ChannelCache::default();
            for i in 0..2000 {
                let ue = Point::new(30.0 + i as f64 * 0.3, (i as f64 * 0.07).cos() * 25.0);
                let t = i as f64 * 0.1;
                assert_eq!(
                    p.received_dbm_cached(&site, &ue, t, &mut cache),
                    p.received_dbm(&site, &ue, t),
                    "band {} diverged at step {i}",
                    band.name
                );
            }
        }
    }

    #[test]
    fn envelope_components_bound_received_power() {
        // rx at any (pos in box, t in window) must sit inside the envelope
        // assembled from the component bounds — both band classes, so the
        // blockage penalty is exercised one-sidedly.
        for (seed, band, tx) in [(91u64, N71, 46.0), (92, N260, 55.0)] {
            let p = Propagation::new(seed, band, tx);
            let site = Point::ORIGIN;
            for k in 0..60 {
                let ue = Point::new(300.0 + k as f64 * 43.0, (k as f64 * 1.3).sin() * 200.0);
                let reach = 4.0 + (k % 9) as f64 * 10.0;
                let (t0, t1) = (k as f64 * 0.37, k as f64 * 0.37 + 1.9);
                let dist = site.distance(&ue);
                let (sh_lo, sh_hi) = p.shadowing_range(&ue, reach);
                let (fd_lo, fd_hi) = p.fading_range(t0, t1);
                assert!(fd_lo >= -p.fading_bound() && fd_hi <= p.fading_bound());
                let up = p.median_received_dbm((dist - reach).max(10.0)) + sh_hi + fd_hi;
                let lo = p.median_received_dbm(dist + reach) + sh_lo + fd_lo - p.blockage_penalty_db();
                for i in 0..25 {
                    // sample the disc of radius `reach` (a route of length
                    // `reach` can't displace the UE further than that)
                    let (th, r) = (i as f64 * 1.1, (i % 5) as f64 / 4.0 * reach);
                    let q = Point::new(ue.x + r * th.cos(), ue.y + r * th.sin());
                    let t = t0 + (t1 - t0) * i as f64 / 24.0;
                    let rx = p.received_dbm(&site, &q, t);
                    assert!(rx <= up + 1e-9 && rx >= lo - 1e-9, "rx {rx} outside [{lo}, {up}] (k={k}, i={i})");
                }
            }
        }
    }

    #[test]
    fn mmwave_experiences_blockage() {
        let p = Propagation::new(7, N260, 55.0);
        let site = Point::ORIGIN;
        let mut blocked = 0;
        let n = 400;
        for i in 0..n {
            let ue = Point::new(100.0 + i as f64 * 16.0, 40.0);
            let rx = p.received_dbm(&site, &ue, 0.0);
            let median = p.median_received_dbm(site.distance(&ue));
            if rx < median - 15.0 {
                blocked += 1;
            }
        }
        // ~30% of positions should be blockage-attenuated (loosely)
        assert!(blocked > n / 10, "expected noticeable blockage, got {blocked}/{n}");
    }

    #[test]
    fn sub6_has_no_blockage() {
        let p = Propagation::new(8, N71, 46.0);
        let site = Point::ORIGIN;
        let mut worst = 0.0f64;
        for i in 0..400 {
            let ue = Point::new(100.0 + i as f64 * 16.0, 40.0);
            let rx = p.received_dbm(&site, &ue, 0.0);
            let median = p.median_received_dbm(site.distance(&ue));
            worst = worst.max(median - rx);
        }
        // shadowing+fading only: deficits stay within ~5 sigma
        assert!(worst < 45.0, "unexpected deep fade {worst} dB");
    }
}
