//! Path loss, shadowing, fading and mmWave blockage.
//!
//! The coverage landscape of §6.1 ("higher frequency bands are more
//! attenuated than lower ones, thus reducing cell coverage") falls out of the
//! frequency term of the path-loss model below; the wild mmWave fluctuations
//! of §4.1 come from blockage plus fast fading.

use crate::band::{Band, BandClass};
use crate::noise::{LatticeCache, SpatialNoise, TemporalNoise};
use fiveg_geo::Point;
use serde::{Deserialize, Serialize};

/// Per-receiver memo for one cell's stochastic channel: the shadowing and
/// blockage lattice caches (see [`LatticeCache`]). Pure memoization — a
/// cached [`Propagation::received_dbm_cached`] call is bit-identical to
/// [`Propagation::received_dbm`]. One cache belongs to one `Propagation`;
/// index caches by cell, never share across cells.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelCache {
    shadowing: LatticeCache,
    blockage: LatticeCache,
}

/// Static path-loss model parameters for one link class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PathLoss {
    /// Fixed offset in dB (antenna heights, constants of the 3GPP formula).
    pub offset_db: f64,
    /// Distance exponent coefficient: `exp10 * log10(d_m)` dB.
    pub exp10: f64,
    /// Frequency coefficient: `freq10 * log10(f_ghz)` dB.
    pub freq10: f64,
}

impl PathLoss {
    /// 3GPP UMa-flavoured NLOS model used for sub-6 GHz links.
    pub const SUB6: PathLoss = PathLoss { offset_db: 28.0, exp10: 30.0, freq10: 20.0 };
    /// Steeper model for mmWave links (higher exponent; dense urban NLOS).
    pub const MMWAVE: PathLoss = PathLoss { offset_db: 32.0, exp10: 34.0, freq10: 20.0 };

    /// Median path loss in dB at `dist_m` meters for carrier `freq_mhz`.
    ///
    /// Distances under 10 m are clamped: the UE never sits on the antenna.
    pub fn loss_db(&self, dist_m: f64, freq_mhz: f64) -> f64 {
        let d = dist_m.max(10.0);
        self.offset_db + self.exp10 * d.log10() + self.freq10 * (freq_mhz / 1000.0).log10()
    }
}

/// A complete stochastic channel for one cell: median path loss plus
/// correlated shadowing, fast fading, and (for mmWave) blockage.
///
/// Everything is a pure function of (seed, position, time) — see
/// [`crate::noise`] — so the channel can be sampled in any order.
#[derive(Debug, Clone, Copy)]
pub struct Propagation {
    band: Band,
    model: PathLoss,
    /// Transmit power + antenna gain in dBm EIRP.
    tx_power_dbm: f64,
    shadowing: SpatialNoise,
    fading: TemporalNoise,
    /// Blockage field: cells of ~15 m; a fraction of cells attenuate hard.
    blockage: SpatialNoise,
    blockage_prob: f64,
    blockage_loss_db: f64,
    /// Precomputed `freq10 * log10(freq_mhz / 1000)` — the carrier frequency
    /// never changes after construction, so the hot path pays one add instead
    /// of a `log10` per sample. Same product as the inline form, so the loss
    /// is bit-identical.
    freq_term_db: f64,
}

impl Propagation {
    /// Builds the channel for a cell on `band`, seeded by the cell identity.
    ///
    /// Per-class defaults:
    /// * sub-6: 8 dB shadowing @ 50 m correlation, 2 dB fading, no blockage;
    /// * mmWave: 10 dB shadowing @ 20 m, 4 dB fading, 30% blockage cells at
    ///   20 dB extra loss — the source of the ~2 Gbps throughput swings the
    ///   paper reports (§6.2).
    pub fn new(seed: u64, band: Band, tx_power_dbm: f64) -> Self {
        Self::with_shadowing(seed, band, tx_power_dbm, 1.0, 1.0)
    }

    /// Like [`Propagation::new`], scaling the default shadowing correlation
    /// length and sigma — open terrain (freeways) has milder, slower-varying
    /// shadowing than dense urban cores.
    pub fn with_shadowing(seed: u64, band: Band, tx_power_dbm: f64, corr_scale: f64, sigma_scale: f64) -> Self {
        let (model, sh_len, sh_sigma, fad_sigma, b_prob, b_loss) = match band.class() {
            BandClass::MmWave => (PathLoss::MMWAVE, 20.0, 10.0, 4.0, 0.30, 20.0),
            _ => (PathLoss::SUB6, 50.0, 8.0, 2.0, 0.0, 0.0),
        };
        let (sh_len, sh_sigma) = (sh_len * corr_scale, sh_sigma * sigma_scale);
        Self {
            band,
            model,
            tx_power_dbm,
            shadowing: SpatialNoise::new(seed ^ 0x5AAD_0001, sh_len, sh_sigma),
            fading: TemporalNoise::new(seed ^ 0xFAD0_0001, 0.05, fad_sigma),
            blockage: SpatialNoise::new(seed ^ 0xB10C_0001, 15.0, 1.0),
            blockage_prob: b_prob,
            blockage_loss_db: b_loss,
            freq_term_db: model.freq10 * (band.freq_mhz / 1000.0).log10(),
        }
    }

    /// Median path loss at `dist_m` with the precomputed frequency term;
    /// bit-identical to `model.loss_db(dist_m, band.freq_mhz)`.
    #[inline]
    fn path_loss_db(&self, dist_m: f64) -> f64 {
        let d = dist_m.max(10.0);
        self.model.offset_db + self.model.exp10 * d.log10() + self.freq_term_db
    }

    /// The band this channel carries.
    pub fn band(&self) -> Band {
        self.band
    }

    /// Received power (RSRP-like) in dBm at `ue` position and time `t`,
    /// for a cell located at `site`.
    pub fn received_dbm(&self, site: &Point, ue: &Point, t: f64) -> f64 {
        let mut scratch = ChannelCache::default();
        self.received_dbm_cached(site, ue, t, &mut scratch)
    }

    /// [`Propagation::received_dbm`] with the noise-lattice hashes memoized
    /// in `cache` — the per-tick snapshot's fast path. Bit-identical; `cache`
    /// must be dedicated to this cell's channel (see [`ChannelCache`]).
    pub fn received_dbm_cached(&self, site: &Point, ue: &Point, t: f64, cache: &mut ChannelCache) -> f64 {
        let dist = site.distance(ue);
        let mut rx = self.tx_power_dbm - self.path_loss_db(dist)
            + self.shadowing.sample_cached(ue, &mut cache.shadowing)
            + self.fading.sample(t);
        let blocked = self.blockage_prob > 0.0
            && self.blockage.sample_uniform_cell_cached(ue, &mut cache.blockage) < self.blockage_prob;
        if blocked {
            rx -= self.blockage_loss_db;
        }
        rx
    }

    /// Median (no shadowing/fading/blockage) received power at distance `d`.
    pub fn median_received_dbm(&self, dist_m: f64) -> f64 {
        self.tx_power_dbm - self.path_loss_db(dist_m)
    }

    /// Distance at which the median received power crosses `threshold_dbm`.
    ///
    /// This is the analytic cell radius used by the deployment generator to
    /// derive sensible inter-site distances per band.
    pub fn median_range_m(&self, threshold_dbm: f64) -> f64 {
        // threshold = tx - (offset + exp10*log10(d) + freq10*log10(f))
        let budget = self.tx_power_dbm
            - threshold_dbm
            - self.model.offset_db
            - self.model.freq10 * (self.band.freq_mhz / 1000.0).log10();
        10f64.powf(budget / self.model.exp10).max(10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::catalog::*;

    #[test]
    fn loss_grows_with_distance() {
        let m = PathLoss::SUB6;
        assert!(m.loss_db(100.0, 600.0) < m.loss_db(1000.0, 600.0));
    }

    #[test]
    fn loss_grows_with_frequency() {
        let m = PathLoss::SUB6;
        assert!(m.loss_db(500.0, 600.0) < m.loss_db(500.0, 2500.0));
        assert!(m.loss_db(500.0, 2500.0) < PathLoss::MMWAVE.loss_db(500.0, 39000.0));
    }

    #[test]
    fn distance_is_clamped_near_site() {
        let m = PathLoss::SUB6;
        assert_eq!(m.loss_db(0.0, 600.0), m.loss_db(10.0, 600.0));
    }

    #[test]
    fn cell_radius_ordering_low_mid_mmwave() {
        // The paper's coverage ordering (§6.1): low > mid > mmWave.
        let low = Propagation::new(1, N71, 46.0).median_range_m(-110.0);
        let mid = Propagation::new(2, N41, 46.0).median_range_m(-110.0);
        let mm = Propagation::new(3, N260, 55.0).median_range_m(-110.0);
        assert!(low > mid, "low {low} should out-range mid {mid}");
        assert!(mid > mm, "mid {mid} should out-range mmWave {mm}");
    }

    #[test]
    fn median_range_round_trips() {
        let p = Propagation::new(4, N41, 46.0);
        let r = p.median_range_m(-105.0);
        assert!((p.median_received_dbm(r) - -105.0).abs() < 1e-6);
    }

    #[test]
    fn received_power_is_deterministic() {
        let p = Propagation::new(5, N71, 46.0);
        let site = Point::ORIGIN;
        let ue = Point::new(400.0, 120.0);
        assert_eq!(p.received_dbm(&site, &ue, 3.2), p.received_dbm(&site, &ue, 3.2));
    }

    #[test]
    fn received_power_declines_with_distance_on_average() {
        let p = Propagation::new(6, N71, 46.0);
        let site = Point::ORIGIN;
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..100 {
            let bearing = i as f64 * 0.063;
            near += p.received_dbm(&site, &site.displaced(bearing, 200.0), 0.0);
            far += p.received_dbm(&site, &site.displaced(bearing, 2000.0), 0.0);
        }
        assert!(near / 100.0 > far / 100.0 + 10.0);
    }

    #[test]
    fn cached_received_power_is_bit_identical() {
        // one cache per cell, reused along a route — both band classes so the
        // blockage branch is exercised
        for (seed, band, tx) in [(41u64, N71, 46.0), (42, N260, 55.0)] {
            let p = Propagation::new(seed, band, tx);
            let site = Point::ORIGIN;
            let mut cache = ChannelCache::default();
            for i in 0..2000 {
                let ue = Point::new(30.0 + i as f64 * 0.3, (i as f64 * 0.07).cos() * 25.0);
                let t = i as f64 * 0.1;
                assert_eq!(
                    p.received_dbm_cached(&site, &ue, t, &mut cache),
                    p.received_dbm(&site, &ue, t),
                    "band {} diverged at step {i}",
                    band.name
                );
            }
        }
    }

    #[test]
    fn mmwave_experiences_blockage() {
        let p = Propagation::new(7, N260, 55.0);
        let site = Point::ORIGIN;
        let mut blocked = 0;
        let n = 400;
        for i in 0..n {
            let ue = Point::new(100.0 + i as f64 * 16.0, 40.0);
            let rx = p.received_dbm(&site, &ue, 0.0);
            let median = p.median_received_dbm(site.distance(&ue));
            if rx < median - 15.0 {
                blocked += 1;
            }
        }
        // ~30% of positions should be blockage-attenuated (loosely)
        assert!(blocked > n / 10, "expected noticeable blockage, got {blocked}/{n}");
    }

    #[test]
    fn sub6_has_no_blockage() {
        let p = Propagation::new(8, N71, 46.0);
        let site = Point::ORIGIN;
        let mut worst = 0.0f64;
        for i in 0..400 {
            let ue = Point::new(100.0 + i as f64 * 16.0, 40.0);
            let rx = p.received_dbm(&site, &ue, 0.0);
            let median = p.median_received_dbm(site.distance(&ue));
            worst = worst.max(median - rx);
        }
        // shadowing+fading only: deficits stay within ~5 sigma
        assert!(worst < 45.0, "unexpected deep fade {worst} dB");
    }
}
