//! LTE and 5G-NR frequency bands.
//!
//! The paper groups bands into **low-band** (< 1 GHz, e.g. n71), **mid-band**
//! (1–6 GHz, e.g. n41/b2) and **mmWave** (> 24 GHz, e.g. n260/n261), and its
//! findings are organized along exactly that axis: coverage (§6.1), HO
//! frequency (§5.1) and throughput all follow band class.

use serde::{Deserialize, Serialize};

/// The paper's three-way band classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BandClass {
    /// Sub-1 GHz: widest coverage, lowest bandwidth (e.g. n71 @ 600 MHz).
    Low,
    /// 1–6 GHz: the LTE workhorse range and 5G mid-band (e.g. n41 @ 2.5 GHz).
    Mid,
    /// 24 GHz+: tiny cells, beams, multi-Gbps (e.g. n260 @ 39 GHz).
    MmWave,
}

impl BandClass {
    /// Classifies a carrier frequency in MHz.
    pub fn from_freq_mhz(f: f64) -> Self {
        if f < 1000.0 {
            BandClass::Low
        } else if f < 7125.0 {
            BandClass::Mid
        } else {
            BandClass::MmWave
        }
    }

    /// Short label used in experiment output ("Low-Band", "Mid-Band",
    /// "mmWave"), matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            BandClass::Low => "Low-Band",
            BandClass::Mid => "Mid-Band",
            BandClass::MmWave => "mmWave",
        }
    }
}

/// Radio access technology of a band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandTech {
    /// 4G LTE (E-UTRA).
    Lte,
    /// 5G New Radio.
    Nr,
}

/// A concrete carrier band: 3GPP name, center frequency and channel width.
///
/// Bandwidth drives achievable throughput ([`crate::capacity`]); frequency
/// drives path loss and therefore cell size ([`crate::propagation`]).
///
/// `Band` is a plain `Copy` value with a `&'static str` name; traces that
/// need serialization store the name and [`BandClass`] instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// 3GPP band name, e.g. "n71", "n41", "n260", "b2", "b66".
    pub name: &'static str,
    /// LTE or NR.
    pub tech: BandTech,
    /// Carrier center frequency in MHz.
    pub freq_mhz: f64,
    /// Aggregated channel bandwidth in MHz.
    pub bandwidth_mhz: f64,
}

impl Band {
    /// The band's low/mid/mmWave class.
    pub fn class(&self) -> BandClass {
        BandClass::from_freq_mhz(self.freq_mhz)
    }

    /// True for 5G-NR bands.
    pub fn is_nr(&self) -> bool {
        self.tech == BandTech::Nr
    }
}

/// Catalog of the bands used by the study's three carriers.
///
/// Frequencies are representative of U.S. deployments circa 2021/2022.
pub mod catalog {
    use super::{Band, BandTech};

    /// NR low-band n71 (600 MHz), 20 MHz channel — OpY/OpZ low-band 5G.
    pub const N71: Band = Band { name: "n71", tech: BandTech::Nr, freq_mhz: 617.0, bandwidth_mhz: 20.0 };
    /// NR low-band n5 (850 MHz) — OpX low-band 5G ("5G nationwide").
    pub const N5: Band = Band { name: "n5", tech: BandTech::Nr, freq_mhz: 881.0, bandwidth_mhz: 10.0 };
    /// NR mid-band n41 (2.5 GHz), 100 MHz — OpY mid-band ("ultra capacity").
    pub const N41: Band = Band { name: "n41", tech: BandTech::Nr, freq_mhz: 2593.0, bandwidth_mhz: 100.0 };
    /// NR mid-band n77 (C-band, 3.7 GHz), 60 MHz.
    pub const N77: Band = Band { name: "n77", tech: BandTech::Nr, freq_mhz: 3750.0, bandwidth_mhz: 60.0 };
    /// NR mmWave n260 (39 GHz), 400 MHz aggregated.
    pub const N260: Band = Band { name: "n260", tech: BandTech::Nr, freq_mhz: 39000.0, bandwidth_mhz: 400.0 };
    /// NR mmWave n261 (28 GHz), 400 MHz aggregated.
    pub const N261: Band = Band { name: "n261", tech: BandTech::Nr, freq_mhz: 28000.0, bandwidth_mhz: 400.0 };

    /// LTE low-band b12 (700 MHz), 10 MHz.
    pub const B12: Band = Band { name: "b12", tech: BandTech::Lte, freq_mhz: 737.0, bandwidth_mhz: 10.0 };
    /// LTE low-band b5 (850 MHz), 10 MHz.
    pub const B5: Band = Band { name: "b5", tech: BandTech::Lte, freq_mhz: 881.5, bandwidth_mhz: 10.0 };
    /// LTE mid-band b2 (1.9 GHz PCS), 20 MHz — the NSA-4C anchor band.
    pub const B2: Band = Band { name: "b2", tech: BandTech::Lte, freq_mhz: 1960.0, bandwidth_mhz: 20.0 };
    /// LTE mid-band b4/b66 (AWS 1.7/2.1 GHz), 20 MHz.
    pub const B66: Band = Band { name: "b66", tech: BandTech::Lte, freq_mhz: 2130.0, bandwidth_mhz: 20.0 };
    /// LTE mid-band b41 (2.5 GHz), 20 MHz.
    pub const B41: Band = Band { name: "b41", tech: BandTech::Lte, freq_mhz: 2593.0, bandwidth_mhz: 20.0 };
    /// LTE mid-band b30 (2.3 GHz WCS), 10 MHz.
    pub const B30: Band = Band { name: "b30", tech: BandTech::Lte, freq_mhz: 2355.0, bandwidth_mhz: 10.0 };
    /// LTE low-band b13 (700 MHz upper C), 10 MHz.
    pub const B13: Band = Band { name: "b13", tech: BandTech::Lte, freq_mhz: 751.0, bandwidth_mhz: 10.0 };
    /// LTE low-band b14 (700 MHz FirstNet), 10 MHz.
    pub const B14: Band = Band { name: "b14", tech: BandTech::Lte, freq_mhz: 763.0, bandwidth_mhz: 10.0 };
    /// LTE mid-band b25 (1.9 GHz extended PCS), 15 MHz.
    pub const B25: Band = Band { name: "b25", tech: BandTech::Lte, freq_mhz: 1962.5, bandwidth_mhz: 15.0 };
    /// LTE low-band b26 (850 MHz extended), 10 MHz.
    pub const B26: Band = Band { name: "b26", tech: BandTech::Lte, freq_mhz: 866.0, bandwidth_mhz: 10.0 };
    /// LTE low-band b71 (600 MHz), 15 MHz.
    pub const B71: Band = Band { name: "b71", tech: BandTech::Lte, freq_mhz: 622.0, bandwidth_mhz: 15.0 };
    /// LTE mid-band b29 (700 MHz SDL — grouped low but used as supplemental), 10 MHz.
    pub const B29: Band = Band { name: "b29", tech: BandTech::Lte, freq_mhz: 722.0, bandwidth_mhz: 10.0 };
    /// LTE mid-band b48 (3.5 GHz CBRS), 20 MHz.
    pub const B48: Band = Band { name: "b48", tech: BandTech::Lte, freq_mhz: 3600.0, bandwidth_mhz: 20.0 };
    /// LTE mid-band b4 (AWS 1.7/2.1 GHz), 15 MHz.
    pub const B4: Band = Band { name: "b4", tech: BandTech::Lte, freq_mhz: 2115.0, bandwidth_mhz: 15.0 };
    /// LTE mid-band b46 (5 GHz LAA), 20 MHz.
    pub const B46: Band = Band { name: "b46", tech: BandTech::Lte, freq_mhz: 5200.0, bandwidth_mhz: 20.0 };
    /// NR mid-band n2 (1.9 GHz DSS), 20 MHz.
    pub const N2: Band = Band { name: "n2", tech: BandTech::Nr, freq_mhz: 1960.0, bandwidth_mhz: 20.0 };
}

#[cfg(test)]
mod tests {
    use super::catalog::*;
    use super::*;

    #[test]
    fn classification_thresholds() {
        assert_eq!(BandClass::from_freq_mhz(617.0), BandClass::Low);
        assert_eq!(BandClass::from_freq_mhz(999.9), BandClass::Low);
        assert_eq!(BandClass::from_freq_mhz(1000.0), BandClass::Mid);
        assert_eq!(BandClass::from_freq_mhz(3750.0), BandClass::Mid);
        assert_eq!(BandClass::from_freq_mhz(28000.0), BandClass::MmWave);
    }

    #[test]
    fn catalog_classes_match_paper_grouping() {
        assert_eq!(N71.class(), BandClass::Low);
        assert_eq!(N5.class(), BandClass::Low);
        assert_eq!(N41.class(), BandClass::Mid);
        assert_eq!(N260.class(), BandClass::MmWave);
        assert_eq!(B2.class(), BandClass::Mid);
        assert_eq!(B12.class(), BandClass::Low);
    }

    #[test]
    fn nr_flag() {
        assert!(N71.is_nr());
        assert!(!B2.is_nr());
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(BandClass::Low.label(), "Low-Band");
        assert_eq!(BandClass::MmWave.label(), "mmWave");
    }

    #[test]
    fn mmwave_has_most_bandwidth() {
        assert!(N260.bandwidth_mhz > N41.bandwidth_mhz);
        assert!(N41.bandwidth_mhz > N71.bandwidth_mhz);
    }
}
