//! SINR → achievable throughput.
//!
//! The paper's throughput observations (≈2 Gbps mmWave peaks, hundreds of
//! Mbps mid-band, tens-to-low-hundreds low-band NR, tens of Mbps LTE) are
//! reproduced with a truncated Shannon mapping: spectral efficiency follows
//! `log2(1 + SINR)` up to the practical ceiling of 256-QAM MIMO systems.

/// Practical spectral-efficiency ceiling in bit/s/Hz (4-layer 256-QAM ≈ 7.4,
/// kept slightly optimistic to allow multi-Gbps mmWave).
pub const MAX_SPECTRAL_EFF: f64 = 7.4;

/// Implementation loss relative to Shannon (filtering, overhead, scheduling).
pub const IMPLEMENTATION_FACTOR: f64 = 0.65;

/// Achievable downlink throughput in Mbps for `sinr_db` over `bandwidth_mhz`.
///
/// Returns 0 below -10 dB SINR (out of sync / unusable link).
pub fn shannon_capacity_mbps(sinr_db: f64, bandwidth_mhz: f64) -> f64 {
    if sinr_db < -10.0 || bandwidth_mhz <= 0.0 {
        return 0.0;
    }
    let sinr = 10f64.powf(sinr_db / 10.0);
    let se = (IMPLEMENTATION_FACTOR * (1.0 + sinr).log2()).min(MAX_SPECTRAL_EFF);
    se * bandwidth_mhz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_below_sync_threshold() {
        assert_eq!(shannon_capacity_mbps(-15.0, 100.0), 0.0);
    }

    #[test]
    fn monotone_in_sinr() {
        let a = shannon_capacity_mbps(0.0, 20.0);
        let b = shannon_capacity_mbps(10.0, 20.0);
        let c = shannon_capacity_mbps(20.0, 20.0);
        assert!(a < b && b < c);
    }

    #[test]
    fn linear_in_bandwidth() {
        let x = shannon_capacity_mbps(15.0, 20.0);
        let y = shannon_capacity_mbps(15.0, 40.0);
        assert!((y - 2.0 * x).abs() < 1e-9);
    }

    #[test]
    fn ceiling_kicks_in_at_high_sinr() {
        let hi = shannon_capacity_mbps(40.0, 100.0);
        let higher = shannon_capacity_mbps(60.0, 100.0);
        assert_eq!(hi, higher);
        assert_eq!(hi, MAX_SPECTRAL_EFF * 100.0);
    }

    #[test]
    fn band_scale_matches_paper_magnitudes() {
        // mmWave @ 400 MHz and good SINR: multi-Gbps
        assert!(shannon_capacity_mbps(22.0, 400.0) > 1500.0);
        // LTE 20 MHz @ decent SINR: tens of Mbps
        let lte = shannon_capacity_mbps(12.0, 20.0);
        assert!(lte > 30.0 && lte < 120.0, "{lte}");
        // NR low-band 20 MHz is the same order as LTE
        let nr_low = shannon_capacity_mbps(15.0, 20.0);
        assert!(nr_low < 200.0);
        // mid-band 100 MHz: hundreds of Mbps
        let mid = shannon_capacity_mbps(15.0, 100.0);
        assert!(mid > 250.0 && mid < 1000.0, "{mid}");
    }

    #[test]
    fn zero_bandwidth_is_zero() {
        assert_eq!(shannon_capacity_mbps(20.0, 0.0), 0.0);
    }
}
