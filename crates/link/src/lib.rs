//! Data-plane model: capacity, RTT, TCP dynamics and application flows.
//!
//! This is the layer where the paper's application-visible effects appear:
//! HO execution halts the affected radios, NSA's bearer mode decides whether
//! LTE can absorb a 5G interruption (§4.2), and the dual-mode path through
//! the eNB adds forwarding latency. The crate is deliberately independent of
//! the RAN structures: its inputs are plain [`DownlinkState`] snapshots the
//! simulator derives each tick, so it can also replay recorded traces
//! (the Mahimahi role in §7.4).
//!
//! * [`capacity`] — leg capacities + bearer composition → throughput & RTT;
//! * [`tcp`] — CUBIC and BBR senders over a bottleneck queue;
//! * [`flows`] — bulk (iPerf-like) and CBR (conferencing/gaming) flows.

pub mod capacity;
pub mod flows;
pub mod tcp;

pub use capacity::{compose, load_share, load_share_shifted, Bearer, DownlinkState, PathOutcome};
pub use flows::{BulkFlow, CbrFlow, CbrSample};
pub use tcp::{BbrSender, Cca, CubicSender, TcpFlow, TcpSample};
