//! TCP congestion control over a time-varying bottleneck.
//!
//! The iPerf experiments (§3, §4.2, §6.2) run CUBIC and BBR over the
//! cellular downlink. We model the path as a single bottleneck queue whose
//! service rate is the per-tick capacity from [`crate::capacity`]:
//!
//! * the sender paces `cwnd / RTT` (CUBIC) or `pacing_gain × btl_bw` (BBR);
//! * the queue drains at capacity; standing queue adds `queue / capacity`
//!   of delay to the base RTT (this is where dual-mode vs 5G-only RTT
//!   behaviour during HOs comes from, Fig. 7);
//! * overflow beyond the buffer drops packets: CUBIC reacts multiplicatively,
//!   BBR ignores isolated loss but refreshes its bandwidth sample.

use serde::{Deserialize, Serialize};

/// Which congestion-control algorithm a [`TcpFlow`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cca {
    /// Loss-based CUBIC (RFC 8312 shape).
    Cubic,
    /// Model of BBRv1's steady state (bandwidth-probing rate control).
    Bbr,
}

/// Per-tick observable state of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpSample {
    /// Time, s.
    pub t: f64,
    /// Goodput delivered this tick, Mbps.
    pub goodput_mbps: f64,
    /// Smoothed RTT, ms.
    pub rtt_ms: f64,
    /// Packets were lost this tick.
    pub lost: bool,
}

/// CUBIC window state.
#[derive(Debug, Clone)]
pub struct CubicSender {
    cwnd_mb: f64,
    w_max_mb: f64,
    epoch_t: f64,
    k: f64,
}

const CUBIC_C: f64 = 0.4 * 8.0; // classic C=0.4 (in MB/s^3), here in Mb
const CUBIC_BETA: f64 = 0.7;

impl CubicSender {
    fn new() -> Self {
        Self { cwnd_mb: 0.4, w_max_mb: 0.4, epoch_t: 0.0, k: 0.0 }
    }

    fn on_loss(&mut self, t: f64) {
        self.w_max_mb = self.cwnd_mb;
        self.cwnd_mb = (self.cwnd_mb * CUBIC_BETA).max(0.05);
        self.epoch_t = t;
        self.k = ((self.w_max_mb * (1.0 - CUBIC_BETA)) / CUBIC_C).cbrt();
    }

    fn update(&mut self, t: f64) {
        let dt = t - self.epoch_t;
        let target = CUBIC_C * (dt - self.k).powi(3) + self.w_max_mb;
        self.cwnd_mb = target.max(0.05).min(4000.0);
    }

    fn rate_mbps(&self, rtt_s: f64) -> f64 {
        self.cwnd_mb / rtt_s.max(1e-3)
    }
}

/// BBR-flavoured rate state.
#[derive(Debug, Clone)]
pub struct BbrSender {
    btl_bw_mbps: f64,
    /// Windowed-max filter over recent delivery-rate samples.
    bw_samples: Vec<(f64, f64)>,
    cycle_start: f64,
}

const BBR_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
const BBR_BW_WINDOW_S: f64 = 3.0;

impl BbrSender {
    fn new() -> Self {
        Self { btl_bw_mbps: 2.0, bw_samples: Vec::new(), cycle_start: 0.0 }
    }

    fn on_delivery(&mut self, t: f64, rate_mbps: f64) {
        self.bw_samples.push((t, rate_mbps));
        self.bw_samples.retain(|&(ts, _)| t - ts <= BBR_BW_WINDOW_S);
        self.btl_bw_mbps = self.bw_samples.iter().map(|&(_, r)| r).fold(0.5, f64::max);
    }

    fn pacing_rate(&self, t: f64, rtt_s: f64) -> f64 {
        let phase = (((t - self.cycle_start) / rtt_s.max(0.01)) as usize) % BBR_CYCLE.len();
        self.btl_bw_mbps * BBR_CYCLE[phase]
    }
}

#[derive(Debug, Clone)]
enum Sender {
    Cubic(CubicSender),
    Bbr(BbrSender),
}

/// A long-lived TCP flow over the modelled bottleneck.
#[derive(Debug, Clone)]
pub struct TcpFlow {
    sender: Sender,
    /// Standing bottleneck queue, Mb.
    queue_mb: f64,
    /// Bottleneck buffer, Mb (≈ 50 ms at 1 Gbps).
    buffer_mb: f64,
    srtt_ms: f64,
    bytes_delivered: f64,
}

impl TcpFlow {
    /// Creates a flow with the chosen congestion controller.
    pub fn new(cca: Cca) -> Self {
        Self {
            sender: match cca {
                Cca::Cubic => Sender::Cubic(CubicSender::new()),
                Cca::Bbr => Sender::Bbr(BbrSender::new()),
            },
            queue_mb: 0.0,
            buffer_mb: 50.0,
            srtt_ms: 40.0,
            bytes_delivered: 0.0,
        }
    }

    /// Total bytes delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Advances the flow one tick of `dt` seconds with the current path
    /// (`capacity_mbps`, `base_rtt_ms`).
    pub fn step(&mut self, t: f64, dt: f64, capacity_mbps: f64, base_rtt_ms: f64) -> TcpSample {
        // current RTT includes queueing delay
        let q_delay_ms = if capacity_mbps > 0.01 {
            (self.queue_mb / capacity_mbps) * 1000.0
        } else {
            // path stalled: delay accrues as the queue has no service; cap
            // at a 2 s timeout-ish ceiling
            2000.0
        };
        let rtt_ms = base_rtt_ms + q_delay_ms.min(2000.0);
        let rtt_s = rtt_ms / 1000.0;

        // sending rate
        let send_mbps = match &mut self.sender {
            Sender::Cubic(c) => {
                c.update(t);
                c.rate_mbps(rtt_s)
            }
            Sender::Bbr(b) => {
                // BBR caps inflight at ~2×BDP: stop pacing once the standing
                // queue exceeds it (this is what keeps BBR's RTT low)
                let bdp_mb = b.btl_bw_mbps * (base_rtt_ms / 1000.0);
                if self.queue_mb > 2.0 * bdp_mb.max(0.05) {
                    0.0
                } else {
                    b.pacing_rate(t, rtt_s)
                }
            }
        };

        // queue evolution
        let arrivals = send_mbps * dt;
        let served = (capacity_mbps * dt).min(self.queue_mb + arrivals);
        let mut lost = false;
        self.queue_mb = self.queue_mb + arrivals - served;
        if self.queue_mb > self.buffer_mb {
            self.queue_mb = self.buffer_mb;
            lost = true;
        }

        let goodput = served / dt.max(1e-9);
        self.bytes_delivered += served * 1e6 / 8.0;
        self.srtt_ms = 0.8 * self.srtt_ms + 0.2 * rtt_ms;

        match &mut self.sender {
            Sender::Cubic(c) => {
                if lost {
                    c.on_loss(t);
                }
            }
            Sender::Bbr(b) => {
                if capacity_mbps > 0.01 {
                    b.on_delivery(t, goodput);
                }
            }
        }

        TcpSample { t, goodput_mbps: goodput, rtt_ms: self.srtt_ms, lost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_constant(cca: Cca, capacity: f64, secs: f64) -> Vec<TcpSample> {
        let mut f = TcpFlow::new(cca);
        let dt = 0.02;
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < secs {
            out.push(f.step(t, dt, capacity, 30.0));
            t += dt;
        }
        out
    }

    fn mean_goodput(samples: &[TcpSample]) -> f64 {
        let tail = &samples[samples.len() / 2..];
        tail.iter().map(|s| s.goodput_mbps).sum::<f64>() / tail.len() as f64
    }

    #[test]
    fn cubic_converges_to_capacity() {
        let s = run_constant(Cca::Cubic, 100.0, 30.0);
        let g = mean_goodput(&s);
        assert!(g > 75.0 && g <= 101.0, "cubic goodput {g}");
    }

    #[test]
    fn bbr_converges_to_capacity() {
        let s = run_constant(Cca::Bbr, 100.0, 30.0);
        let g = mean_goodput(&s);
        assert!(g > 80.0 && g <= 101.0, "bbr goodput {g}");
    }

    #[test]
    fn bbr_keeps_queue_smaller_than_cubic() {
        let c = run_constant(Cca::Cubic, 50.0, 30.0);
        let b = run_constant(Cca::Bbr, 50.0, 30.0);
        let rtt = |v: &[TcpSample]| {
            let tail = &v[v.len() / 2..];
            tail.iter().map(|s| s.rtt_ms).sum::<f64>() / tail.len() as f64
        };
        assert!(rtt(&b) < rtt(&c), "bbr rtt {} vs cubic {}", rtt(&b), rtt(&c));
    }

    #[test]
    fn stall_inflates_rtt_and_zeroes_goodput() {
        let mut f = TcpFlow::new(Cca::Bbr);
        let dt = 0.02;
        let mut t = 0.0;
        // warm up
        while t < 10.0 {
            f.step(t, dt, 200.0, 30.0);
            t += dt;
        }
        let before = f.step(t, dt, 200.0, 30.0);
        // interruption: capacity 0 for 150 ms
        let mut worst_rtt: f64 = 0.0;
        for _ in 0..8 {
            t += dt;
            let s = f.step(t, dt, 0.0, 30.0);
            assert_eq!(s.goodput_mbps, 0.0);
            worst_rtt = worst_rtt.max(s.rtt_ms);
        }
        assert!(worst_rtt > before.rtt_ms * 1.2, "{worst_rtt} vs {}", before.rtt_ms);
    }

    #[test]
    fn recovers_after_interruption() {
        let mut f = TcpFlow::new(Cca::Cubic);
        let dt = 0.02;
        let mut t = 0.0;
        while t < 15.0 {
            f.step(t, dt, 100.0, 30.0);
            t += dt;
        }
        for _ in 0..10 {
            t += dt;
            f.step(t, dt, 0.0, 30.0);
        }
        let mut tail = Vec::new();
        while t < 35.0 {
            tail.push(f.step(t, dt, 100.0, 30.0));
            t += dt;
        }
        let g = mean_goodput(&tail);
        assert!(g > 70.0, "post-interruption goodput {g}");
    }

    #[test]
    fn goodput_never_exceeds_capacity_plus_drain() {
        for cca in [Cca::Cubic, Cca::Bbr] {
            let s = run_constant(cca, 80.0, 10.0);
            for x in &s {
                // served rate can't exceed capacity (queue only delays)
                assert!(x.goodput_mbps <= 80.0 + 1e-6);
            }
        }
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut f = TcpFlow::new(Cca::Bbr);
        let dt = 0.02;
        let mut t = 0.0;
        while t < 10.0 {
            f.step(t, dt, 100.0, 30.0);
            t += dt;
        }
        // ~10 s at <=100 Mbps => <= 125 MB, and something substantial
        assert!(f.bytes_delivered() > 2e7);
        assert!(f.bytes_delivered() <= 1.26e8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn goodput_never_exceeds_capacity(
            caps in proptest::collection::vec(0.0..500.0f64, 10..200),
            cubic in proptest::bool::ANY,
        ) {
            let mut f = TcpFlow::new(if cubic { Cca::Cubic } else { Cca::Bbr });
            let mut t = 0.0;
            for &cap in &caps {
                // several ticks per capacity step
                for _ in 0..5 {
                    let s = f.step(t, 0.02, cap, 30.0);
                    prop_assert!(s.goodput_mbps <= cap + 1e-6);
                    prop_assert!(s.rtt_ms >= 0.0);
                    prop_assert!(s.rtt_ms.is_finite());
                    t += 0.02;
                }
            }
        }
    }
}
