//! Application flows over the modelled downlink.
//!
//! * [`BulkFlow`] — an iPerf3-style saturating download (used for §6.2's
//!   throughput-around-HO analysis and the ABR bandwidth traces of §7.4);
//! * [`CbrFlow`] — a constant-bitrate real-time stream with per-frame
//!   deadlines (video conferencing at ~1 Mbps, cloud gaming at 4K60).

use crate::capacity::PathOutcome;
use crate::tcp::{Cca, TcpFlow, TcpSample};
use fiveg_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// Capacity below which a flow considers the path stalled, Mbps.
const STALL_CAP_MBPS: f64 = 0.01;

/// Tracks stalled-interval transitions for a flow and journals them.
#[derive(Debug, Clone, Default)]
struct StallTracker {
    telemetry: Telemetry,
    since: Option<f64>,
}

impl StallTracker {
    /// Feeds one tick's stalled/flowing state at time `t`.
    fn observe(&mut self, flow: &'static str, t: f64, stalled: bool) {
        if !self.telemetry.is_enabled() {
            return;
        }
        match (self.since, stalled) {
            (None, true) => {
                self.since = Some(t);
                self.telemetry.incr(&format!("{flow}.stalls"));
                self.telemetry.record(t, Event::StallStart { flow: flow.to_string() });
            }
            (Some(start), false) => {
                self.since = None;
                self.telemetry.observe(&format!("{flow}.stall_s"), t - start);
                self.telemetry.record(t, Event::StallEnd { flow: flow.to_string(), duration_s: t - start });
            }
            _ => {}
        }
    }
}

/// An always-backlogged TCP download.
#[derive(Debug, Clone)]
pub struct BulkFlow {
    tcp: TcpFlow,
    samples: Vec<TcpSample>,
    retain: bool,
    stall: StallTracker,
}

impl BulkFlow {
    /// Starts a bulk download with the given congestion controller.
    pub fn new(cca: Cca) -> Self {
        Self { tcp: TcpFlow::new(cca), samples: Vec::new(), retain: true, stall: StallTracker::default() }
    }

    /// Installs a telemetry recorder (disabled by default): stalled
    /// intervals (no path capacity) are counted and journaled.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.stall.telemetry = tele;
    }

    /// Whether per-tick samples are kept for [`BulkFlow::samples`] (on by
    /// default). Retention is pure logging — the TCP state machine never
    /// reads past samples — so turning it off changes no returned sample;
    /// summary-only fleet runs switch it off to keep memory flat.
    pub fn retain_samples(&mut self, keep: bool) {
        self.retain = keep;
    }

    /// Advances one tick; records and returns the sample.
    pub fn step(&mut self, t: f64, dt: f64, path: &PathOutcome) -> TcpSample {
        self.stall.observe("bulk", t, path.capacity_mbps <= STALL_CAP_MBPS);
        let s = self.tcp.step(t, dt, path.capacity_mbps, path.base_rtt_ms);
        if self.retain {
            self.samples.push(s);
        }
        s
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[TcpSample] {
        &self.samples
    }

    /// Total bytes delivered.
    pub fn bytes_delivered(&self) -> f64 {
        self.tcp.bytes_delivered()
    }
}

/// One observation window of a CBR stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbrSample {
    /// Time, s.
    pub t: f64,
    /// End-to-end latency of frames sent this tick, ms.
    pub latency_ms: f64,
    /// Fraction of this tick's frames lost/dropped (0..=1).
    pub loss: f64,
}

/// A real-time constant-bitrate stream (RTP-like over UDP).
///
/// Frames arrive at `rate_mbps`; a frame is **lost** when the path has no
/// capacity for it within the frame deadline, and **late** frames count as
/// dropped for the gaming workload (the paper's "dropped frames").
#[derive(Debug, Clone)]
pub struct CbrFlow {
    rate_mbps: f64,
    deadline_ms: f64,
    /// Backlogged media bits waiting for capacity, Mb.
    backlog_mb: f64,
    samples: Vec<CbrSample>,
    retain: bool,
    stall: StallTracker,
}

impl CbrFlow {
    /// Creates a stream of `rate_mbps` with a per-frame deadline.
    pub fn new(rate_mbps: f64, deadline_ms: f64) -> Self {
        assert!(rate_mbps > 0.0);
        Self {
            rate_mbps,
            deadline_ms,
            backlog_mb: 0.0,
            samples: Vec::new(),
            retain: true,
            stall: StallTracker::default(),
        }
    }

    /// Installs a telemetry recorder (disabled by default): frame-dropping
    /// intervals are counted and journaled as stalls.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.stall.telemetry = tele;
    }

    /// Whether per-tick samples are kept for [`CbrFlow::samples`] (on by
    /// default). Retention is pure logging — the backlog model never reads
    /// past samples — so turning it off changes no returned sample;
    /// summary-only fleet runs switch it off to keep memory flat.
    pub fn retain_samples(&mut self, keep: bool) {
        self.retain = keep;
    }

    /// Advances one tick over the current path.
    pub fn step(&mut self, t: f64, dt: f64, path: &PathOutcome) -> CbrSample {
        let offered = self.rate_mbps * dt;
        self.backlog_mb += offered;
        let served = (path.capacity_mbps * dt).min(self.backlog_mb);
        self.backlog_mb -= served;

        // Queueing latency of the media backlog on top of the base RTT/2
        // (one-way), in ms.
        let q_ms = if path.capacity_mbps > 0.01 {
            self.backlog_mb / path.capacity_mbps * 1000.0
        } else {
            self.deadline_ms * 4.0
        };
        let latency = path.base_rtt_ms / 2.0 + q_ms;

        // Anything still backlogged beyond the deadline's worth of data is
        // dropped (stale media is useless).
        let deadline_budget_mb = self.rate_mbps * self.deadline_ms / 1000.0;
        let mut loss = 0.0;
        if self.backlog_mb > deadline_budget_mb {
            let dropped = self.backlog_mb - deadline_budget_mb;
            loss = (dropped / offered.max(1e-9)).min(1.0);
            self.backlog_mb = deadline_budget_mb;
        }

        self.stall.observe("cbr", t, loss > 0.0);
        let s = CbrSample { t, latency_ms: latency, loss };
        if self.retain {
            self.samples.push(s);
        }
        s
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[CbrSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(cap: f64) -> PathOutcome {
        PathOutcome { capacity_mbps: cap, base_rtt_ms: 30.0 }
    }

    #[test]
    fn cbr_under_provisioned_path_is_clean() {
        let mut f = CbrFlow::new(1.0, 150.0);
        let mut t = 0.0;
        for _ in 0..500 {
            let s = f.step(t, 0.02, &path(50.0));
            assert_eq!(s.loss, 0.0);
            assert!(s.latency_ms < 20.0);
            t += 0.02;
        }
    }

    #[test]
    fn cbr_interruption_causes_latency_spike_and_loss() {
        let mut f = CbrFlow::new(30.0, 100.0);
        let mut t = 0.0;
        for _ in 0..100 {
            f.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        let clean = f.step(t, 0.02, &path(100.0));
        // 200 ms outage
        let mut worst = clean;
        let mut lost = 0.0;
        for _ in 0..10 {
            t += 0.02;
            let s = f.step(t, 0.02, &path(0.0));
            if s.latency_ms > worst.latency_ms {
                worst = s;
            }
            lost += s.loss;
        }
        assert!(worst.latency_ms > clean.latency_ms * 2.0);
        assert!(lost > 0.0, "sustained outage must drop frames");
    }

    #[test]
    fn cbr_recovers_after_outage() {
        let mut f = CbrFlow::new(30.0, 100.0);
        let mut t = 0.0;
        for _ in 0..100 {
            f.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        for _ in 0..10 {
            f.step(t, 0.02, &path(0.0));
            t += 0.02;
        }
        let mut last = CbrSample { t, latency_ms: 1e9, loss: 1.0 };
        for _ in 0..100 {
            last = f.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        assert_eq!(last.loss, 0.0);
        assert!(last.latency_ms < 30.0);
    }

    #[test]
    fn bulk_flow_records_samples() {
        let mut b = BulkFlow::new(Cca::Bbr);
        let mut t = 0.0;
        for _ in 0..200 {
            b.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        assert_eq!(b.samples().len(), 200);
        assert!(b.bytes_delivered() > 0.0);
    }

    #[test]
    fn stall_events_journal_outage_intervals() {
        use fiveg_telemetry::TelemetryConfig;
        let tele = Telemetry::new(TelemetryConfig::on());
        let mut f = CbrFlow::new(30.0, 100.0);
        f.set_telemetry(tele.clone());
        let mut t = 0.0;
        for _ in 0..50 {
            f.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        for _ in 0..20 {
            f.step(t, 0.02, &path(0.0));
            t += 0.02;
        }
        for _ in 0..50 {
            f.step(t, 0.02, &path(100.0));
            t += 0.02;
        }
        assert_eq!(tele.counter_value("cbr.stalls"), 1);
        let jsonl = tele.journal_jsonl();
        assert!(jsonl.contains("\"kind\":\"stall_start\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\":\"stall_end\""), "{jsonl}");
        assert!(tele.histogram_snapshot("cbr.stall_s").unwrap().count == 1);
    }

    #[test]
    fn cbr_loss_bounded_by_one() {
        let mut f = CbrFlow::new(10.0, 50.0);
        let mut t = 0.0;
        for _ in 0..300 {
            let s = f.step(t, 0.02, &path(0.0));
            assert!(s.loss <= 1.0);
            t += 0.02;
        }
    }
}
