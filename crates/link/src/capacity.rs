//! Downlink capacity and base RTT composition per bearer mode (§4.2).
//!
//! NSA's data plane can run in two modes:
//!
//! * **dual** (MCG split bearer): traffic goes over *both* radios; the 5G
//!   share detours core → eNB → gNB, adding forwarding latency, but an NR
//!   interruption leaves the LTE leg flowing — "the dual mode absorbs HO
//!   fluctuations";
//! * **5G-only** (SCG bearer): everything rides NR; lowest RTT when
//!   connected ("5G data is directly sent to the gNB"), but an NR HO stalls
//!   everything — "RTT can inflate by up to 37–58% in the median case".

use serde::{Deserialize, Serialize};

/// Data-plane bearer composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bearer {
    /// Pure LTE (no NR leg / LTE-only service).
    LteOnly,
    /// NSA MCG split bearer: LTE + NR ("dual mode").
    Dual,
    /// NSA SCG bearer or SA: all data on NR ("5G-only mode").
    NrOnly,
}

/// Snapshot of the downlink at one tick, as derived by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownlinkState {
    /// LTE leg capacity (fair share applied), Mbps. 0 when detached.
    pub lte_mbps: f64,
    /// NR leg capacity, Mbps. 0 when no SCG / out of coverage.
    pub nr_mbps: f64,
    /// LTE data plane halted by an executing HO.
    pub lte_interrupted: bool,
    /// NR data plane halted by an executing HO.
    pub nr_interrupted: bool,
    /// Bearer composition in this area.
    pub bearer: Bearer,
}

/// Composed path characteristics for the tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathOutcome {
    /// Usable downlink capacity, Mbps.
    pub capacity_mbps: f64,
    /// Base (unloaded) RTT of the composed path, ms.
    pub base_rtt_ms: f64,
}

/// Core-network RTT floor (UE ↔ nearby server), ms.
pub const CORE_RTT_MS: f64 = 22.0;
/// Extra RTT of the LTE radio leg vs NR, ms.
pub const LTE_LEG_MS: f64 = 12.0;
/// NR radio leg latency, ms.
pub const NR_LEG_MS: f64 = 4.0;
/// Forwarding penalty of the dual-mode detour (core → eNB → gNB), ms.
pub const DUAL_FORWARD_MS: f64 = 9.0;

/// Composes leg capacities into the usable downlink for this tick.
pub fn compose(s: &DownlinkState) -> PathOutcome {
    let lte_up = !s.lte_interrupted && s.lte_mbps > 0.0;
    let nr_up = !s.nr_interrupted && s.nr_mbps > 0.0;
    match s.bearer {
        Bearer::LteOnly => {
            PathOutcome { capacity_mbps: if lte_up { s.lte_mbps } else { 0.0 }, base_rtt_ms: CORE_RTT_MS + LTE_LEG_MS }
        }
        Bearer::NrOnly => {
            PathOutcome { capacity_mbps: if nr_up { s.nr_mbps } else { 0.0 }, base_rtt_ms: CORE_RTT_MS + NR_LEG_MS }
        }
        Bearer::Dual => {
            // Split bearer: both legs carry traffic. The path RTT is set by
            // the detour through the eNB; when the NR leg is down the LTE
            // leg keeps flowing (the paper's "absorbs HO fluctuations").
            let cap = (if lte_up { s.lte_mbps } else { 0.0 }) + (if nr_up { s.nr_mbps } else { 0.0 });
            PathOutcome { capacity_mbps: cap, base_rtt_ms: CORE_RTT_MS + LTE_LEG_MS.max(NR_LEG_MS + DUAL_FORWARD_MS) }
        }
    }
}

/// Fraction of a cell's capacity one UE gets when `attached` UEs (including
/// itself) hold a bearer on that cell: an equal-share scheduler, the
/// round-robin baseline of the CRRM literature.
///
/// `attached <= 1` — a UE alone on its cell, or the single-UE simulator
/// where no load table exists — is **exactly** `1.0`, so multiplying a leg
/// capacity by the share is a bit-for-bit no-op outside a loaded fleet
/// (IEEE-754 guarantees `x * 1.0 == x`). Single-UE traces and committed
/// BENCH baselines therefore stay byte-identical.
pub fn load_share(attached: u32) -> f64 {
    if attached <= 1 {
        1.0
    } else {
        1.0 / attached as f64
    }
}

/// True when two attach counts map to [`load_share`] fractions at least an
/// octave apart (one is ≤ half the other) — the event-driven fleet's
/// load-wake predicate. A parked UE records no samples, so a share change
/// can never alter its output; the wake exists so a parked UE re-engages
/// when its radio neighborhood changes *materially*, and "materially" is
/// calibrated to the share halving or doubling. That fires for the case
/// that matters — a migrating neighbor arriving on (or leaving it alone on)
/// a lightly-loaded cell, `1 ↔ 2` or `2 ↔ 4` — while the `50 ↔ 51` churn
/// of a crowded cell, whose share moves by a couple of percent, leaves the
/// sleep intact. An any-change predicate turns every sleep in a dense fleet
/// into a one-tick nap and the scheduler into pure overhead; this one keeps
/// windows alive exactly where skipping pays. Counts `0` and `1` both yield
/// a full share, so that flip never wakes anyone.
pub fn load_share_shifted(a: u32, b: u32) -> bool {
    let (sa, sb) = (load_share(a), load_share(b));
    sa.max(sb) >= 2.0 * sa.min(sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(lte: f64, nr: f64, bearer: Bearer) -> DownlinkState {
        DownlinkState { lte_mbps: lte, nr_mbps: nr, lte_interrupted: false, nr_interrupted: false, bearer }
    }

    #[test]
    fn load_share_shifted_fires_on_octave_changes_only() {
        assert!(!load_share_shifted(0, 1)); // both a full share
        assert!(!load_share_shifted(3, 3));
        assert!(load_share_shifted(1, 2)); // sole occupancy lost
        assert!(load_share_shifted(2, 4)); // share halved
        assert!(load_share_shifted(4, 0)); // cell emptied out
        assert!(!load_share_shifted(2, 3)); // sub-octave drift
        assert!(!load_share_shifted(50, 51)); // crowded-cell churn
        assert!(!load_share_shifted(51, 50));
        assert!(load_share_shifted(51, 25)); // mass exodus still wakes
    }

    #[test]
    fn nr_only_has_lowest_rtt() {
        let nr = compose(&state(50.0, 300.0, Bearer::NrOnly));
        let dual = compose(&state(50.0, 300.0, Bearer::Dual));
        let lte = compose(&state(50.0, 0.0, Bearer::LteOnly));
        assert!(nr.base_rtt_ms < dual.base_rtt_ms);
        assert!(nr.base_rtt_ms < lte.base_rtt_ms);
    }

    #[test]
    fn dual_sums_capacities() {
        let p = compose(&state(50.0, 300.0, Bearer::Dual));
        assert_eq!(p.capacity_mbps, 350.0);
    }

    #[test]
    fn nr_interruption_zeroes_5g_only() {
        let mut s = state(50.0, 300.0, Bearer::NrOnly);
        s.nr_interrupted = true;
        assert_eq!(compose(&s).capacity_mbps, 0.0);
    }

    #[test]
    fn nr_interruption_leaves_dual_on_lte() {
        let mut s = state(50.0, 300.0, Bearer::Dual);
        s.nr_interrupted = true;
        let p = compose(&s);
        assert_eq!(p.capacity_mbps, 50.0, "LTE absorbs the 5G HO");
    }

    #[test]
    fn lte_interruption_kills_dual_entirely_when_nr_also_down() {
        let mut s = state(50.0, 300.0, Bearer::Dual);
        s.lte_interrupted = true;
        s.nr_interrupted = true; // 4G HO halts both (Table 2 semantics)
        assert_eq!(compose(&s).capacity_mbps, 0.0);
    }

    #[test]
    fn detached_nr_contributes_nothing() {
        let p = compose(&state(50.0, 0.0, Bearer::Dual));
        assert_eq!(p.capacity_mbps, 50.0);
    }

    #[test]
    fn lte_only_ignores_nr() {
        let p = compose(&state(60.0, 900.0, Bearer::LteOnly));
        assert_eq!(p.capacity_mbps, 60.0);
    }

    #[test]
    fn load_share_of_zero_or_one_is_exactly_unity() {
        assert_eq!(load_share(0), 1.0);
        assert_eq!(load_share(1), 1.0);
        // the no-op guarantee the single-UE path depends on
        for cap in [0.0, 37.25, 812.625, f64::MIN_POSITIVE] {
            assert_eq!(cap * load_share(1), cap);
        }
    }

    #[test]
    fn load_share_splits_equally() {
        assert_eq!(load_share(2), 0.5);
        assert_eq!(load_share(4), 0.25);
        assert!((load_share(10) - 0.1).abs() < 1e-12);
        // monotonically non-increasing in the attach count
        let mut prev = load_share(1);
        for n in 2..100 {
            let s = load_share(n);
            assert!(s < prev);
            prev = s;
        }
    }
}
