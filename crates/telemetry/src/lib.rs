//! # fiveg-telemetry — deterministic instrumentation for the simulator stack
//!
//! The paper's method is cross-layer *visibility*: XCAL + 5G Tracker record
//! RRC events, radio state and application QoE on every drive. This crate is
//! the simulator's equivalent recorder, designed around three rules:
//!
//! 1. **Off by default, free when off.** Every subsystem holds a cheap
//!    [`Telemetry`] handle; a disabled handle is a single `Option` check on
//!    every operation and allocates nothing.
//! 2. **Bit-for-bit deterministic when on.** Journal events carry *sim-time*
//!    only — two runs of the same scenario produce identical journals.
//!    Wall-clock appears only in the optional phase-timing report.
//! 3. **Zero external dependencies.** The journal's JSONL sink and the
//!    summary formatter are hand-rolled over `std`, so every workspace crate
//!    can depend on telemetry without widening the dependency graph.
//!
//! What it provides:
//!
//! * a registry-backed set of named **counters**, **gauges** and
//!   **log-scale histograms** (p50/p95/p99 from geometric buckets), with
//!   cheap cloneable handles ([`Counter`], [`HistogramHandle`]);
//! * **scoped phase timers** ([`Phase`], [`Telemetry::phase`]): RAII guards
//!   that attribute wall-time to tick-loop phases (mobility, channel/RRS,
//!   measurement, policy, HO state machine, link, trace append) and to
//!   Prognos prep/exec stages;
//! * a bounded **event journal** ([`Event`], [`JournalEntry`]): a ring
//!   buffer of typed events (HO start/commit/failure, RLF, MR loss, stall
//!   start/end, prediction issued/hit/miss, fault injections) with a JSONL
//!   sink and a thousands-separated, percentile-annotated end-of-run
//!   summary ([`Telemetry::summary`]);
//! * the deterministic **JSON writer** ([`JsonBuf`]) shared by every
//!   byte-compared report and flight-recorder dump in the workspace.

pub mod histogram;
pub mod journal;
pub mod json;
pub mod phase;
pub mod summary;

pub use histogram::{Histogram, HistogramSnapshot};
pub use journal::{Event, JournalEntry};
pub use json::JsonBuf;
pub use phase::{Phase, PhaseStats};
pub use summary::group_thousands;

use histogram::Histogram as Hist;
use journal::Journal;
use std::collections::BTreeMap;
use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Telemetry configuration, carried on a `Scenario`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Master switch. Off ⇒ every handle is a no-op.
    pub enabled: bool,
    /// Ring-buffer capacity of the event journal. When full, the oldest
    /// events are dropped (and counted as dropped).
    pub journal_capacity: usize,
    /// Collect wall-clock phase timings (the only non-deterministic data;
    /// never enters the journal).
    pub timing: bool,
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub const OFF: TelemetryConfig = TelemetryConfig { enabled: false, journal_capacity: 0, timing: false };

    /// Counters + journal + phase timers on, with a 64 Ki-event journal.
    pub fn on() -> TelemetryConfig {
        TelemetryConfig { enabled: true, journal_capacity: 65_536, timing: true }
    }

    /// Counters + journal on, wall-clock timers off (fully deterministic
    /// output, summary included).
    pub fn deterministic() -> TelemetryConfig {
        TelemetryConfig { enabled: true, journal_capacity: 65_536, timing: false }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::OFF
    }
}

struct Inner {
    cfg: TelemetryConfig,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<Mutex<Hist>>>>,
    phases: [phase::PhaseCell; Phase::COUNT],
    journal: Mutex<Journal>,
}

/// A cheap, cloneable recorder handle. Disabled handles no-op everywhere.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Telemetry(enabled, journal={})", i.journal.lock().unwrap().len()),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

/// A counter handle: one atomic, no name lookup after creation.
#[derive(Clone, Default, Debug)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(0)
    }
}

/// Immutable point-in-time copy of a counter registry, taken with
/// [`Telemetry::counter_snapshot`]. Built for consumers that *check* counters
/// rather than display them — fiveg-oracle's counter-algebra invariants —
/// so it offers exact lookup and dotted-prefix sums over a stable map.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    map: BTreeMap<String, u64>,
}

impl CounterSnapshot {
    /// Value of one counter; 0 when it was never created (matching
    /// [`Telemetry::counter_value`] semantics).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix` — e.g.
    /// `sum_prefix("ho.")` totals the per-HO-type commit counters.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.map.range(prefix.to_string()..).take_while(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// Name-sorted iteration over all counters.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct counters captured.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no counter was ever created (or telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A histogram handle bound to one named log-scale histogram.
#[derive(Clone, Default, Debug)]
pub struct HistogramHandle(Option<Arc<Mutex<Hist>>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.lock().unwrap().observe(v);
        }
    }
}

/// RAII guard returned by [`Telemetry::phase`]; records wall-time on drop.
pub struct PhaseGuard {
    inner: Option<(Arc<Inner>, Phase, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((inner, p, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos() as u64;
            let cell = &inner.phases[p.index()];
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
            cell.calls.fetch_add(1, Ordering::Relaxed);
            cell.hist.lock().unwrap().observe(ns as f64);
        }
    }
}

impl Telemetry {
    /// A handle that records nothing, at near-zero cost.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Builds a recorder from a config (`enabled: false` ⇒ disabled handle).
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        if !cfg.enabled {
            return Telemetry::disabled();
        }
        Telemetry {
            inner: Some(Arc::new(Inner {
                cfg,
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                phases: std::array::from_fn(|_| phase::PhaseCell::new()),
                journal: Mutex::new(Journal::new(cfg.journal_capacity)),
            })),
        }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // --- counters ---------------------------------------------------------

    /// Returns a cheap handle to the named counter (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => {
                let mut map = inner.counters.lock().unwrap();
                let cell = map.entry(name.to_string()).or_default();
                Counter(Some(Arc::clone(cell)))
            }
            None => Counter(None),
        }
    }

    /// Adds one to the named counter.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut map = inner.counters.lock().unwrap();
            map.entry(name.to_string()).or_default().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| i.counters.lock().unwrap().get(name).map(|c| c.load(Ordering::Relaxed)))
            .unwrap_or(0)
    }

    /// Snapshot of all counters, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        match &self.inner {
            Some(i) => i.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect(),
            None => Vec::new(),
        }
    }

    /// Point-in-time, queryable copy of the whole counter registry. Where
    /// [`Telemetry::counters`] hands back a flat listing for display, a
    /// [`CounterSnapshot`] supports the lookups a consistency checker needs
    /// (exact values, prefix sums) without re-locking the live registry per
    /// query. Empty when disabled.
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot { map: self.counters().into_iter().collect() }
    }

    // --- gauges -----------------------------------------------------------

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            let mut map = inner.gauges.lock().unwrap();
            map.entry(name.to_string()).or_default().store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value of a gauge (`None` when absent or disabled).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|i| i.gauges.lock().unwrap().get(name).map(|g| f64::from_bits(g.load(Ordering::Relaxed))))
    }

    /// Snapshot of all gauges, name-sorted.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        match &self.inner {
            Some(i) => i
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
                .collect(),
            None => Vec::new(),
        }
    }

    // --- histograms -------------------------------------------------------

    /// Returns a cheap handle to the named histogram (created on first use).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            Some(inner) => {
                let mut map = inner.hists.lock().unwrap();
                let cell = map.entry(name.to_string()).or_insert_with(|| Arc::new(Mutex::new(Hist::new())));
                HistogramHandle(Some(Arc::clone(cell)))
            }
            None => HistogramHandle(None),
        }
    }

    /// Records one observation into the named histogram.
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            let mut map = inner.hists.lock().unwrap();
            map.entry(name.to_string()).or_insert_with(|| Arc::new(Mutex::new(Hist::new()))).lock().unwrap().observe(v);
        }
    }

    /// Snapshot of the named histogram (`None` when absent or disabled).
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.as_ref().and_then(|i| i.hists.lock().unwrap().get(name).map(|h| h.lock().unwrap().snapshot()))
    }

    /// Snapshots of all histograms, name-sorted.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        match &self.inner {
            Some(i) => i.hists.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.lock().unwrap().snapshot())).collect(),
            None => Vec::new(),
        }
    }

    // --- phase timers -----------------------------------------------------

    /// Starts a scoped wall-clock timer for `p`; the elapsed time is
    /// attributed when the returned guard drops. No-op when disabled or
    /// when `timing` is off in the config.
    pub fn phase(&self, p: Phase) -> PhaseGuard {
        match &self.inner {
            Some(inner) if inner.cfg.timing => PhaseGuard { inner: Some((Arc::clone(inner), p, Instant::now())) },
            _ => PhaseGuard { inner: None },
        }
    }

    /// Aggregated wall-clock stats for one phase.
    pub fn phase_stats(&self, p: Phase) -> PhaseStats {
        match &self.inner {
            Some(inner) => {
                let cell = &inner.phases[p.index()];
                PhaseStats {
                    phase: p,
                    calls: cell.calls.load(Ordering::Relaxed),
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                    hist: cell.hist.lock().unwrap().snapshot(),
                }
            }
            None => PhaseStats { phase: p, calls: 0, total_ns: 0, hist: HistogramSnapshot::default() },
        }
    }

    /// Stats for every phase that recorded at least one call.
    pub fn phases(&self) -> Vec<PhaseStats> {
        Phase::ALL.iter().map(|&p| self.phase_stats(p)).filter(|s| s.calls > 0).collect()
    }

    // --- event journal ----------------------------------------------------

    /// Appends an event at sim-time `t` (seconds).
    pub fn record(&self, t: f64, event: Event) {
        if let Some(inner) = &self.inner {
            inner.journal.lock().unwrap().record(t, event);
        }
    }

    /// Number of events currently retained.
    pub fn journal_len(&self) -> usize {
        self.inner.as_ref().map(|i| i.journal.lock().unwrap().len()).unwrap_or(0)
    }

    /// Events dropped because the ring buffer was full.
    pub fn journal_dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.journal.lock().unwrap().dropped()).unwrap_or(0)
    }

    /// A snapshot of the retained journal entries, in record order.
    pub fn events(&self) -> Vec<JournalEntry> {
        match &self.inner {
            Some(i) => i.journal.lock().unwrap().entries().iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// The journal as JSONL (one event object per line).
    pub fn journal_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Streams the journal as JSONL into `w`.
    pub fn write_journal(&self, w: &mut dyn IoWrite) -> std::io::Result<()> {
        for e in self.events() {
            writeln!(w, "{}", e.to_json())?;
        }
        Ok(())
    }

    /// Writes the JSONL journal to `path`.
    pub fn save_journal(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_journal(&mut f)
    }

    // --- merging ----------------------------------------------------------

    /// Folds another recorder's registries into this one: counters add,
    /// histograms merge bucket-wise, per-phase wall-clock totals and call
    /// counts add, and gauges take `other`'s latest value. The event
    /// journal is **not** merged — journals are per-run artifacts with
    /// their own sequence numbers.
    ///
    /// Counter/histogram/phase absorption is commutative and associative,
    /// so per-worker recorders folded in any order produce the same
    /// registry state — this is what lets a parallel sweep roll worker
    /// telemetry up deterministically. (Gauges are last-writer and should
    /// be absorbed in a deterministic order when they matter.)
    ///
    /// No-op when either handle is disabled.
    pub fn absorb(&self, other: &Telemetry) {
        let (Some(inner), Some(from)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(inner, from) {
            return; // absorbing yourself would double-count (and deadlock)
        }
        {
            let src = from.counters.lock().unwrap();
            let mut dst = inner.counters.lock().unwrap();
            for (name, v) in src.iter() {
                dst.entry(name.clone()).or_default().fetch_add(v.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        {
            let src = from.gauges.lock().unwrap();
            let mut dst = inner.gauges.lock().unwrap();
            for (name, v) in src.iter() {
                dst.entry(name.clone()).or_default().store(v.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        {
            let src = from.hists.lock().unwrap();
            let mut dst = inner.hists.lock().unwrap();
            for (name, h) in src.iter() {
                dst.entry(name.clone())
                    .or_insert_with(|| Arc::new(Mutex::new(Hist::new())))
                    .lock()
                    .unwrap()
                    .merge(&h.lock().unwrap());
            }
        }
        for (dst, src) in inner.phases.iter().zip(from.phases.iter()) {
            dst.total_ns.fetch_add(src.total_ns.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.calls.fetch_add(src.calls.load(Ordering::Relaxed), Ordering::Relaxed);
            dst.hist.lock().unwrap().merge(&src.hist.lock().unwrap());
        }
    }

    // --- reporting --------------------------------------------------------

    /// The human-readable end-of-run summary: counters (thousands
    /// separated), gauges, histogram percentiles, per-phase wall-clock
    /// timings and journal occupancy.
    pub fn summary(&self) -> String {
        summary::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr("x");
        t.observe("h", 1.0);
        t.set_gauge("g", 2.0);
        t.record(0.5, Event::Rlf { leg: "lte".into() });
        let _guard = t.phase(Phase::Mobility);
        assert!(!t.is_enabled());
        assert_eq!(t.counter_value("x"), 0);
        assert_eq!(t.journal_len(), 0);
        assert!(t.counters().is_empty());
        assert!(t.summary().contains("disabled"));
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.incr("b.two");
        t.add("a.one", 5);
        let h = t.counter("b.two");
        h.inc();
        h.add(3);
        assert_eq!(t.counter_value("a.one"), 5);
        assert_eq!(t.counter_value("b.two"), 5);
        assert_eq!(h.get(), 5);
        let names: Vec<String> = t.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.one".to_string(), "b.two".to_string()]);
    }

    #[test]
    fn gauges_store_latest() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.set_gauge("speed", 1.5);
        t.set_gauge("speed", 2.5);
        assert_eq!(t.gauge_value("speed"), Some(2.5));
        assert_eq!(t.gauge_value("absent"), None);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let t = Telemetry::new(TelemetryConfig::on());
        for i in 1..=1000 {
            t.observe("lat", i as f64);
        }
        let s = t.histogram_snapshot("lat").unwrap();
        assert_eq!(s.count, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.p50 > 300.0 && s.p50 < 700.0, "p50 {}", s.p50);
        assert!(s.p99 > 800.0, "p99 {}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn phase_guard_records_time() {
        let t = Telemetry::new(TelemetryConfig::on());
        {
            let _g = t.phase(Phase::Link);
            std::hint::black_box((0..1000).sum::<u64>());
        }
        let s = t.phase_stats(Phase::Link);
        assert_eq!(s.calls, 1);
        assert!(s.total_ns > 0);
        assert_eq!(t.phases().len(), 1);
    }

    #[test]
    fn timing_off_disables_phase_guards_only() {
        let t = Telemetry::new(TelemetryConfig::deterministic());
        {
            let _g = t.phase(Phase::Link);
        }
        assert_eq!(t.phase_stats(Phase::Link).calls, 0);
        t.incr("still.works");
        assert_eq!(t.counter_value("still.works"), 1);
    }

    #[test]
    fn journal_is_bounded_ring() {
        let cfg = TelemetryConfig { enabled: true, journal_capacity: 4, timing: false };
        let t = Telemetry::new(cfg);
        for i in 0..10 {
            t.record(i as f64, Event::Rlf { leg: "nr".into() });
        }
        assert_eq!(t.journal_len(), 4);
        assert_eq!(t.journal_dropped(), 6);
        let ev = t.events();
        // oldest dropped: first retained seq is 6
        assert_eq!(ev[0].seq, 6);
        assert_eq!(ev[3].seq, 9);
    }

    #[test]
    fn journal_jsonl_is_deterministic() {
        let mk = || {
            let t = Telemetry::new(TelemetryConfig::on());
            t.record(0.25, Event::HoStart { ho_type: "SCGA".into(), target_pci: Some(42) });
            t.record(0.5, Event::HoCommit { ho_type: "SCGA".into(), duration_ms: 120.5 });
            t.record(1.0, Event::PredictionMiss { predicted: None, actual: "SCGR".into() });
            t.journal_jsonl()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.lines().count() == 3);
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"t\":"), "{line}");
            assert!(line.contains("\"kind\":"), "{line}");
        }
    }

    #[test]
    fn summary_contains_all_sections() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.add("sim.ticks", 1_234_567);
        t.set_gauge("route.km", 20.0);
        for i in 0..100 {
            t.observe("ho.duration_ms", 50.0 + i as f64);
        }
        {
            let _g = t.phase(Phase::Mobility);
        }
        t.record(1.0, Event::Rlf { leg: "lte".into() });
        let s = t.summary();
        assert!(s.contains("1,234,567"), "{s}");
        assert!(s.contains("sim.ticks"), "{s}");
        assert!(s.contains("ho.duration_ms"), "{s}");
        assert!(s.contains("p99"), "{s}");
        assert!(s.contains("mobility"), "{s}");
        assert!(s.contains("journal"), "{s}");
    }

    #[test]
    fn absorb_rolls_up_counters_gauges_hists_phases() {
        let total = Telemetry::new(TelemetryConfig::on());
        total.add("jobs.done", 1);
        let worker = Telemetry::new(TelemetryConfig::on());
        worker.add("jobs.done", 2);
        worker.add("worker.only", 7);
        worker.set_gauge("route.km", 12.5);
        worker.observe("lat_ms", 4.0);
        worker.record(1.0, Event::Rlf { leg: "lte".into() });
        {
            let _g = worker.phase(Phase::Link);
        }
        total.absorb(&worker);
        assert_eq!(total.counter_value("jobs.done"), 3);
        assert_eq!(total.counter_value("worker.only"), 7);
        assert_eq!(total.gauge_value("route.km"), Some(12.5));
        assert_eq!(total.histogram_snapshot("lat_ms").unwrap().count, 1);
        assert_eq!(total.phase_stats(Phase::Link).calls, 1);
        // journals are per-run artifacts: never merged
        assert_eq!(total.journal_len(), 0);
        // the source is read-only during absorption
        assert_eq!(worker.counter_value("jobs.done"), 2);
    }

    #[test]
    fn absorb_is_order_independent_for_counters_and_hists() {
        let build = |order: &[usize]| {
            let workers: Vec<Telemetry> = (0..3)
                .map(|i| {
                    let t = Telemetry::new(TelemetryConfig::on());
                    t.add("n", i as u64 + 1);
                    t.observe("h", (i + 1) as f64);
                    t
                })
                .collect();
            let total = Telemetry::new(TelemetryConfig::on());
            for &i in order {
                total.absorb(&workers[i]);
            }
            (total.counters(), total.histogram_snapshot("h").unwrap())
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 0, 1]));
    }

    proptest::proptest! {
        // The deterministic roll-up contract: folding any set of worker
        // recorders in any order yields the same registry. Counter amounts
        // are integers and histogram values small integers, so every sum is
        // exact and the equality is byte-strict, not approximate.
        #[test]
        fn absorb_is_order_independent_for_arbitrary_shards(
            shards in proptest::collection::vec(proptest::collection::vec(0u64..500, 0..8), 1..6),
        ) {
            let workers: Vec<Telemetry> = shards
                .iter()
                .map(|vals| {
                    let t = Telemetry::new(TelemetryConfig::on());
                    for &v in vals {
                        t.add(if v % 2 == 0 { "ho.even" } else { "ho.odd" }, v);
                        t.observe("lat_ms", v as f64);
                    }
                    t
                })
                .collect();
            let fold = |order: Box<dyn Iterator<Item = &Telemetry>>| {
                let total = Telemetry::new(TelemetryConfig::on());
                for w in order {
                    total.absorb(w);
                }
                (total.counters(), total.histogram_snapshot("lat_ms"))
            };
            let forward = fold(Box::new(workers.iter()));
            let reverse = fold(Box::new(workers.iter().rev()));
            proptest::prop_assert_eq!(forward, reverse);
        }
    }

    #[test]
    fn absorb_disabled_and_self_are_noops() {
        let t = Telemetry::new(TelemetryConfig::on());
        t.incr("x");
        t.absorb(&Telemetry::disabled());
        Telemetry::disabled().absorb(&t);
        let u = t.clone();
        t.absorb(&u); // same inner: must not deadlock or double-count
        assert_eq!(t.counter_value("x"), 1);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::new(TelemetryConfig::on());
        let u = t.clone();
        u.incr("shared");
        assert_eq!(t.counter_value("shared"), 1);
    }

    #[test]
    fn absorbed_counters_equal_shard_sums() {
        // satellite check: a merged registry is exactly the per-shard sum,
        // counter for counter — not just for the names every shard touched
        let shards: Vec<Telemetry> = (0..5)
            .map(|i| {
                let t = Telemetry::new(TelemetryConfig::on());
                t.add("common", i as u64 + 1);
                t.add(&format!("shard.{i}"), 10 * (i as u64 + 1));
                if i % 2 == 0 {
                    t.add("ho.even_only", 3);
                }
                t
            })
            .collect();
        let merged = Telemetry::new(TelemetryConfig::on());
        for s in &shards {
            merged.absorb(s);
        }
        let snap = merged.counter_snapshot();
        let mut expect: std::collections::BTreeMap<String, u64> = Default::default();
        for s in &shards {
            for (name, v) in s.counters() {
                *expect.entry(name).or_default() += v;
            }
        }
        assert_eq!(snap.len(), expect.len());
        for (name, v) in &expect {
            assert_eq!(snap.get(name), *v, "counter {name}");
        }
        assert_eq!(snap.sum_prefix("shard."), 10 + 20 + 30 + 40 + 50);
        assert_eq!(snap.sum_prefix("ho."), 9);
        assert_eq!(snap.get("never.created"), 0);
        assert!(Telemetry::disabled().counter_snapshot().is_empty());
    }
}
