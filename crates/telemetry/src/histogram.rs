//! Log-scale histogram: geometric buckets, constant memory, cheap inserts.
//!
//! Values are bucketed by exponent with `SUB` sub-buckets per octave, which
//! bounds the relative quantile error at `2^(1/SUB) - 1` (~9% for `SUB = 8`)
//! over the full range `2^MIN_EXP ..= 2^MAX_EXP`. Good enough for latency
//! percentiles; min/max/sum/mean are tracked exactly.

/// Sub-buckets per octave (power of two).
const SUB: usize = 8;
/// Smallest representable exponent (values below land in the underflow bucket).
const MIN_EXP: i32 = -20;
/// Largest representable exponent (values above land in the overflow bucket).
const MAX_EXP: i32 = 44;
/// Number of geometric buckets.
const NBUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUB;

/// A fixed-size log-scale histogram over positive finite `f64` values.
///
/// Zero, negative and non-finite observations are counted separately and
/// excluded from percentiles (they still count toward `count`).
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NBUCKETS]>,
    /// Observations `<= 0` or below `2^MIN_EXP`.
    underflow: u64,
    /// Observations above `2^MAX_EXP` or non-finite.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count).field("min", &self.min).field("max", &self.max).finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0; NBUCKETS]),
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> Option<usize> {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        // log2(v) in units of 1/SUB octaves, floored.
        let idx = (v.log2() * SUB as f64).floor() as i64 - (MIN_EXP as i64) * SUB as i64;
        if idx < 0 || idx >= NBUCKETS as i64 {
            None
        } else {
            Some(idx as usize)
        }
    }

    /// Geometric midpoint of bucket `i`.
    fn bucket_mid(i: usize) -> f64 {
        let lo_log = MIN_EXP as f64 + (i as f64) / SUB as f64;
        2f64.powf(lo_log + 0.5 / SUB as f64)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        match Self::bucket_index(v) {
            Some(i) => self.buckets[i] += 1,
            None if v.is_finite() && v <= 0.0 => self.underflow += 1,
            None if v.is_finite() && v.log2() < MIN_EXP as f64 => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated `q`-quantile (`q` in `[0,1]`), clamped to the exact
    /// observed `[min, max]`. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min.max(0.0);
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if rank <= seen {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Buckets are position-aligned (all
    /// histograms share the same geometry), so merging is commutative and
    /// associative: per-worker histograms merged in any order yield the
    /// same result as observing every value on one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// A cheap, `Copy`-friendly snapshot of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        if self.count == 0 {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            mean: self.sum / self.count as f64,
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = Histogram::new();
        h.observe(42.0);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.mean, 42.0);
        // clamped to [min,max] so exact
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn uniform_percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.observe(i as f64);
        }
        let s = h.snapshot();
        // relative error bound ~9% for SUB=8
        assert!((s.p50 - 5_000.0).abs() / 5_000.0 < 0.10, "p50 {}", s.p50);
        assert!((s.p95 - 9_500.0).abs() / 9_500.0 < 0.10, "p95 {}", s.p95);
        assert!((s.p99 - 9_900.0).abs() / 9_900.0 < 0.10, "p99 {}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10_000.0);
    }

    #[test]
    fn wide_dynamic_range() {
        let mut h = Histogram::new();
        h.observe(1e-5);
        h.observe(1.0);
        h.observe(1e12);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1e-5);
        assert_eq!(s.max, 1e12);
        assert!(s.p50 >= 1e-5 && s.p50 <= 1e12);
    }

    #[test]
    fn zero_and_negative_counted_not_ranked() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(10.0);
        assert_eq!(h.count(), 3);
        let s = h.snapshot();
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 10.0);
        // highest quantile still resolves to a real value
        assert!(s.p99 <= 10.0);
    }

    #[test]
    fn non_finite_does_not_poison() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(5.0);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert!(s.sum.is_finite() || s.sum.is_infinite()); // inf allowed in sum
        assert!(s.p50.is_finite());
    }

    #[test]
    fn merge_equals_single_histogram() {
        let mut whole = Histogram::new();
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..3000 {
            // dyadic values only, so partial sums are exact and the
            // snapshot comparison is immune to addition order
            let v = match i % 4 {
                0 => (i + 1) as f64,
                1 => (i as f64) * 0.25,
                2 => -1.0,
                _ => f64::INFINITY,
            };
            whole.observe(v);
            parts[i % 3].observe(v);
        }
        let mut merged = Histogram::new();
        // merge in reverse to exercise order independence
        for p in parts.iter().rev() {
            merged.merge(p);
        }
        assert_eq!(merged.snapshot(), whole.snapshot());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.observe(3.0);
        let before = h.snapshot();
        h.merge(&Histogram::new());
        assert_eq!(h.snapshot(), before);
        let mut e = Histogram::new();
        e.merge(&h);
        assert_eq!(e.snapshot(), before);
    }

    proptest::proptest! {
        // Commutativity is what makes per-worker histograms safe to fold in
        // completion order. Values are dyadic (quarter-integers, including
        // zeros and negatives for the underflow path) so sums are exact and
        // the comparison is immune to float addition order.
        #[test]
        fn merge_is_commutative(
            xs in proptest::collection::vec(0u64..4096, 0..64),
            ys in proptest::collection::vec(0u64..4096, 0..64),
        ) {
            let fill = |vals: &[u64]| {
                let mut h = Histogram::new();
                for &v in vals {
                    h.observe(v as f64 * 0.25 - 8.0);
                }
                h
            };
            let (a, b) = (fill(&xs), fill(&ys));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            proptest::prop_assert_eq!(ab.snapshot(), ba.snapshot());
            // the whole quantile surface must agree, not just the snapshot
            for k in [0u64, 1, 10, 25, 50, 75, 90, 99, 100] {
                let q = k as f64 / 100.0;
                proptest::prop_assert_eq!(ab.percentile(q), ba.percentile(q));
            }
        }

        // Splitting a stream at any point and merging the parts must equal
        // observing the whole stream on one histogram — the invariant the
        // fleet engine's telemetry roll-up rests on.
        #[test]
        fn merge_of_any_partition_equals_the_whole(
            vals in proptest::collection::vec(0u64..4096, 0..96),
            cut in 0usize..97,
        ) {
            let cut = cut.min(vals.len());
            let mut whole = Histogram::new();
            let mut left = Histogram::new();
            let mut right = Histogram::new();
            for (i, &v) in vals.iter().enumerate() {
                let x = v as f64 * 0.25;
                whole.observe(x);
                if i < cut {
                    left.observe(x);
                } else {
                    right.observe(x);
                }
            }
            left.merge(&right);
            proptest::prop_assert_eq!(left.snapshot(), whole.snapshot());
        }

        // Quantile sanity for arbitrary data and arbitrary q, including the
        // q=0 / q=1 endpoints and out-of-range q (which must clamp).
        #[test]
        fn percentile_is_bounded_monotone_and_clamped(
            vals in proptest::collection::vec(0u64..100_000, 1..64),
            num in 0u64..1001,
        ) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.observe(v as f64 * 0.125);
            }
            let q = num as f64 / 1000.0;
            let p = h.percentile(q);
            let (lo, hi) = (h.min.max(0.0), h.max);
            assert!(p.is_finite(), "percentile({q}) = {p}");
            assert!(p >= lo && p <= hi, "percentile({q}) = {p} outside [{lo}, {hi}]");
            let q2 = (q + 0.1).min(1.0);
            assert!(h.percentile(q2) >= p, "quantiles must be monotone in q");
            proptest::prop_assert_eq!(h.percentile(-1.0), h.percentile(0.0));
            proptest::prop_assert_eq!(h.percentile(2.0), h.percentile(1.0));
            proptest::prop_assert_eq!(h.percentile(f64::NAN), h.percentile(0.0));
        }
    }

    #[test]
    fn percentiles_monotone() {
        let mut h = Histogram::new();
        let mut x = 0.001;
        for _ in 0..500 {
            h.observe(x);
            x *= 1.07;
        }
        let s = h.snapshot();
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.p50 >= s.min && s.p99 <= s.max);
    }
}
