//! Bounded event journal: a ring buffer of typed, sim-time-stamped events
//! with a hand-rolled JSONL encoding (no external dependencies).
//!
//! Determinism contract: entries carry sim-time and a monotone sequence
//! number only — never wall-clock — so two runs of the same scenario emit
//! byte-identical journals.

use std::collections::VecDeque;

/// A typed journal event. String payloads (acronyms, labels) keep this
/// crate a dependency leaf: producers format domain enums at the call site.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A handover began executing (command issued to the UE).
    HoStart { ho_type: String, target_pci: Option<u16> },
    /// A handover completed; `duration_ms` is command→complete.
    HoCommit { ho_type: String, duration_ms: f64 },
    /// A handover failed (fault-injected or protocol failure).
    HoFailure { ho_type: String },
    /// Radio link failure on a leg (`"lte"` / `"nr"`).
    Rlf { leg: String },
    /// A triggered measurement report was lost (fault-injected).
    MrLoss { event: String },
    /// An application/transport flow stalled.
    StallStart { flow: String },
    /// The stall ended after `duration_s`.
    StallEnd { flow: String, duration_s: f64 },
    /// Prognos issued a positive forecast `lead_s` ahead.
    PredictionIssued { ho_type: String, lead_s: f64, confidence: f64 },
    /// A forecast matched the handover that actually occurred.
    PredictionHit { ho_type: String, lead_s: f64 },
    /// A handover occurred without (or against) a live forecast.
    PredictionMiss { predicted: Option<String>, actual: String },
    /// A fault injector fired (`"mr_loss"` / `"ho_failure"`).
    FaultInjected { kind: String },
}

impl Event {
    /// Stable snake_case discriminant used as the JSON `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::HoStart { .. } => "ho_start",
            Event::HoCommit { .. } => "ho_commit",
            Event::HoFailure { .. } => "ho_failure",
            Event::Rlf { .. } => "rlf",
            Event::MrLoss { .. } => "mr_loss",
            Event::StallStart { .. } => "stall_start",
            Event::StallEnd { .. } => "stall_end",
            Event::PredictionIssued { .. } => "prediction_issued",
            Event::PredictionHit { .. } => "prediction_hit",
            Event::PredictionMiss { .. } => "prediction_miss",
            Event::FaultInjected { .. } => "fault_injected",
        }
    }
}

/// One journal slot: sim-time, monotone sequence number, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Sim-time in seconds (never wall-clock).
    pub t: f64,
    /// Monotone sequence number; survives ring-buffer eviction, so the
    /// first retained entry reveals how many were dropped before it.
    pub seq: u64,
    pub event: Event,
}

impl JournalEntry {
    /// One JSON object, single line, key order fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"t\":");
        push_f64(&mut s, self.t);
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.event.kind());
        s.push('"');
        match &self.event {
            Event::HoStart { ho_type, target_pci } => {
                push_str_field(&mut s, "ho_type", ho_type);
                if let Some(pci) = target_pci {
                    s.push_str(",\"target_pci\":");
                    s.push_str(&pci.to_string());
                }
            }
            Event::HoCommit { ho_type, duration_ms } => {
                push_str_field(&mut s, "ho_type", ho_type);
                push_f64_field(&mut s, "duration_ms", *duration_ms);
            }
            Event::HoFailure { ho_type } => push_str_field(&mut s, "ho_type", ho_type),
            Event::Rlf { leg } => push_str_field(&mut s, "leg", leg),
            Event::MrLoss { event } => push_str_field(&mut s, "event", event),
            Event::StallStart { flow } => push_str_field(&mut s, "flow", flow),
            Event::StallEnd { flow, duration_s } => {
                push_str_field(&mut s, "flow", flow);
                push_f64_field(&mut s, "duration_s", *duration_s);
            }
            Event::PredictionIssued { ho_type, lead_s, confidence } => {
                push_str_field(&mut s, "ho_type", ho_type);
                push_f64_field(&mut s, "lead_s", *lead_s);
                push_f64_field(&mut s, "confidence", *confidence);
            }
            Event::PredictionHit { ho_type, lead_s } => {
                push_str_field(&mut s, "ho_type", ho_type);
                push_f64_field(&mut s, "lead_s", *lead_s);
            }
            Event::PredictionMiss { predicted, actual } => {
                match predicted {
                    Some(p) => push_str_field(&mut s, "predicted", p),
                    None => s.push_str(",\"predicted\":null"),
                }
                push_str_field(&mut s, "actual", actual);
            }
            Event::FaultInjected { kind } => push_str_field(&mut s, "fault", kind),
        }
        s.push('}');
        s
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `Display` for f64 is the shortest round-trippable decimal:
        // deterministic across runs and platforms.
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn push_f64_field(out: &mut String, key: &str, v: f64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    push_f64(out, v);
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in val.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Capacity-bounded ring buffer of [`JournalEntry`]s (drop-oldest).
#[derive(Debug)]
pub(crate) struct Journal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    seq: u64,
    dropped: u64,
}

impl Journal {
    pub(crate) fn new(capacity: usize) -> Journal {
        Journal { entries: VecDeque::new(), capacity, seq: 0, dropped: 0 }
    }

    pub(crate) fn record(&mut self, t: f64, event: Event) {
        if self.capacity == 0 {
            self.seq += 1;
            self.dropped += 1;
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(JournalEntry { t, seq: self.seq, event });
        self.seq += 1;
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn entries(&self) -> &VecDeque<JournalEntry> {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_strings() {
        let e = JournalEntry { t: 1.5, seq: 0, event: Event::MrLoss { event: "A3\"\\\n".into() } };
        let j = e.to_json();
        assert!(j.contains("\\\""), "{j}");
        assert!(j.contains("\\\\"), "{j}");
        assert!(j.contains("\\n"), "{j}");
    }

    #[test]
    fn json_key_order_fixed() {
        let e = JournalEntry { t: 0.05, seq: 7, event: Event::HoCommit { ho_type: "LTEH".into(), duration_ms: 92.25 } };
        assert_eq!(
            e.to_json(),
            "{\"t\":0.05,\"seq\":7,\"kind\":\"ho_commit\",\"ho_type\":\"LTEH\",\"duration_ms\":92.25}"
        );
    }

    #[test]
    fn prediction_miss_null_predicted() {
        let e =
            JournalEntry { t: 2.0, seq: 1, event: Event::PredictionMiss { predicted: None, actual: "SCGA".into() } };
        assert!(e.to_json().contains("\"predicted\":null"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut j = Journal::new(2);
        for i in 0..5 {
            j.record(i as f64, Event::Rlf { leg: "lte".into() });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.entries()[0].seq, 3);
        assert_eq!(j.entries()[1].seq, 4);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut j = Journal::new(0);
        j.record(0.0, Event::Rlf { leg: "nr".into() });
        assert_eq!(j.len(), 0);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn every_variant_encodes() {
        let events = vec![
            Event::HoStart { ho_type: "SCGA".into(), target_pci: Some(3) },
            Event::HoStart { ho_type: "SCGR".into(), target_pci: None },
            Event::HoCommit { ho_type: "LTEH".into(), duration_ms: 80.0 },
            Event::HoFailure { ho_type: "MNBH".into() },
            Event::Rlf { leg: "nr".into() },
            Event::MrLoss { event: "NR-B1".into() },
            Event::StallStart { flow: "cbr".into() },
            Event::StallEnd { flow: "cbr".into(), duration_s: 0.4 },
            Event::PredictionIssued { ho_type: "SCGC".into(), lead_s: 1.2, confidence: 0.9 },
            Event::PredictionHit { ho_type: "SCGC".into(), lead_s: 1.2 },
            Event::PredictionMiss { predicted: Some("SCGM".into()), actual: "MCGH".into() },
            Event::FaultInjected { kind: "mr_loss".into() },
        ];
        for (i, ev) in events.into_iter().enumerate() {
            let kind = ev.kind().to_string();
            let entry = JournalEntry { t: i as f64 * 0.1, seq: i as u64, event: ev };
            let j = entry.to_json();
            assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
            assert!(j.contains(&format!("\"kind\":\"{kind}\"")), "{j}");
            assert!(!j.contains('\n'), "{j}");
        }
    }
}
