//! Minimal deterministic JSON assembly.
//!
//! Every machine-readable artifact in the workspace — the benchmark reports
//! (`fiveg-sweep/v1`, `fiveg-tick/v2`, `fiveg-fleet/v3`, `fiveg-fuzz/v1`,
//! `fiveg-vivisect/v1`) and the flight-recorder dumps (`fiveg-flightrec/v1`)
//! — is diffed byte-for-byte by the determinism CI, so serialization must
//! not depend on any serializer's formatting choices. [`JsonBuf`] is the
//! shared std-only writer they all use. It lives in the telemetry crate
//! (the workspace's dependency-free observability root) so producers above
//! and below the bench layer can emit identical bytes.

/// Minimal JSON assembly buffer: keys are emitted in call order, floats
/// use Rust's shortest round-trip formatting, non-finite floats become
/// `null`. Deliberately std-only so report bytes are reproducible and
/// independent of any serializer's formatting choices.
#[derive(Default)]
pub struct JsonBuf {
    out: String,
    comma: Vec<bool>,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    fn sep(&mut self) {
        if self.comma.last().copied().unwrap_or(false) {
            self.out.push(',');
        }
        if let Some(c) = self.comma.last_mut() {
            *c = true;
        }
    }

    /// Opens an object (`{`) or array (`[`).
    pub fn open(&mut self, bracket: char) {
        self.sep();
        self.out.push(bracket);
        self.comma.push(false);
    }

    /// Closes an object (`}`) or array (`]`).
    pub fn close(&mut self, bracket: char) {
        self.out.push(bracket);
        self.comma.pop();
    }

    /// Emits an object key; the next value call supplies its value.
    pub fn key(&mut self, k: &str) {
        self.sep();
        self.push_str_escaped(k);
        self.out.push(':');
        // the value that follows handles its own separator
        if let Some(c) = self.comma.last_mut() {
            *c = false;
        }
    }

    fn push_str_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => self.out.push_str(&format!("\\u{:04x}", c as u32)),
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Emits a string value (escaped).
    pub fn str_val(&mut self, s: &str) {
        self.sep();
        self.push_str_escaped(s);
    }

    /// Emits a float value; non-finite floats serialize as `null`.
    pub fn num(&mut self, v: f64) {
        self.sep();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Emits an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    /// Emits a boolean value.
    pub fn bool_val(&mut self, v: bool) {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Emits a literal `null`.
    pub fn null(&mut self) {
        self.sep();
        self.out.push_str("null");
    }

    /// The serialized bytes so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the buffer, returning the document with a trailing newline.
    pub fn finish_line(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_buf_escapes_and_nests() {
        let mut j = JsonBuf::new();
        j.open('{');
        j.key("a\"b");
        j.str_val("x\ny");
        j.key("n");
        j.num(1.5);
        j.key("bad");
        j.num(f64::NAN);
        j.key("arr");
        j.open('[');
        j.uint(1);
        j.uint(2);
        j.close(']');
        j.close('}');
        assert_eq!(j.as_str(), "{\"a\\\"b\":\"x\\ny\",\"n\":1.5,\"bad\":null,\"arr\":[1,2]}");
    }

    #[test]
    fn finish_line_appends_newline() {
        let mut j = JsonBuf::new();
        j.open('{');
        j.close('}');
        assert_eq!(j.finish_line(), "{}\n");
    }

    #[test]
    fn bool_and_null_values() {
        let mut j = JsonBuf::new();
        j.open('{');
        j.key("yes");
        j.bool_val(true);
        j.key("no");
        j.bool_val(false);
        j.key("none");
        j.null();
        j.close('}');
        assert_eq!(j.as_str(), "{\"yes\":true,\"no\":false,\"none\":null}");
    }
}
