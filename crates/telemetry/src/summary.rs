//! Human-readable end-of-run summary rendering.

use crate::Telemetry;

/// Formats an integer with thousands separators: `1234567` → `"1,234,567"`.
pub fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let first = digits.len() % 3;
    for (i, c) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - first) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Compact float formatting: trims to 3 significant decimals, keeps
/// integers clean (`120.0` → `"120"`, `0.12345` → `"0.123"`).
fn fnum(v: f64) -> String {
    if !v.is_finite() {
        return v.to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return group_thousands_signed(v as i64);
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

fn group_thousands_signed(n: i64) -> String {
    if n < 0 {
        format!("-{}", group_thousands(n.unsigned_abs()))
    } else {
        group_thousands(n as u64)
    }
}

/// Renders the full telemetry summary for a run.
pub(crate) fn render(t: &Telemetry) -> String {
    if !t.is_enabled() {
        return "telemetry: disabled\n".to_string();
    }
    let mut out = String::new();
    out.push_str("== telemetry summary ==\n");

    let counters = t.counters();
    if !counters.is_empty() {
        out.push_str("-- counters --\n");
        let width = counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &counters {
            out.push_str(&format!("  {name:<width$}  {}\n", group_thousands(*v)));
        }
    }

    let gauges = t.gauges();
    if !gauges.is_empty() {
        out.push_str("-- gauges --\n");
        let width = gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &gauges {
            out.push_str(&format!("  {name:<width$}  {}\n", fnum(*v)));
        }
    }

    let hists = t.histograms();
    if !hists.is_empty() {
        out.push_str("-- histograms --\n");
        let width = hists.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, s) in &hists {
            out.push_str(&format!(
                "  {name:<width$}  n={} min={} p50={} p95={} p99={} max={} mean={}\n",
                group_thousands(s.count),
                fnum(s.min),
                fnum(s.p50),
                fnum(s.p95),
                fnum(s.p99),
                fnum(s.max),
                fnum(s.mean),
            ));
        }
    }

    let phases = t.phases();
    if !phases.is_empty() {
        out.push_str("-- phase timings (wall-clock) --\n");
        let width = phases.iter().map(|s| s.phase.name().len()).max().unwrap_or(0);
        for s in &phases {
            out.push_str(&format!(
                "  {:<width$}  calls={:>12} total={:>10} ms  mean={} us  p50={} p95={} p99={} us\n",
                s.phase.name(),
                group_thousands(s.calls),
                fnum(s.total_ms()),
                fnum(s.mean_us()),
                fnum(s.hist.p50 / 1e3),
                fnum(s.hist.p95 / 1e3),
                fnum(s.hist.p99 / 1e3),
            ));
        }
    }

    out.push_str(&format!(
        "-- journal: {} events retained, {} dropped --\n",
        group_thousands(t.journal_len() as u64),
        group_thousands(t.journal_dropped()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(7), "7");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1_000), "1,000");
        assert_eq!(group_thousands(12_345), "12,345");
        assert_eq!(group_thousands(123_456), "123,456");
        assert_eq!(group_thousands(1_234_567), "1,234,567");
        assert_eq!(group_thousands(1_000_000_000), "1,000,000,000");
    }

    #[test]
    fn fnum_trims() {
        assert_eq!(fnum(120.0), "120");
        assert_eq!(fnum(0.5), "0.5");
        assert_eq!(fnum(0.12345), "0.123");
        assert_eq!(fnum(-3.0), "-3");
        assert_eq!(fnum(1_500_000.0), "1,500,000");
    }
}
