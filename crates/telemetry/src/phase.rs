//! Tick-loop phases and their wall-clock accounting cells.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::sync::atomic::AtomicU64;
use std::sync::Mutex;

/// The instrumented stages of a simulation tick (plus the two Prognos
/// stages). One RAII guard per phase per tick attributes wall-time here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// UE mobility step (route advance, speed model).
    Mobility,
    /// RAN handover state machine step.
    HoStateMachine,
    /// Channel / radio resource state evaluation (leg views).
    Channel,
    /// Measurement-event engines (A2/A3/A5/B1 triggering).
    Measurement,
    /// Handover policy (report handling + periodic tick).
    Policy,
    /// Link layer: capacity, bearer composition, flow steps.
    Link,
    /// Trace sample append.
    TraceAppend,
    /// Prognos stage 1: report prediction over signal histories.
    PrognosPrep,
    /// Prognos stage 2: forecast matching and decision logic.
    PrognosExec,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 9] = [
        Phase::Mobility,
        Phase::HoStateMachine,
        Phase::Channel,
        Phase::Measurement,
        Phase::Policy,
        Phase::Link,
        Phase::TraceAppend,
        Phase::PrognosPrep,
        Phase::PrognosExec,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into per-phase storage.
    pub fn index(self) -> usize {
        match self {
            Phase::Mobility => 0,
            Phase::HoStateMachine => 1,
            Phase::Channel => 2,
            Phase::Measurement => 3,
            Phase::Policy => 4,
            Phase::Link => 5,
            Phase::TraceAppend => 6,
            Phase::PrognosPrep => 7,
            Phase::PrognosExec => 8,
        }
    }

    /// Stable snake_case name used in the summary report.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Mobility => "mobility",
            Phase::HoStateMachine => "ho_state_machine",
            Phase::Channel => "channel",
            Phase::Measurement => "measurement",
            Phase::Policy => "policy",
            Phase::Link => "link",
            Phase::TraceAppend => "trace_append",
            Phase::PrognosPrep => "prognos_prep",
            Phase::PrognosExec => "prognos_exec",
        }
    }
}

/// Per-phase accumulation cell (interior-mutable; shared via `Arc<Inner>`).
pub(crate) struct PhaseCell {
    pub(crate) total_ns: AtomicU64,
    pub(crate) calls: AtomicU64,
    pub(crate) hist: Mutex<Histogram>,
}

impl PhaseCell {
    pub(crate) fn new() -> PhaseCell {
        PhaseCell { total_ns: AtomicU64::new(0), calls: AtomicU64::new(0), hist: Mutex::new(Histogram::new()) }
    }
}

/// Aggregated wall-clock stats for one phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    pub phase: Phase,
    pub calls: u64,
    pub total_ns: u64,
    /// Per-call latency distribution, in nanoseconds.
    pub hist: HistogramSnapshot,
}

impl PhaseStats {
    /// Total wall-time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Mean per-call latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64 / 1e3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Phase::COUNT];
        for p in Phase::ALL {
            let i = p.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
    }

    #[test]
    fn stats_math() {
        let s = PhaseStats { phase: Phase::Link, calls: 4, total_ns: 8_000_000, hist: HistogramSnapshot::default() };
        assert_eq!(s.total_ms(), 8.0);
        assert_eq!(s.mean_us(), 2_000.0);
    }
}
