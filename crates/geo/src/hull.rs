//! Convex hulls and convex-polygon intersection.
//!
//! §6.3 of the paper detects eNB/gNB co-location by building convex hulls of
//! the UE positions observed while attached to each 4G PCI and each 5G PCI,
//! then checking which 4G/5G hull pairs overlap (citing a "simple algorithm"
//! for convex polygon intersection). This module reimplements both pieces:
//! Andrew's monotone-chain hull and Sutherland–Hodgman clipping.

use crate::point::{cross, Point};
use serde::{Deserialize, Serialize};

/// A convex polygon with vertices in counter-clockwise order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Vertices in counter-clockwise order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the polygon has no vertices (empty intersection result).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Polygon area (0 for degenerate hulls of collinear points).
    pub fn area(&self) -> f64 {
        polygon_area(&self.vertices)
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: &Point) -> bool {
        if self.vertices.len() < 3 {
            return false;
        }
        let n = self.vertices.len();
        (0..n).all(|i| cross(&self.vertices[i], &self.vertices[(i + 1) % n], p) >= -1e-9)
    }

    /// True when this polygon and `other` share any area (or touch), i.e.
    /// their intersection is non-empty.
    pub fn overlaps(&self, other: &ConvexPolygon) -> bool {
        !convex_intersection(self, other).is_empty()
    }
}

/// Computes the convex hull of a point set using Andrew's monotone chain.
///
/// Returns the hull with vertices in counter-clockwise order. Degenerate
/// inputs (fewer than 3 distinct non-collinear points) yield hulls with
/// fewer than 3 vertices and zero area.
pub fn convex_hull(points: &[Point]) -> ConvexPolygon {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap().then(a.y.partial_cmp(&b.y).unwrap()));
    pts.dedup_by(|a, b| a.x == b.x && a.y == b.y);
    if pts.len() < 3 {
        return ConvexPolygon { vertices: pts };
    }

    let mut lower: Vec<Point> = Vec::new();
    for p in &pts {
        while lower.len() >= 2 && cross(&lower[lower.len() - 2], &lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(*p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for p in pts.iter().rev() {
        while upper.len() >= 2 && cross(&upper[upper.len() - 2], &upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(*p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    ConvexPolygon { vertices: lower }
}

/// Signed-to-absolute area of a simple polygon via the shoelace formula.
pub fn polygon_area(vertices: &[Point]) -> f64 {
    if vertices.len() < 3 {
        return 0.0;
    }
    let n = vertices.len();
    let mut acc = 0.0;
    for i in 0..n {
        let a = &vertices[i];
        let b = &vertices[(i + 1) % n];
        acc += a.x * b.y - b.x * a.y;
    }
    acc.abs() / 2.0
}

/// Intersects two convex polygons via Sutherland–Hodgman clipping.
///
/// The subject polygon is clipped against each edge of the clip polygon.
/// Returns the (possibly empty) intersection polygon in ccw order.
pub fn convex_intersection(subject: &ConvexPolygon, clip: &ConvexPolygon) -> ConvexPolygon {
    if subject.len() < 3 || clip.len() < 3 {
        return ConvexPolygon { vertices: vec![] };
    }
    let mut output = subject.vertices.clone();
    let n = clip.vertices.len();
    for i in 0..n {
        if output.is_empty() {
            break;
        }
        let a = clip.vertices[i];
        let b = clip.vertices[(i + 1) % n];
        let input = std::mem::take(&mut output);
        let m = input.len();
        for j in 0..m {
            let cur = input[j];
            let next = input[(j + 1) % m];
            let cur_in = cross(&a, &b, &cur) >= -1e-12;
            let next_in = cross(&a, &b, &next) >= -1e-12;
            if cur_in {
                output.push(cur);
                if !next_in {
                    if let Some(x) = line_intersection(&a, &b, &cur, &next) {
                        output.push(x);
                    }
                }
            } else if next_in {
                if let Some(x) = line_intersection(&a, &b, &cur, &next) {
                    output.push(x);
                }
            }
        }
    }
    // Drop near-duplicate vertices produced by clipping at corners.
    output.dedup_by(|a, b| a.distance(b) < 1e-9);
    if output.len() >= 2 && output[0].distance(output.last().unwrap()) < 1e-9 {
        output.pop();
    }
    if output.len() < 3 {
        return ConvexPolygon { vertices: vec![] };
    }
    ConvexPolygon { vertices: output }
}

/// Intersection of the infinite line `a->b` with segment `c->d`.
fn line_intersection(a: &Point, b: &Point, c: &Point, d: &Point) -> Option<Point> {
    let a1 = b.y - a.y;
    let b1 = a.x - b.x;
    let c1 = a1 * a.x + b1 * a.y;
    let a2 = d.y - c.y;
    let b2 = c.x - d.x;
    let c2 = a2 * c.x + b2 * c.y;
    let det = a1 * b2 - a2 * b1;
    if det.abs() < 1e-12 {
        return None;
    }
    Some(Point::new((b2 * c1 - b1 * c2) / det, (a1 * c2 - a2 * c1) / det))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, side: f64) -> ConvexPolygon {
        convex_hull(&[
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let mut pts = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 10.0), Point::new(0.0, 10.0)];
        // interior points must not appear in the hull
        pts.push(Point::new(5.0, 5.0));
        pts.push(Point::new(2.0, 3.0));
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!((h.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hull_of_collinear_points_is_degenerate() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let h = convex_hull(&pts);
        assert!(h.area() < 1e-12);
    }

    #[test]
    fn hull_is_ccw() {
        let h = square(0.0, 0.0, 4.0);
        let v = h.vertices();
        let n = v.len();
        for i in 0..n {
            assert!(cross(&v[i], &v[(i + 1) % n], &v[(i + 2) % n]) > 0.0);
        }
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let h = square(0.0, 0.0, 10.0);
        assert!(h.contains(&Point::new(5.0, 5.0)));
        assert!(h.contains(&Point::new(0.0, 5.0))); // boundary
        assert!(!h.contains(&Point::new(-1.0, 5.0)));
    }

    #[test]
    fn intersection_of_overlapping_squares() {
        let a = square(0.0, 0.0, 10.0);
        let b = square(5.0, 5.0, 10.0);
        let i = convex_intersection(&a, &b);
        assert!((i.area() - 25.0).abs() < 1e-6);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn intersection_of_disjoint_squares_is_empty() {
        let a = square(0.0, 0.0, 10.0);
        let b = square(20.0, 20.0, 5.0);
        assert!(convex_intersection(&a, &b).is_empty());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersection_contained_polygon() {
        let outer = square(0.0, 0.0, 20.0);
        let inner = square(5.0, 5.0, 2.0);
        let i = convex_intersection(&inner, &outer);
        assert!((i.area() - inner.area()).abs() < 1e-6);
        let j = convex_intersection(&outer, &inner);
        assert!((j.area() - inner.area()).abs() < 1e-6);
    }

    #[test]
    fn intersection_is_commutative_in_area() {
        let a = square(0.0, 0.0, 10.0);
        let b = square(3.0, -2.0, 7.0);
        let ab = convex_intersection(&a, &b).area();
        let ba = convex_intersection(&b, &a).area();
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn degenerate_hull_never_overlaps() {
        let line = convex_hull(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        let sq = square(0.0, -1.0, 2.0);
        assert!(!line.overlaps(&sq));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_points(n: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 3..n)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        #[test]
        fn hull_contains_all_points(pts in arb_points(40)) {
            let h = convex_hull(&pts);
            if h.len() >= 3 {
                for p in &pts {
                    prop_assert!(h.contains(p), "hull must contain {:?}", p);
                }
            }
        }

        #[test]
        fn hull_area_le_bounding_box(pts in arb_points(40)) {
            let h = convex_hull(&pts);
            let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in &pts {
                lo_x = lo_x.min(p.x); hi_x = hi_x.max(p.x);
                lo_y = lo_y.min(p.y); hi_y = hi_y.max(p.y);
            }
            prop_assert!(h.area() <= (hi_x - lo_x) * (hi_y - lo_y) + 1e-6);
        }

        #[test]
        fn intersection_area_le_min_area(a in arb_points(20), b in arb_points(20)) {
            let (ha, hb) = (convex_hull(&a), convex_hull(&b));
            let i = convex_intersection(&ha, &hb);
            prop_assert!(i.area() <= ha.area().min(hb.area()) + 1e-6);
        }

        #[test]
        fn self_intersection_is_identity_area(a in arb_points(20)) {
            let h = convex_hull(&a);
            let i = convex_intersection(&h, &h);
            if h.len() >= 3 {
                prop_assert!((i.area() - h.area()).abs() < 1e-6 * h.area().max(1.0));
            }
        }
    }
}
