//! Points in the local planar (ENU) frame, in meters.

use serde::{Deserialize, Serialize};

/// A position in the local east-north plane, in meters.
///
/// The simulator never needs geodetic coordinates: drive routes are laid out
/// in a flat local frame, which is accurate over the few-kilometer scale a
/// single scenario covers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East offset in meters.
    pub x: f64,
    /// North offset in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin of the local frame.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. nearest-cell queries).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: returns the point a fraction `t` of the way from
    /// `self` to `other`. `t` is clamped to `[0, 1]`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Bearing from `self` to `other` in radians, measured counter-clockwise
    /// from east. Returns 0 for coincident points.
    pub fn bearing(&self, other: &Point) -> f64 {
        let dy = other.y - self.y;
        let dx = other.x - self.x;
        if dx == 0.0 && dy == 0.0 {
            0.0
        } else {
            dy.atan2(dx)
        }
    }

    /// Returns the point displaced by `dist` meters along `bearing` radians.
    pub fn displaced(&self, bearing: f64, dist: f64) -> Point {
        Point::new(self.x + dist * bearing.cos(), self.y + dist * bearing.sin())
    }
}

/// 2-D cross product (z component) of vectors `o->a` and `o->b`.
///
/// Positive when `a -> b` turns counter-clockwise around `o`. This is the
/// orientation primitive used by the convex-hull code.
pub fn cross(o: &Point, a: &Point, b: &Point) -> f64 {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(10.0, -1.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid, Point::new(5.0, 10.0));
    }

    #[test]
    fn lerp_clamps_out_of_range() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        assert_eq!(a.lerp(&b, -3.0), a);
        assert_eq!(a.lerp(&b, 5.0), b);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::ORIGIN;
        assert!((o.bearing(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-12);
        let north = o.bearing(&Point::new(0.0, 1.0));
        assert!((north - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        let p = Point::new(4.0, 4.0);
        assert_eq!(p.bearing(&p), 0.0);
    }

    #[test]
    fn displaced_round_trip() {
        let p = Point::new(5.0, -3.0);
        let q = p.displaced(1.1, 42.0);
        assert!((p.distance(&q) - 42.0).abs() < 1e-9);
        assert!((p.bearing(&q) - 1.1).abs() < 1e-9);
    }

    #[test]
    fn cross_sign_reflects_orientation() {
        let o = Point::ORIGIN;
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert!(cross(&o, &a, &b) > 0.0); // ccw
        assert!(cross(&o, &b, &a) < 0.0); // cw
        assert_eq!(cross(&o, &a, &Point::new(2.0, 0.0)), 0.0); // collinear
    }
}
