//! Route generators for the study's scenarios.
//!
//! The paper's dataset mixes city loops (dense urban deployments, walking
//! datasets D1/D2, application drives) and long freeway legs (the
//! cross-country portion). These builders produce the corresponding
//! [`Polyline`]s in the local frame.

use crate::point::Point;
use crate::polyline::Polyline;

/// A rectangular loop of `width` × `height` meters starting (and ending) at
/// `origin`, traversed counter-clockwise.
///
/// Used for the walking loops of datasets D1/D2 and the downtown Zoom drive.
pub fn rectangular_loop(origin: Point, width: f64, height: f64) -> Polyline {
    assert!(width > 0.0 && height > 0.0, "loop dimensions must be positive");
    Polyline::new(vec![
        origin,
        Point::new(origin.x + width, origin.y),
        Point::new(origin.x + width, origin.y + height),
        Point::new(origin.x, origin.y + height),
        origin,
    ])
}

/// A straight freeway leg of `length` meters heading along `bearing` radians.
pub fn freeway_leg(origin: Point, bearing: f64, length: f64) -> Polyline {
    assert!(length > 0.0, "leg length must be positive");
    Polyline::new(vec![origin, origin.displaced(bearing, length)])
}

/// A gently curving freeway leg: `segments` chords of equal length whose
/// heading drifts by `drift` radians per segment. Mimics interstate curvature
/// so shadowing decorrelates the way it does on a real drive.
pub fn curved_freeway(origin: Point, bearing: f64, length: f64, segments: usize, drift: f64) -> Polyline {
    assert!(segments >= 1, "need at least one segment");
    let seg = length / segments as f64;
    let mut pts = Vec::with_capacity(segments + 1);
    let mut pos = origin;
    let mut b = bearing;
    pts.push(pos);
    for i in 0..segments {
        // Alternate the drift direction so the route stays roughly straight.
        let dir = if i % 2 == 0 { 1.0 } else { -1.0 };
        b += dir * drift;
        pos = pos.displaced(b, seg);
        pts.push(pos);
    }
    Polyline::new(pts)
}

/// A boustrophedon (lawnmower) sweep over a city grid: `rows` east-west
/// streets of `width` meters, separated by `block` meters. Used for the city
/// portions of the cross-country scenario where the car covers a downtown.
pub fn city_grid_sweep(origin: Point, width: f64, block: f64, rows: usize) -> Polyline {
    assert!(rows >= 1, "need at least one row");
    let mut pts = Vec::with_capacity(rows * 2);
    for r in 0..rows {
        let y = origin.y + r as f64 * block;
        let (x0, x1) = if r % 2 == 0 { (origin.x, origin.x + width) } else { (origin.x + width, origin.x) };
        pts.push(Point::new(x0, y));
        pts.push(Point::new(x1, y));
    }
    Polyline::new(pts)
}

/// Repeats a loop route `laps` times (e.g. "drive 10 loops around identified
/// spots", §5.3; "walking a 25 min loop 10×", §7.3).
pub fn repeat_loop(route: &Polyline, laps: usize) -> Polyline {
    assert!(laps >= 1, "need at least one lap");
    let mut out = route.clone();
    for _ in 1..laps {
        out.extend(route);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_loop_closes() {
        let l = rectangular_loop(Point::ORIGIN, 300.0, 200.0);
        assert_eq!(l.length(), 1000.0);
        assert_eq!(l.point_at(0.0), l.point_at(l.length()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rectangular_loop_rejects_zero_dims() {
        let _ = rectangular_loop(Point::ORIGIN, 0.0, 10.0);
    }

    #[test]
    fn freeway_leg_has_exact_length() {
        let l = freeway_leg(Point::ORIGIN, 0.3, 5000.0);
        assert!((l.length() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn curved_freeway_length_matches() {
        let l = curved_freeway(Point::ORIGIN, 0.0, 10_000.0, 20, 0.05);
        assert!((l.length() - 10_000.0).abs() < 1e-6);
        // net displacement should be close to straight for alternating drift
        let end = l.point_at(l.length());
        assert!(end.x > 9000.0, "route should progress mostly east: {end:?}");
    }

    #[test]
    fn city_grid_sweep_shape() {
        let g = city_grid_sweep(Point::ORIGIN, 400.0, 100.0, 4);
        // 4 rows of 400 m plus 3 connectors of 100 m... connectors are the
        // diagonal jumps between row ends; rows alternate direction so the
        // connector is vertical (100 m) each time.
        assert!((g.length() - (4.0 * 400.0 + 3.0 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn repeat_loop_multiplies_length() {
        let l = rectangular_loop(Point::ORIGIN, 100.0, 50.0);
        let r = repeat_loop(&l, 5);
        assert!((r.length() - 5.0 * l.length()).abs() < 1e-9);
        // lap boundaries land on the origin
        assert_eq!(r.point_at(2.0 * l.length()), Point::ORIGIN);
    }
}
