//! Planar geometry substrate for the 5G mobility simulator.
//!
//! The paper's drive tests record UE geolocation; the simulator works in a
//! local east-north-up (ENU) plane with coordinates in **meters**. This crate
//! provides the geometric primitives everything else builds on:
//!
//! * [`Point`] — a position in the local plane.
//! * [`Polyline`] — an arc-length parameterized route (city loops, freeway
//!   legs) that the UE drives along.
//! * [`hull`] — convex hulls and convex-polygon intersection, used to
//!   reimplement the paper's eNB/gNB co-location heuristic (§6.3): build
//!   convex hulls of the sample positions observed per 4G and 5G PCI and
//!   test whether the hulls overlap.
//! * [`routes`] — generators for the route shapes used by the scenarios
//!   (rectangular city loops, straight freeway legs, grid walks).

pub mod hull;
pub mod point;
pub mod polyline;
pub mod routes;

pub use hull::{convex_hull, convex_intersection, polygon_area, ConvexPolygon};
pub use point::Point;
pub use polyline::Polyline;
