//! Arc-length parameterized polylines: the drive/walk routes of the study.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A polyline route through the local plane.
///
/// Routes are the backbone of every scenario: the UE's mobility driver asks
/// "where am I after `d` meters of travel?" and the deployment generator
/// places towers at intervals along the same route. Both queries run against
/// the precomputed cumulative arc-length table, so lookups are `O(log n)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<Point>,
    /// `cum[i]` is the distance from the start to `points[i]`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from at least two waypoints.
    ///
    /// # Panics
    /// Panics if fewer than two points are given.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(points.len() >= 2, "a polyline needs at least two points");
        let mut cum = Vec::with_capacity(points.len());
        let mut total = 0.0;
        cum.push(0.0);
        for w in points.windows(2) {
            total += w[0].distance(&w[1]);
            cum.push(total);
        }
        Self { points, cum }
    }

    /// Total route length in meters.
    pub fn length(&self) -> f64 {
        *self.cum.last().unwrap()
    }

    /// The route's waypoints.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Position after traveling `dist` meters from the start.
    ///
    /// `dist` is clamped to `[0, length()]`, so callers can overrun the end
    /// of the route (e.g. the last mobility tick) without panicking.
    pub fn point_at(&self, dist: f64) -> Point {
        let dist = dist.clamp(0.0, self.length());
        let i = match self.cum.binary_search_by(|c| c.partial_cmp(&dist).unwrap()) {
            Ok(i) => return self.points[i],
            Err(i) => i,
        };
        // dist lies strictly between cum[i-1] and cum[i].
        let seg_len = self.cum[i] - self.cum[i - 1];
        let t = if seg_len > 0.0 { (dist - self.cum[i - 1]) / seg_len } else { 0.0 };
        self.points[i - 1].lerp(&self.points[i], t)
    }

    /// Heading (radians, ccw from east) of the segment containing `dist`.
    pub fn heading_at(&self, dist: f64) -> f64 {
        let dist = dist.clamp(0.0, self.length());
        let i = self.cum.partition_point(|&c| c <= dist).clamp(1, self.points.len() - 1);
        self.points[i - 1].bearing(&self.points[i])
    }

    /// Returns evenly spaced sample positions every `step` meters, including
    /// the start, and the end point if it is not already included.
    pub fn sample_every(&self, step: f64) -> Vec<Point> {
        assert!(step > 0.0, "sample step must be positive");
        let mut out = Vec::new();
        let mut d = 0.0;
        while d < self.length() {
            out.push(self.point_at(d));
            d += step;
        }
        out.push(self.point_at(self.length()));
        out
    }

    /// Concatenates another polyline onto the end of this one.
    ///
    /// The first point of `other` is connected to the current endpoint by a
    /// straight segment (unless they coincide).
    pub fn extend(&mut self, other: &Polyline) {
        let mut pts = std::mem::take(&mut self.points);
        for p in other.points() {
            if pts.last() != Some(p) {
                pts.push(*p);
            }
        }
        *self = Polyline::new(pts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0), Point::new(100.0, 50.0)])
    }

    #[test]
    fn length_sums_segments() {
        assert_eq!(l_shape().length(), 150.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let _ = Polyline::new(vec![Point::ORIGIN]);
    }

    #[test]
    fn point_at_start_middle_end() {
        let p = l_shape();
        assert_eq!(p.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(50.0), Point::new(50.0, 0.0));
        assert_eq!(p.point_at(100.0), Point::new(100.0, 0.0));
        assert_eq!(p.point_at(125.0), Point::new(100.0, 25.0));
        assert_eq!(p.point_at(150.0), Point::new(100.0, 50.0));
    }

    #[test]
    fn point_at_clamps() {
        let p = l_shape();
        assert_eq!(p.point_at(-10.0), Point::new(0.0, 0.0));
        assert_eq!(p.point_at(1e9), Point::new(100.0, 50.0));
    }

    #[test]
    fn heading_changes_at_corner() {
        let p = l_shape();
        assert!((p.heading_at(10.0) - 0.0).abs() < 1e-12);
        assert!((p.heading_at(120.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn sample_every_covers_route() {
        let p = l_shape();
        let s = p.sample_every(10.0);
        assert_eq!(s.first().copied(), Some(Point::new(0.0, 0.0)));
        assert_eq!(s.last().copied(), Some(Point::new(100.0, 50.0)));
        // 0,10,...,140 plus endpoint
        assert_eq!(s.len(), 16);
        for w in s.windows(2) {
            assert!(w[0].distance(&w[1]) <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn extend_joins_routes() {
        let mut a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(10.0, 0.0), Point::new(10.0, 10.0)]);
        a.extend(&b);
        assert_eq!(a.length(), 20.0);
        assert_eq!(a.points().len(), 3);
    }

    #[test]
    fn extend_inserts_connector_segment() {
        let mut a = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let b = Polyline::new(vec![Point::new(20.0, 0.0), Point::new(30.0, 0.0)]);
        a.extend(&b);
        assert_eq!(a.length(), 30.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_polyline() -> impl Strategy<Value = Polyline> {
        proptest::collection::vec((-1e4..1e4f64, -1e4..1e4f64), 2..20).prop_filter_map("degenerate", |pts| {
            let pts: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let p = Polyline::new(pts);
            (p.length() > 1.0).then_some(p)
        })
    }

    proptest! {
        #[test]
        fn point_at_is_on_route_length_budget(p in arb_polyline(), t in 0.0..1.0f64) {
            let d = t * p.length();
            let pos = p.point_at(d);
            // position must be within the route's bounding box
            let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
            for q in p.points() {
                lo_x = lo_x.min(q.x); hi_x = hi_x.max(q.x);
                lo_y = lo_y.min(q.y); hi_y = hi_y.max(q.y);
            }
            prop_assert!(pos.x >= lo_x - 1e-9 && pos.x <= hi_x + 1e-9);
            prop_assert!(pos.y >= lo_y - 1e-9 && pos.y <= hi_y + 1e-9);
        }

        #[test]
        fn arc_length_monotone(p in arb_polyline(), a in 0.0..1.0f64, b in 0.0..1.0f64) {
            // Distance along the route between two parameters never exceeds
            // the arc-length difference (straight line is shortest).
            let (a, b) = (a.min(b), a.max(b));
            let (da, db) = (a * p.length(), b * p.length());
            let chord = p.point_at(da).distance(&p.point_at(db));
            prop_assert!(chord <= (db - da) + 1e-6);
        }
    }
}
