//! Basic statistics: percentiles, CDFs, Gaussian kernel density estimation.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 for fewer than 2 samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `p`-th percentile (0..=100) by linear interpolation; 0 for empty.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (v[hi] - v[lo]) * (rank - lo as f64)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Empirical CDF sampled at `n` evenly spaced quantiles: returns
/// `(value, cumulative_probability)` pairs suitable for plotting.
pub fn cdf_points(xs: &[f64], n: usize) -> Vec<(f64, f64)> {
    if xs.is_empty() || n == 0 {
        return vec![];
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (0..=n)
        .map(|i| {
            let q = i as f64 / n as f64;
            let idx = ((v.len() - 1) as f64 * q).round() as usize;
            (v[idx], q)
        })
        .collect()
}

/// Gaussian kernel density estimate evaluated at `grid` points.
///
/// Bandwidth defaults to Silverman's rule of thumb when `bandwidth` is
/// `None`. This reproduces the density plots of Fig. 11.
pub fn kde_density(xs: &[f64], grid: &[f64], bandwidth: Option<f64>) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; grid.len()];
    }
    let h = bandwidth.unwrap_or_else(|| {
        let sd = stddev(xs);
        let n = xs.len() as f64;
        (1.06 * sd * n.powf(-0.2)).max(1e-6)
    });
    let norm = 1.0 / (xs.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
    grid.iter()
        .map(|&g| {
            xs.iter()
                .map(|&x| {
                    let z = (g - x) / h;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert!(cdf_points(&[], 10).is_empty());
        assert_eq!(kde_density(&[], &[0.0, 1.0], None), vec![0.0, 0.0]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(median(&xs), 2.5);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let c = cdf_points(&xs, 20);
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(c.first().unwrap().1, 0.0);
        assert_eq!(c.last().unwrap().1, 1.0);
    }

    #[test]
    fn kde_peaks_near_data_mass() {
        let xs = vec![10.0; 50];
        let grid = [0.0, 5.0, 10.0, 15.0, 20.0];
        let d = kde_density(&xs, &grid, Some(1.0));
        let max_i = d.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(grid[max_i], 10.0);
    }

    #[test]
    fn kde_integrates_to_one_roughly() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        let grid: Vec<f64> = (-50..100).map(|i| i as f64).collect();
        let d = kde_density(&xs, &grid, None);
        let integral: f64 = d.iter().sum::<f64>() * 1.0; // dx = 1
        assert!((integral - 1.0).abs() < 0.05, "{integral}");
    }

    #[test]
    fn kde_bimodal_shape() {
        let mut xs = vec![0.0; 100];
        xs.extend(vec![100.0; 100]);
        let grid = [0.0, 50.0, 100.0];
        let d = kde_density(&xs, &grid, Some(5.0));
        assert!(d[0] > d[1] * 5.0);
        assert!(d[2] > d[1] * 5.0);
    }
}
