//! Measurement analysis toolkit: every §4–§6 analysis as a library function.
//!
//! The paper's findings are statistics over the drive dataset; this crate
//! computes the same statistics over [`fiveg_sim::Trace`]s:
//!
//! * [`stats`] — percentiles, CDFs, Gaussian KDE (Fig. 11's density plots);
//! * [`metrics`] — precision/recall/F1/accuracy for the prediction work
//!   (§7.3's class-imbalance-aware evaluation);
//! * [`frequency`] — HO-per-km and signaling-overhead comparisons (§5.1);
//! * [`duration`] — T1/T2 stage statistics (§5.2, Figs. 8/9/13);
//! * [`coverage`] — PCI dwell-distance coverage estimation (§6.1, Fig. 11);
//! * [`colocation`] — the same-PCI + convex-hull co-location heuristic
//!   (§6.3);
//! * [`energy`] — HO energy accounting over traces (§5.3, Fig. 10);
//! * [`tput_phases`] — pre/during/post-HO throughput (§6.2, Figs. 12/16);
//! * [`inventory`] — Table 1-style dataset statistics.

pub mod colocation;
pub mod coverage;
pub mod duration;
pub mod energy;
pub mod frequency;
pub mod inventory;
pub mod metrics;
pub mod stats;
pub mod tput_phases;

pub use colocation::{colocated_sample_fraction, same_pci_pairs_overlap};
pub use coverage::{dwell_distances, CoverageKind};
pub use duration::DurationStats;
pub use energy::EnergyReport;
pub use frequency::{hos_per_km, km_per_ho};
pub use inventory::DatasetInventory;
pub use metrics::ClassMetrics;
pub use stats::{cdf_points, kde_density, mean, median, percentile, stddev};
pub use tput_phases::{ho_phase_throughput, PhaseTput};
