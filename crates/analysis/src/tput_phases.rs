//! Throughput around handovers (§6.2, Figs. 12/16).
//!
//! For each HO the paper measures three phases of an iPerf bulk download:
//! HO_pre (the second before preparation starts), HO_exec (during the
//! procedures) and HO_post (the second after completion).

use fiveg_radio::BandClass;
use fiveg_ran::{HandoverRecord, HoType};
use fiveg_sim::{FlowLog, Trace};
use serde::{Deserialize, Serialize};

/// Mean goodput in the three phases around one HO, Mbps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseTput {
    /// HO procedure.
    pub ho_type: HoType,
    /// Band class of the NR leg involved.
    pub nr_band: Option<BandClass>,
    /// Mean goodput in the 1 s before the decision, Mbps.
    pub pre_mbps: f64,
    /// Mean goodput during preparation+execution, Mbps.
    pub exec_mbps: f64,
    /// Mean goodput in the 1 s after completion, Mbps.
    pub post_mbps: f64,
}

/// Extracts per-HO phase throughput from a trace that ran a bulk flow.
///
/// Returns one [`PhaseTput`] per HO that has at least one flow sample in
/// every phase window. HOs that overlap each other's windows are still
/// reported independently, like the paper's per-event analysis.
pub fn ho_phase_throughput(trace: &Trace) -> Vec<PhaseTput> {
    let samples = match &trace.flow {
        FlowLog::Tcp(v) => v,
        _ => return vec![],
    };
    let mean_in = |a: f64, b: f64| -> Option<f64> {
        let vals: Vec<f64> = samples.iter().filter(|s| s.t >= a && s.t < b).map(|s| s.goodput_mbps).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    };
    trace
        .handovers
        .iter()
        .filter_map(|h: &HandoverRecord| {
            // The pre window is anchored one second before the triggering
            // condition began: our decisions are quality-triggered, so the
            // time-to-trigger interval right before `t_decision` is already
            // degraded — the paper's "1 second before the HO procedure"
            // corresponds to the pre-degradation state.
            let pre = mean_in(h.t_decision - 2.0, h.t_decision - 1.0)?;
            let exec = mean_in(h.t_decision, h.t_complete)?;
            let post = mean_in(h.t_complete, h.t_complete + 1.0)?;
            Some(PhaseTput { ho_type: h.ho_type, nr_band: h.nr_band, pre_mbps: pre, exec_mbps: exec, post_mbps: post })
        })
        .collect()
}

/// Mean of a phase accessor over a HO-type subset.
pub fn mean_phase(phases: &[PhaseTput], ho: HoType, f: impl Fn(&PhaseTput) -> f64) -> f64 {
    let v: Vec<f64> = phases.iter().filter(|p| p.ho_type == ho).map(f).collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_link::Cca;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::{ScenarioBuilder, Workload};

    fn bulk_trace(seed: u64) -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 8.0, seed)
            .duration_s(260.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(Cca::Cubic))
            .build()
            .run()
    }

    #[test]
    fn phases_extracted_for_most_hos() {
        let t = bulk_trace(61);
        let phases = ho_phase_throughput(&t);
        assert!(!phases.is_empty());
        assert!(phases.len() <= t.handovers.len());
    }

    #[test]
    fn scga_boosts_throughput_in_mmwave() {
        // Fig. 16: a successful SCG Addition raises throughput (4G→5G).
        // The dramatic boost is an mmWave-coverage phenomenon; on low-band
        // NSA the NR leg is comparable to aggregated LTE.
        let t = ScenarioBuilder::city_loop_dense(Carrier::OpX, 62)
            .duration_s(500.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(Cca::Cubic))
            .build()
            .run();
        let phases = ho_phase_throughput(&t);
        let pre = mean_phase(&phases, HoType::Scga, |p| p.pre_mbps);
        let post = mean_phase(&phases, HoType::Scga, |p| p.post_mbps);
        if pre > 1.0 && post > 0.0 {
            assert!(post > pre, "SCGA should raise throughput: {pre} -> {post}");
        }
    }

    #[test]
    fn scgr_leaves_ue_on_lte_rates() {
        // Our SCG releases are quality-triggered, so pre-release throughput
        // is already degraded (unlike the paper's RSRP-triggered releases
        // from fast cells; see EXPERIMENTS.md). The robust invariant: after
        // an SCGR the UE is LTE-only, so post-HO throughput is LTE-bounded.
        let t = bulk_trace(63);
        let phases = ho_phase_throughput(&t);
        let post = mean_phase(&phases, HoType::Scgr, |p| p.post_mbps);
        if post > 0.0 {
            assert!(post < 400.0, "post-SCGR throughput must be LTE-bounded: {post}");
        }
    }

    #[test]
    fn no_flow_no_phases() {
        let t =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 64).duration_s(60.0).sample_hz(10.0).build().run();
        assert!(ho_phase_throughput(&t).is_empty());
    }
}
