//! Handover energy accounting over traces (§5.3, Fig. 10).

use fiveg_radio::BandClass;
use fiveg_ran::{HandoverRecord, HoType};
use fiveg_sim::Trace;
use fiveg_ue::power::joules_to_mah;
use fiveg_ue::PowerModel;
use serde::{Deserialize, Serialize};

/// Aggregated HO energy over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// HOs counted.
    pub ho_count: usize,
    /// Total HO energy, Joules (above baseline).
    pub total_j: f64,
    /// Total HO energy, mAh.
    pub total_mah: f64,
    /// Energy per traveled km, J/km.
    pub j_per_km: f64,
    /// Mean power during a HO window, W.
    pub mean_ho_power_w: f64,
}

impl EnergyReport {
    /// Accounts the HOs of `trace` matching `filter` with `model`.
    pub fn over(trace: &Trace, model: &PowerModel, filter: impl Fn(&HandoverRecord) -> bool) -> Self {
        let hos: Vec<&HandoverRecord> = trace.handovers.iter().filter(|h| filter(h)).collect();
        let total_j: f64 = hos.iter().map(|h| model.ho_energy_j(h)).sum();
        let km = trace.meta.traveled_m / 1000.0;
        let mean_power = if hos.is_empty() {
            0.0
        } else {
            hos.iter().map(|h| model.ho_power_w(h.arch, h.nr_band, h.ho_type.category())).sum::<f64>()
                / hos.len() as f64
        };
        EnergyReport {
            ho_count: hos.len(),
            total_j,
            total_mah: joules_to_mah(total_j),
            j_per_km: if km > 0.0 { total_j / km } else { 0.0 },
            mean_ho_power_w: mean_power,
        }
    }

    /// Convenience filter: HOs whose NR leg is in `class`.
    pub fn band_filter(class: BandClass) -> impl Fn(&HandoverRecord) -> bool {
        move |h| h.nr_band == Some(class)
    }

    /// Convenience filter: pure-LTE HOs.
    pub fn lte_filter() -> impl Fn(&HandoverRecord) -> bool {
        |h| h.nr_band.is_none() && matches!(h.ho_type, HoType::Lteh | HoType::Mnbh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::ScenarioBuilder;

    fn nsa_freeway(seed: u64) -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 10.0, seed).duration_s(280.0).sample_hz(10.0).build().run()
    }

    #[test]
    fn report_fields_consistent() {
        let t = nsa_freeway(51);
        let r = EnergyReport::over(&t, &PowerModel::default(), |_| true);
        assert!(r.ho_count > 0);
        assert!(r.total_j > 0.0);
        assert!((r.total_mah - joules_to_mah(r.total_j)).abs() < 1e-12);
        assert!(r.j_per_km > 0.0);
        assert!(r.mean_ho_power_w > 0.0);
    }

    #[test]
    fn empty_filter_is_zero() {
        let t = nsa_freeway(52);
        let r = EnergyReport::over(&t, &PowerModel::default(), |_| false);
        assert_eq!(r.ho_count, 0);
        assert_eq!(r.total_j, 0.0);
        assert_eq!(r.mean_ho_power_w, 0.0);
    }

    #[test]
    fn fiveg_hos_cost_more_than_lte_hos_per_event() {
        let t = nsa_freeway(53);
        let m = PowerModel::default();
        let all5 = EnergyReport::over(&t, &m, |h| h.nr_band.is_some());
        let lte =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Lte, 10.0, 53).duration_s(280.0).sample_hz(10.0).build().run();
        let r_lte = EnergyReport::over(&lte, &m, |_| true);
        if all5.ho_count > 0 && r_lte.ho_count > 0 {
            let per5 = all5.total_j / all5.ho_count as f64;
            let per4 = r_lte.total_j / r_lte.ho_count as f64;
            assert!(per5 > per4, "per-HO energy 5G {per5} vs LTE {per4}");
        }
    }
}
