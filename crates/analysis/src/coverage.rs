//! Coverage estimation by PCI dwell distance (§6.1).
//!
//! "Since we did not have the tower locations, we estimate the coverage of a
//! cell by finding the continuous distance a UE travels while being
//! connected to the same cell." Three estimators reproduce Fig. 11's
//! curves:
//!
//! * [`CoverageKind::LteServing`] — dwell on the serving LTE PCI;
//! * [`CoverageKind::NrServing`] — dwell on the serving NR PCI (the *actual*
//!   NSA coverage: SCG releases cut the dwell short);
//! * [`CoverageKind::NrIdeal`] — dwell on the same strongest NR PCI
//!   regardless of attachment (the dashed "coverage w/o NSA" hypothetical,
//!   "assuming the UE to be in the same coverage as long as the same PCI of
//!   5G gNB is observed").

use fiveg_radio::BandClass;
use fiveg_sim::Trace;

/// Which dwell-distance estimator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageKind {
    /// Serving LTE cell dwell.
    LteServing,
    /// Serving NR cell dwell (actual NSA behaviour).
    NrServing,
    /// Strongest-observed NR gNB dwell (hypothetical, NSA-4C ignored).
    /// Tracked at gNB (tower) granularity: sector switches within a tower
    /// do not end a span, matching "in the same coverage as long as the
    /// same 5G gNB is observed".
    NrIdeal,
}

/// Computes continuous dwell distances (meters) for cells of `class`
/// (`None` = all classes). Each returned value is one dwell span — the
/// paper's per-cell "effective coverage (diameter)" sample.
pub fn dwell_distances(trace: &Trace, kind: CoverageKind, class: Option<BandClass>) -> Vec<f64> {
    let mut spans = Vec::new();
    let mut current: Option<(u32, f64)> = None; // (cell, span start dist)
    let mut last_dist = 0.0;
    // NrIdeal tracks observability, not attachment: "assuming the UE to be
    // in the same coverage as long as the same PCI of 5G gNB is observed".
    // Tracked per gNB (tower): the span ends only when no cell of the
    // tracked tower is measurable any more.
    let mut ideal_tower: Option<u32> = None;
    let mut ideal_cell: Option<u32> = None;
    let mut ideal_last_seen: f64 = f64::NEG_INFINITY;
    // a tower may drop out of the logged top-k neighbor list for a moment
    // without leaving coverage; tolerate short gaps
    const IDEAL_GRACE_S: f64 = 0.8;

    for s in &trace.samples {
        let cell = match kind {
            CoverageKind::LteServing => s.lte_cell,
            CoverageKind::NrServing => s.nr_cell,
            CoverageKind::NrIdeal => {
                // observable NR cells this tick (serving + neighbors),
                // restricted to the requested class up front
                let mut observed: Vec<(u32, f64)> = Vec::with_capacity(5);
                if let (Some(c), Some(r)) = (s.nr_cell, s.nr_rrs) {
                    observed.push((c, r.rsrp_dbm));
                }
                observed.extend(s.nr_neighbors.iter().map(|&(c, r)| (c, r.rsrp_dbm)));
                if let Some(k) = class {
                    observed.retain(|&(c, _)| trace.cell(c).class == k);
                }
                let tower_of = |c: u32| trace.cell(c).tower;
                let visible_cell = ideal_tower.and_then(|tw| {
                    observed
                        .iter()
                        .filter(|&&(o, _)| tower_of(o) == tw)
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                        .map(|&(c, _)| c)
                });
                match visible_cell {
                    Some(c) => {
                        ideal_cell = Some(c);
                        ideal_last_seen = s.t;
                    }
                    None if s.t - ideal_last_seen <= IDEAL_GRACE_S && ideal_cell.is_some() => {
                        // grace: keep riding the tracked tower
                    }
                    None => {
                        let best = observed.iter().copied().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                        ideal_tower = best.map(|(c, _)| tower_of(c));
                        ideal_cell = best.map(|(c, _)| c);
                        ideal_last_seen = s.t;
                    }
                }
                ideal_cell
            }
        };
        // restrict to the requested band class (NrIdeal already filtered)
        let cell = cell.filter(|&c| class.map(|k| trace.cell(c).class == k).unwrap_or(true));
        // NrIdeal spans are per tower: normalize the key so sector changes
        // within the tracked gNB do not split spans
        let cell = cell.map(|c| if kind == CoverageKind::NrIdeal { u32::MAX - trace.cell(c).tower } else { c });

        match (current, cell) {
            (None, Some(c)) => current = Some((c, s.dist_m)),
            (Some((cur, start)), Some(c)) if c != cur => {
                if s.dist_m > start {
                    spans.push(s.dist_m - start);
                }
                current = Some((c, s.dist_m));
            }
            (Some((cur, start)), None) => {
                if s.dist_m > start {
                    spans.push(s.dist_m - start);
                }
                let _ = (cur, start);
                current = None;
            }
            _ => {}
        }
        last_dist = s.dist_m;
    }
    if let Some((_, start)) = current {
        if last_dist > start {
            spans.push(last_dist - start);
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::ScenarioBuilder;

    fn nsa_freeway(seed: u64) -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 25.0, seed).duration_s(720.0).sample_hz(10.0).build().run()
    }

    #[test]
    fn spans_are_positive_and_bounded_by_route() {
        let t = nsa_freeway(31);
        for kind in [CoverageKind::LteServing, CoverageKind::NrServing, CoverageKind::NrIdeal] {
            for s in dwell_distances(&t, kind, None) {
                assert!(s > 0.0);
                assert!(s <= t.meta.traveled_m + 1.0);
            }
        }
    }

    #[test]
    fn nsa_reduces_effective_nr_coverage() {
        // the §6.1 headline: actual NSA dwell ≪ ideal same-PCI dwell
        let t = nsa_freeway(32);
        let actual = dwell_distances(&t, CoverageKind::NrServing, Some(BandClass::Low));
        let ideal = dwell_distances(&t, CoverageKind::NrIdeal, Some(BandClass::Low));
        assert!(!actual.is_empty() && !ideal.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&ideal) > mean(&actual) * 1.1,
            "ideal {} should exceed actual {} by ≥1.1×",
            mean(&ideal),
            mean(&actual)
        );
    }

    #[test]
    fn lte_dwell_shorter_than_ideal_low_band_nr() {
        // anchor mid-band cells are much smaller than low-band NR cells
        let t = nsa_freeway(33);
        let lte = dwell_distances(&t, CoverageKind::LteServing, None);
        let nr_ideal = dwell_distances(&t, CoverageKind::NrIdeal, Some(BandClass::Low));
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&nr_ideal) > mean(&lte));
    }

    #[test]
    fn class_filter_excludes_other_bands() {
        let t = nsa_freeway(34);
        let mm = dwell_distances(&t, CoverageKind::NrServing, Some(BandClass::MmWave));
        // no mmWave on freeways
        assert!(mm.is_empty());
    }
}
