//! Handover frequency (§5.1): HOs per km, km per HO, signaling overhead.

use fiveg_ran::{HandoverRecord, HoType};
use fiveg_sim::Trace;

/// Handovers matching `filter`, per traveled km.
pub fn hos_per_km(trace: &Trace, filter: impl Fn(&HandoverRecord) -> bool) -> f64 {
    let km = trace.meta.traveled_m / 1000.0;
    if km <= 0.0 {
        return 0.0;
    }
    trace.handovers.iter().filter(|h| filter(h)).count() as f64 / km
}

/// Mean distance between matching HOs, km ("a 5G HO occurs every 0.4 km").
/// Returns infinity when no HO matches.
pub fn km_per_ho(trace: &Trace, filter: impl Fn(&HandoverRecord) -> bool) -> f64 {
    let rate = hos_per_km(trace, filter);
    if rate <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / rate
    }
}

/// The paper's "5G-NSA mobility procedures": SCG Addition/Release/
/// Modification/Change (Table 1 counts these separately from 4G HOs).
pub fn is_nsa_5g_procedure(h: &HandoverRecord) -> bool {
    matches!(h.ho_type, HoType::Scga | HoType::Scgr | HoType::Scgm | HoType::Scgc)
}

/// 4G/LTE handovers (LTEH + MNBH, Table 2's 4G category).
pub fn is_4g_ho(h: &HandoverRecord) -> bool {
    matches!(h.ho_type, HoType::Lteh | HoType::Mnbh)
}

/// HO-related signaling messages per km (RRC + MAC layers).
pub fn signaling_msgs_per_km(trace: &Trace) -> f64 {
    let km = trace.meta.traveled_m / 1000.0;
    if km <= 0.0 {
        return 0.0;
    }
    trace.signaling.total_msgs() as f64 / km
}

/// PHY-layer measurement occasions per km.
pub fn phy_meas_per_km(trace: &Trace) -> f64 {
    let km = trace.meta.traveled_m / 1000.0;
    if km <= 0.0 {
        return 0.0;
    }
    trace.signaling.phy_meas as f64 / km
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::ScenarioBuilder;

    fn freeway(arch: Arch, seed: u64) -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, arch, 10.0, seed).duration_s(300.0).sample_hz(10.0).build().run()
    }

    #[test]
    fn nsa_hos_more_frequent_than_lte() {
        // the paper's headline: NSA every 0.4 km vs 4G every 0.6 km
        let nsa = freeway(Arch::Nsa, 21);
        let lte = freeway(Arch::Lte, 21);
        let nsa_rate = hos_per_km(&nsa, is_nsa_5g_procedure) + hos_per_km(&nsa, is_4g_ho);
        let lte_rate = hos_per_km(&lte, |_| true);
        assert!(nsa_rate > lte_rate, "NSA total HO rate {nsa_rate}/km should exceed LTE {lte_rate}/km");
    }

    #[test]
    fn sa_hos_less_frequent_than_nsa_5g() {
        let nsa = freeway(Arch::Nsa, 22);
        let sa = freeway(Arch::Sa, 22);
        let nsa_km = km_per_ho(&nsa, is_nsa_5g_procedure);
        let sa_km = km_per_ho(&sa, |_| true);
        assert!(sa_km > nsa_km, "SA should travel farther per HO: SA {sa_km} km vs NSA {nsa_km} km");
    }

    #[test]
    fn km_per_ho_inverse_relationship() {
        let t = freeway(Arch::Nsa, 23);
        let rate = hos_per_km(&t, |_| true);
        let dist = km_per_ho(&t, |_| true);
        assert!((rate * dist - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_matching_hos_is_infinite_distance() {
        let t = freeway(Arch::Lte, 24);
        assert_eq!(km_per_ho(&t, |h| h.ho_type == HoType::Mcgh), f64::INFINITY);
    }

    #[test]
    fn signaling_per_km_positive() {
        let t = freeway(Arch::Nsa, 25);
        assert!(signaling_msgs_per_km(&t) > 0.0);
        assert!(phy_meas_per_km(&t) > 0.0);
    }

    #[test]
    fn sa_signaling_below_nsa() {
        // §5.1: "SA 5G reduces HO-related signaling messages ... because of
        // lower HO frequency" — the robust ordering is SA ≪ NSA (the dual
        // connection doubles the signaling surface)
        let mean =
            |arch: Arch| -> f64 { (26..29).map(|s| signaling_msgs_per_km(&freeway(arch, s))).sum::<f64>() / 3.0 };
        let sa = mean(Arch::Sa);
        let nsa = mean(Arch::Nsa);
        assert!(sa < nsa / 1.3, "SA {sa} vs NSA {nsa}");
    }
}
