//! Classification metrics for HO prediction (§7.3).
//!
//! "The data has imbalanced classes (HOs only cover 0.4% of the total data
//! points). We therefore evaluate the performance on metrics oblivious to
//! class imbalance such as F1-Score, precision, and recall." Metrics are
//! computed over the *HO classes* (micro-averaged across everything except
//! the designated "no HO" label), plus plain accuracy for completeness.

use serde::{Deserialize, Serialize};

/// Micro-averaged precision/recall/F1 over non-background classes plus
/// overall accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Micro precision over HO classes.
    pub precision: f64,
    /// Micro recall over HO classes.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of all points classified correctly (incl. background).
    pub accuracy: f64,
}

impl ClassMetrics {
    /// Computes metrics from parallel label sequences.
    ///
    /// `background` is the "no HO" label excluded from precision/recall. A
    /// prediction counts as a true positive only when the exact HO class
    /// matches.
    pub fn from_labels<L: PartialEq + Copy>(truth: &[L], pred: &[L], background: L) -> Self {
        assert_eq!(truth.len(), pred.len(), "label sequences must align");
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut correct = 0usize;
        for (&t, &p) in truth.iter().zip(pred) {
            if t == p {
                correct += 1;
            }
            let t_ho = t != background;
            let p_ho = p != background;
            match (t_ho, p_ho) {
                (true, true) => {
                    if t == p {
                        tp += 1;
                    } else {
                        // wrong HO class: both a miss and a false alarm
                        fp += 1;
                        fn_ += 1;
                    }
                }
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
        let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
        let f1 = if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
        let accuracy = if truth.is_empty() { 0.0 } else { correct as f64 / truth.len() as f64 };
        ClassMetrics { precision, recall, f1, accuracy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO: u8 = 0;

    #[test]
    fn perfect_prediction() {
        let truth = [NO, NO, 1, NO, 2, NO];
        let m = ClassMetrics::from_labels(&truth, &truth, NO);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn all_background_prediction_has_zero_recall() {
        let truth = [NO, 1, NO, 2];
        let pred = [NO, NO, NO, NO];
        let m = ClassMetrics::from_labels(&truth, &pred, NO);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        // accuracy is still high — the class-imbalance trap the paper calls out
        assert_eq!(m.accuracy, 0.5);
    }

    #[test]
    fn majority_class_accuracy_trap() {
        // 99% background: predicting "never HO" gets 99% accuracy, 0 F1.
        let mut truth = vec![NO; 99];
        truth.push(1);
        let pred = vec![NO; 100];
        let m = ClassMetrics::from_labels(&truth, &pred, NO);
        assert!(m.accuracy > 0.98);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn wrong_class_counts_as_fp_and_fn() {
        let truth = [1u8];
        let pred = [2u8];
        let m = ClassMetrics::from_labels(&truth, &pred, NO);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn false_alarms_hurt_precision_only() {
        let truth = [NO, NO, NO, 1];
        let pred = [1, NO, NO, 1];
        let m = ClassMetrics::from_labels(&truth, &pred, NO);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 0.5);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = ClassMetrics::from_labels(&[NO], &[NO, NO], NO);
    }

    #[test]
    fn empty_input() {
        let m = ClassMetrics::from_labels::<u8>(&[], &[], NO);
        assert_eq!(m.accuracy, 0.0);
        assert_eq!(m.f1, 0.0);
    }
}
