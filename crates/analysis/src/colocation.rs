//! eNB/gNB co-location detection (§6.3).
//!
//! The paper's heuristic: "when the NSA-4C eNB and 5G-NR gNB are co-located
//! at the same physical tower, their 4G and 5G PCIs are the same", verified
//! by building convex hulls over the sample positions of each 4G and 5G PCI
//! and checking hull overlap. Both steps are reproduced here on trace data.

use fiveg_geo::{convex_hull, Point};
use fiveg_sim::Trace;
use std::collections::HashMap;

/// Fraction of NSA samples (with both LTE and NR serving cells) whose 4G
/// and 5G PCIs are equal — the paper finds 5%–36% across carriers.
pub fn colocated_sample_fraction(trace: &Trace) -> f64 {
    let mut both = 0usize;
    let mut same = 0usize;
    for s in &trace.samples {
        if let (Some(l), Some(n)) = (s.lte_cell, s.nr_cell) {
            both += 1;
            if trace.cell(l).pci == trace.cell(n).pci {
                same += 1;
            }
        }
    }
    if both == 0 {
        0.0
    } else {
        same as f64 / both as f64
    }
}

/// Verifies the same-PCI heuristic with convex hulls: for every 4G/5G PCI
/// pair with equal PCI values, builds the hulls of the UE positions observed
/// while served by each and tests overlap. Returns `(verified, total)` —
/// pairs whose hulls overlap / same-PCI pairs with enough samples.
pub fn same_pci_pairs_overlap(trace: &Trace) -> (usize, usize) {
    let mut lte_positions: HashMap<u16, Vec<Point>> = HashMap::new();
    let mut nr_positions: HashMap<u16, Vec<Point>> = HashMap::new();
    for s in &trace.samples {
        if let Some(l) = s.lte_cell {
            lte_positions.entry(trace.cell(l).pci).or_default().push(Point::new(s.pos.0, s.pos.1));
        }
        if let Some(n) = s.nr_cell {
            nr_positions.entry(trace.cell(n).pci).or_default().push(Point::new(s.pos.0, s.pos.1));
        }
    }
    let mut total = 0;
    let mut verified = 0;
    for (pci, lpos) in &lte_positions {
        if let Some(npos) = nr_positions.get(pci) {
            if lpos.len() < 3 || npos.len() < 3 {
                continue;
            }
            let lh = convex_hull(lpos);
            let nh = convex_hull(npos);
            if lh.len() < 3 || nh.len() < 3 {
                continue;
            }
            total += 1;
            if lh.overlaps(&nh) {
                verified += 1;
            }
        }
    }
    (verified, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::ScenarioBuilder;

    fn urban(carrier: Carrier, seed: u64) -> Trace {
        ScenarioBuilder::city_loop(carrier, seed).duration_s(500.0).sample_hz(10.0).build().run()
    }

    #[test]
    fn fraction_is_in_unit_interval() {
        let t = urban(Carrier::OpX, 41);
        let f = colocated_sample_fraction(&t);
        assert!((0.0..=1.0).contains(&f), "{f}");
    }

    #[test]
    fn opx_shows_more_colocation_than_opz() {
        // deployment profiles: OpX 36% co-location, OpZ 5%
        let fx: f64 = (0..3).map(|i| colocated_sample_fraction(&urban(Carrier::OpX, 42 + i))).sum::<f64>() / 3.0;
        let fz: f64 = (0..3).map(|i| colocated_sample_fraction(&urban(Carrier::OpZ, 42 + i))).sum::<f64>() / 3.0;
        assert!(fx > fz, "OpX {fx} should exceed OpZ {fz}");
    }

    #[test]
    fn same_pci_hulls_mostly_overlap() {
        // co-located cells serve the same area, so their hulls must overlap
        let t = urban(Carrier::OpX, 45);
        let (verified, total) = same_pci_pairs_overlap(&t);
        if total > 0 {
            assert!(verified * 10 >= total * 6, "expected most same-PCI hulls to overlap: {verified}/{total}");
        }
    }

    #[test]
    fn lte_only_trace_has_no_colocation() {
        let t =
            ScenarioBuilder::freeway(Carrier::OpX, Arch::Lte, 5.0, 46).duration_s(120.0).sample_hz(10.0).build().run();
        assert_eq!(colocated_sample_fraction(&t), 0.0);
        assert_eq!(same_pci_pairs_overlap(&t).1, 0);
    }
}
