//! Handover duration analysis (§5.2, Figs. 8/9/13).

use crate::stats;
use fiveg_ran::HandoverRecord;
use serde::{Deserialize, Serialize};

/// Summary statistics of a duration sample set, ms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationStats {
    /// Number of HOs aggregated.
    pub count: usize,
    /// Mean, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub median_ms: f64,
    /// 25th percentile, ms.
    pub p25_ms: f64,
    /// 75th percentile, ms.
    pub p75_ms: f64,
    /// Standard deviation, ms.
    pub std_ms: f64,
}

impl DurationStats {
    /// Builds stats from raw millisecond values.
    pub fn from_values(values: &[f64]) -> Self {
        Self {
            count: values.len(),
            mean_ms: stats::mean(values),
            median_ms: stats::median(values),
            p25_ms: stats::percentile(values, 25.0),
            p75_ms: stats::percentile(values, 75.0),
            std_ms: stats::stddev(values),
        }
    }

    /// T1 (preparation) stats over the matching HOs.
    pub fn t1(hos: &[HandoverRecord], filter: impl Fn(&HandoverRecord) -> bool) -> Self {
        let v: Vec<f64> = hos.iter().filter(|h| filter(h)).map(|h| h.stages.t1_ms).collect();
        Self::from_values(&v)
    }

    /// T2 (execution) stats over the matching HOs.
    pub fn t2(hos: &[HandoverRecord], filter: impl Fn(&HandoverRecord) -> bool) -> Self {
        let v: Vec<f64> = hos.iter().filter(|h| filter(h)).map(|h| h.stages.t2_ms).collect();
        Self::from_values(&v)
    }

    /// Total-duration stats over the matching HOs.
    pub fn total(hos: &[HandoverRecord], filter: impl Fn(&HandoverRecord) -> bool) -> Self {
        let v: Vec<f64> = hos.iter().filter(|h| filter(h)).map(|h| h.duration_ms()).collect();
        Self::from_values(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_radio::BandClass;
    use fiveg_ran::{Arch, HoType, StageSample};

    fn rec(ho_type: HoType, t1: f64, t2: f64, same_pci: bool) -> HandoverRecord {
        HandoverRecord {
            ho_type,
            arch: Arch::Nsa,
            nr_band: Some(BandClass::Low),
            t_decision: 0.0,
            t_command: t1 / 1000.0,
            t_complete: (t1 + t2) / 1000.0,
            stages: StageSample { t1_ms: t1, t2_ms: t2 },
            source_lte: None,
            source_nr: None,
            target: None,
            co_located: same_pci,
            same_pci,
            trigger_phase: vec![],
            interrupts: ho_type.interrupts(),
        }
    }

    #[test]
    fn stats_over_filtered_set() {
        let hos = vec![
            rec(HoType::Scga, 60.0, 90.0, false),
            rec(HoType::Scga, 80.0, 110.0, false),
            rec(HoType::Scgr, 40.0, 70.0, false),
        ];
        let s = DurationStats::t1(&hos, |h| h.ho_type == HoType::Scga);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_ms, 70.0);
        let tot = DurationStats::total(&hos, |_| true);
        assert_eq!(tot.count, 3);
        assert!((tot.mean_ms - (150.0 + 190.0 + 110.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_filter_yields_zero_stats() {
        let hos = vec![rec(HoType::Scga, 60.0, 90.0, false)];
        let s = DurationStats::t2(&hos, |h| h.ho_type == HoType::Mcgh);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn colocation_split_shows_difference() {
        // synthetic: co-located shorter, as the stage model produces
        let hos = vec![rec(HoType::Scgm, 60.0, 90.0, true), rec(HoType::Scgm, 75.0, 90.0, false)];
        let same = DurationStats::total(&hos, |h| h.same_pci);
        let diff = DurationStats::total(&hos, |h| !h.same_pci);
        assert!(diff.mean_ms > same.mean_ms);
    }

    #[test]
    fn percentiles_ordered() {
        let hos: Vec<HandoverRecord> = (0..50).map(|i| rec(HoType::Scga, 50.0 + i as f64, 80.0, false)).collect();
        let s = DurationStats::t1(&hos, |_| true);
        assert!(s.p25_ms <= s.median_ms);
        assert!(s.median_ms <= s.p75_ms);
    }
}
