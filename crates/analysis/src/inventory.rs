//! Dataset inventory: the Table 1 statistics over a set of traces.

use crate::frequency::{is_4g_ho, is_nsa_5g_procedure};
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, HoType};
use fiveg_sim::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Table 1-style statistics for one carrier's traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetInventory {
    /// Unique towers observed (the paper's "# of unique cells (i.e. towers)").
    pub unique_towers: usize,
    /// Unique NR bands observed.
    pub nr_bands: usize,
    /// Unique LTE bands observed.
    pub lte_bands: usize,
    /// Distance in city environments, km.
    pub city_km: f64,
    /// Distance on freeways, km.
    pub freeway_km: f64,
    /// 4G/LTE handovers (LTEH + MNBH).
    pub lte_hos: usize,
    /// 5G-NSA mobility procedures (SCGA/SCGR/SCGM/SCGC).
    pub nsa_procedures: usize,
    /// 5G-SA handovers (MCGH).
    pub sa_hos: usize,
    /// Minutes with an active NR leg in each band class (low/mid/mmWave).
    pub nr_minutes: [f64; 3],
    /// Minutes under each architecture (LTE / NSA / SA).
    pub arch_minutes: [f64; 3],
}

impl DatasetInventory {
    /// Aggregates the inventory over traces (all assumed same carrier).
    pub fn over(traces: &[&Trace]) -> Self {
        let mut inv = DatasetInventory::default();
        let mut towers: HashSet<(u64, u32)> = HashSet::new();
        let mut nr_bands: HashSet<String> = HashSet::new();
        let mut lte_bands: HashSet<String> = HashSet::new();
        for (ti, t) in traces.iter().enumerate() {
            let dt_min = 1.0 / t.meta.sample_hz / 60.0;
            // observed cells: serving appearances
            for s in &t.samples {
                for c in s.lte_cell.iter().chain(s.nr_cell.iter()) {
                    let e = t.cell(*c);
                    towers.insert((ti as u64 ^ (t.meta.seed << 8), e.tower));
                    if e.is_nr {
                        nr_bands.insert(e.band.clone());
                    } else {
                        lte_bands.insert(e.band.clone());
                    }
                }
                if let Some(n) = s.nr_cell {
                    let idx = match t.cell(n).class {
                        BandClass::Low => 0,
                        BandClass::Mid => 1,
                        BandClass::MmWave => 2,
                    };
                    inv.nr_minutes[idx] += dt_min;
                }
                let a = match t.meta.arch {
                    Arch::Lte => 0,
                    Arch::Nsa => 1,
                    Arch::Sa => 2,
                };
                inv.arch_minutes[a] += dt_min;
            }
            match t.meta.env {
                fiveg_ran::Environment::Freeway => inv.freeway_km += t.meta.traveled_m / 1000.0,
                _ => inv.city_km += t.meta.traveled_m / 1000.0,
            }
            inv.lte_hos += t.handovers.iter().filter(|h| is_4g_ho(h)).count();
            inv.nsa_procedures += t.handovers.iter().filter(|h| is_nsa_5g_procedure(h)).count();
            inv.sa_hos += t.handovers.iter().filter(|h| h.ho_type == HoType::Mcgh).count();
        }
        inv.unique_towers = towers.len();
        inv.nr_bands = nr_bands.len();
        inv.lte_bands = lte_bands.len();
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Carrier;
    use fiveg_sim::ScenarioBuilder;

    #[test]
    fn inventory_aggregates_across_traces() {
        let a =
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 71).duration_s(170.0).sample_hz(10.0).build().run();
        let b = ScenarioBuilder::city_loop(Carrier::OpY, 72).duration_s(170.0).sample_hz(10.0).build().run();
        let inv = DatasetInventory::over(&[&a, &b]);
        assert!(inv.unique_towers > 0);
        assert!(inv.freeway_km > 0.0);
        assert!(inv.city_km > 0.0);
        assert!(inv.lte_hos + inv.nsa_procedures > 0);
        assert!(inv.nr_bands >= 1);
        assert!(inv.lte_bands >= 1);
        // NSA-only traces: all minutes in arch index 1
        assert_eq!(inv.arch_minutes[0], 0.0);
        assert!(inv.arch_minutes[1] > 0.0);
        assert_eq!(inv.arch_minutes[2], 0.0);
    }

    #[test]
    fn empty_inventory() {
        let inv = DatasetInventory::over(&[]);
        assert_eq!(inv, DatasetInventory::default());
    }
}
