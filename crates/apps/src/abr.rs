//! Adaptive-bitrate algorithms (§7.4).
//!
//! RB, fastMPC and robustMPC follow the Pensieve/MPC formulation \[48, 67\];
//! FESTIVE follows Jiang et al. \[41\]. Each algorithm consumes a throughput
//! prediction; the paper's modification is one line: "we scale up or down
//! the predicted throughput by multiplying it with the ho_score received
//! from Prognos" — the [`TputCorrector`] hook.

use serde::{Deserialize, Serialize};

/// Correction applied to the throughput prediction at decision time
/// (time-indexed; 1.0 = leave unchanged). `-PR` variants install Prognos's
/// `ho_score`, `-GT` variants the ground-truth capacity ratio.
pub type TputCorrector = Box<dyn Fn(f64) -> f64 + Send + Sync>;

/// The ABR algorithms under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbrAlgorithm {
    /// Rate-based: highest level whose bitrate fits the prediction.
    RateBased,
    /// MPC with the nominal prediction over a short horizon.
    FastMpc,
    /// MPC with the prediction discounted by the recent max error.
    RobustMpc,
    /// FESTIVE: harmonic-mean bandwidth + stability-limited switching.
    Festive,
}

impl AbrAlgorithm {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AbrAlgorithm::RateBased => "RB",
            AbrAlgorithm::FastMpc => "fastMPC",
            AbrAlgorithm::RobustMpc => "robustMPC",
            AbrAlgorithm::Festive => "FESTIVE",
        }
    }
}

/// Decision input for one chunk.
#[derive(Debug, Clone)]
pub struct AbrState<'a> {
    /// Current buffer occupancy, s.
    pub buffer_s: f64,
    /// Level selected for the previous chunk.
    pub last_level: usize,
    /// (Corrected) predicted throughput, Mbps.
    pub predicted_mbps: f64,
    /// Level bitrates, Mbps, ascending.
    pub levels: &'a [f64],
    /// Chunk duration, s.
    pub chunk_s: f64,
}

/// MPC smoothness weight (Pensieve uses 1 × |quality difference|).
const SMOOTH_PENALTY: f64 = 1.0;
/// MPC lookahead depth (chunks).
const MPC_HORIZON: usize = 4;

/// Stateful ABR controller.
pub struct Abr {
    algorithm: AbrAlgorithm,
    /// Relative prediction errors observed (for robustMPC's discount).
    errors: Vec<f64>,
    /// FESTIVE: consecutive chunks the candidate switch has been stable.
    festive_stable: usize,
    festive_candidate: Option<usize>,
}

impl Abr {
    /// Creates a controller.
    pub fn new(algorithm: AbrAlgorithm) -> Self {
        Self { algorithm, errors: Vec::new(), festive_stable: 0, festive_candidate: None }
    }

    /// The algorithm this controller runs.
    pub fn algorithm(&self) -> AbrAlgorithm {
        self.algorithm
    }

    /// Records the realized throughput for the last prediction so
    /// robustMPC can bound its optimism.
    pub fn observe(&mut self, predicted_mbps: f64, actual_mbps: f64) {
        if actual_mbps > 1e-6 {
            let err = ((predicted_mbps - actual_mbps) / actual_mbps).abs();
            self.errors.push(err);
            if self.errors.len() > 5 {
                self.errors.remove(0);
            }
        }
    }

    /// Selects the quality level for the next chunk.
    pub fn select(&mut self, s: &AbrState<'_>) -> usize {
        match self.algorithm {
            AbrAlgorithm::RateBased => Self::rate_based(s, s.predicted_mbps),
            AbrAlgorithm::FastMpc => self.mpc(s, s.predicted_mbps),
            AbrAlgorithm::RobustMpc => {
                let max_err = self.errors.iter().cloned().fold(0.0, f64::max);
                self.mpc(s, s.predicted_mbps / (1.0 + max_err))
            }
            AbrAlgorithm::Festive => self.festive(s),
        }
    }

    fn rate_based(s: &AbrState<'_>, tput: f64) -> usize {
        s.levels.iter().rposition(|&b| b <= tput).unwrap_or(0)
    }

    /// Exhaustive MPC over [`MPC_HORIZON`] chunks with a constant predicted
    /// throughput, maximizing bitrate − rebuffer − smoothness.
    fn mpc(&self, s: &AbrState<'_>, tput: f64) -> usize {
        let k = s.levels.len();
        // Pensieve scales the rebuffer penalty to the top quality: one
        // second of stall cancels one chunk at the highest level.
        let rebuf_penalty = *s.levels.last().unwrap();
        let mut best_first = s.last_level.min(k - 1);
        let mut best_qoe = f64::NEG_INFINITY;
        // enumerate level sequences via counting in base k
        let seqs = k.pow(MPC_HORIZON as u32);
        for code in 0..seqs {
            let mut c = code;
            let mut buffer = s.buffer_s;
            let mut prev = s.last_level;
            let mut qoe = 0.0;
            let mut first = 0;
            for step in 0..MPC_HORIZON {
                let level = c % k;
                c /= k;
                if step == 0 {
                    first = level;
                }
                let dl_time = s.levels[level] * s.chunk_s / tput.max(0.01);
                let rebuf = (dl_time - buffer).max(0.0);
                buffer = (buffer - dl_time).max(0.0) + s.chunk_s;
                qoe +=
                    s.levels[level] - rebuf_penalty * rebuf - SMOOTH_PENALTY * (s.levels[level] - s.levels[prev]).abs();
                prev = level;
            }
            if qoe > best_qoe {
                best_qoe = qoe;
                best_first = first;
            }
        }
        best_first
    }

    /// FESTIVE-flavoured: efficiency target 85% of predicted bandwidth,
    /// one-level switches only, and only after the target has been stable
    /// for a few chunks.
    fn festive(&mut self, s: &AbrState<'_>) -> usize {
        let target = Self::rate_based(s, 0.85 * s.predicted_mbps);
        let cur = s.last_level;
        if target == cur {
            self.festive_candidate = None;
            self.festive_stable = 0;
            return cur;
        }
        // downswitches are immediate (avoid stalls); upswitches need stability
        if target < cur {
            self.festive_candidate = None;
            self.festive_stable = 0;
            return cur - 1;
        }
        if self.festive_candidate == Some(target) {
            self.festive_stable += 1;
        } else {
            self.festive_candidate = Some(target);
            self.festive_stable = 1;
        }
        if self.festive_stable >= 3 {
            self.festive_stable = 0;
            self.festive_candidate = None;
            cur + 1
        } else {
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVELS: [f64; 6] = [8.0, 20.0, 45.0, 90.0, 180.0, 320.0];

    fn state(buffer: f64, last: usize, pred: f64) -> AbrState<'static> {
        AbrState { buffer_s: buffer, last_level: last, predicted_mbps: pred, levels: &LEVELS, chunk_s: 2.0 }
    }

    #[test]
    fn rate_based_picks_highest_fitting() {
        let mut abr = Abr::new(AbrAlgorithm::RateBased);
        assert_eq!(abr.select(&state(10.0, 0, 100.0)), 3); // 90 <= 100 < 180
        assert_eq!(abr.select(&state(10.0, 0, 7.0)), 0); // nothing fits: lowest
        assert_eq!(abr.select(&state(10.0, 0, 1000.0)), 5);
    }

    #[test]
    fn mpc_upgrades_with_ample_bandwidth_and_buffer() {
        let mut abr = Abr::new(AbrAlgorithm::FastMpc);
        let l = abr.select(&state(20.0, 2, 400.0));
        assert!(l >= 4, "expected high level, got {l}");
    }

    #[test]
    fn mpc_defends_buffer_when_bandwidth_collapses() {
        let mut abr = Abr::new(AbrAlgorithm::FastMpc);
        let l = abr.select(&state(2.0, 5, 15.0));
        assert!(l <= 1, "expected defensive level, got {l}");
    }

    #[test]
    fn robust_mpc_is_more_conservative_after_errors() {
        let mut fast = Abr::new(AbrAlgorithm::FastMpc);
        let mut robust = Abr::new(AbrAlgorithm::RobustMpc);
        // teach robustMPC that predictions overestimate 2×
        robust.observe(200.0, 100.0);
        let s = state(6.0, 3, 180.0);
        let lf = fast.select(&s);
        let lr = robust.select(&s);
        assert!(lr <= lf, "robust {lr} must not exceed fast {lf}");
        assert!(lr < 4);
    }

    #[test]
    fn festive_upswitch_requires_stability() {
        let mut abr = Abr::new(AbrAlgorithm::Festive);
        let s = state(15.0, 1, 300.0);
        // needs 3 consecutive stable targets before stepping up one level
        assert_eq!(abr.select(&s), 1);
        assert_eq!(abr.select(&s), 1);
        assert_eq!(abr.select(&s), 2);
    }

    #[test]
    fn festive_downswitch_is_immediate() {
        let mut abr = Abr::new(AbrAlgorithm::Festive);
        let s = state(4.0, 4, 20.0);
        assert_eq!(abr.select(&s), 3);
    }

    #[test]
    fn observe_window_is_bounded() {
        let mut abr = Abr::new(AbrAlgorithm::RobustMpc);
        for i in 0..20 {
            abr.observe(100.0 + i as f64, 100.0);
        }
        assert!(abr.errors.len() <= 5);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(AbrAlgorithm::RateBased.name(), "RB");
        assert_eq!(AbrAlgorithm::FastMpc.name(), "fastMPC");
        assert_eq!(AbrAlgorithm::RobustMpc.name(), "robustMPC");
        assert_eq!(AbrAlgorithm::Festive.name(), "FESTIVE");
    }
}
