//! Live video-conferencing QoE around handovers (§4.1, Fig. 4).
//!
//! The paper extracts a ±1 s window around each HO timestamp from a Zoom
//! drive and compares latency/loss inside and outside those windows:
//! "the average latency is 2.26× higher compared to no-handover periods
//! (up to 14.5× in the worst case). Likewise, the average packet loss rate
//! increases by 2.24×."

use fiveg_sim::{FlowLog, Trace};
use serde::{Deserialize, Serialize};

/// Conferencing QoE split into HO and no-HO periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConferencingReport {
    /// Mean latency inside HO windows, ms.
    pub latency_ho_ms: f64,
    /// Mean latency outside HO windows, ms.
    pub latency_no_ho_ms: f64,
    /// Worst-case single-sample latency inside HO windows, ms.
    pub latency_worst_ms: f64,
    /// Mean loss fraction inside HO windows.
    pub loss_ho: f64,
    /// Mean loss fraction outside HO windows.
    pub loss_no_ho: f64,
    /// Number of HOs covered.
    pub ho_count: usize,
}

impl ConferencingReport {
    /// Latency inflation factor during HOs.
    pub fn latency_factor(&self) -> f64 {
        if self.latency_no_ho_ms <= 0.0 {
            0.0
        } else {
            self.latency_ho_ms / self.latency_no_ho_ms
        }
    }

    /// Worst-case latency inflation factor.
    pub fn worst_latency_factor(&self) -> f64 {
        if self.latency_no_ho_ms <= 0.0 {
            0.0
        } else {
            self.latency_worst_ms / self.latency_no_ho_ms
        }
    }

    /// Loss inflation factor during HOs.
    pub fn loss_factor(&self) -> f64 {
        if self.loss_no_ho <= 0.0 {
            f64::INFINITY
        } else {
            self.loss_ho / self.loss_no_ho
        }
    }
}

/// Splits a CBR-workload trace's samples into ±`window_s` around HOs vs the
/// rest and aggregates latency/loss.
pub fn conferencing_report(trace: &Trace, window_s: f64) -> Option<ConferencingReport> {
    let samples = match &trace.flow {
        FlowLog::Cbr(v) => v,
        _ => return None,
    };
    let in_ho_window =
        |t: f64| trace.handovers.iter().any(|h| t >= h.t_decision - window_s && t <= h.t_complete + window_s);
    let mut ho_lat = Vec::new();
    let mut no_lat = Vec::new();
    let mut ho_loss = Vec::new();
    let mut no_loss = Vec::new();
    for s in samples {
        if in_ho_window(s.t) {
            ho_lat.push(s.latency_ms);
            ho_loss.push(s.loss);
        } else {
            no_lat.push(s.latency_ms);
            no_loss.push(s.loss);
        }
    }
    if ho_lat.is_empty() || no_lat.is_empty() {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Some(ConferencingReport {
        latency_ho_ms: mean(&ho_lat),
        latency_no_ho_ms: mean(&no_lat),
        latency_worst_ms: ho_lat.iter().cloned().fold(0.0, f64::max),
        loss_ho: mean(&ho_loss),
        loss_no_ho: mean(&no_loss),
        ho_count: trace.handovers.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::{ScenarioBuilder, Workload};

    fn zoom_trace(seed: u64) -> Trace {
        // Zoom one-on-one: ~1 Mbps, 150 ms deadline (paper cites 0.6–0.95
        // Mbps requirement)
        ScenarioBuilder::city_loop(Carrier::OpX, seed)
            .duration_s(500.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 1.0, deadline_ms: 150.0 })
            .build()
            .run()
    }

    #[test]
    fn report_extracted_and_latency_inflates_during_hos() {
        let t = zoom_trace(81);
        let r = conferencing_report(&t, 1.0).expect("report");
        assert!(r.ho_count > 0);
        assert!(r.latency_factor() > 1.1, "HO latency {} should exceed no-HO {}", r.latency_ho_ms, r.latency_no_ho_ms);
        assert!(r.worst_latency_factor() >= r.latency_factor());
    }

    #[test]
    fn no_cbr_flow_yields_none() {
        let t = ScenarioBuilder::city_loop(Carrier::OpX, 82).duration_s(60.0).sample_hz(10.0).build().run();
        assert!(conferencing_report(&t, 1.0).is_none());
    }

    #[test]
    fn lte_only_also_reports() {
        let t = ScenarioBuilder::freeway(Carrier::OpX, Arch::Lte, 8.0, 83)
            .duration_s(240.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 1.0, deadline_ms: 150.0 })
            .build()
            .run();
        // LTE drives also have HOs; the report should exist
        if !t.handovers.is_empty() {
            assert!(conferencing_report(&t, 1.0).is_some());
        }
    }
}
