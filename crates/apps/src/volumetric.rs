//! Real-time volumetric video streaming (ViVo-style, §7.4).
//!
//! "A 3-min volumetric video compressed with Draco is encoded at 5
//! point-cloud density levels (corresponding to bitrates in {43, 77, 110,
//! 140, 170} Mbps)." Being real-time, there is no deep buffer: each 1 s
//! segment must be delivered roughly in real time; delivery deficits stall
//! the stream. Rate adaptation picks the density level per segment from a
//! throughput prediction, optionally corrected by the HO hook.

use crate::abr::{Abr, AbrAlgorithm, AbrState, TputCorrector};
use crate::emulator::BandwidthTrace;
use serde::{Deserialize, Serialize};

/// Volumetric session configuration.
pub struct VolumetricConfig {
    /// Density-level bitrates, Mbps (ViVo's five levels).
    pub levels: Vec<f64>,
    /// Video duration, s.
    pub duration_s: f64,
    /// Segment length, s.
    pub segment_s: f64,
    /// Rate-adaptation algorithm (ViVo uses its own rate-based logic; the
    /// paper also evaluates FESTIVE).
    pub algorithm: AbrAlgorithm,
    /// Optional prediction correction.
    pub corrector: Option<TputCorrector>,
    /// Real-time slack: a segment may take up to this factor × segment_s
    /// before the deficit counts as a stall.
    pub slack: f64,
}

impl Default for VolumetricConfig {
    fn default() -> Self {
        Self {
            levels: vec![43.0, 77.0, 110.0, 140.0, 170.0],
            duration_s: 180.0,
            segment_s: 1.0,
            algorithm: AbrAlgorithm::RateBased,
            corrector: None,
            slack: 1.25,
        }
    }
}

/// Session outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumetricResult {
    /// Mean selected bitrate, Mbps.
    pub mean_bitrate_mbps: f64,
    /// Mean bitrate normalized by the top level.
    pub normalized_quality: f64,
    /// Total stall time, s.
    pub stall_s: f64,
    /// Stall fraction of the video duration.
    pub stall_frac: f64,
}

/// A runnable volumetric streaming session.
pub struct VolumetricSession {
    cfg: VolumetricConfig,
}

impl VolumetricSession {
    /// Creates a session.
    pub fn new(cfg: VolumetricConfig) -> Self {
        Self { cfg }
    }

    /// Streams the video over `trace` in real time.
    pub fn run(&mut self, trace: &BandwidthTrace) -> VolumetricResult {
        let cfg = &self.cfg;
        let mut abr = Abr::new(cfg.algorithm);
        let mut t = 0.0;
        let mut stall = 0.0;
        let mut bitrate_acc = 0.0;
        let mut last_level = 0usize;
        let mut history: Vec<f64> = Vec::new();
        let segments = (cfg.duration_s / cfg.segment_s).round() as usize;

        for _seg in 0..segments {
            let base_pred = if history.is_empty() {
                cfg.levels[0]
            } else {
                let tail = &history[history.len().saturating_sub(5)..];
                tail.len() as f64 / tail.iter().map(|x| 1.0 / x.max(0.01)).sum::<f64>()
            };
            let correction = cfg.corrector.as_ref().map(|c| c(t)).unwrap_or(1.0);
            let pred = base_pred * correction;
            let level = abr.select(&AbrState {
                // real-time: effectively no buffer beyond the slack
                buffer_s: cfg.segment_s * (cfg.slack - 1.0),
                last_level,
                predicted_mbps: pred,
                levels: &cfg.levels,
                chunk_s: cfg.segment_s,
            });
            let megabits = cfg.levels[level] * cfg.segment_s;
            let dl = trace.download_time(megabits, t);
            let deadline = cfg.segment_s * cfg.slack;
            if dl > deadline {
                stall += dl - deadline;
            }
            // real time advances at least one segment even if delivery was fast
            t += dl.max(cfg.segment_s);
            let actual = megabits / dl.max(1e-6);
            abr.observe(pred, actual);
            history.push(actual);
            bitrate_acc += cfg.levels[level];
            last_level = level;
        }

        let mean_bitrate = bitrate_acc / segments as f64;
        VolumetricResult {
            mean_bitrate_mbps: mean_bitrate,
            normalized_quality: mean_bitrate / cfg.levels.last().unwrap(),
            stall_s: stall,
            stall_frac: stall / cfg.duration_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(mbps: f64) -> BandwidthTrace {
        BandwidthTrace::new((0..=900).map(|i| (i as f64, mbps)).collect())
    }

    fn run_with(algorithm: AbrAlgorithm, trace: &BandwidthTrace) -> VolumetricResult {
        VolumetricSession::new(VolumetricConfig { algorithm, ..Default::default() }).run(trace)
    }

    #[test]
    fn rich_link_reaches_top_density() {
        let r = run_with(AbrAlgorithm::RateBased, &flat(400.0));
        assert!(r.normalized_quality > 0.9, "{}", r.normalized_quality);
        assert_eq!(r.stall_s, 0.0);
    }

    #[test]
    fn poor_link_sticks_to_lowest_density() {
        let r = run_with(AbrAlgorithm::RateBased, &flat(50.0));
        assert!(r.mean_bitrate_mbps < 60.0, "{}", r.mean_bitrate_mbps);
    }

    #[test]
    fn outage_causes_stall() {
        let pts: Vec<(f64, f64)> =
            (0..=900).map(|i| (i as f64, if (60..66).contains(&i) { 1.0 } else { 200.0 })).collect();
        let r = run_with(AbrAlgorithm::RateBased, &BandwidthTrace::new(pts));
        assert!(r.stall_s > 0.5, "{}", r.stall_s);
    }

    #[test]
    fn corrector_that_warns_of_drop_reduces_stall() {
        let pts: Vec<(f64, f64)> =
            (0..=900).map(|i| (i as f64, if (60..75).contains(&i) { 40.0 } else { 200.0 })).collect();
        let tr = BandwidthTrace::new(pts);
        let plain = run_with(AbrAlgorithm::RateBased, &tr);
        let c: TputCorrector = Box::new(|t| if (58.0..75.0).contains(&t) { 0.2 } else { 1.0 });
        let warned = VolumetricSession::new(VolumetricConfig { corrector: Some(c), ..Default::default() }).run(&tr);
        assert!(warned.stall_s <= plain.stall_s, "warned {} vs plain {}", warned.stall_s, plain.stall_s);
    }

    #[test]
    fn stall_frac_consistent() {
        let r = run_with(AbrAlgorithm::Festive, &flat(120.0));
        assert!((r.stall_frac - r.stall_s / 180.0).abs() < 1e-9);
    }
}
