//! 16K panoramic video-on-demand over a bandwidth trace (§7.4).
//!
//! "Our evaluation uses a custom 16K panoramic video encoded with
//! H.264/MPEG-4 at 6 quality levels (720p, 1080p, 2K, 4K, 8K, 16K) ... the
//! video is divided into 60 chunks and has a total length of 120 seconds."
//! The session downloads chunks over a [`BandwidthTrace`], maintains the
//! playout buffer, and accounts stalls; the ABR's throughput predictor is
//! the classic harmonic mean of the last 5 chunk throughputs, optionally
//! corrected by a [`TputCorrector`].

use crate::abr::{Abr, AbrAlgorithm, AbrState, TputCorrector};
use crate::emulator::BandwidthTrace;
use fiveg_telemetry::{Event, Telemetry};
use serde::{Deserialize, Serialize};

/// VoD session configuration.
pub struct VodConfig {
    /// Level bitrates, Mbps, ascending (defaults: 720p→16K).
    pub levels: Vec<f64>,
    /// Number of chunks.
    pub chunks: usize,
    /// Chunk duration, s.
    pub chunk_s: f64,
    /// The ABR algorithm.
    pub algorithm: AbrAlgorithm,
    /// Optional prediction correction (the `-PR` / `-GT` variants).
    pub corrector: Option<TputCorrector>,
    /// Marks times that lie inside a HO window, for the Fig. 14b
    /// prediction-error bucketing (independent of whether a corrector is
    /// installed).
    pub ho_window: Option<Box<dyn Fn(f64) -> bool + Send + Sync>>,
    /// Startup buffer target before playback begins, s.
    pub startup_s: f64,
}

impl Default for VodConfig {
    fn default() -> Self {
        Self {
            levels: vec![8.0, 20.0, 45.0, 90.0, 180.0, 320.0],
            chunks: 60,
            chunk_s: 2.0,
            algorithm: AbrAlgorithm::FastMpc,
            corrector: None,
            ho_window: None,
            startup_s: 4.0,
        }
    }
}

/// Session outcome metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VodResult {
    /// Mean selected bitrate normalized by the top level (0..=1).
    pub normalized_bitrate: f64,
    /// Total stall time, s (excluding startup).
    pub stall_s: f64,
    /// Stall time as a fraction of video duration.
    pub stall_frac: f64,
    /// Mean absolute throughput prediction error, Mbps.
    pub pred_mae_mbps: f64,
    /// Mean absolute prediction error over chunks whose download window
    /// overlapped a correction (HO) period, Mbps.
    pub pred_mae_ho_mbps: f64,
    /// Number of level switches.
    pub switches: usize,
}

/// A runnable VoD session.
pub struct VodSession {
    cfg: VodConfig,
    telemetry: Telemetry,
}

impl VodSession {
    /// Creates a session.
    pub fn new(cfg: VodConfig) -> Self {
        Self { cfg, telemetry: Telemetry::disabled() }
    }

    /// Installs a telemetry recorder (disabled by default): rebuffering
    /// events are counted and journaled at trace time.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.telemetry = tele;
    }

    /// Plays the whole video over `trace` and reports QoE.
    pub fn run(&mut self, trace: &BandwidthTrace) -> VodResult {
        let cfg = &self.cfg;
        let mut abr = Abr::new(cfg.algorithm);
        let mut t = 0.0; // wall time on the trace
        let mut buffer = 0.0;
        let mut last_level = 0usize;
        let mut history: Vec<f64> = Vec::new(); // realized chunk tputs
        let mut stall = 0.0;
        let mut switches = 0usize;
        let mut bitrate_acc = 0.0;
        let mut mae_acc = 0.0;
        let mut mae_n = 0usize;
        let mut mae_ho_acc = 0.0;
        let mut mae_ho_n = 0usize;
        let mut started = false;

        for _chunk in 0..cfg.chunks {
            // harmonic-mean predictor over the last 5 chunk throughputs
            let base_pred = if history.is_empty() {
                cfg.levels[0] * 2.0
            } else {
                let tail = &history[history.len().saturating_sub(5)..];
                tail.len() as f64 / tail.iter().map(|x| 1.0 / x.max(0.01)).sum::<f64>()
            };
            let correction = cfg.corrector.as_ref().map(|c| c(t)).unwrap_or(1.0);
            let pred = base_pred * correction;

            let level = abr.select(&AbrState {
                buffer_s: buffer,
                last_level,
                predicted_mbps: pred,
                levels: &cfg.levels,
                chunk_s: cfg.chunk_s,
            });
            if started && level != last_level {
                switches += 1;
            }
            let megabits = cfg.levels[level] * cfg.chunk_s;
            let dl = trace.download_time(megabits, t);
            let actual_tput = megabits / dl.max(1e-6);

            // buffer dynamics: playback drains while downloading
            if started {
                let drained = buffer.min(dl);
                if dl > buffer {
                    stall += dl - buffer;
                    if self.telemetry.is_enabled() {
                        // the player runs dry `buffer` seconds into the
                        // download and resumes once the chunk lands
                        self.telemetry.incr("vod.stalls");
                        self.telemetry.observe("vod.stall_s", dl - buffer);
                        self.telemetry.record(t + buffer, Event::StallStart { flow: "vod".to_string() });
                        self.telemetry
                            .record(t + dl, Event::StallEnd { flow: "vod".to_string(), duration_s: dl - buffer });
                    }
                }
                buffer = buffer - drained + cfg.chunk_s;
            } else {
                buffer += cfg.chunk_s;
                if buffer >= cfg.startup_s {
                    started = true;
                }
            }
            t += dl;

            // prediction-error accounting (Fig. 14b)
            let err = (pred - actual_tput).abs();
            mae_acc += err;
            mae_n += 1;
            let in_ho = cfg.ho_window.as_ref().map(|f| f(t)).unwrap_or(correction != 1.0);
            if in_ho {
                mae_ho_acc += err;
                mae_ho_n += 1;
            }

            abr.observe(pred, actual_tput);
            history.push(actual_tput);
            bitrate_acc += cfg.levels[level];
            last_level = level;
        }

        let video_s = cfg.chunks as f64 * cfg.chunk_s;
        VodResult {
            normalized_bitrate: bitrate_acc / (cfg.chunks as f64 * cfg.levels.last().unwrap()),
            stall_s: stall,
            stall_frac: stall / video_s,
            pred_mae_mbps: if mae_n > 0 { mae_acc / mae_n as f64 } else { 0.0 },
            pred_mae_ho_mbps: if mae_ho_n > 0 { mae_ho_acc / mae_ho_n as f64 } else { 0.0 },
            switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(mbps: f64) -> BandwidthTrace {
        BandwidthTrace::new((0..=600).map(|i| (i as f64, mbps)).collect())
    }

    fn run(algorithm: AbrAlgorithm, trace: &BandwidthTrace) -> VodResult {
        VodSession::new(VodConfig { algorithm, ..Default::default() }).run(trace)
    }

    #[test]
    fn ample_bandwidth_no_stall_high_quality() {
        let r = run(AbrAlgorithm::FastMpc, &flat(500.0));
        assert_eq!(r.stall_s, 0.0);
        assert!(r.normalized_bitrate > 0.7, "{}", r.normalized_bitrate);
    }

    #[test]
    fn scarce_bandwidth_drops_quality() {
        let r = run(AbrAlgorithm::FastMpc, &flat(25.0));
        assert!(r.normalized_bitrate < 0.15, "{}", r.normalized_bitrate);
    }

    #[test]
    fn sudden_drop_causes_stalls_for_naive_rb() {
        // 300 Mbps for 30 s, then 10 Mbps: RB follows the harmonic mean into
        // the cliff and stalls
        let pts: Vec<(f64, f64)> = (0..=600).map(|i| (i as f64, if i < 30 { 300.0 } else { 10.0 })).collect();
        let tr = BandwidthTrace::new(pts);
        let r = run(AbrAlgorithm::RateBased, &tr);
        assert!(r.stall_s > 0.0, "expected stalls, got {r:?}");
    }

    #[test]
    fn gt_corrector_reduces_stalls_on_cliff() {
        let pts: Vec<(f64, f64)> = (0..=600).map(|i| (i as f64, if i < 30 { 300.0 } else { 12.0 })).collect();
        let tr = BandwidthTrace::new(pts);
        let plain = run(AbrAlgorithm::RateBased, &tr);
        // a "ground truth" corrector that knows about the cliff at t=30
        let c: TputCorrector = Box::new(|t| if t > 27.0 && t < 33.0 { 0.05 } else { 1.0 });
        let corrected =
            VodSession::new(VodConfig { algorithm: AbrAlgorithm::RateBased, corrector: Some(c), ..Default::default() })
                .run(&tr);
        assert!(corrected.stall_s < plain.stall_s, "corrected {} vs plain {}", corrected.stall_s, plain.stall_s);
    }

    #[test]
    fn telemetry_counts_stalls() {
        use fiveg_telemetry::TelemetryConfig;
        let pts: Vec<(f64, f64)> = (0..=600).map(|i| (i as f64, if i < 30 { 300.0 } else { 10.0 })).collect();
        let tr = BandwidthTrace::new(pts);
        let tele = Telemetry::new(TelemetryConfig::on());
        let mut sess = VodSession::new(VodConfig { algorithm: AbrAlgorithm::RateBased, ..Default::default() });
        sess.set_telemetry(tele.clone());
        let r = sess.run(&tr);
        assert!(r.stall_s > 0.0);
        assert!(tele.counter_value("vod.stalls") > 0);
        let jsonl = tele.journal_jsonl();
        assert!(jsonl.contains("\"flow\":\"vod\""), "{jsonl}");
    }

    #[test]
    fn stall_frac_consistent() {
        let r = run(AbrAlgorithm::RobustMpc, &flat(60.0));
        assert!((r.stall_frac - r.stall_s / 120.0).abs() < 1e-9);
    }

    #[test]
    fn festive_switches_less_than_rb() {
        // oscillating bandwidth provokes switching
        let pts: Vec<(f64, f64)> = (0..=600).map(|i| (i as f64, if (i / 8) % 2 == 0 { 150.0 } else { 40.0 })).collect();
        let tr = BandwidthTrace::new(pts);
        let rb = run(AbrAlgorithm::RateBased, &tr);
        let fe = run(AbrAlgorithm::Festive, &tr);
        assert!(fe.switches <= rb.switches, "festive {} vs rb {}", fe.switches, rb.switches);
    }
}
