//! Cloud gaming QoE around handovers (§4.1, Fig. 5).
//!
//! 4K@60FPS cloud gaming: latency-sensitive *and* bandwidth-hungry. The
//! paper reports network latency ×2.26 and dropped frames ×2.6 during HOs,
//! and that NSA-4C HOs (MNBH) hurt more than 5G-NR HOs (SCGM): "+16.8 ms
//! network latency and a 65% increase in dropped frames".

use fiveg_ran::HoType;
use fiveg_sim::{FlowLog, Trace};
use serde::{Deserialize, Serialize};

/// Gaming QoE split by HO presence and HO type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GamingReport {
    /// Mean network latency inside HO windows, ms.
    pub latency_ho_ms: f64,
    /// Mean network latency outside HO windows, ms.
    pub latency_no_ho_ms: f64,
    /// Mean dropped-frame fraction inside HO windows.
    pub drops_ho: f64,
    /// Mean dropped-frame fraction outside HO windows.
    pub drops_no_ho: f64,
    /// Mean latency inside MNBH (4G-anchor HO) windows, ms.
    pub latency_mnbh_ms: f64,
    /// Mean latency inside SCGM (NR-internal HO) windows, ms.
    pub latency_scgm_ms: f64,
    /// Mean drop fraction inside MNBH windows.
    pub drops_mnbh: f64,
    /// Mean drop fraction inside SCGM windows.
    pub drops_scgm: f64,
}

impl GamingReport {
    /// Latency inflation during HOs.
    pub fn latency_factor(&self) -> f64 {
        if self.latency_no_ho_ms <= 0.0 {
            0.0
        } else {
            self.latency_ho_ms / self.latency_no_ho_ms
        }
    }

    /// Dropped-frame inflation during HOs.
    pub fn drop_factor(&self) -> f64 {
        if self.drops_no_ho <= 0.0 {
            f64::INFINITY
        } else {
            self.drops_ho / self.drops_no_ho
        }
    }
}

/// Builds the report from a CBR-workload trace (the gaming stream).
pub fn gaming_report(trace: &Trace, window_s: f64) -> Option<GamingReport> {
    let samples = match &trace.flow {
        FlowLog::Cbr(v) => v,
        _ => return None,
    };
    let window_of = |ho_filter: &dyn Fn(HoType) -> bool, t: f64| {
        trace
            .handovers
            .iter()
            .any(|h| ho_filter(h.ho_type) && t >= h.t_decision - window_s && t <= h.t_complete + window_s)
    };
    let agg = |filter: &dyn Fn(HoType) -> bool, inside: bool| -> (f64, f64, usize) {
        let mut lat = 0.0;
        let mut loss = 0.0;
        let mut n = 0usize;
        for s in samples {
            if window_of(filter, s.t) == inside {
                lat += s.latency_ms;
                loss += s.loss;
                n += 1;
            }
        }
        (lat, loss, n)
    };
    let any = |_: HoType| true;
    let (l_ho, d_ho, n_ho) = agg(&any, true);
    let (l_no, d_no, n_no) = agg(&any, false);
    if n_ho == 0 || n_no == 0 {
        return None;
    }
    // Per-type comparisons use windows *exclusive* to that type: when an
    // MNBH and an SCGM cluster in time, a shared sample would contaminate
    // both aggregates.
    let mnbh = |h: HoType| h == HoType::Mnbh || h == HoType::Lteh;
    let scgm = |h: HoType| h == HoType::Scgm;
    let not_mnbh = |h: HoType| !(h == HoType::Mnbh || h == HoType::Lteh);
    let not_scgm = |h: HoType| h != HoType::Scgm;
    let agg_excl = |only: &dyn Fn(HoType) -> bool, other: &dyn Fn(HoType) -> bool| {
        let mut lat = 0.0;
        let mut loss = 0.0;
        let mut n = 0usize;
        for s in samples {
            if window_of(only, s.t) && !window_of(other, s.t) {
                lat += s.latency_ms;
                loss += s.loss;
                n += 1;
            }
        }
        (lat, loss, n)
    };
    let (l_m, d_m, n_m) = agg_excl(&mnbh, &not_mnbh);
    let (l_s, d_s, n_s) = agg_excl(&scgm, &not_scgm);
    let div = |a: f64, n: usize| if n > 0 { a / n as f64 } else { 0.0 };
    Some(GamingReport {
        latency_ho_ms: div(l_ho, n_ho),
        latency_no_ho_ms: div(l_no, n_no),
        drops_ho: div(d_ho, n_ho),
        drops_no_ho: div(d_no, n_no),
        latency_mnbh_ms: div(l_m, n_m),
        latency_scgm_ms: div(l_s, n_s),
        drops_mnbh: div(d_m, n_m),
        drops_scgm: div(d_s, n_s),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Carrier;
    use fiveg_sim::{ScenarioBuilder, Workload};

    fn gaming_trace(seed: u64) -> Trace {
        // 4K@60FPS stream ≈ 25 Mbps, ~2-frame delivery budget
        ScenarioBuilder::city_loop(Carrier::OpX, seed)
            .duration_s(600.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 25.0, deadline_ms: 34.0 })
            .build()
            .run()
    }

    fn dense_gaming_trace(seed: u64) -> Trace {
        // dense core: mmWave sectors make SCGM HOs frequent
        ScenarioBuilder::city_loop_dense(Carrier::OpX, seed)
            .duration_s(600.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 25.0, deadline_ms: 34.0 })
            .build()
            .run()
    }

    #[test]
    fn hos_degrade_gaming_qoe() {
        let t = gaming_trace(91);
        let r = gaming_report(&t, 1.0).expect("report");
        assert!(r.latency_factor() > 1.05, "latency factor {}", r.latency_factor());
        assert!(r.drops_ho >= r.drops_no_ho, "drops {} vs {}", r.drops_ho, r.drops_no_ho);
    }

    #[test]
    fn mnbh_hurts_more_than_scgm_when_both_present() {
        // aggregate across seeds to reduce variance
        let mut mnbh_lat = 0.0;
        let mut scgm_lat = 0.0;
        let mut n = 0;
        for seed in 92..97 {
            let t = dense_gaming_trace(seed);
            if let Some(r) = gaming_report(&t, 1.0) {
                if r.latency_mnbh_ms > 0.0 && r.latency_scgm_ms > 0.0 {
                    mnbh_lat += r.latency_mnbh_ms;
                    scgm_lat += r.latency_scgm_ms;
                    n += 1;
                }
            }
        }
        if n > 0 {
            assert!(
                mnbh_lat >= scgm_lat,
                "4G-anchor HOs should hurt at least as much: MNBH {mnbh_lat} vs SCGM {scgm_lat}"
            );
        }
    }

    #[test]
    fn no_flow_gives_none() {
        let t = ScenarioBuilder::city_loop(Carrier::OpX, 98).duration_s(60.0).sample_hz(10.0).build().run();
        assert!(gaming_report(&t, 1.0).is_none());
    }
}
