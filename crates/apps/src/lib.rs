//! Application QoE layer: the workloads of §4 and the Prognos use cases of
//! §7.4.
//!
//! * [`emulator`] — trace-driven bandwidth playback (the Mahimahi role):
//!   slice recorded capacity series into 240 s traces, filter them the way
//!   the paper does (< 400 Mbps average, > 2 Mbps minimum), and integrate
//!   downloads over them;
//! * [`abr`] — adaptive-bitrate algorithms: rate-based (RB), fastMPC,
//!   robustMPC, FESTIVE, each with optional HO-aware throughput correction
//!   (`-PR` = Prognos `ho_score`, `-GT` = ground truth);
//! * [`vod`] — the 16K panoramic video-on-demand player (60 chunks, 6
//!   quality levels, buffer dynamics, stall accounting);
//! * [`volumetric`] — ViVo-style real-time volumetric streaming at 5
//!   point-cloud density levels ({43..170} Mbps);
//! * [`conferencing`] — Zoom-like call QoE around HOs (Fig. 4);
//! * [`gaming`] — 4K@60FPS cloud-gaming QoE around HOs (Fig. 5).

pub mod abr;
pub mod conferencing;
pub mod emulator;
pub mod gaming;
pub mod vod;
pub mod volumetric;

pub use abr::{Abr, AbrAlgorithm, AbrState, TputCorrector};
pub use conferencing::{conferencing_report, ConferencingReport};
pub use emulator::BandwidthTrace;
pub use gaming::{gaming_report, GamingReport};
pub use vod::{VodConfig, VodResult, VodSession};
pub use volumetric::{VolumetricConfig, VolumetricResult, VolumetricSession};
