//! Trace-driven bandwidth emulation (the Mahimahi role, §7.4).
//!
//! "We collect bandwidth traces by saturating the downlink channel of a
//! mobile device while driving. We feed these traces into Mahimahi ... We
//! post-process the collected logs to generate 40+ traces (each spanning
//! 240 seconds) using a sliding window across the data ... we only consider
//! traces with an average bandwidth less than 400 Mbps (and minimum
//! bandwidth above 2 Mbps)."

use serde::{Deserialize, Serialize};

/// A replayable bandwidth trace: time-ordered (t, Mbps) samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthTrace {
    points: Vec<(f64, f64)>,
}

impl BandwidthTrace {
    /// Builds a trace from (t, Mbps) points (must be time-ordered).
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two points");
        assert!(points.windows(2).all(|w| w[1].0 > w[0].0), "points must be strictly time-ordered");
        Self { points }
    }

    /// Trace duration, s.
    pub fn duration_s(&self) -> f64 {
        self.points.last().unwrap().0 - self.points[0].0
    }

    /// Capacity at `t` (step interpolation; clamped to the ends).
    pub fn capacity_at(&self, t: f64) -> f64 {
        let t = t + self.points[0].0; // trace-relative time
        match self.points.binary_search_by(|p| p.0.partial_cmp(&t).unwrap()) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Mean capacity, Mbps.
    pub fn mean_mbps(&self) -> f64 {
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// Minimum capacity, Mbps.
    pub fn min_mbps(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min)
    }

    /// Simulates downloading `megabits` starting at trace-time `t0`;
    /// returns the completion time (trace-relative, s). Time beyond the
    /// trace end reuses the final capacity.
    pub fn download_time(&self, megabits: f64, t0: f64) -> f64 {
        const DT: f64 = 0.02;
        let mut remaining = megabits;
        let mut t = t0;
        // hard cap to avoid infinite loops on zero-capacity tails
        let cap_end = t0 + 4.0 * self.duration_s() + 600.0;
        while remaining > 0.0 && t < cap_end {
            let rate = self.capacity_at(t.min(self.duration_s()));
            remaining -= rate * DT;
            t += DT;
        }
        t - t0
    }

    /// Mean capacity over `[a, b)` (trace-relative), Mbps.
    pub fn mean_over(&self, a: f64, b: f64) -> f64 {
        const DT: f64 = 0.05;
        let mut acc = 0.0;
        let mut n = 0;
        let mut t = a;
        while t < b {
            acc += self.capacity_at(t);
            n += 1;
            t += DT;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }

    /// Slices a long capacity series into overlapping `window_s` traces
    /// every `stride_s`, keeping only those passing the paper's filter
    /// (mean < 400 Mbps, min > 2 Mbps).
    pub fn slice_windows(series: &[(f64, f64)], window_s: f64, stride_s: f64) -> Vec<BandwidthTrace> {
        if series.len() < 2 {
            return vec![];
        }
        let t_start = series[0].0;
        let t_end = series.last().unwrap().0;
        let mut out = Vec::new();
        let mut a = t_start;
        while a + window_s <= t_end {
            let pts: Vec<(f64, f64)> =
                series.iter().filter(|p| p.0 >= a && p.0 < a + window_s).map(|&(t, c)| (t - a, c)).collect();
            if pts.len() >= 2 {
                let tr = BandwidthTrace::new(pts);
                if tr.mean_mbps() < 400.0 && tr.min_mbps() > 2.0 {
                    out.push(tr);
                }
            }
            a += stride_s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(mbps: f64, secs: usize) -> BandwidthTrace {
        BandwidthTrace::new((0..=secs).map(|i| (i as f64, mbps)).collect())
    }

    #[test]
    fn capacity_step_interpolation() {
        let t = BandwidthTrace::new(vec![(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)]);
        assert_eq!(t.capacity_at(0.0), 10.0);
        assert_eq!(t.capacity_at(0.5), 10.0);
        assert_eq!(t.capacity_at(1.0), 20.0);
        assert_eq!(t.capacity_at(1.9), 20.0);
        assert_eq!(t.capacity_at(5.0), 30.0);
    }

    #[test]
    fn download_time_inverse_to_rate() {
        let t = flat(100.0, 60);
        // 100 Mb at 100 Mbps = 1 s
        let d = t.download_time(100.0, 0.0);
        assert!((d - 1.0).abs() < 0.05, "{d}");
        let t2 = flat(50.0, 60);
        let d2 = t2.download_time(100.0, 0.0);
        assert!((d2 - 2.0).abs() < 0.05, "{d2}");
    }

    #[test]
    fn mean_over_window() {
        let t = BandwidthTrace::new(vec![(0.0, 10.0), (10.0, 30.0), (20.0, 30.0)]);
        let m = t.mean_over(0.0, 20.0);
        assert!((m - 20.0).abs() < 1.0, "{m}");
    }

    #[test]
    fn slice_windows_filters_paper_criteria() {
        // build a 1000 s series: mostly 100 Mbps, one dead zone, one 1 Gbps zone
        let series: Vec<(f64, f64)> = (0..1000)
            .map(|i| {
                let c = if (300..320).contains(&i) {
                    0.5 // fails min > 2
                } else if (600..700).contains(&i) {
                    900.0 // fails mean < 400 when dominant
                } else {
                    100.0
                };
                (i as f64, c)
            })
            .collect();
        let traces = BandwidthTrace::slice_windows(&series, 240.0, 60.0);
        assert!(!traces.is_empty());
        for tr in &traces {
            assert!(tr.mean_mbps() < 400.0);
            assert!(tr.min_mbps() > 2.0);
            assert!((tr.duration_s() - 239.0).abs() < 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_points() {
        let _ = BandwidthTrace::new(vec![(0.0, 1.0), (0.0, 2.0)]);
    }

    #[test]
    fn zero_capacity_tail_terminates() {
        let t = BandwidthTrace::new(vec![(0.0, 0.0), (10.0, 0.0)]);
        let d = t.download_time(10.0, 0.0);
        assert!(d.is_finite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_trace() -> impl Strategy<Value = BandwidthTrace> {
        proptest::collection::vec(2.0..400.0f64, 2..60)
            .prop_map(|caps| BandwidthTrace::new(caps.into_iter().enumerate().map(|(i, c)| (i as f64, c)).collect()))
    }

    proptest! {
        #[test]
        fn download_time_monotone_in_size(tr in arb_trace(), mb in 1.0..200.0f64) {
            let small = tr.download_time(mb, 0.0);
            let big = tr.download_time(mb * 2.0, 0.0);
            prop_assert!(big >= small);
        }

        #[test]
        fn download_respects_capacity_bounds(tr in arb_trace(), mb in 1.0..200.0f64) {
            let t = tr.download_time(mb, 0.0);
            let max_rate = tr.mean_mbps().max(400.0);
            let min_rate = tr.min_mbps();
            prop_assert!(t >= mb / 400.0 - 0.05, "faster than the peak: {t}");
            prop_assert!(t <= mb / min_rate + 0.1, "slower than the floor allows: {t}");
            let _ = max_rate;
        }

        #[test]
        fn capacity_at_always_within_observed_range(tr in arb_trace(), t in 0.0..120.0f64) {
            let c = tr.capacity_at(t);
            prop_assert!(c >= tr.min_mbps() - 1e-9);
            prop_assert!(c <= 400.0);
        }
    }
}
