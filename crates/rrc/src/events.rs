//! Measurement events (Table 4) and their trigger conditions.
//!
//! | Event | Description | Trigger |
//! |-------|-------------|---------|
//! | A1 | serving better than threshold | `Ms > thr` |
//! | A2 | serving worse than threshold | `Mp < thr` |
//! | A3/A6 | neighbor offset-better than serving | `Mn > Mp + off` |
//! | A4/B1 | (inter-RAT) neighbor better than threshold | `Mn > thr` |
//! | A5 | serving worse than thr1 AND neighbor better than thr2 | both |
//! | P | periodic report | n/a |
//!
//! Events carry the radio technology they were configured for: NSA UEs run
//! LTE events on the MCG and NR events (NR-A2, NR-A3, NR-B1 in the paper's
//! Fig. 16) on the SCG. Hysteresis and time-to-trigger (TTT) are applied by
//! the measurement engine in `fiveg-ran`.

use serde::{Deserialize, Serialize};

/// Which RAT an event is configured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventRat {
    /// Event over LTE measurements (serving/neighbor eNB cells).
    Lte,
    /// Event over 5G-NR measurements (serving/neighbor gNB cells).
    Nr,
}

/// The 3GPP measurement event family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// Serving becomes better than threshold.
    A1,
    /// Serving becomes worse than threshold.
    A2,
    /// Neighbor becomes offset better than serving (A6 behaves identically).
    A3,
    /// Neighbor becomes better than threshold (intra-RAT flavour of B1).
    A4,
    /// Serving worse than threshold-1 and neighbor better than threshold-2.
    A5,
    /// Inter-RAT neighbor becomes better than threshold.
    B1,
    /// Periodic report (no trigger condition).
    Periodic,
}

/// A measurement event identity: RAT + kind, e.g. "NR-A3" or "A5".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MeasEvent {
    /// The RAT whose measurements this event observes.
    pub rat: EventRat,
    /// The event family.
    pub kind: EventKind,
}

impl MeasEvent {
    /// LTE-side event.
    pub const fn lte(kind: EventKind) -> Self {
        Self { rat: EventRat::Lte, kind }
    }

    /// NR-side event.
    pub const fn nr(kind: EventKind) -> Self {
        Self { rat: EventRat::Nr, kind }
    }

    /// Paper-style label, e.g. `A3`, `NR-B1`.
    pub fn label(&self) -> String {
        match self.rat {
            EventRat::Lte => format!("{:?}", self.kind),
            EventRat::Nr => format!("NR-{:?}", self.kind),
        }
    }
}

/// Which measured quantity the event compares (RSRP by default in our
/// deployments, matching common carrier configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MeasQuantity {
    /// Reference Signal Received Power.
    #[default]
    Rsrp,
    /// Reference Signal Received Quality.
    Rsrq,
    /// Signal to Interference & Noise Ratio.
    Sinr,
}

/// Configuration of one measurement event, as delivered in `MeasConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventConfig {
    /// The event this config arms.
    pub event: MeasEvent,
    /// Quantity compared by the trigger condition.
    pub quantity: MeasQuantity,
    /// Primary threshold (dBm for RSRP), used by A1/A2/A4/B1 and as the
    /// serving threshold of A5.
    pub threshold_dbm: f64,
    /// Secondary threshold: the A5 neighbor threshold. Unused otherwise.
    pub threshold2_dbm: f64,
    /// A3/A6 offset in dB.
    pub offset_db: f64,
    /// Hysteresis in dB applied to entry conditions.
    pub hysteresis_db: f64,
    /// Time-to-trigger in milliseconds: the entry condition must hold this
    /// long before the report fires.
    pub ttt_ms: u32,
}

impl EventConfig {
    /// A sensible default configuration for `event` (typical commercial
    /// values: A2 @ -115 dBm, A3 offset 3 dB, B1 @ -110 dBm, TTT 320 ms...).
    pub fn typical(event: MeasEvent) -> Self {
        let (threshold_dbm, threshold2_dbm, offset_db, ttt_ms) = match event.kind {
            EventKind::A1 => (-105.0, 0.0, 0.0, 320),
            EventKind::A2 => (-115.0, 0.0, 0.0, 320),
            EventKind::A3 => (0.0, 0.0, 3.0, 320),
            EventKind::A4 => (-110.0, 0.0, 0.0, 320),
            EventKind::A5 => (-112.0, -108.0, 0.0, 320),
            EventKind::B1 => (-110.0, 0.0, 0.0, 160),
            EventKind::Periodic => (0.0, 0.0, 0.0, 0),
        };
        Self {
            event,
            quantity: MeasQuantity::Rsrp,
            threshold_dbm,
            threshold2_dbm,
            offset_db,
            hysteresis_db: 1.0,
            ttt_ms,
        }
    }

    /// Entry condition of Table 4, with hysteresis, evaluated on measured (or
    /// predicted) values in dBm.
    ///
    /// `serving` is the serving-cell quantity; `neighbor` the best candidate
    /// neighbor's (ignored for A1/A2). Periodic events never "enter".
    pub fn entered(&self, serving: f64, neighbor: f64) -> bool {
        let h = self.hysteresis_db;
        match self.event.kind {
            EventKind::A1 => serving - h > self.threshold_dbm,
            EventKind::A2 => serving + h < self.threshold_dbm,
            EventKind::A3 => neighbor - h > serving + self.offset_db,
            EventKind::A4 | EventKind::B1 => neighbor - h > self.threshold_dbm,
            EventKind::A5 => serving + h < self.threshold_dbm && neighbor - h > self.threshold2_dbm,
            EventKind::Periodic => false,
        }
    }

    /// Margin to the entry condition in dB: how far the compared quantities
    /// must still move before [`EventConfig::entered`] becomes true.
    ///
    /// Shares the exact threshold/hysteresis arithmetic of `entered`, so
    /// `entered(s, n)` iff `entry_margin_db(s, n) < 0.0` (the boundary counts
    /// as not entered, matching the strict trigger inequalities) — schedulers
    /// bound the margin instead of re-deriving the trigger conditions.
    /// Periodic events never enter (+∞ margin).
    pub fn entry_margin_db(&self, serving: f64, neighbor: f64) -> f64 {
        let h = self.hysteresis_db;
        match self.event.kind {
            EventKind::A1 => self.threshold_dbm + h - serving,
            EventKind::A2 => serving + h - self.threshold_dbm,
            EventKind::A3 => serving + self.offset_db + h - neighbor,
            EventKind::A4 | EventKind::B1 => self.threshold_dbm + h - neighbor,
            EventKind::A5 => {
                (serving + h - self.threshold_dbm).max(self.threshold2_dbm + h - neighbor)
            }
            EventKind::Periodic => f64::INFINITY,
        }
    }

    /// Leaving condition (the inverse with hysteresis on the other side),
    /// used to reset the TTT clock.
    pub fn left(&self, serving: f64, neighbor: f64) -> bool {
        let h = self.hysteresis_db;
        match self.event.kind {
            EventKind::A1 => serving + h < self.threshold_dbm,
            EventKind::A2 => serving - h > self.threshold_dbm,
            EventKind::A3 => neighbor + h < serving + self.offset_db,
            EventKind::A4 | EventKind::B1 => neighbor + h < self.threshold_dbm,
            EventKind::A5 => serving - h > self.threshold_dbm || neighbor + h < self.threshold2_dbm,
            EventKind::Periodic => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: EventKind) -> EventConfig {
        EventConfig::typical(MeasEvent::lte(kind))
    }

    #[test]
    fn a1_triggers_when_serving_strong() {
        let c = cfg(EventKind::A1);
        assert!(c.entered(-100.0, -120.0));
        assert!(!c.entered(-106.0, -120.0));
    }

    #[test]
    fn a2_triggers_when_serving_weak() {
        let c = cfg(EventKind::A2);
        assert!(c.entered(-120.0, -120.0));
        assert!(!c.entered(-114.0, -120.0));
        // hysteresis band: -115.5 + 1.0 = -114.5 < -115? no
        assert!(!c.entered(-115.5, -120.0));
    }

    #[test]
    fn a3_triggers_on_offset_better_neighbor() {
        let c = cfg(EventKind::A3);
        assert!(c.entered(-100.0, -95.0)); // 5 dB better > 3 dB offset + 1 hys
        assert!(!c.entered(-100.0, -98.0)); // only 2 dB better
    }

    #[test]
    fn a5_requires_both_conditions() {
        let c = cfg(EventKind::A5);
        assert!(c.entered(-115.0, -105.0));
        assert!(!c.entered(-105.0, -105.0)); // serving still fine
        assert!(!c.entered(-115.0, -112.0)); // neighbor too weak
    }

    #[test]
    fn b1_ignores_serving() {
        let c = cfg(EventKind::B1);
        assert!(c.entered(-60.0, -105.0));
        assert!(c.entered(-140.0, -105.0));
        assert!(!c.entered(-140.0, -112.0));
    }

    #[test]
    fn periodic_never_enters() {
        let c = cfg(EventKind::Periodic);
        assert!(!c.entered(-60.0, -60.0));
        assert!(c.left(-60.0, -60.0));
    }

    #[test]
    fn entry_and_leave_are_separated_by_hysteresis() {
        let c = cfg(EventKind::A2);
        // inside the hysteresis band, neither entered nor left
        let s = c.threshold_dbm; // exactly at threshold
        assert!(!c.entered(s, -130.0));
        assert!(!c.left(s, -130.0));
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(MeasEvent::nr(EventKind::B1).label(), "NR-B1");
        assert_eq!(MeasEvent::lte(EventKind::A5).label(), "A5");
        assert_eq!(MeasEvent::nr(EventKind::A3).label(), "NR-A3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_kind() -> impl Strategy<Value = EventKind> {
        prop_oneof![
            Just(EventKind::A1),
            Just(EventKind::A2),
            Just(EventKind::A3),
            Just(EventKind::A4),
            Just(EventKind::A5),
            Just(EventKind::B1),
        ]
    }

    proptest! {
        #[test]
        fn margin_sign_matches_entered(
            kind in arb_kind(),
            s in -140.0..-44.0f64,
            n in -140.0..-44.0f64,
        ) {
            let c = EventConfig::typical(MeasEvent::lte(kind));
            prop_assert_eq!(c.entered(s, n), c.entry_margin_db(s, n) < 0.0,
                "{:?} margin/entered disagree at s={} n={}", kind, s, n);
        }

        #[test]
        fn never_entered_and_left_simultaneously(
            kind in arb_kind(),
            s in -140.0..-44.0f64,
            n in -140.0..-44.0f64,
        ) {
            let c = EventConfig::typical(MeasEvent::lte(kind));
            prop_assert!(!(c.entered(s, n) && c.left(s, n)),
                "{kind:?} both entered and left at s={s} n={n}");
        }
    }
}
