//! Signaling overhead accounting (§5.1).
//!
//! The paper compares HO-related signaling across technologies and bands:
//! three RRC message types (Measurement Report, RRC Reconfiguration, RRC
//! Reconfiguration Complete), the MAC-layer RACH procedure, and PHY-layer
//! SSB measurements. [`SignalingTally`] counts messages per layer and real
//! encoded bytes (via [`crate::codec`]).

use crate::codec::encode;
use crate::messages::RrcMessage;
use serde::{Deserialize, Serialize};

/// Protocol layer attribution for a signaling message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// RRC control-plane messages.
    Rrc,
    /// MAC-layer random access.
    Mac,
    /// PHY-layer measurement procedures (SSB/CSI-RS sweeps).
    Phy,
}

/// Running tally of signaling load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SignalingTally {
    /// Uplink measurement reports.
    pub meas_reports: u64,
    /// Downlink reconfigurations (HO commands + measConfig).
    pub reconfigurations: u64,
    /// Uplink reconfiguration-complete acks.
    pub reconfiguration_completes: u64,
    /// MAC RACH messages (preambles + responses).
    pub rach_msgs: u64,
    /// PHY-layer measurement occasions (SSB sweeps performed).
    pub phy_meas: u64,
    /// Total encoded RRC/MAC bytes.
    pub bytes: u64,
}

impl SignalingTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message, attributing it to the right counter and adding its
    /// encoded size to the byte total.
    pub fn record(&mut self, msg: &RrcMessage) {
        match msg {
            RrcMessage::MeasurementReport { .. } => self.meas_reports += 1,
            RrcMessage::MeasConfig { .. } | RrcMessage::RrcReconfiguration { .. } => self.reconfigurations += 1,
            RrcMessage::RrcReconfigurationComplete => self.reconfiguration_completes += 1,
            RrcMessage::Rach { .. } => self.rach_msgs += 1,
        }
        self.bytes += encode(msg).len() as u64;
    }

    /// Records `n` PHY-layer measurement occasions (not byte-counted; they
    /// are radio procedures, not messages).
    pub fn record_phy_meas(&mut self, n: u64) {
        self.phy_meas += n;
    }

    /// Total message count across RRC and MAC layers.
    pub fn total_msgs(&self) -> u64 {
        self.meas_reports + self.reconfigurations + self.reconfiguration_completes + self.rach_msgs
    }

    /// Messages attributed to `layer`.
    pub fn msgs_at(&self, layer: Layer) -> u64 {
        match layer {
            Layer::Rrc => self.meas_reports + self.reconfigurations + self.reconfiguration_completes,
            Layer::Mac => self.rach_msgs,
            Layer::Phy => self.phy_meas,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &SignalingTally) {
        self.meas_reports += other.meas_reports;
        self.reconfigurations += other.reconfigurations;
        self.reconfiguration_completes += other.reconfiguration_completes;
        self.rach_msgs += other.rach_msgs;
        self.phy_meas += other.phy_meas;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, MeasEvent};
    use crate::messages::{Pci, RachKind, ReconfigAction};
    use fiveg_radio::Rrs;

    fn report() -> RrcMessage {
        RrcMessage::MeasurementReport {
            event: MeasEvent::lte(EventKind::A3),
            serving_pci: Pci(1),
            serving_rrs: Rrs { rsrp_dbm: -100.0, rsrq_db: -10.0, sinr_db: 5.0 },
            neighbors: vec![],
        }
    }

    #[test]
    fn record_attributes_counters() {
        let mut t = SignalingTally::new();
        t.record(&report());
        t.record(&RrcMessage::RrcReconfiguration { action: ReconfigAction::ScgRelease });
        t.record(&RrcMessage::RrcReconfigurationComplete);
        t.record(&RrcMessage::Rach { kind: RachKind::Preamble });
        t.record(&RrcMessage::Rach { kind: RachKind::Response });
        assert_eq!(t.meas_reports, 1);
        assert_eq!(t.reconfigurations, 1);
        assert_eq!(t.reconfiguration_completes, 1);
        assert_eq!(t.rach_msgs, 2);
        assert_eq!(t.total_msgs(), 5);
        assert_eq!(t.msgs_at(Layer::Rrc), 3);
        assert_eq!(t.msgs_at(Layer::Mac), 2);
        assert!(t.bytes > 0);
    }

    #[test]
    fn phy_meas_counts_separately() {
        let mut t = SignalingTally::new();
        t.record_phy_meas(40);
        assert_eq!(t.msgs_at(Layer::Phy), 40);
        assert_eq!(t.total_msgs(), 0);
        assert_eq!(t.bytes, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = SignalingTally::new();
        a.record(&report());
        let mut b = SignalingTally::new();
        b.record(&report());
        b.record_phy_meas(3);
        a.merge(&b);
        assert_eq!(a.meas_reports, 2);
        assert_eq!(a.phy_meas, 3);
    }

    #[test]
    fn bytes_track_encoded_sizes() {
        let mut t = SignalingTally::new();
        let m = report();
        t.record(&m);
        assert_eq!(t.bytes, crate::codec::encode(&m).len() as u64);
    }
}
