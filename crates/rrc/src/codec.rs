//! Compact binary codec for [`RrcMessage`].
//!
//! Real RRC messages are ASN.1 PER; we use a hand-rolled fixed-point binary
//! format in the same spirit (small, deterministic, field-packed). The point
//! is that §5.1's signaling-overhead comparison counts *encoded bytes*, not
//! abstract message tallies, so every message must round-trip through a real
//! wire representation.
//!
//! Format (all multi-byte integers big-endian):
//!
//! ```text
//! tag:u8  body...
//! 0x01 MeasConfig:        n:u8, n × EventConfig(14 bytes)
//! 0x02 MeasurementReport: event(2), serving_pci:u16, rrs(6), n:u8, n × (pci:u16, rrs(6))
//! 0x03 RrcReconfiguration: action_tag:u8, [target:u16]
//! 0x04 RrcReconfigurationComplete
//! 0x05 Rach: kind:u8
//! ```
//!
//! dB/dBm quantities are encoded as `i16` centi-dB (`x * 100`), which covers
//! the full RRS range with 0.01 dB resolution.

use crate::events::{EventConfig, EventKind, EventRat, MeasEvent, MeasQuantity};
use crate::messages::{NeighborMeas, Pci, RachKind, ReconfigAction, RrcMessage};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fiveg_radio::Rrs;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-message.
    Truncated,
    /// Unknown message/action/event tag.
    BadTag(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag 0x{t:02x}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_db(buf: &mut BytesMut, v: f64) {
    buf.put_i16((v * 100.0).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16);
}

fn get_db(buf: &mut Bytes) -> Result<f64, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_i16() as f64 / 100.0)
}

fn put_rrs(buf: &mut BytesMut, r: &Rrs) {
    put_db(buf, r.rsrp_dbm);
    put_db(buf, r.rsrq_db);
    put_db(buf, r.sinr_db);
}

fn get_rrs(buf: &mut Bytes) -> Result<Rrs, CodecError> {
    Ok(Rrs { rsrp_dbm: get_db(buf)?, rsrq_db: get_db(buf)?, sinr_db: get_db(buf)? })
}

fn event_tag(e: &MeasEvent) -> [u8; 2] {
    let rat = match e.rat {
        EventRat::Lte => 0u8,
        EventRat::Nr => 1u8,
    };
    let kind = match e.kind {
        EventKind::A1 => 1,
        EventKind::A2 => 2,
        EventKind::A3 => 3,
        EventKind::A4 => 4,
        EventKind::A5 => 5,
        EventKind::B1 => 6,
        EventKind::Periodic => 7,
    };
    [rat, kind]
}

fn parse_event(rat: u8, kind: u8) -> Result<MeasEvent, CodecError> {
    let rat = match rat {
        0 => EventRat::Lte,
        1 => EventRat::Nr,
        t => return Err(CodecError::BadTag(t)),
    };
    let kind = match kind {
        1 => EventKind::A1,
        2 => EventKind::A2,
        3 => EventKind::A3,
        4 => EventKind::A4,
        5 => EventKind::A5,
        6 => EventKind::B1,
        7 => EventKind::Periodic,
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(MeasEvent { rat, kind })
}

fn get_event(buf: &mut Bytes) -> Result<MeasEvent, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let rat = buf.get_u8();
    let kind = buf.get_u8();
    parse_event(rat, kind)
}

fn put_event_config(buf: &mut BytesMut, c: &EventConfig) {
    buf.put_slice(&event_tag(&c.event));
    buf.put_u8(match c.quantity {
        MeasQuantity::Rsrp => 0,
        MeasQuantity::Rsrq => 1,
        MeasQuantity::Sinr => 2,
    });
    put_db(buf, c.threshold_dbm);
    put_db(buf, c.threshold2_dbm);
    put_db(buf, c.offset_db);
    put_db(buf, c.hysteresis_db);
    buf.put_u16(c.ttt_ms.min(u16::MAX as u32) as u16);
    buf.put_u8(0); // reserved
}

fn get_event_config(buf: &mut Bytes) -> Result<EventConfig, CodecError> {
    let event = get_event(buf)?;
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let quantity = match buf.get_u8() {
        0 => MeasQuantity::Rsrp,
        1 => MeasQuantity::Rsrq,
        2 => MeasQuantity::Sinr,
        t => return Err(CodecError::BadTag(t)),
    };
    let threshold_dbm = get_db(buf)?;
    let threshold2_dbm = get_db(buf)?;
    let offset_db = get_db(buf)?;
    let hysteresis_db = get_db(buf)?;
    if buf.remaining() < 3 {
        return Err(CodecError::Truncated);
    }
    let ttt_ms = buf.get_u16() as u32;
    let _reserved = buf.get_u8();
    Ok(EventConfig { event, quantity, threshold_dbm, threshold2_dbm, offset_db, hysteresis_db, ttt_ms })
}

fn put_action(buf: &mut BytesMut, a: &ReconfigAction) {
    match a {
        ReconfigAction::LteHandover { target } => {
            buf.put_u8(0);
            buf.put_u16(target.0);
        }
        ReconfigAction::ScgAddition { nr_target } => {
            buf.put_u8(1);
            buf.put_u16(nr_target.0);
        }
        ReconfigAction::ScgRelease => buf.put_u8(2),
        ReconfigAction::ScgModification { nr_target } => {
            buf.put_u8(3);
            buf.put_u16(nr_target.0);
        }
        ReconfigAction::ScgChange { nr_target } => {
            buf.put_u8(4);
            buf.put_u16(nr_target.0);
        }
        ReconfigAction::MenbHandover { target } => {
            buf.put_u8(5);
            buf.put_u16(target.0);
        }
        ReconfigAction::McgHandover { target } => {
            buf.put_u8(6);
            buf.put_u16(target.0);
        }
    }
}

fn get_action(buf: &mut Bytes) -> Result<ReconfigAction, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let pci = |buf: &mut Bytes| -> Result<Pci, CodecError> {
        if buf.remaining() < 2 {
            return Err(CodecError::Truncated);
        }
        Ok(Pci(buf.get_u16()))
    };
    Ok(match tag {
        0 => ReconfigAction::LteHandover { target: pci(buf)? },
        1 => ReconfigAction::ScgAddition { nr_target: pci(buf)? },
        2 => ReconfigAction::ScgRelease,
        3 => ReconfigAction::ScgModification { nr_target: pci(buf)? },
        4 => ReconfigAction::ScgChange { nr_target: pci(buf)? },
        5 => ReconfigAction::MenbHandover { target: pci(buf)? },
        6 => ReconfigAction::McgHandover { target: pci(buf)? },
        t => return Err(CodecError::BadTag(t)),
    })
}

/// Encodes a message to its wire representation.
pub fn encode(msg: &RrcMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    match msg {
        RrcMessage::MeasConfig { configs } => {
            buf.put_u8(0x01);
            buf.put_u8(configs.len().min(255) as u8);
            for c in configs.iter().take(255) {
                put_event_config(&mut buf, c);
            }
        }
        RrcMessage::MeasurementReport { event, serving_pci, serving_rrs, neighbors } => {
            buf.put_u8(0x02);
            buf.put_slice(&event_tag(event));
            buf.put_u16(serving_pci.0);
            put_rrs(&mut buf, serving_rrs);
            buf.put_u8(neighbors.len().min(255) as u8);
            for n in neighbors.iter().take(255) {
                buf.put_u16(n.pci.0);
                put_rrs(&mut buf, &n.rrs);
            }
        }
        RrcMessage::RrcReconfiguration { action } => {
            buf.put_u8(0x03);
            put_action(&mut buf, action);
        }
        RrcMessage::RrcReconfigurationComplete => buf.put_u8(0x04),
        RrcMessage::Rach { kind } => {
            buf.put_u8(0x05);
            buf.put_u8(match kind {
                RachKind::Preamble => 0,
                RachKind::Response => 1,
            });
        }
    }
    buf.freeze()
}

/// Decodes a message from its wire representation.
///
/// Trailing bytes after a complete message are rejected as [`CodecError::Truncated`]'s
/// dual — we require exact framing, so any residue means corruption.
pub fn decode(mut data: Bytes) -> Result<RrcMessage, CodecError> {
    if data.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    let tag = data.get_u8();
    let msg = match tag {
        0x01 => {
            if data.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let n = data.get_u8() as usize;
            let mut configs = Vec::with_capacity(n);
            for _ in 0..n {
                configs.push(get_event_config(&mut data)?);
            }
            RrcMessage::MeasConfig { configs }
        }
        0x02 => {
            let event = get_event(&mut data)?;
            if data.remaining() < 2 {
                return Err(CodecError::Truncated);
            }
            let serving_pci = Pci(data.get_u16());
            let serving_rrs = get_rrs(&mut data)?;
            if data.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let n = data.get_u8() as usize;
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                if data.remaining() < 2 {
                    return Err(CodecError::Truncated);
                }
                let pci = Pci(data.get_u16());
                let rrs = get_rrs(&mut data)?;
                neighbors.push(NeighborMeas { pci, rrs });
            }
            RrcMessage::MeasurementReport { event, serving_pci, serving_rrs, neighbors }
        }
        0x03 => RrcMessage::RrcReconfiguration { action: get_action(&mut data)? },
        0x04 => RrcMessage::RrcReconfigurationComplete,
        0x05 => {
            if data.remaining() < 1 {
                return Err(CodecError::Truncated);
            }
            let kind = match data.get_u8() {
                0 => RachKind::Preamble,
                1 => RachKind::Response,
                t => return Err(CodecError::BadTag(t)),
            };
            RrcMessage::Rach { kind }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    if data.has_remaining() {
        return Err(CodecError::Truncated);
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, MeasEvent};

    fn rrs(rsrp: f64) -> Rrs {
        Rrs { rsrp_dbm: rsrp, rsrq_db: -11.25, sinr_db: 7.5 }
    }

    fn sample_messages() -> Vec<RrcMessage> {
        vec![
            RrcMessage::MeasConfig {
                configs: vec![
                    EventConfig::typical(MeasEvent::lte(EventKind::A2)),
                    EventConfig::typical(MeasEvent::nr(EventKind::B1)),
                ],
            },
            RrcMessage::MeasurementReport {
                event: MeasEvent::nr(EventKind::A3),
                serving_pci: Pci(77),
                serving_rrs: rrs(-101.5),
                neighbors: vec![
                    NeighborMeas { pci: Pci(78), rrs: rrs(-95.0) },
                    NeighborMeas { pci: Pci(12), rrs: rrs(-99.25) },
                ],
            },
            RrcMessage::RrcReconfiguration { action: ReconfigAction::ScgChange { nr_target: Pci(612) } },
            RrcMessage::RrcReconfiguration { action: ReconfigAction::ScgRelease },
            RrcMessage::RrcReconfigurationComplete,
            RrcMessage::Rach { kind: RachKind::Preamble },
            RrcMessage::Rach { kind: RachKind::Response },
        ]
    }

    #[test]
    fn round_trip_all_message_kinds() {
        for m in sample_messages() {
            let bytes = encode(&m);
            let back = decode(bytes).expect("decode");
            assert_eq!(back, m);
        }
    }

    #[test]
    fn empty_input_is_truncated() {
        assert_eq!(decode(Bytes::new()), Err(CodecError::Truncated));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(decode(Bytes::from_static(&[0xFF])), Err(CodecError::BadTag(0xFF)));
    }

    #[test]
    fn truncated_report_rejected() {
        let m = &sample_messages()[1];
        let bytes = encode(m);
        for cut in 1..bytes.len() {
            let r = decode(bytes.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut v = encode(&RrcMessage::RrcReconfigurationComplete).to_vec();
        v.push(0xAA);
        assert!(decode(Bytes::from(v)).is_err());
    }

    #[test]
    fn sizes_are_compact() {
        // Complete: 1 byte. RACH: 2. HO command: <= 4.
        assert_eq!(encode(&RrcMessage::RrcReconfigurationComplete).len(), 1);
        assert_eq!(encode(&RrcMessage::Rach { kind: RachKind::Preamble }).len(), 2);
        assert!(encode(&sample_messages()[2]).len() <= 4);
    }

    #[test]
    fn db_resolution_is_centidb() {
        let m = RrcMessage::MeasurementReport {
            event: MeasEvent::lte(EventKind::A1),
            serving_pci: Pci(1),
            serving_rrs: Rrs { rsrp_dbm: -100.004, rsrq_db: -10.0, sinr_db: 0.0 },
            neighbors: vec![],
        };
        if let RrcMessage::MeasurementReport { serving_rrs, .. } = decode(encode(&m)).unwrap() {
            assert_eq!(serving_rrs.rsrp_dbm, -100.0);
        } else {
            unreachable!()
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::events::{EventKind, EventRat, MeasEvent, MeasQuantity};
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = MeasEvent> {
        (
            prop_oneof![Just(EventRat::Lte), Just(EventRat::Nr)],
            prop_oneof![
                Just(EventKind::A1),
                Just(EventKind::A2),
                Just(EventKind::A3),
                Just(EventKind::A4),
                Just(EventKind::A5),
                Just(EventKind::B1),
                Just(EventKind::Periodic)
            ],
        )
            .prop_map(|(rat, kind)| MeasEvent { rat, kind })
    }

    // centi-dB grid values survive the fixed-point codec exactly
    fn arb_db() -> impl Strategy<Value = f64> {
        (-14000i32..0).prop_map(|x| x as f64 / 100.0)
    }

    fn arb_rrs() -> impl Strategy<Value = Rrs> {
        (arb_db(), arb_db(), arb_db()).prop_map(|(a, b, c)| Rrs { rsrp_dbm: a, rsrq_db: b, sinr_db: c })
    }

    fn arb_msg() -> impl Strategy<Value = RrcMessage> {
        prop_oneof![
            (arb_event(), any::<u16>(), arb_rrs(), proptest::collection::vec((any::<u16>(), arb_rrs()), 0..8))
                .prop_map(|(event, pci, rrs, ns)| RrcMessage::MeasurementReport {
                    event,
                    serving_pci: Pci(pci),
                    serving_rrs: rrs,
                    neighbors: ns.into_iter().map(|(p, r)| NeighborMeas { pci: Pci(p), rrs: r }).collect(),
                }),
            (0u8..7, any::<u16>()).prop_map(|(tag, pci)| {
                let p = Pci(pci);
                RrcMessage::RrcReconfiguration {
                    action: match tag {
                        0 => ReconfigAction::LteHandover { target: p },
                        1 => ReconfigAction::ScgAddition { nr_target: p },
                        2 => ReconfigAction::ScgRelease,
                        3 => ReconfigAction::ScgModification { nr_target: p },
                        4 => ReconfigAction::ScgChange { nr_target: p },
                        5 => ReconfigAction::MenbHandover { target: p },
                        _ => ReconfigAction::McgHandover { target: p },
                    },
                }
            }),
            (arb_event(), arb_db(), arb_db(), arb_db(), 0u32..65535).prop_map(|(event, t1, t2, off, ttt)| {
                RrcMessage::MeasConfig {
                    configs: vec![EventConfig {
                        event,
                        quantity: MeasQuantity::Rsrp,
                        threshold_dbm: t1,
                        threshold2_dbm: t2,
                        offset_db: off,
                        hysteresis_db: 1.0,
                        ttt_ms: ttt,
                    }],
                }
            }),
            Just(RrcMessage::RrcReconfigurationComplete),
            Just(RrcMessage::Rach { kind: RachKind::Preamble }),
        ]
    }

    proptest! {
        #[test]
        fn round_trip(msg in arb_msg()) {
            let bytes = encode(&msg);
            let back = decode(bytes).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode(Bytes::from(data));
        }
    }
}
