//! RRC-layer signaling model.
//!
//! The paper's methodology reads RRC signaling (measurement reports,
//! `RRCConnectionReconfiguration` HO commands, event configurations) from the
//! Qualcomm Diag interface via XCAL (§3) and counts HO-related signaling
//! messages on the RRC, MAC (RACH) and PHY layers (§5.1). This crate is the
//! stand-in for that protocol surface:
//!
//! * [`events`] — the LTE/NR measurement events of Table 4 (A1–A6, B1,
//!   periodic), their configurations (thresholds, offsets, hysteresis,
//!   time-to-trigger) and trigger conditions.
//! * [`messages`] — the message set exchanged between UE and network:
//!   `MeasConfig`, `MeasurementReport`, `RrcReconfiguration` (the HO
//!   command), `RrcReconfigurationComplete` and the RACH pair.
//! * [`codec`] — a compact, deterministic binary codec (built on [`bytes`])
//!   so signaling overhead can be accounted in real encoded bytes.
//! * [`signaling`] — per-layer message/byte tallies (§5.1's comparison of
//!   LTE vs NSA vs SA signaling overhead).

pub mod codec;
pub mod events;
pub mod messages;
pub mod signaling;

pub use codec::{decode, encode, CodecError};
pub use events::{EventConfig, EventKind, EventRat, MeasEvent, MeasQuantity};
pub use messages::{NeighborMeas, Pci, RachKind, ReconfigAction, RrcMessage};
pub use signaling::{Layer, SignalingTally};
