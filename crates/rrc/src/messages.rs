//! The UE ⇄ network signaling message set.
//!
//! This is the protocol surface the paper observes through XCAL: event
//! configurations flowing down, measurement reports flowing up, and
//! reconfiguration (HO command) / complete pairs around every handover,
//! with the MAC-layer RACH exchange closing the loop (§2, Appendix A.1).

use crate::events::{EventConfig, MeasEvent};
use fiveg_radio::Rrs;
use serde::{Deserialize, Serialize};

/// Physical Cell ID — "the identifier used for cells at the physical layer"
/// (§2). LTE PCIs are 0..=503, NR PCIs 0..=1007; the simulator does not
/// enforce the numeric range but keeps the 4G/5G spaces disjoint per
/// deployment so the co-location heuristic (§6.3) is meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pci(pub u16);

impl std::fmt::Display for Pci {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PCI{}", self.0)
    }
}

/// One neighbor-cell entry of a measurement report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeighborMeas {
    /// Neighbor cell identity.
    pub pci: Pci,
    /// Measured quality of that neighbor.
    pub rrs: Rrs,
}

/// The mobility action carried inside an `RrcReconfiguration`.
///
/// This is the wire-level encoding of Table 2's procedures; the semantic
/// classification (which radio performs the HO, what the access-technology
/// change is) lives in `fiveg-ran`'s `HoType`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReconfigAction {
    /// Plain LTE handover to another eNB cell (LTEH — also used under NSA).
    LteHandover {
        /// Target eNB cell.
        target: Pci,
    },
    /// SCG Addition: attach 5G-NR cell to the LTE connection (4G→5G).
    ScgAddition {
        /// The NR cell being added.
        nr_target: Pci,
    },
    /// SCG Release: drop the NR leg (5G→4G).
    ScgRelease,
    /// SCG Modification: switch NR cells within the same gNB (5G→5G over 5G).
    ScgModification {
        /// The new NR cell within the same gNB.
        nr_target: Pci,
    },
    /// SCG Change: release + addition to move between gNBs (5G→4G→5G).
    ScgChange {
        /// The NR cell under the destination gNB.
        nr_target: Pci,
    },
    /// Master-eNB handover: LTE anchor changes while the gNB stays (NSA).
    MenbHandover {
        /// Target eNB cell.
        target: Pci,
    },
    /// MCG handover in SA 5G: NR cell to NR cell.
    McgHandover {
        /// Target NR cell.
        target: Pci,
    },
}

impl ReconfigAction {
    /// Stable snake_case name of the action, used as the *cause* key of
    /// handover spans (`fiveg-trace`) and anywhere else a decision must be
    /// grouped without carrying its target cell.
    pub fn label(&self) -> &'static str {
        match self {
            ReconfigAction::LteHandover { .. } => "lte_handover",
            ReconfigAction::ScgAddition { .. } => "scg_addition",
            ReconfigAction::ScgRelease => "scg_release",
            ReconfigAction::ScgModification { .. } => "scg_modification",
            ReconfigAction::ScgChange { .. } => "scg_change",
            ReconfigAction::MenbHandover { .. } => "menb_handover",
            ReconfigAction::McgHandover { .. } => "mcg_handover",
        }
    }
}

/// RACH procedure messages (MAC layer, counted in §5.1's signaling tally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RachKind {
    /// Msg1: preamble transmission on PRACH.
    Preamble,
    /// Msg2: random access response.
    Response,
}

/// An RRC/MAC-layer signaling message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RrcMessage {
    /// Downlink: arms measurement events on the UE.
    MeasConfig {
        /// The configured events.
        configs: Vec<EventConfig>,
    },
    /// Uplink: a triggered measurement report.
    MeasurementReport {
        /// Which event fired.
        event: MeasEvent,
        /// Serving cell at the time of the report.
        serving_pci: Pci,
        /// Serving-cell quality.
        serving_rrs: Rrs,
        /// Reported neighbors, strongest first.
        neighbors: Vec<NeighborMeas>,
    },
    /// Downlink: the HO command.
    RrcReconfiguration {
        /// The mobility action to execute.
        action: ReconfigAction,
    },
    /// Uplink: HO completion acknowledgment.
    RrcReconfigurationComplete,
    /// MAC-layer random access exchange.
    Rach {
        /// Which half of the exchange.
        kind: RachKind,
    },
}

impl RrcMessage {
    /// Short human-readable name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            RrcMessage::MeasConfig { .. } => "MeasConfig",
            RrcMessage::MeasurementReport { .. } => "MeasurementReport",
            RrcMessage::RrcReconfiguration { .. } => "RRCReconfiguration",
            RrcMessage::RrcReconfigurationComplete => "RRCReconfigurationComplete",
            RrcMessage::Rach { .. } => "RACH",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventKind, MeasEvent};

    #[test]
    fn pci_display() {
        assert_eq!(Pci(301).to_string(), "PCI301");
    }

    #[test]
    fn message_names() {
        assert_eq!(RrcMessage::MeasConfig { configs: vec![] }.name(), "MeasConfig");
        assert_eq!(RrcMessage::RrcReconfiguration { action: ReconfigAction::ScgRelease }.name(), "RRCReconfiguration");
        assert_eq!(RrcMessage::RrcReconfigurationComplete.name(), "RRCReconfigurationComplete");
        assert_eq!(RrcMessage::Rach { kind: RachKind::Preamble }.name(), "RACH");
    }

    #[test]
    fn reconfig_actions_are_distinguishable() {
        let a = ReconfigAction::ScgChange { nr_target: Pci(5) };
        let b = ReconfigAction::ScgModification { nr_target: Pci(5) };
        assert_ne!(a, b);
    }

    #[test]
    fn report_carries_event_identity() {
        let m = RrcMessage::MeasurementReport {
            event: MeasEvent::nr(EventKind::B1),
            serving_pci: Pci(1),
            serving_rrs: Rrs { rsrp_dbm: -100.0, rsrq_db: -10.0, sinr_db: 5.0 },
            neighbors: vec![],
        };
        match m {
            RrcMessage::MeasurementReport { event, .. } => {
                assert_eq!(event.label(), "NR-B1");
            }
            _ => unreachable!(),
        }
    }
}
