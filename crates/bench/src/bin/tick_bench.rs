//! Tick-throughput microbenchmark: snapshot engine vs the retained naive
//! reference path, reporting ticks/sec and an allocations-per-tick proxy.
//!
//! Both paths run the same fixed-seed scenario set through
//! [`fiveg_sim::engine`]; the snapshot path is the production engine
//! ([`Scenario::run`]), the reference path re-scans the deployment from
//! every consumer ([`fiveg_sim::run_reference`]) the way the pre-snapshot
//! engine did. Traces are checked equal (`PartialEq`) on the first
//! iteration, so a reported speedup is never bought with a behavior change.
//! Throughput counters flow through `fiveg-telemetry` (`sim.ticks` from the
//! instrumented runs, `bench.allocs` from a counting global allocator), and
//! the report is written as `BENCH_tick.json` (schema `fiveg-tick/v2`).
//!
//! The v2 `des` section benchmarks the event-driven single-UE engine
//! ([`fiveg_sim::run_des`]) on sleep-eligible SA scenarios: UE·ticks
//! simulated per wall-second (skipped ticks count — they are simulated in
//! closed form, not dropped) and the fraction of ticks fast-forwarded
//! (`skip_ratio`). Before timing, every des scenario is checked against
//! [`fiveg_sim::run_stepped_summary`]: identical control-plane summary and
//! identical logical tick count, so the skip ratio is never bought with
//! less work. `skip_ratio` is exact and machine-independent; the run fails
//! outright if it drops below [`SKIP_FLOOR`] on any des scenario.
//!
//! ```text
//! tick_bench [--smoke] [--iters N] [--out PATH] [--baseline PATH] [--tol F]
//! ```
//!
//! Wall-clock numbers are machine-dependent by nature; the committed
//! `BENCH_tick.json` records the before/after trajectory on the development
//! machine. With `--baseline`, the run gates the **machine-independent**
//! metrics against the committed report — the snapshot path's tick count
//! (band), its allocs/tick (lower is better) and the snapshot-vs-reference
//! speedup ratio (higher is better) — and exits nonzero past the tolerance
//! (default 15%); this is the gating CI perf job. Absolute ticks/sec is
//! printed as an advisory comparison only, because the baseline's wall
//! clock came from a different machine than the CI runner's (see
//! `fiveg_bench::perfgate`).

use fiveg_bench::perfgate::{self, Better, Gate};
use fiveg_bench::report::JsonBuf;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{engine, run_des, run_stepped_summary, Scenario, ScenarioBuilder, Telemetry, TelemetryConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter: wraps the system allocator and counts every
/// `alloc`/`realloc`. Coarse by design — it is a proxy for hot-loop churn,
/// not a profiler — but it is exact and deterministic for a fixed workload.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Args {
    smoke: bool,
    iters: usize,
    out: String,
    baseline: Option<String>,
    tol: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { smoke: false, iters: 3, out: "BENCH_tick.json".into(), baseline: None, tol: 0.15 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--iters" => {
                let v = it.next().ok_or("--iters needs a value")?;
                args.iters = v.parse::<usize>().map_err(|_| format!("bad --iters value: {v}"))?;
                if args.iters == 0 {
                    return Err("--iters must be >= 1".into());
                }
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--tol" => {
                let v = it.next().ok_or("--tol needs a value")?;
                args.tol = v.parse::<f64>().map_err(|_| format!("bad --tol value: {v}"))?;
                if !(0.0..1.0).contains(&args.tol) {
                    return Err("--tol must be in [0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!("usage: tick_bench [--smoke] [--iters N] [--out PATH] [--baseline PATH] [--tol F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// The fixed-seed scenario set. Seeds and shapes are pinned so numbers are
/// comparable across commits (see EXPERIMENTS.md, "Tick benchmark").
fn scenarios(smoke: bool) -> Vec<(&'static str, Scenario)> {
    if smoke {
        return vec![(
            "freeway-nsa-2km",
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 2.0, 101).duration_s(60.0).sample_hz(10.0).build(),
        )];
    }
    vec![
        (
            "freeway-nsa-6km",
            ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 101).duration_s(200.0).sample_hz(10.0).build(),
        ),
        (
            "freeway-sa-6km",
            ScenarioBuilder::freeway(Carrier::OpX, Arch::Sa, 6.0, 102).duration_s(200.0).sample_hz(10.0).build(),
        ),
        (
            "city-dense-nsa",
            ScenarioBuilder::city_loop_dense(Carrier::OpX, 103).duration_s(200.0).sample_hz(10.0).build(),
        ),
        (
            "freeway-lte-6km",
            ScenarioBuilder::freeway(Carrier::OpZ, Arch::Lte, 6.0, 104).duration_s(200.0).sample_hz(10.0).build(),
        ),
    ]
}

/// Machine-independent floor on the des skip ratio: at least half of all
/// city-loop ticks must be fast-forwarded, or the event-driven engine has
/// quietly stopped earning its keep.
const SKIP_FLOOR: f64 = 0.5;

/// The des scenario set: sleep-eligible SA routes (NSA carries a
/// SINR-quantity B1 config, so it never sleeps and would only measure the
/// stepped path twice).
fn des_scenarios(smoke: bool) -> Vec<(&'static str, Scenario)> {
    let secs = if smoke { 60.0 } else { 200.0 };
    vec![
        (
            "city-sa",
            ScenarioBuilder::city_loop(Carrier::OpY, 105).arch(Arch::Sa).duration_s(secs).sample_hz(10.0).build(),
        ),
        (
            "walking-sa",
            ScenarioBuilder::walking_loop(Carrier::OpY, 8.0, 4, 106)
                .arch(Arch::Sa)
                .duration_s(secs)
                .sample_hz(10.0)
                .build(),
        ),
    ]
}

struct PathResult {
    label: &'static str,
    ticks: u64,
    elapsed_s: f64,
    ticks_per_sec: f64,
    allocs_per_tick: f64,
}

struct DesResult {
    label: &'static str,
    /// Logical ticks simulated per iteration (skipped ticks included).
    ticks: u64,
    /// Ticks fast-forwarded in closed form per iteration.
    skipped_ticks: u64,
    /// Sleep windows granted per iteration.
    sleeps: u64,
    /// `skipped_ticks / ticks` — exact and machine-independent.
    skip_ratio: f64,
    elapsed_s: f64,
    /// Logical UE·ticks simulated per wall-second over the timed passes.
    ue_ticks_per_sec: f64,
}

/// Times [`run_des`] over one scenario (untimed warmup, then `iters`
/// passes). The returned work counts are per-iteration, the throughput is
/// aggregated over all timed passes.
fn bench_des(label: &'static str, s: &Scenario, iters: usize) -> DesResult {
    run_des(s);
    let start = Instant::now();
    let mut last = run_des(s);
    for _ in 1..iters {
        last = run_des(s);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    DesResult {
        label,
        ticks: last.ticks,
        skipped_ticks: last.skipped_ticks,
        sleeps: last.sleeps,
        skip_ratio: last.skip_ratio(),
        elapsed_s,
        ue_ticks_per_sec: (last.ticks * iters as u64) as f64 / elapsed_s,
    }
}

/// Runs every scenario through one engine path `iters` times (after one
/// untimed warmup pass) and aggregates throughput over the timed passes.
fn bench_path(label: &'static str, set: &[(&'static str, Scenario)], iters: usize, reference: bool) -> PathResult {
    let run_one = |s: &Scenario, tele: &Telemetry| {
        if reference {
            engine::run_reference_instrumented(s, tele)
        } else {
            engine::run_instrumented(s, tele)
        }
    };

    // warmup (untimed): page in code and let the allocator settle
    let tele = Telemetry::new(TelemetryConfig::on());
    for (_, s) in set {
        run_one(s, &tele);
    }

    let tele = Telemetry::new(TelemetryConfig::on());
    let allocs = tele.counter("bench.allocs");
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..iters {
        for (_, s) in set {
            run_one(s, &tele);
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    allocs.add(ALLOCS.load(Ordering::Relaxed) - before);

    let ticks = tele.counter_value("sim.ticks");
    PathResult {
        label,
        ticks,
        elapsed_s,
        ticks_per_sec: ticks as f64 / elapsed_s,
        allocs_per_tick: tele.counter_value("bench.allocs") as f64 / ticks as f64,
    }
}

fn report(
    mode: &str,
    iters: usize,
    set: &[(&'static str, Scenario)],
    paths: &[PathResult],
    speedup: f64,
    des: &[DesResult],
) -> String {
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val("fiveg-tick/v2");
    j.key("mode");
    j.str_val(mode);
    j.key("iters");
    j.uint(iters as u64);
    j.key("scenarios");
    j.open('[');
    for (label, s) in set {
        j.open('{');
        j.key("label");
        j.str_val(label);
        j.key("seed");
        j.uint(s.seed);
        j.key("duration_s");
        j.num(s.max_duration_s);
        j.key("sample_hz");
        j.num(s.sample_hz);
        j.close('}');
    }
    j.close(']');
    j.key("paths");
    j.open('[');
    for p in paths {
        j.open('{');
        j.key("path");
        j.str_val(p.label);
        j.key("ticks");
        j.uint(p.ticks);
        j.key("elapsed_s");
        j.num(p.elapsed_s);
        j.key("ticks_per_sec");
        j.num(p.ticks_per_sec);
        j.key("allocs_per_tick");
        j.num(p.allocs_per_tick);
        j.close('}');
    }
    j.close(']');
    j.key("speedup");
    j.num(speedup);
    j.key("des_skip_floor");
    j.num(SKIP_FLOOR);
    j.key("des");
    j.open('[');
    for d in des {
        j.open('{');
        j.key("des");
        j.str_val(d.label);
        j.key("ticks");
        j.uint(d.ticks);
        j.key("skipped_ticks");
        j.uint(d.skipped_ticks);
        j.key("sleeps");
        j.uint(d.sleeps);
        j.key("skip_ratio");
        j.num(d.skip_ratio);
        j.key("elapsed_s");
        j.num(d.elapsed_s);
        j.key("ue_ticks_per_sec");
        j.num(d.ue_ticks_per_sec);
        j.close('}');
    }
    j.close(']');
    j.close('}');
    j.finish_line()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tick_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let set = scenarios(args.smoke);
    let mode = if args.smoke { "smoke" } else { "full" };
    println!("tick bench '{}': {} scenario(s), {} iter(s) per path", mode, set.len(), args.iters);

    // the speedup claim is only meaningful if both paths do the same work
    for (label, s) in &set {
        if engine::run_reference(s) != s.run() {
            eprintln!("tick_bench: reference and snapshot traces diverge on {label}");
            return ExitCode::FAILURE;
        }
    }

    // same bar for the des section: identical control plane and identical
    // logical tick count, or the skip ratio measures a different workload
    let des_set = des_scenarios(args.smoke);
    for (label, s) in &des_set {
        let (des, stepped) = (run_des(s), run_stepped_summary(s));
        if des.control() != stepped.control() || des.ticks != stepped.ticks {
            eprintln!("tick_bench: des and stepped summaries diverge on {label}: {des:?} vs {stepped:?}");
            return ExitCode::FAILURE;
        }
    }

    let reference = bench_path("reference", &set, args.iters, true);
    let snapshot = bench_path("snapshot", &set, args.iters, false);
    let speedup = snapshot.ticks_per_sec / reference.ticks_per_sec;

    for p in [&reference, &snapshot] {
        println!(
            "  {:<10} {:>8} ticks in {:>6.2} s  -> {:>8.0} ticks/s, {:>7.1} allocs/tick",
            p.label, p.ticks, p.elapsed_s, p.ticks_per_sec, p.allocs_per_tick
        );
    }
    println!("  speedup {speedup:.2}x (snapshot over reference)");

    let mut des_results = Vec::new();
    for (label, s) in &des_set {
        let d = bench_des(label, s, args.iters);
        println!(
            "  des {:<12} {:>6} ticks ({} slept in {} windows, skip {:.3})  -> {:>9.0} UE·ticks/s",
            d.label, d.ticks, d.skipped_ticks, d.sleeps, d.skip_ratio, d.ue_ticks_per_sec
        );
        if d.skip_ratio < SKIP_FLOOR {
            eprintln!("tick_bench: skip_ratio {:.3} on {} fell below the {SKIP_FLOOR} floor", d.skip_ratio, d.label);
            return ExitCode::FAILURE;
        }
        des_results.push(d);
    }

    let (snapshot_tps, snapshot_ticks, snapshot_apt) =
        (snapshot.ticks_per_sec, snapshot.ticks, snapshot.allocs_per_tick);
    let json = report(mode, args.iters, &set, &[reference, snapshot], speedup, &des_results);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("tick_bench: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    // Perf gate: only the snapshot (production) path is gated — the
    // reference path exists as a correctness referee, not a perf contract.
    // Gated metrics are the machine-independent ones (work count, allocs,
    // same-run speedup ratio); absolute ticks/sec is advisory because the
    // committed baseline's wall clock came from a different machine.
    if let Some(path) = &args.baseline {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tick_bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // A baseline from a different schema generation must never gate
        // this report (see fleet_bench): anchors would pair rows whose
        // metrics no longer mean the same thing. Fail loudly instead.
        match perfgate::schema_of(&committed) {
            Some(s) if s == "fiveg-tick/v2" => {}
            got => {
                eprintln!(
                    "tick_bench: baseline {path} has schema {} but this binary writes fiveg-tick/v2 — \
                     regenerate the baseline instead of gating across schema versions",
                    got.map_or_else(|| "(none)".into(), |s| format!("'{s}'"))
                );
                return ExitCode::FAILURE;
            }
        }
        let snap = |metric: &str| perfgate::metric_after(&committed, r#""path":"snapshot""#, metric);
        let (Some(b_ticks), Some(b_apt), Some(b_speedup), Some(b_tps)) = (
            snap("ticks"),
            snap("allocs_per_tick"),
            perfgate::metric_anywhere(&committed, "speedup"),
            snap("ticks_per_sec"),
        ) else {
            eprintln!("tick_bench: baseline {path} is missing snapshot metrics — reformatted or wrong file?");
            return ExitCode::FAILURE;
        };
        let mut gates = vec![
            Gate {
                what: "snapshot ticks".into(),
                baseline: b_ticks,
                current: snapshot_ticks as f64,
                better: Better::Band,
            },
            Gate {
                what: "snapshot allocs_per_tick".into(),
                baseline: b_apt,
                current: snapshot_apt,
                better: Better::Lower,
            },
            Gate {
                what: "speedup (snapshot/reference)".into(),
                baseline: b_speedup,
                current: speedup,
                better: Better::Higher,
            },
        ];
        println!("  perf gate vs {} (tol {:.0}%):", path, args.tol * 100.0);
        perfgate::advise("snapshot ticks_per_sec", b_tps, snapshot_tps);
        // des gates: logical work count and skip ratio are exact and
        // machine-independent, so both are banded against the baseline;
        // wall-clock throughput stays advisory like the stepped paths'.
        for d in &des_results {
            let needle = format!(r#""des":"{}""#, d.label);
            let des_metric = |metric: &str| perfgate::metric_after(&committed, &needle, metric);
            let (Some(b_dticks), Some(b_skip), Some(b_utps)) =
                (des_metric("ticks"), des_metric("skip_ratio"), des_metric("ue_ticks_per_sec"))
            else {
                eprintln!("tick_bench: baseline {path} is missing des metrics for {} — pre-v2 file?", d.label);
                return ExitCode::FAILURE;
            };
            perfgate::advise(&format!("des {} ue_ticks_per_sec", d.label), b_utps, d.ue_ticks_per_sec);
            gates.push(Gate {
                what: format!("des {} ticks", d.label),
                baseline: b_dticks,
                current: d.ticks as f64,
                better: Better::Band,
            });
            gates.push(Gate {
                what: format!("des {} skip_ratio", d.label),
                baseline: b_skip,
                current: d.skip_ratio,
                better: Better::Band,
            });
        }
        if !perfgate::evaluate(&gates, args.tol) {
            eprintln!("tick_bench: gated metrics regressed beyond tolerance");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
