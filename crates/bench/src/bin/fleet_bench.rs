//! Fleet-throughput benchmark: UE·ticks/sec versus fleet size, reporting
//! how close the per-UE cost of the sharded, load-coupled fleet engine
//! stays to the single-UE hot path.
//!
//! Every size runs the same pinned base scenario (freeway, OpY, NSA, seed
//! 201) through [`fiveg_sim::fleet`] with the default heterogeneity
//! narrowed to a 10 s stagger window. Simulated duration is pinned **per
//! size** (60 s up to 10k UEs, 30 s at 100k, 10 s at 1M and beyond) so the
//! big sizes stay runnable while per-size numbers remain comparable across
//! commits and between `--smoke` and full mode — full mode simply adds the
//! 100k point. Summaries stream (no per-UE traces are retained), `ue_ticks`
//! comes from the deterministic per-UE tick counts in the [`FleetTrace`],
//! and `bench.allocs` from a counting global allocator. The report is
//! written as `BENCH_fleet.json` (schema `fiveg-fleet/v2`).
//!
//! ```text
//! fleet_bench [--smoke] [--threads N] [--shards N] [--sizes CSV]
//!             [--verify-shards] [--tele-summary PATH]
//!             [--out PATH] [--baseline PATH] [--tol F]
//! ```
//!
//! With `--baseline`, the run gates each size's **machine-independent**
//! metrics against the committed report, pairing rows by their `n_ues`
//! value (`perfgate::fleet_metric`, never by array position) — `ue_ticks`
//! as a band (the work count is deterministic for the pinned scenario) and
//! `allocs_per_ue_tick` lower-is-better — and exits nonzero past the
//! tolerance (default 15%); this is the gating CI perf job, which pins
//! `--threads 1` to match the committed baseline's thread count.
//! UE·ticks/sec is printed as an advisory comparison only: the baseline's
//! wall clock came from a different machine than the CI runner's (see
//! `fiveg_bench::perfgate`). Sizes absent from the baseline are skipped so
//! a new size never fails the job that introduces it, but if *no* measured
//! size matches, the run fails — a reformatted baseline must not silently
//! disable the gate.
//!
//! `--verify-shards` is the other machine-independent gate: it runs one
//! migration-heavy fleet twice in-process (1 shard vs 4 shards) and exits
//! nonzero unless the two [`FleetTrace`]s — traces included — are
//! identical, catching any boundary-exchange or mailbox regression before
//! the timing runs start.

use fiveg_bench::perfgate::{self, Better, Gate};
use fiveg_bench::report::JsonBuf;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{
    run_fleet_exec_instrumented, FleetExec, FleetSpec, FleetTrace, Scenario, ScenarioBuilder, Telemetry,
    TelemetryConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter: wraps the system allocator and counts every
/// `alloc`/`realloc` (same proxy as `tick_bench`).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Args {
    smoke: bool,
    threads: usize,
    shards: usize,
    sizes: Option<Vec<u32>>,
    verify_shards: bool,
    tele_summary: Option<String>,
    out: String,
    baseline: Option<String>,
    tol: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        threads: 0,
        shards: 0,
        sizes: None,
        verify_shards: false,
        tele_summary: None,
        out: "BENCH_fleet.json".into(),
        baseline: None,
        tol: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse::<usize>().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse::<usize>().map_err(|_| format!("bad --shards value: {v}"))?;
            }
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a comma-separated list")?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(|s| s.trim().parse::<u32>()).collect();
                let sizes = parsed.map_err(|_| format!("bad --sizes value: {v}"))?;
                if sizes.is_empty() || sizes.contains(&0) {
                    return Err("--sizes needs at least one nonzero fleet size".into());
                }
                args.sizes = Some(sizes);
            }
            "--verify-shards" => args.verify_shards = true,
            "--tele-summary" => args.tele_summary = Some(it.next().ok_or("--tele-summary needs a value")?),
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--tol" => {
                let v = it.next().ok_or("--tol needs a value")?;
                args.tol = v.parse::<f64>().map_err(|_| format!("bad --tol value: {v}"))?;
                if !(0.0..1.0).contains(&args.tol) {
                    return Err("--tol must be in [0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: fleet_bench [--smoke] [--threads N] [--shards N] [--sizes CSV] \
                     [--verify-shards] [--tele-summary PATH] [--out PATH] [--baseline PATH] [--tol F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    }
    Ok(args)
}

/// Fleet sizes per mode. Per-size parameters (duration included) are pinned
/// by size alone, so a smoke run can be gated against a committed full-mode
/// baseline and an explicit `--sizes` run stays comparable to both.
fn sizes(smoke: bool) -> &'static [u32] {
    if smoke {
        &[1, 10, 100, 1000, 10_000]
    } else {
        &[1, 10, 100, 1000, 10_000, 100_000]
    }
}

/// Pinned simulated duration for a fleet size: long enough to dominate
/// setup cost, short enough that the big sizes finish. Pinned per size (not
/// per mode) so every run of a given size executes the same work.
fn duration_s(n_ues: u32) -> f64 {
    if n_ues <= 10_000 {
        60.0
    } else if n_ues <= 100_000 {
        30.0
    } else {
        10.0
    }
}

/// The pinned base scenario every fleet size derives from (see
/// EXPERIMENTS.md, "Fleet benchmark").
fn base_scenario(duration: f64) -> Scenario {
    ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 4.0, 201).duration_s(duration).sample_hz(10.0).build()
}

fn spec(n_ues: u32) -> FleetSpec {
    FleetSpec::new(base_scenario(duration_s(n_ues)), n_ues).stagger_s(10.0).speed_jitter(0.1)
}

struct SizeResult {
    n_ues: u32,
    duration_s: f64,
    ticks: u64,
    ue_ticks: u64,
    elapsed_s: f64,
    ue_ticks_per_sec: f64,
    allocs_per_ue_tick: f64,
    peak_cell_ues: u32,
    contended_ue_ticks: u64,
    migrations: u64,
}

fn bench_size(n_ues: u32, exec: FleetExec, sink: Option<&Telemetry>) -> SizeResult {
    // journal-less deterministic telemetry: cheap enough to leave on in the
    // timed region, and it carries the fleet.migrations diagnostic
    let tele = Telemetry::new(TelemetryConfig { enabled: true, journal_capacity: 0, timing: false });
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let ft: FleetTrace = run_fleet_exec_instrumented(&spec(n_ues), exec, &tele);
    let elapsed_s = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    if let Some(s) = sink {
        s.absorb(&tele);
    }

    // deterministic work count, straight from the trace (equals the
    // absorbed sim.ticks counter; independent of threads and shards)
    let ue_ticks: u64 = ft.ues.iter().map(|u| u.ticks).sum();
    SizeResult {
        n_ues,
        duration_s: duration_s(n_ues),
        ticks: ft.meta.ticks,
        ue_ticks,
        elapsed_s,
        ue_ticks_per_sec: ue_ticks as f64 / elapsed_s,
        allocs_per_ue_tick: allocs as f64 / ue_ticks as f64,
        peak_cell_ues: ft.load.peak_cell_ues,
        contended_ue_ticks: ft.load.contended_ue_ticks,
        migrations: tele.counter_value("fleet.migrations"),
    }
}

/// The shard-invariance check: one migration-heavy fleet, run with 1 shard
/// and with 4, must produce identical output — traces included. Returns
/// false (and prints why) on any divergence.
fn verify_shards(threads: usize) -> bool {
    let base = base_scenario(20.0);
    let spec = FleetSpec::new(base, 64).stagger_s(10.0).speed_jitter(0.1).keep_traces(true);
    let one = fiveg_sim::run_fleet_exec(&spec, FleetExec { threads, shards: 1 });
    let four = fiveg_sim::run_fleet_exec(&spec, FleetExec { threads, shards: 4 });
    if one == four {
        println!("  shard invariance: 1 shard == 4 shards over {} UEs ({} ticks)  ok", 64, one.meta.ticks);
        true
    } else {
        eprintln!("fleet_bench: FleetTrace differs between 1 and 4 shards — boundary exchange broke determinism");
        false
    }
}

fn report(mode: &str, threads: usize, shards: usize, results: &[SizeResult]) -> String {
    let base = base_scenario(duration_s(1));
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val("fiveg-fleet/v2");
    j.key("mode");
    j.str_val(mode);
    j.key("threads");
    j.uint(threads as u64);
    j.key("shards");
    j.uint(shards as u64);
    j.key("base");
    j.open('{');
    j.key("seed");
    j.uint(base.seed);
    j.key("sample_hz");
    j.num(base.sample_hz);
    j.key("stagger_s");
    j.num(10.0);
    j.key("speed_jitter");
    j.num(0.1);
    j.close('}');
    j.key("sizes");
    j.open('[');
    for r in results {
        j.open('{');
        j.key("n_ues");
        j.uint(u64::from(r.n_ues));
        j.key("duration_s");
        j.num(r.duration_s);
        j.key("ticks");
        j.uint(r.ticks);
        j.key("ue_ticks");
        j.uint(r.ue_ticks);
        j.key("elapsed_s");
        j.num(r.elapsed_s);
        j.key("ue_ticks_per_sec");
        j.num(r.ue_ticks_per_sec);
        j.key("allocs_per_ue_tick");
        j.num(r.allocs_per_ue_tick);
        j.key("peak_cell_ues");
        j.uint(u64::from(r.peak_cell_ues));
        j.key("contended_ue_ticks");
        j.uint(r.contended_ue_ticks);
        j.key("migrations");
        j.uint(r.migrations);
        j.close('}');
    }
    j.close(']');
    j.close('}');
    j.finish_line()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mode = if args.smoke { "smoke" } else { "full" };
    let set: Vec<u32> = args.sizes.clone().unwrap_or_else(|| sizes(args.smoke).to_vec());
    let exec = FleetExec { threads: args.threads, shards: args.shards };
    let shards_shown = if args.shards == 0 { args.threads } else { args.shards };
    println!("fleet bench '{}': sizes {:?}, {} thread(s), {} shard(s)", mode, set, args.threads, shards_shown);

    if args.verify_shards && !verify_shards(args.threads) {
        return ExitCode::FAILURE;
    }

    // the cross-size telemetry sink behind --tele-summary
    let sink = args.tele_summary.as_ref().map(|_| Telemetry::new(TelemetryConfig::deterministic()));

    // warmup (untimed): page in code and let the allocator settle
    run_fleet_exec_instrumented(&spec(1), exec, &Telemetry::disabled());

    let mut results = Vec::new();
    for &n in &set {
        let r = bench_size(n, exec, sink.as_ref());
        println!(
            "  {:>7} UEs  {:>10} UE·ticks in {:>7.2} s  -> {:>9.0} UE·ticks/s, {:>6.2} allocs/UE·tick, peak cell {:>5}, {:>6} migrations",
            r.n_ues, r.ue_ticks, r.elapsed_s, r.ue_ticks_per_sec, r.allocs_per_ue_tick, r.peak_cell_ues, r.migrations
        );
        results.push(r);
    }

    let json = report(mode, args.threads, shards_shown, &results);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("fleet_bench: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    if let (Some(path), Some(s)) = (&args.tele_summary, &sink) {
        if let Err(e) = std::fs::write(path, s.summary()) {
            eprintln!("fleet_bench: writing telemetry summary {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  telemetry summary -> {path}");
    }

    if let Some(path) = &args.baseline {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fleet_bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Gate the machine-independent metrics per size, pairing rows by
        // their n_ues value; absolute UE·ticks/sec is advisory (the
        // baseline's wall clock came from a different machine than this
        // runner's).
        println!("  perf gate vs {} (tol {:.0}%):", path, args.tol * 100.0);
        let mut gates = Vec::new();
        for r in &results {
            let ticks = perfgate::fleet_metric(&committed, r.n_ues, "ue_ticks");
            let allocs = perfgate::fleet_metric(&committed, r.n_ues, "allocs_per_ue_tick");
            let tps = perfgate::fleet_metric(&committed, r.n_ues, "ue_ticks_per_sec");
            let (Some(b_ticks), Some(b_allocs)) = (ticks, allocs) else {
                println!("  fleet[{}]: not in baseline, skipped", r.n_ues);
                continue;
            };
            if let Some(b) = tps {
                perfgate::advise(&format!("fleet[{}] ue_ticks_per_sec", r.n_ues), b, r.ue_ticks_per_sec);
            }
            gates.push(Gate {
                what: format!("fleet[{}] ue_ticks", r.n_ues),
                baseline: b_ticks,
                current: r.ue_ticks as f64,
                better: Better::Band,
            });
            gates.push(Gate {
                what: format!("fleet[{}] allocs_per_ue_tick", r.n_ues),
                baseline: b_allocs,
                current: r.allocs_per_ue_tick,
                better: Better::Lower,
            });
        }
        // A skipped size is fine (a new size must not fail the job that
        // introduces it); *every* size missing means the baseline was
        // reformatted or the wrong file — refuse to become a silent no-op.
        if gates.is_empty() {
            eprintln!("fleet_bench: baseline {path} matched none of the measured sizes — reformatted or wrong file?");
            return ExitCode::FAILURE;
        }
        if !perfgate::evaluate(&gates, args.tol) {
            eprintln!("fleet_bench: gated metrics regressed beyond tolerance");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
