//! Fleet-throughput benchmark: UE·ticks/sec versus fleet size, reporting
//! how close the per-UE cost of the load-coupled fleet engine stays to the
//! single-UE hot path.
//!
//! Every size runs the same pinned base scenario (freeway, OpY, NSA, seed
//! 201) through [`fiveg_sim::fleet`] with the default heterogeneity
//! narrowed to a 10 s stagger window, so per-size numbers are comparable
//! across commits and between `--smoke` and full mode — smoke simply drops
//! the 1000-UE point. Throughput counters flow through `fiveg-telemetry`
//! (`sim.ticks` absorbed per UE, `bench.allocs` from a counting global
//! allocator), and the report is written as `BENCH_fleet.json` (schema
//! `fiveg-fleet/v1`).
//!
//! ```text
//! fleet_bench [--smoke] [--threads N] [--out PATH] [--baseline PATH] [--tol F]
//! ```
//!
//! With `--baseline`, the run gates each size's **machine-independent**
//! metrics against the committed report — `ue_ticks` as a band (the work
//! count is deterministic for the pinned scenario) and `allocs_per_ue_tick`
//! lower-is-better — and exits nonzero past the tolerance (default 15%);
//! this is the gating CI perf job, which pins `--threads 1` to match the
//! committed baseline's thread count. UE·ticks/sec is printed as an
//! advisory comparison only: the baseline's wall clock came from a
//! different machine than the CI runner's (see `fiveg_bench::perfgate`).
//! Sizes absent from the baseline are skipped so a new size never fails the
//! job that introduces it, but if *no* measured size matches, the run fails
//! — a reformatted baseline must not silently disable the gate.

use fiveg_bench::perfgate::{self, Better, Gate};
use fiveg_bench::report::JsonBuf;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{run_fleet_instrumented, FleetSpec, FleetTrace, Scenario, ScenarioBuilder, Telemetry, TelemetryConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap-allocation counter: wraps the system allocator and counts every
/// `alloc`/`realloc` (same proxy as `tick_bench`).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    baseline: Option<String>,
    tol: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { smoke: false, threads: 0, out: "BENCH_fleet.json".into(), baseline: None, tol: 0.15 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse::<usize>().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--tol" => {
                let v = it.next().ok_or("--tol needs a value")?;
                args.tol = v.parse::<f64>().map_err(|_| format!("bad --tol value: {v}"))?;
                if !(0.0..1.0).contains(&args.tol) {
                    return Err("--tol must be in [0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!("usage: fleet_bench [--smoke] [--threads N] [--out PATH] [--baseline PATH] [--tol F]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    }
    Ok(args)
}

/// Fleet sizes per mode. Per-size parameters are identical in both modes so
/// a smoke run can be gated against a committed full-mode baseline.
fn sizes(smoke: bool) -> &'static [u32] {
    if smoke {
        &[1, 10, 100]
    } else {
        &[1, 10, 100, 1000]
    }
}

/// The pinned base scenario every fleet size derives from (see
/// EXPERIMENTS.md, "Fleet benchmark").
fn base_scenario() -> Scenario {
    ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 4.0, 201).duration_s(60.0).sample_hz(10.0).build()
}

fn spec(n_ues: u32) -> FleetSpec {
    FleetSpec::new(base_scenario(), n_ues).stagger_s(10.0).speed_jitter(0.1)
}

struct SizeResult {
    n_ues: u32,
    ticks: u64,
    ue_ticks: u64,
    elapsed_s: f64,
    ue_ticks_per_sec: f64,
    allocs_per_ue_tick: f64,
    peak_cell_ues: u32,
    contended_ue_ticks: u64,
}

fn bench_size(n_ues: u32, threads: usize) -> SizeResult {
    let tele = Telemetry::new(TelemetryConfig::on());
    let allocs = tele.counter("bench.allocs");
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let ft: FleetTrace = run_fleet_instrumented(&spec(n_ues), threads, &tele);
    let elapsed_s = start.elapsed().as_secs_f64();
    allocs.add(ALLOCS.load(Ordering::Relaxed) - before);

    let ue_ticks = tele.counter_value("sim.ticks");
    SizeResult {
        n_ues,
        ticks: ft.meta.ticks,
        ue_ticks,
        elapsed_s,
        ue_ticks_per_sec: ue_ticks as f64 / elapsed_s,
        allocs_per_ue_tick: tele.counter_value("bench.allocs") as f64 / ue_ticks as f64,
        peak_cell_ues: ft.load.peak_cell_ues,
        contended_ue_ticks: ft.load.contended_ue_ticks,
    }
}

fn report(mode: &str, threads: usize, results: &[SizeResult]) -> String {
    let base = base_scenario();
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val("fiveg-fleet/v1");
    j.key("mode");
    j.str_val(mode);
    j.key("threads");
    j.uint(threads as u64);
    j.key("base");
    j.open('{');
    j.key("seed");
    j.uint(base.seed);
    j.key("duration_s");
    j.num(base.max_duration_s);
    j.key("sample_hz");
    j.num(base.sample_hz);
    j.key("stagger_s");
    j.num(10.0);
    j.key("speed_jitter");
    j.num(0.1);
    j.close('}');
    j.key("sizes");
    j.open('[');
    for r in results {
        j.open('{');
        j.key("n_ues");
        j.uint(u64::from(r.n_ues));
        j.key("ticks");
        j.uint(r.ticks);
        j.key("ue_ticks");
        j.uint(r.ue_ticks);
        j.key("elapsed_s");
        j.num(r.elapsed_s);
        j.key("ue_ticks_per_sec");
        j.num(r.ue_ticks_per_sec);
        j.key("allocs_per_ue_tick");
        j.num(r.allocs_per_ue_tick);
        j.key("peak_cell_ues");
        j.uint(u64::from(r.peak_cell_ues));
        j.key("contended_ue_ticks");
        j.uint(r.contended_ue_ticks);
        j.close('}');
    }
    j.close(']');
    j.close('}');
    j.finish_line()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mode = if args.smoke { "smoke" } else { "full" };
    let set = sizes(args.smoke);
    println!("fleet bench '{}': sizes {:?}, {} thread(s)", mode, set, args.threads);

    // warmup (untimed): page in code and let the allocator settle
    run_fleet_instrumented(&spec(1), args.threads, &Telemetry::disabled());

    let mut results = Vec::new();
    for &n in set {
        let r = bench_size(n, args.threads);
        println!(
            "  {:>5} UEs  {:>9} UE·ticks in {:>7.2} s  -> {:>9.0} UE·ticks/s, {:>6.1} allocs/UE·tick, peak cell {:>4}",
            r.n_ues, r.ue_ticks, r.elapsed_s, r.ue_ticks_per_sec, r.allocs_per_ue_tick, r.peak_cell_ues
        );
        results.push(r);
    }

    let json = report(mode, args.threads, &results);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("fleet_bench: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    if let Some(path) = &args.baseline {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fleet_bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Gate the machine-independent metrics per size; absolute
        // UE·ticks/sec is advisory (the baseline's wall clock came from a
        // different machine than this runner's).
        println!("  perf gate vs {} (tol {:.0}%):", path, args.tol * 100.0);
        let mut gates = Vec::new();
        for r in &results {
            let anchor = perfgate::fleet_anchor(r.n_ues);
            let ticks = perfgate::metric_after(&committed, &anchor, "ue_ticks");
            let allocs = perfgate::metric_after(&committed, &anchor, "allocs_per_ue_tick");
            let tps = perfgate::metric_after(&committed, &anchor, "ue_ticks_per_sec");
            let (Some(b_ticks), Some(b_allocs)) = (ticks, allocs) else {
                println!("  fleet[{}]: not in baseline, skipped", r.n_ues);
                continue;
            };
            if let Some(b) = tps {
                perfgate::advise(&format!("fleet[{}] ue_ticks_per_sec", r.n_ues), b, r.ue_ticks_per_sec);
            }
            gates.push(Gate {
                what: format!("fleet[{}] ue_ticks", r.n_ues),
                baseline: b_ticks,
                current: r.ue_ticks as f64,
                better: Better::Band,
            });
            gates.push(Gate {
                what: format!("fleet[{}] allocs_per_ue_tick", r.n_ues),
                baseline: b_allocs,
                current: r.allocs_per_ue_tick,
                better: Better::Lower,
            });
        }
        // A skipped size is fine (a new size must not fail the job that
        // introduces it); *every* size missing means the baseline was
        // reformatted or the wrong file — refuse to become a silent no-op.
        if gates.is_empty() {
            eprintln!("fleet_bench: baseline {path} matched none of the measured sizes — reformatted or wrong file?");
            return ExitCode::FAILURE;
        }
        if !perfgate::evaluate(&gates, args.tol) {
            eprintln!("fleet_bench: gated metrics regressed beyond tolerance");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
