//! Fleet-throughput benchmark: UE·ticks/sec versus fleet size, reporting
//! how close the per-UE cost of the sharded, load-coupled fleet engine
//! stays to the single-UE hot path — and, with `--event-driven`, how much
//! the calendar-wheel scheduler recovers by skipping quiescent UEs.
//!
//! Every size runs the same pinned base scenario (city loop, OpY, SA, seed
//! 201) through [`fiveg_sim::fleet`] with the default heterogeneity
//! narrowed to a 10 s stagger window. The city/SA point is deliberately
//! sleep-eligible (idle workload, RSRP-only events) so the event-driven
//! mode has quiescence to harvest; an NSA fleet would never sleep (its B1
//! trigger is SINR-quantity, see `fiveg_sim::wakeup`). Simulated duration
//! is pinned **per size** (60 s up to 10k UEs, 30 s at 100k, 10 s at 1M
//! and beyond) so the big sizes stay runnable while per-size numbers remain
//! comparable across commits and between `--smoke` and full mode — full
//! mode simply adds the 100k point. Summaries stream (no per-UE traces are
//! retained), `ue_ticks` comes from the deterministic per-UE tick counts in
//! the [`FleetTrace`], and `bench.allocs` from a counting global allocator.
//! The report is written as `BENCH_fleet.json` (schema `fiveg-fleet/v3`).
//!
//! ```text
//! fleet_bench [--smoke] [--threads N] [--shards N] [--sizes CSV]
//!             [--event-driven] [--verify-shards] [--tele-summary PATH]
//!             [--out PATH] [--baseline PATH] [--tol F]
//! ```
//!
//! `--event-driven` times every size twice — fixed-step, then
//! [`EngineMode::EventDriven`] — and records per size the skipped work
//! (`skipped_ue_ticks`, `skip_ratio`), the wheel's wakeup histogram, and
//! `event_speedup` (fixed elapsed / event elapsed, both measured in the
//! same process so runner speed cancels). The two runs must agree on
//! `ue_ticks` exactly — a divergence fails the job before any gating.
//!
//! With `--baseline`, the run first refuses a baseline whose `schema`
//! string differs from this binary's (a v2 baseline silently gating a v3
//! report would pair the wrong semantics), then gates each size's
//! **machine-independent** metrics against the committed report, pairing
//! rows by their `n_ues` value (`perfgate::fleet_metric`, never by array
//! position) — `ue_ticks` and `skip_ratio` as bands (both deterministic
//! for the pinned scenario; skip-ratio drift in either direction means the
//! wakeup planner changed), `allocs_per_ue_tick` lower-is-better and
//! `event_speedup` higher-is-better — and exits nonzero past the tolerance
//! (default 15%); this is the gating CI perf job, which pins `--threads 1`
//! to match the committed baseline's thread count. UE·ticks/sec is printed
//! as an advisory comparison only: the baseline's wall clock came from a
//! different machine than the CI runner's (see `fiveg_bench::perfgate`).
//! Sizes absent from the baseline are skipped so a new size never fails
//! the job that introduces it, but if *no* measured size matches, the run
//! fails — a reformatted baseline must not silently disable the gate.
//!
//! `--verify-shards` is the other machine-independent gate, now three
//! checks deep: (1) one migration-heavy fleet run with 1 shard and with 4
//! must produce identical output, traces included; (2) the same fleet run
//! in [`EngineMode::Referee`] (the referee: sleeping UEs still step,
//! unsampled) and [`EngineMode::EventDriven`] (sleeping UEs skipped) must
//! produce byte-identical [`FleetTrace`]s across different shard counts —
//! with a non-vacuity check that sleep actually happened; (3) the plain
//! fixed-step run must agree with the event-driven run on every per-UE
//! control-plane field and the load summary. Any divergence exits nonzero
//! before the timing runs start.

use fiveg_bench::perfgate::{self, Better, Gate};
use fiveg_bench::report::JsonBuf;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{
    run_fleet_exec_instrumented, FleetExec, EngineMode, FleetSpec, FleetTrace, Scenario, ScenarioBuilder, Telemetry,
    TelemetryConfig,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The report schema this binary writes and the only one it will gate
/// against.
const SCHEMA: &str = "fiveg-fleet/v3";

/// Heap-allocation counter: wraps the system allocator and counts every
/// `alloc`/`realloc` (same proxy as `tick_bench`).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Args {
    smoke: bool,
    threads: usize,
    shards: usize,
    sizes: Option<Vec<u32>>,
    event: bool,
    verify_shards: bool,
    tele_summary: Option<String>,
    out: String,
    baseline: Option<String>,
    tol: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        threads: 0,
        shards: 0,
        sizes: None,
        event: false,
        verify_shards: false,
        tele_summary: None,
        out: "BENCH_fleet.json".into(),
        baseline: None,
        tol: 0.15,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse::<usize>().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse::<usize>().map_err(|_| format!("bad --shards value: {v}"))?;
            }
            "--sizes" => {
                let v = it.next().ok_or("--sizes needs a comma-separated list")?;
                let parsed: Result<Vec<u32>, _> = v.split(',').map(|s| s.trim().parse::<u32>()).collect();
                let sizes = parsed.map_err(|_| format!("bad --sizes value: {v}"))?;
                if sizes.is_empty() || sizes.contains(&0) {
                    return Err("--sizes needs at least one nonzero fleet size".into());
                }
                args.sizes = Some(sizes);
            }
            "--event-driven" => args.event = true,
            "--verify-shards" => args.verify_shards = true,
            "--tele-summary" => args.tele_summary = Some(it.next().ok_or("--tele-summary needs a value")?),
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--baseline" => args.baseline = Some(it.next().ok_or("--baseline needs a value")?),
            "--tol" => {
                let v = it.next().ok_or("--tol needs a value")?;
                args.tol = v.parse::<f64>().map_err(|_| format!("bad --tol value: {v}"))?;
                if !(0.0..1.0).contains(&args.tol) {
                    return Err("--tol must be in [0, 1)".into());
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: fleet_bench [--smoke] [--threads N] [--shards N] [--sizes CSV] [--event-driven] \
                     [--verify-shards] [--tele-summary PATH] [--out PATH] [--baseline PATH] [--tol F]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    }
    Ok(args)
}

/// Fleet sizes per mode. Per-size parameters (duration included) are pinned
/// by size alone, so a smoke run can be gated against a committed full-mode
/// baseline and an explicit `--sizes` run stays comparable to both.
fn sizes(smoke: bool) -> &'static [u32] {
    if smoke {
        &[1, 10, 100, 1000, 10_000]
    } else {
        &[1, 10, 100, 1000, 10_000, 100_000]
    }
}

/// Pinned simulated duration for a fleet size: long enough to dominate
/// setup cost, short enough that the big sizes finish. Pinned per size (not
/// per mode) so every run of a given size executes the same work.
fn duration_s(n_ues: u32) -> f64 {
    if n_ues <= 10_000 {
        60.0
    } else if n_ues <= 100_000 {
        30.0
    } else {
        10.0
    }
}

/// The pinned base scenario every fleet size derives from (see
/// EXPERIMENTS.md, "Fleet benchmark"). City loop + SA keeps the fleet
/// sleep-eligible so the event-driven mode is actually exercised.
fn base_scenario(duration: f64) -> Scenario {
    ScenarioBuilder::city_loop(Carrier::OpY, 201).arch(Arch::Sa).duration_s(duration).sample_hz(10.0).build()
}

fn spec(n_ues: u32) -> FleetSpec {
    FleetSpec::new(base_scenario(duration_s(n_ues)), n_ues).stagger_s(10.0).speed_jitter(0.1)
}

/// The event-driven half of a size's measurements. All fields except the
/// two elapsed-derived ones are deterministic for the pinned scenario.
struct EventResult {
    elapsed_s: f64,
    ue_ticks_per_sec: f64,
    /// fixed elapsed / event elapsed, same process, same machine.
    speedup: f64,
    skipped_ue_ticks: u64,
    /// `skipped_ue_ticks / ue_ticks` — the fraction of the fixed-step work
    /// the scheduler proved inert and never executed.
    skip_ratio: f64,
    sleeps: u64,
    load_wakes: u64,
    wake_hist: [u64; 4],
}

struct SizeResult {
    n_ues: u32,
    duration_s: f64,
    ticks: u64,
    ue_ticks: u64,
    elapsed_s: f64,
    ue_ticks_per_sec: f64,
    allocs_per_ue_tick: f64,
    peak_cell_ues: u32,
    contended_ue_ticks: u64,
    migrations: u64,
    event: Option<EventResult>,
}

fn bench_size(n_ues: u32, exec: FleetExec, event: bool, sink: Option<&Telemetry>) -> Result<SizeResult, String> {
    // journal-less deterministic telemetry: cheap enough to leave on in the
    // timed region, and it carries the fleet.migrations diagnostic
    let tele = Telemetry::new(TelemetryConfig { enabled: true, journal_capacity: 0, timing: false });
    let before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    let ft: FleetTrace = run_fleet_exec_instrumented(&spec(n_ues), exec, &tele);
    let elapsed_s = start.elapsed().as_secs_f64();
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    if let Some(s) = sink {
        s.absorb(&tele);
    }

    // deterministic work count, straight from the trace (equals the
    // absorbed sim.ticks counter; independent of threads and shards)
    let ue_ticks: u64 = ft.ues.iter().map(|u| u.ticks).sum();

    let event = if event {
        let start = Instant::now();
        let ev: FleetTrace =
            run_fleet_exec_instrumented(&spec(n_ues), exec.engine(EngineMode::EventDriven), &Telemetry::disabled());
        let ev_elapsed = start.elapsed().as_secs_f64();
        let ev_ue_ticks: u64 = ev.ues.iter().map(|u| u.ticks).sum();
        if ev_ue_ticks != ue_ticks {
            return Err(format!(
                "event-driven run diverged at {n_ues} UEs: {ev_ue_ticks} UE·ticks vs fixed {ue_ticks}"
            ));
        }
        let sched = ev.sched.ok_or_else(|| format!("event-driven run at {n_ues} UEs returned no SchedSummary"))?;
        Some(EventResult {
            elapsed_s: ev_elapsed,
            ue_ticks_per_sec: ue_ticks as f64 / ev_elapsed,
            speedup: elapsed_s / ev_elapsed,
            skipped_ue_ticks: sched.skipped_ue_ticks,
            skip_ratio: sched.skipped_ue_ticks as f64 / ue_ticks as f64,
            sleeps: sched.sleeps,
            load_wakes: sched.load_wakes,
            wake_hist: sched.wake_hist,
        })
    } else {
        None
    };

    Ok(SizeResult {
        n_ues,
        duration_s: duration_s(n_ues),
        ticks: ft.meta.ticks,
        ue_ticks,
        elapsed_s,
        ue_ticks_per_sec: ue_ticks as f64 / elapsed_s,
        allocs_per_ue_tick: allocs as f64 / ue_ticks as f64,
        peak_cell_ues: ft.load.peak_cell_ues,
        contended_ue_ticks: ft.load.contended_ue_ticks,
        migrations: tele.counter_value("fleet.migrations"),
        event,
    })
}

/// The machine-independent equivalence gates: shard invariance of the fixed
/// path, byte-identity of referee vs event-driven scheduling, and
/// control-plane agreement of fixed vs event-driven. Returns false (and
/// prints why) on any divergence.
fn verify_shards(threads: usize) -> bool {
    let spec = FleetSpec::new(base_scenario(20.0), 64).stagger_s(10.0).speed_jitter(0.1);

    // 1. fixed path, 1 vs 4 shards, traces retained
    let kept = spec.clone().keep_traces(true);
    let one = fiveg_sim::run_fleet_exec(&kept, FleetExec::threads(threads).shards(1));
    let four = fiveg_sim::run_fleet_exec(&kept, FleetExec::threads(threads).shards(4));
    if one != four {
        eprintln!("fleet_bench: FleetTrace differs between 1 and 4 shards — boundary exchange broke determinism");
        return false;
    }
    println!("  shard invariance: 1 shard == 4 shards over {} UEs ({} ticks)  ok", 64, one.meta.ticks);

    // 2. referee vs event-driven: byte-identical across shard counts. The
    //    referee steps sleeping UEs with full control plane, so equality
    //    proves every granted sleep window really was inert.
    let referee = fiveg_sim::run_fleet_exec(&spec, FleetExec::threads(threads).shards(1).engine(EngineMode::Referee));
    let event = fiveg_sim::run_fleet_exec(&spec, FleetExec::threads(threads).shards(4).engine(EngineMode::EventDriven));
    if referee != event {
        eprintln!("fleet_bench: event-driven FleetTrace differs from the FixedScheduled referee — unsound wakeup bound");
        return false;
    }
    let Some(sched) = &event.sched else {
        eprintln!("fleet_bench: event-driven run carried no SchedSummary");
        return false;
    };
    if sched.sleeps == 0 || sched.skipped_ue_ticks == 0 {
        eprintln!("fleet_bench: verification fleet never slept — the mode-equivalence check is vacuous");
        return false;
    }
    println!(
        "  mode identity: referee == event-driven ({} sleeps, {} skipped UE·ticks)  ok",
        sched.sleeps, sched.skipped_ue_ticks
    );

    // 3. fixed vs event-driven: the control plane and the load summary must
    //    agree; only the data-plane sampling aggregates (mean_capacity and
    //    friends) may differ, because sleeping UEs do not sample.
    let fixed = fiveg_sim::run_fleet_exec(&spec, FleetExec::threads(threads).shards(4));
    if fixed.meta != event.meta || fixed.load != event.load {
        eprintln!("fleet_bench: fixed vs event-driven meta/load summary diverged");
        return false;
    }
    for (f, e) in fixed.ues.iter().zip(event.ues.iter()) {
        let control = |u: &fiveg_sim::UeSummary| {
            (u.ue, u.seed, u.start_tick, u.reversed, u.ticks, u.traveled_m, u.handovers, u.ho_failures, u.rlf_count, u.reports)
        };
        if control(f) != control(e) {
            eprintln!("fleet_bench: fixed vs event-driven control plane diverged for UE {}", f.ue);
            return false;
        }
    }
    println!("  control identity: fixed == event-driven over {} UEs  ok", fixed.ues.len());
    true
}

fn report(mode: &str, threads: usize, shards: usize, results: &[SizeResult]) -> String {
    let base = base_scenario(duration_s(1));
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val(SCHEMA);
    j.key("mode");
    j.str_val(mode);
    j.key("threads");
    j.uint(threads as u64);
    j.key("shards");
    j.uint(shards as u64);
    j.key("base");
    j.open('{');
    j.key("seed");
    j.uint(base.seed);
    j.key("sample_hz");
    j.num(base.sample_hz);
    j.key("stagger_s");
    j.num(10.0);
    j.key("speed_jitter");
    j.num(0.1);
    j.close('}');
    j.key("sizes");
    j.open('[');
    for r in results {
        j.open('{');
        j.key("n_ues");
        j.uint(u64::from(r.n_ues));
        j.key("duration_s");
        j.num(r.duration_s);
        j.key("ticks");
        j.uint(r.ticks);
        j.key("ue_ticks");
        j.uint(r.ue_ticks);
        j.key("elapsed_s");
        j.num(r.elapsed_s);
        j.key("ue_ticks_per_sec");
        j.num(r.ue_ticks_per_sec);
        j.key("allocs_per_ue_tick");
        j.num(r.allocs_per_ue_tick);
        j.key("peak_cell_ues");
        j.uint(u64::from(r.peak_cell_ues));
        j.key("contended_ue_ticks");
        j.uint(r.contended_ue_ticks);
        j.key("migrations");
        j.uint(r.migrations);
        if let Some(ev) = &r.event {
            j.key("event_elapsed_s");
            j.num(ev.elapsed_s);
            j.key("event_ue_ticks_per_sec");
            j.num(ev.ue_ticks_per_sec);
            j.key("event_speedup");
            j.num(ev.speedup);
            j.key("skipped_ue_ticks");
            j.uint(ev.skipped_ue_ticks);
            j.key("skip_ratio");
            j.num(ev.skip_ratio);
            j.key("sleeps");
            j.uint(ev.sleeps);
            j.key("load_wakes");
            j.uint(ev.load_wakes);
            // last key in the row: the array holds no '}' so the perfgate
            // row scanner's scope (up to the row's closing brace) survives
            j.key("wake_hist");
            j.open('[');
            for &b in &ev.wake_hist {
                j.uint(b);
            }
            j.close(']');
        }
        j.close('}');
    }
    j.close(']');
    j.close('}');
    j.finish_line()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mode = if args.smoke { "smoke" } else { "full" };
    let set: Vec<u32> = args.sizes.clone().unwrap_or_else(|| sizes(args.smoke).to_vec());
    let exec = FleetExec::threads(args.threads).shards(args.shards);
    let shards_shown = if args.shards == 0 { args.threads } else { args.shards };
    println!(
        "fleet bench '{}': sizes {:?}, {} thread(s), {} shard(s){}",
        mode,
        set,
        args.threads,
        shards_shown,
        if args.event { ", + event-driven" } else { "" }
    );

    if args.verify_shards && !verify_shards(args.threads) {
        return ExitCode::FAILURE;
    }

    // the cross-size telemetry sink behind --tele-summary
    let sink = args.tele_summary.as_ref().map(|_| Telemetry::new(TelemetryConfig::deterministic()));

    // warmup (untimed): page in code and let the allocator settle
    run_fleet_exec_instrumented(&spec(1), exec, &Telemetry::disabled());

    let mut results = Vec::new();
    for &n in &set {
        let r = match bench_size(n, exec, args.event, sink.as_ref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fleet_bench: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "  {:>7} UEs  {:>10} UE·ticks in {:>7.2} s  -> {:>9.0} UE·ticks/s, {:>6.2} allocs/UE·tick, peak cell {:>5}, {:>6} migrations",
            r.n_ues, r.ue_ticks, r.elapsed_s, r.ue_ticks_per_sec, r.allocs_per_ue_tick, r.peak_cell_ues, r.migrations
        );
        if let Some(ev) = &r.event {
            println!(
                "          event-driven: {:>7.2} s  -> {:>9.0} UE·ticks/s ({:.2}x), skip ratio {:.3} ({} sleeps, {} load wakes)",
                ev.elapsed_s, ev.ue_ticks_per_sec, ev.speedup, ev.skip_ratio, ev.sleeps, ev.load_wakes
            );
        }
        results.push(r);
    }

    let json = report(mode, args.threads, shards_shown, &results);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("fleet_bench: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    if let (Some(path), Some(s)) = (&args.tele_summary, &sink) {
        if let Err(e) = std::fs::write(path, s.summary()) {
            eprintln!("fleet_bench: writing telemetry summary {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  telemetry summary -> {path}");
    }

    if let Some(path) = &args.baseline {
        let committed = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fleet_bench: reading baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // A baseline from a different schema generation must never gate
        // this report: the rows would pair by n_ues and silently compare
        // different scenarios or metric semantics. Fail loudly instead.
        match perfgate::schema_of(&committed) {
            Some(s) if s == SCHEMA => {}
            got => {
                eprintln!(
                    "fleet_bench: baseline {path} has schema {} but this binary writes {SCHEMA} — \
                     regenerate the baseline instead of gating across schema versions",
                    got.map_or_else(|| "(none)".into(), |s| format!("'{s}'"))
                );
                return ExitCode::FAILURE;
            }
        }
        // Gate the machine-independent metrics per size, pairing rows by
        // their n_ues value; absolute UE·ticks/sec is advisory (the
        // baseline's wall clock came from a different machine than this
        // runner's).
        println!("  perf gate vs {} (tol {:.0}%):", path, args.tol * 100.0);
        let mut gates = Vec::new();
        for r in &results {
            let ticks = perfgate::fleet_metric(&committed, r.n_ues, "ue_ticks");
            let allocs = perfgate::fleet_metric(&committed, r.n_ues, "allocs_per_ue_tick");
            let tps = perfgate::fleet_metric(&committed, r.n_ues, "ue_ticks_per_sec");
            let (Some(b_ticks), Some(b_allocs)) = (ticks, allocs) else {
                println!("  fleet[{}]: not in baseline, skipped", r.n_ues);
                continue;
            };
            if let Some(b) = tps {
                perfgate::advise(&format!("fleet[{}] ue_ticks_per_sec", r.n_ues), b, r.ue_ticks_per_sec);
            }
            gates.push(Gate {
                what: format!("fleet[{}] ue_ticks", r.n_ues),
                baseline: b_ticks,
                current: r.ue_ticks as f64,
                better: Better::Band,
            });
            gates.push(Gate {
                what: format!("fleet[{}] allocs_per_ue_tick", r.n_ues),
                baseline: b_allocs,
                current: r.allocs_per_ue_tick,
                better: Better::Lower,
            });
            if let Some(ev) = &r.event {
                if let Some(b) = perfgate::fleet_metric(&committed, r.n_ues, "event_ue_ticks_per_sec") {
                    perfgate::advise(&format!("fleet[{}] event UE·ticks/sec", r.n_ues), b, ev.ue_ticks_per_sec);
                }
                // skip_ratio is a work count in disguise: deterministic for
                // the pinned scenario, banded so planner drift in either
                // direction fails. event_speedup is a same-run ratio, so
                // runner speed cancels and higher-is-better is gateable.
                if let Some(b_skip) = perfgate::fleet_metric(&committed, r.n_ues, "skip_ratio") {
                    gates.push(Gate {
                        what: format!("fleet[{}] skip_ratio", r.n_ues),
                        baseline: b_skip,
                        current: ev.skip_ratio,
                        better: Better::Band,
                    });
                }
                if let Some(b_spd) = perfgate::fleet_metric(&committed, r.n_ues, "event_speedup") {
                    gates.push(Gate {
                        what: format!("fleet[{}] event_speedup", r.n_ues),
                        baseline: b_spd,
                        current: ev.speedup,
                        better: Better::Higher,
                    });
                }
            }
        }
        // A skipped size is fine (a new size must not fail the job that
        // introduces it); *every* size missing means the baseline was
        // reformatted or the wrong file — refuse to become a silent no-op.
        if gates.is_empty() {
            eprintln!("fleet_bench: baseline {path} matched none of the measured sizes — reformatted or wrong file?");
            return ExitCode::FAILURE;
        }
        if !perfgate::evaluate(&gates, args.tol) {
            eprintln!("fleet_bench: gated metrics regressed beyond tolerance");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
