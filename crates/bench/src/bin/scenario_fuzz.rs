//! Deterministic scenario fuzzer: seeded random scenarios through both
//! engines, under the full invariant oracle, with shrinking and a replay
//! corpus.
//!
//! ```text
//! scenario_fuzz [--cases N] [--seed N] [--threads N] [--out PATH]
//!               [--corpus DIR] [--replay CASE.toml]
//!               [--no-roundtrip] [--no-selftest] [--no-shrink]
//! ```
//!
//! Default invocation (the CI smoke gate is `--cases 200 --seed 1`):
//!
//! 1. **Self-test** — every [`fiveg_oracle::MutationKind`] is injected into
//!    the hook stream of a known-good run; the oracle must catch each within
//!    five ticks, or the fuzzer's verdicts cannot be trusted (`--no-selftest`
//!    skips).
//! 2. **Corpus replay** — every `*.toml` under `--corpus` (default
//!    `tests/corpus`) re-runs; once-shrunk failures gate forever.
//! 3. **Campaign** — `--cases` cases generated from `--seed`, fanned over
//!    `--threads` workers; verdicts are independent of thread count and the
//!    `fiveg-fuzz/v1` report at `--out` is byte-identical across
//!    `--threads` values.
//!
//! On a campaign failure the first few failing cases are shrunk to minimal
//! still-failing repros and written into the corpus directory
//! (`--no-shrink` skips), so the finding is one `--replay` away for anyone.
//!
//! `--no-roundtrip` drops the serde round-trip/byte-identity checks; it
//! exists for the offline stub harness (scripts/localcheck.sh), where
//! `serde_json` is a compile-only stand-in.

use fiveg_bench::fuzz::{campaign_report, replay_corpus, run_campaign, run_outcome, shrink_and_save, FuzzOutcome};
use fiveg_oracle::{mutation_self_test, FuzzCase, MutationKind, RunOpts};
use std::path::PathBuf;
use std::process::ExitCode;

/// Shrink at most this many campaign failures; the rest are reported only.
const MAX_SHRINKS: usize = 3;

struct Args {
    cases: u64,
    seed: u64,
    threads: usize,
    out: String,
    corpus: PathBuf,
    replay: Option<PathBuf>,
    roundtrip: bool,
    selftest: bool,
    shrink: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 200,
        seed: 1,
        threads: 1,
        out: "BENCH_fuzz.json".into(),
        corpus: PathBuf::from("tests/corpus"),
        replay: None,
        roundtrip: true,
        selftest: true,
        shrink: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--cases" => args.cases = val("--cases")?.parse().map_err(|e| format!("bad --cases: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--threads" => args.threads = val("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?,
            "--out" => args.out = val("--out")?,
            "--corpus" => args.corpus = PathBuf::from(val("--corpus")?),
            "--replay" => args.replay = Some(PathBuf::from(val("--replay")?)),
            "--no-roundtrip" => args.roundtrip = false,
            "--no-selftest" => args.selftest = false,
            "--no-shrink" => args.shrink = false,
            "--help" | "-h" => {
                println!(
                    "usage: scenario_fuzz [--cases N] [--seed N] [--threads N] [--out PATH]\n\
                     \x20                    [--corpus DIR] [--replay CASE.toml]\n\
                     \x20                    [--no-roundtrip] [--no-selftest] [--no-shrink]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Prints a failed outcome's evidence and returns how many findings it had.
fn print_failure(o: &FuzzOutcome) -> u64 {
    eprintln!("FAIL {} ({})", o.label, o.case.label());
    if let Some(d) = &o.result.divergence {
        eprintln!("  engine divergence: {d}");
    }
    for v in &o.result.violations {
        eprintln!("  {v}");
    }
    let hidden = o.result.total_violations.saturating_sub(o.result.violations.len() as u64);
    if hidden > 0 {
        eprintln!("  … {hidden} more violations");
    }
    o.result.total_violations + u64::from(o.result.divergence.is_some())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let opts = RunOpts { check_roundtrip: args.roundtrip };

    // single-case replay: the one-command repro path
    if let Some(path) = &args.replay {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = FuzzCase::parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let label = path.file_stem().and_then(|s| s.to_str()).unwrap_or("replay").to_string();
        println!("replaying {} ({})", path.display(), case.label());
        let o = run_outcome(label, case, &opts);
        if o.passed() {
            println!(
                "PASS: {} ticks, {} handovers, {} failures",
                o.result.ticks, o.result.handovers, o.result.ho_failures
            );
            return Ok(true);
        }
        print_failure(&o);
        return Ok(false);
    }

    let mut ok = true;

    if args.selftest {
        println!("== oracle mutation self-test ({} mutations)", MutationKind::ALL.len());
        for kind in MutationKind::ALL {
            let r = mutation_self_test(kind, args.seed);
            if r.caught_within(0.5) {
                println!("   {:<18} caught ({} violations)", kind.name(), r.violations);
            } else {
                eprintln!(
                    "   {:<18} NOT caught (injected {:?}, detected {:?}) — oracle verdicts untrustworthy",
                    kind.name(),
                    r.injected_at,
                    r.detected_at
                );
                ok = false;
            }
        }
    }

    let corpus = replay_corpus(&args.corpus, &opts)?;
    println!("== corpus replay ({} cases from {})", corpus.len(), args.corpus.display());
    for o in &corpus {
        if o.passed() {
            println!("   {:<24} pass ({} ticks)", o.label, o.result.ticks);
        } else {
            print_failure(o);
            ok = false;
        }
    }

    println!("== campaign: {} cases, fuzz seed {}, {} thread(s)", args.cases, args.seed, args.threads);
    let outcomes = run_campaign(args.seed, args.cases, args.threads, &opts);
    let failures: Vec<&FuzzOutcome> = outcomes.iter().filter(|o| !o.passed()).collect();
    let findings: u64 = failures.iter().map(|o| print_failure(o)).sum();
    for o in failures.iter().take(MAX_SHRINKS) {
        if args.shrink {
            let path = shrink_and_save(o, &opts, &args.corpus)?;
            eprintln!("  minimal repro written: scenario_fuzz --replay {}", path.display());
        }
    }
    if failures.len() > MAX_SHRINKS && args.shrink {
        eprintln!("  ({} further failures not shrunk)", failures.len() - MAX_SHRINKS);
    }
    ok &= failures.is_empty();

    let report = campaign_report(args.seed, args.roundtrip, &outcomes);
    std::fs::write(&args.out, &report).map_err(|e| format!("{}: {e}", args.out))?;
    let ticks: usize = outcomes.iter().map(|o| o.result.ticks).sum();
    let hos: usize = outcomes.iter().map(|o| o.result.handovers).sum();
    println!(
        "== {} cases, {ticks} ticks, {hos} handovers, {} failing ({findings} findings) -> {}",
        outcomes.len(),
        failures.len(),
        args.out
    );
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("scenario_fuzz: {e}");
            ExitCode::from(2)
        }
    }
}
