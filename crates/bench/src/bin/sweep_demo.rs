//! Runs a scenario sweep and writes the `BENCH_sweep.json` report.
//!
//! The default matrix is [`SweepSpec::demo`] (24 scenarios × 3 predictors);
//! `--smoke` switches to the CI-sized [`SweepSpec::smoke`] matrix. The
//! report is byte-identical for any `--threads` value unless `--timing`
//! adds the (inherently nondeterministic) wall-clock section — CI runs the
//! smoke sweep twice at different thread counts and diffs the files.
//!
//! ```text
//! sweep_demo [--smoke] [--threads N] [--out PATH] [--timing]
//! ```

use fiveg_bench::sweep::{self, SweepSpec};
use std::process::ExitCode;

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    timing: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { smoke: false, threads: sweep::default_threads(), out: "BENCH_sweep.json".into(), timing: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--timing" => args.timing = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse::<usize>().map_err(|_| format!("bad --threads value: {v}"))?;
                if args.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--help" | "-h" => {
                println!("usage: sweep_demo [--smoke] [--threads N] [--out PATH] [--timing]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sweep_demo: {e}");
            return ExitCode::FAILURE;
        }
    };

    let spec = if args.smoke { SweepSpec::smoke() } else { SweepSpec::demo() };
    let jobs = spec.jobs().len();
    println!("sweep '{}': {} scenarios, {} jobs, {} thread(s)", spec.name, spec.cells().len(), jobs, args.threads);

    let result = sweep::run(&spec, args.threads);
    let json = result.to_json(args.timing);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("sweep_demo: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    for r in &result.rollups {
        println!(
            "  {:<8} jobs {:>3}  F1 {:.3}  tolerant {:.3}  event {:.3}  lead {:.0} ms",
            r.predictor.label(),
            r.jobs,
            r.mean_f1,
            r.mean_tolerant_f1,
            r.mean_event_f1,
            r.mean_lead_ms
        );
    }
    println!("  wall {:.0} ms on {} thread(s) -> {}", result.timing.total_ms, result.timing.threads, args.out);
    ExitCode::SUCCESS
}
