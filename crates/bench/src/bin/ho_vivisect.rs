//! Handover vivisection report: per-phase span CDFs across a pinned
//! scenario matrix, reconciled against the engine's telemetry counters.
//!
//! Each matrix cell (see [`fiveg_bench::vivisect::matrix`]) runs a fleet
//! with a span assembler *and* a shadow oracle per UE; the merged span log
//! must reconcile **exactly** with the `ho.*` / `sim.handovers` /
//! `faults.ho_failure` counters, and any causality anomaly or oracle
//! violation fails the run. The report is written as `BENCH_vivisect.json`
//! (schema `fiveg-vivisect/v1`) and contains only sim-time quantities, so
//! it is byte-identical at any `--threads` value — the `vivisect-smoke` CI
//! step diffs a 1-thread and a 4-thread run to hold that line.
//!
//! ```text
//! ho_vivisect [--smoke] [--threads N] [--out PATH] [--dump-dir DIR] [--force-violation]
//! ```
//!
//! Flight-recorder dumps (oracle violations, RLF/failure storms) land in
//! `--dump-dir` as one JSONL file per dump (schema `fiveg-flightrec/v1`).
//! `--force-violation` exercises the crash path end-to-end: it replays the
//! oracle's `swap_serving_legs` mutation with the assembler attached,
//! verifies the violation triggered a dump whose open span carries the full
//! phase timeline, and writes that dump next to the organic ones.

use fiveg_bench::vivisect::{matrix, report, run_matrix, VIVISECT_SCHEMA};
use fiveg_oracle::{mutation_self_test_traced, MutationKind};
use fiveg_trace::FLIGHTREC_SCHEMA;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    dump_dir: PathBuf,
    force_violation: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        threads: 0,
        out: "BENCH_vivisect.json".into(),
        dump_dir: PathBuf::from("vivisect_dumps"),
        force_violation: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = v.parse::<usize>().map_err(|_| format!("bad --threads value: {v}"))?;
            }
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--dump-dir" => args.dump_dir = PathBuf::from(it.next().ok_or("--dump-dir needs a value")?),
            "--force-violation" => args.force_violation = true,
            "--help" | "-h" => {
                println!(
                    "usage: ho_vivisect [--smoke] [--threads N] [--out PATH] [--dump-dir DIR] [--force-violation]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    }
    Ok(args)
}

fn write_dump(dir: &Path, file: &str, jsonl: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(file);
    std::fs::write(&path, jsonl).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("  dump -> {}", path.display());
    Ok(())
}

/// Replays the `swap_serving_legs` oracle mutation with the span assembler
/// attached and checks the crash path end-to-end: the oracle must catch the
/// corruption, the violation must trigger a flight-recorder dump, and the
/// dump must carry the full phase timeline of the span that was in flight.
fn force_violation(dump_dir: &Path) -> Result<(), String> {
    let (rep, log) = mutation_self_test_traced(MutationKind::SwapServingLegs, 1);
    if !rep.caught_within(0.5) {
        return Err(format!("oracle missed the forced corruption: {rep:?}"));
    }
    let dump = log
        .dumps
        .iter()
        .find(|d| d.reason == "oracle_violation")
        .ok_or("violation did not trigger a flight-recorder dump")?;
    if !dump.jsonl.contains(FLIGHTREC_SCHEMA) {
        return Err(format!("dump is missing the {FLIGHTREC_SCHEMA} header"));
    }
    for key in ["\"trigger_ms\"", "\"prep_ms\"", "\"exec_ms\"", "\"t_decision\""] {
        if !dump.jsonl.contains(key) {
            return Err(format!("dump span timeline is missing {key}"));
        }
    }
    write_dump(dump_dir, "forced_oracle_violation.jsonl", &dump.jsonl)?;
    println!(
        "  forced violation: injected at {:.1}s, detected at {:.1}s, dump carries the span timeline",
        rep.injected_at.unwrap_or(f64::NAN),
        rep.detected_at.unwrap_or(f64::NAN)
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ho_vivisect: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mode = if args.smoke { "smoke" } else { "full" };
    let cells = matrix(args.smoke);
    println!("vivisect '{}': {} cells, {} thread(s)", mode, cells.len(), args.threads);

    let outcomes = run_matrix(&cells, args.threads);
    let mut failed = false;
    for o in &outcomes {
        let completed = o.log.count(fiveg_trace::SpanOutcome::Completed);
        let fails = o.log.count(fiveg_trace::SpanOutcome::Failed);
        println!(
            "  {:<18} {:>4} completed, {:>3} failed, {:>2} anomalies, {:>2} violations, {:>2} dumps, reconciled: {}",
            o.cell.name,
            completed,
            fails,
            o.log.anomalies.len(),
            o.violations,
            o.log.dumps.len(),
            if o.reconciled.is_ok() { "yes" } else { "NO" }
        );
        if let Err(e) = &o.reconciled {
            eprintln!("ho_vivisect: {}: span/counter reconciliation failed: {e}", o.cell.name);
            failed = true;
        }
        for a in &o.log.anomalies {
            eprintln!(
                "ho_vivisect: {}: anomaly ue={} seq={} t={:.2} {}: {}",
                o.cell.name, a.ue, a.seq, a.t, a.kind, a.detail
            );
            failed = true;
        }
        if o.violations > 0 {
            eprintln!("ho_vivisect: {}: {} oracle violations", o.cell.name, o.violations);
            failed = true;
        }
        for (i, d) in o.log.dumps.iter().enumerate() {
            let file = format!("{}_ue{}_{}.jsonl", o.cell.name, d.ue, i);
            if let Err(e) = write_dump(&args.dump_dir, &file, &d.jsonl) {
                eprintln!("ho_vivisect: {e}");
                failed = true;
            }
        }
    }

    let json = report(mode, &outcomes);
    debug_assert!(json.contains(VIVISECT_SCHEMA));
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("ho_vivisect: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("  report -> {}", args.out);

    if args.force_violation {
        if let Err(e) = force_violation(&args.dump_dir) {
            eprintln!("ho_vivisect: forced-violation check failed: {e}");
            failed = true;
        }
    }

    if failed {
        eprintln!("ho_vivisect: FAILED (see above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
