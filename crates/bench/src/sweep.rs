//! Deterministic parallel experiment sweeps.
//!
//! The paper's evaluation is a matrix study — carriers × routes ×
//! architectures × predictors × seeds. This module turns such a matrix into
//! an ordered job list and executes it on a pool of `crossbeam` scoped
//! worker threads, with three guarantees:
//!
//! 1. **Determinism.** Every job runs with a seed derived only from its
//!    coordinates, results are merged in job-index order, and the JSON
//!    report contains sim-time data only — so `--threads 1` and
//!    `--threads N` produce byte-identical reports (wall-clock timings are
//!    an explicitly opt-in section).
//! 2. **Once-per-scenario simulation.** Jobs that share a scenario share
//!    its [`Trace`] through a [`TraceCache`]: the drive is simulated once
//!    and replayed for every predictor.
//! 3. **Machine-readable output.** [`SweepResult::to_json`] emits the
//!    `BENCH_sweep.json` schema documented in `EXPERIMENTS.md`, hand-rolled
//!    over `std` like the telemetry JSONL sink, so report bytes are fully
//!    under our control.

use crate::driver::{self, window_preds_to_episodes};
use crate::features::{gbc_dataset, lstm_sequences};
use crate::report::JsonBuf;
use fiveg_analysis::ClassMetrics;
use fiveg_baselines::{Gbc, GbcConfig, LstmConfig, StackedLstm};
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{FaultConfig, Scenario, ScenarioBuilder, Trace, TraceCache};
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use parking_lot::Mutex;
use prognos::PrognosConfig;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Spec: the scenario matrix
// ---------------------------------------------------------------------------

/// Route family of a sweep scenario. Routes also pin the deployment
/// environment, and with it which bands are present (dense-urban routes
/// see mmWave where the carrier deploys it; freeway legs are low/mid-band).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RouteKind {
    /// Downtown driving loop (urban, low/mid-band).
    CityLoop,
    /// Dense-core driving loop (mmWave present).
    CityLoopDense,
    /// Interstate freeway leg of the given length, km.
    Freeway(f64),
    /// Walking loop of the given duration, minutes (dense urban).
    WalkingLoop(f64),
}

impl RouteKind {
    /// Stable label used in job output ("freeway_6km", "city_loop", ...).
    pub fn label(&self) -> String {
        match self {
            RouteKind::CityLoop => "city_loop".into(),
            RouteKind::CityLoopDense => "city_loop_dense".into(),
            RouteKind::Freeway(km) => format!("freeway_{km}km"),
            RouteKind::WalkingLoop(min) => format!("walking_{min}min"),
        }
    }

    fn builder(&self, carrier: Carrier, arch: Arch, seed: u64) -> ScenarioBuilder {
        match *self {
            RouteKind::CityLoop => ScenarioBuilder::city_loop(carrier, seed).arch(arch),
            RouteKind::CityLoopDense => ScenarioBuilder::city_loop_dense(carrier, seed).arch(arch),
            RouteKind::Freeway(km) => ScenarioBuilder::freeway(carrier, arch, km, seed),
            RouteKind::WalkingLoop(min) => ScenarioBuilder::walking_loop(carrier, min, 1, seed).arch(arch),
        }
    }
}

/// Predictor under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPredictor {
    /// The paper's online system (evaluated over the whole trace).
    Prognos,
    /// Gradient-boosted classifier baseline (60/40 chronological split).
    Gbc,
    /// Stacked-LSTM baseline (60/40 chronological split).
    Lstm,
}

impl SweepPredictor {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            SweepPredictor::Prognos => "prognos",
            SweepPredictor::Gbc => "gbc",
            SweepPredictor::Lstm => "lstm",
        }
    }
}

/// A scenario matrix plus evaluation parameters. [`SweepSpec::jobs`]
/// enumerates the cartesian product into an ordered job list.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (lands in the report).
    pub name: String,
    /// Route axis.
    pub routes: Vec<RouteKind>,
    /// Carrier axis.
    pub carriers: Vec<Carrier>,
    /// Architecture axis.
    pub archs: Vec<Arch>,
    /// Fault-injection axis.
    pub faults: Vec<FaultConfig>,
    /// Scenario-seed axis.
    pub seeds: Vec<u64>,
    /// Predictor axis (replays per generated trace).
    pub predictors: Vec<SweepPredictor>,
    /// Simulated-time cap per scenario, s.
    pub duration_s: f64,
    /// Sampling rate, Hz.
    pub sample_hz: f64,
    /// Tolerance (windows) for the tolerant metrics.
    pub tol_windows: usize,
    /// Training epochs for the LSTM baseline jobs.
    pub lstm_epochs: usize,
}

/// One cell of the scenario sub-matrix (everything except the predictor).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioCell {
    /// Route family.
    pub route: RouteKind,
    /// Carrier under test.
    pub carrier: Carrier,
    /// Service architecture.
    pub arch: Arch,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Scenario seed.
    pub seed: u64,
}

/// One executable unit: a (scenario, predictor) pair.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// Position in the ordered job list (results merge in this order).
    pub index: usize,
    /// Index into the scenario list / trace cache.
    pub scenario_id: usize,
    /// Scenario coordinates.
    pub cell: ScenarioCell,
    /// Predictor to evaluate.
    pub predictor: SweepPredictor,
    /// Per-job RNG seed, derived only from the job's coordinates.
    pub rng_seed: u64,
}

/// SplitMix64 — derives decorrelated per-job seeds from coordinates.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SweepSpec {
    /// The CI-sized sweep: 2 scenarios × 2 predictors, a few seconds of
    /// wall clock. Small enough for the determinism gate to run it twice.
    pub fn smoke() -> SweepSpec {
        SweepSpec {
            name: "smoke".into(),
            routes: vec![RouteKind::Freeway(3.0)],
            carriers: vec![Carrier::OpX],
            archs: vec![Arch::Nsa, Arch::Sa],
            faults: vec![FaultConfig::NONE],
            seeds: vec![11],
            predictors: vec![SweepPredictor::Prognos, SweepPredictor::Gbc],
            duration_s: 150.0,
            sample_hz: 10.0,
            tol_windows: 2,
            lstm_epochs: 6,
        }
    }

    /// The demo matrix: 2 routes × 3 carriers × 2 archs × 2 fault configs,
    /// all three predictors — 24 scenarios, 72 jobs.
    pub fn demo() -> SweepSpec {
        SweepSpec {
            name: "demo".into(),
            routes: vec![RouteKind::Freeway(6.0), RouteKind::CityLoopDense],
            carriers: vec![Carrier::OpX, Carrier::OpY, Carrier::OpZ],
            archs: vec![Arch::Nsa, Arch::Sa],
            faults: vec![FaultConfig::NONE, FaultConfig { mr_loss_prob: 0.02, ho_failure_prob: 0.01 }],
            seeds: vec![1],
            predictors: vec![SweepPredictor::Prognos, SweepPredictor::Gbc, SweepPredictor::Lstm],
            duration_s: 240.0,
            sample_hz: 10.0,
            tol_windows: 2,
            lstm_epochs: 8,
        }
    }

    /// Validates the matrix (non-empty axes, positive rates, legal faults).
    pub fn validate(&self) -> Result<(), String> {
        if self.routes.is_empty()
            || self.carriers.is_empty()
            || self.archs.is_empty()
            || self.faults.is_empty()
            || self.seeds.is_empty()
            || self.predictors.is_empty()
        {
            return Err("every matrix axis needs at least one entry".into());
        }
        if !(self.duration_s > 0.0) || !(self.sample_hz > 0.0) {
            return Err("duration_s and sample_hz must be positive".into());
        }
        for f in &self.faults {
            f.validate()?;
        }
        Ok(())
    }

    /// The scenario sub-matrix in enumeration order (route-major, then
    /// carrier, arch, faults, seed). `scenario_id` is the position here.
    pub fn cells(&self) -> Vec<ScenarioCell> {
        let mut out = Vec::new();
        for &route in &self.routes {
            for &carrier in &self.carriers {
                for &arch in &self.archs {
                    for &faults in &self.faults {
                        for &seed in &self.seeds {
                            out.push(ScenarioCell { route, carrier, arch, faults, seed });
                        }
                    }
                }
            }
        }
        out
    }

    /// Builds the concrete [`Scenario`] for one cell.
    pub fn scenario(&self, cell: &ScenarioCell) -> Scenario {
        cell.route
            .builder(cell.carrier, cell.arch, cell.seed)
            .duration_s(self.duration_s)
            .sample_hz(self.sample_hz)
            .faults(cell.faults)
            .build()
    }

    /// The ordered job list. Predictor is the *outermost* axis so the
    /// first `n_scenarios` jobs touch distinct scenarios — workers fill
    /// the trace cache in parallel instead of serializing on one slot.
    pub fn jobs(&self) -> Vec<SweepJob> {
        let cells = self.cells();
        let mut out = Vec::with_capacity(cells.len() * self.predictors.len());
        for (p_i, &predictor) in self.predictors.iter().enumerate() {
            for (scenario_id, &cell) in cells.iter().enumerate() {
                let rng_seed = splitmix64(cell.seed ^ splitmix64(scenario_id as u64 ^ ((p_i as u64) << 32)));
                out.push(SweepJob { index: out.len(), scenario_id, cell, predictor, rng_seed });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------------

/// Default worker count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Executes `f(0)..f(n-1)` on `threads` crossbeam-scoped workers and
/// returns the results **in index order**, regardless of thread count or
/// scheduling. Workers pull indices from a shared atomic counter, so the
/// assignment of jobs to threads is racy — but because each `f(i)` depends
/// only on `i` and the merge slots results by index, the output is
/// identical to the serial `(0..n).map(f)`.
pub fn run_ordered<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");
    results.into_inner().into_iter().map(|o| o.expect("every job completed")).collect()
}

/// Runs a batch of scenarios on the pool and returns their traces in
/// input order. The shared backbone of the figure benches and datasets.
pub fn parallel_traces(scenarios: &[Scenario], threads: usize) -> Vec<Trace> {
    run_ordered(scenarios.len(), threads, |i| scenarios[i].run())
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

/// Lead-time summary over a job's correctly-anticipated HOs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeadStats {
    /// HOs with a usable lead time.
    pub n: usize,
    /// Mean lead, ms.
    pub mean_ms: f64,
    /// Median lead, ms.
    pub median_ms: f64,
}

impl LeadStats {
    fn from_leads(leads: &[(bool, f64)]) -> LeadStats {
        if leads.is_empty() {
            return LeadStats::default();
        }
        let ms: Vec<f64> = leads.iter().map(|&(_, l)| l * 1000.0).collect();
        LeadStats { n: ms.len(), mean_ms: fiveg_analysis::mean(&ms), median_ms: fiveg_analysis::median(&ms) }
    }
}

/// The deterministic outcome of one job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job (coordinates included).
    pub job: SweepJob,
    /// Deployment environment the route pinned.
    pub env: fiveg_ran::Environment,
    /// Evaluation windows scored.
    pub windows: usize,
    /// Ground-truth HOs in the scenario.
    pub handovers: usize,
    /// Strict window-aligned metrics.
    pub strict: ClassMetrics,
    /// Tolerance-matched metrics (`spec.tol_windows`).
    pub tolerant: ClassMetrics,
    /// Event-matched metrics (2 s lookback, 0.3 s slack).
    pub event: ClassMetrics,
    /// Lead-time stats (Prognos jobs only; empty for offline baselines).
    pub lead: LeadStats,
    /// Deterministic telemetry counters of the replay (predictor-side).
    pub counters: Vec<(String, u64)>,
}

fn run_job(spec: &SweepSpec, job: &SweepJob, scenarios: &[Scenario], cache: &TraceCache) -> JobResult {
    let (trace, _sim_counters) = cache.get_or_run_counted(job.scenario_id, &scenarios[job.scenario_id]);
    let env = scenarios[job.scenario_id].env;
    match job.predictor {
        SweepPredictor::Prognos => run_prognos_job(spec, job, &trace, env),
        SweepPredictor::Gbc => run_gbc_job(spec, job, &trace, env),
        SweepPredictor::Lstm => run_lstm_job(spec, job, &trace, env),
    }
}

fn run_prognos_job(spec: &SweepSpec, job: &SweepJob, trace: &Trace, env: fiveg_ran::Environment) -> JobResult {
    let tele = Telemetry::new(TelemetryConfig::deterministic());
    let (run, _) = driver::run_prognos_instrumented(trace, PrognosConfig::default(), &tele);
    JobResult {
        job: *job,
        env,
        windows: run.windows.len(),
        handovers: trace.handovers.len(),
        strict: run.metrics(),
        tolerant: run.metrics_tolerant(spec.tol_windows),
        event: run.metrics_events(2.0, 0.3),
        lead: LeadStats::from_leads(&run.lead_times),
        counters: tele.counters(),
    }
}

/// Shared scoring for the offline window classifiers: strict, tolerant and
/// event-matched metrics over the held-out 40% of windows.
fn score_windows(
    spec: &SweepSpec,
    job: &SweepJob,
    trace: &Trace,
    env: fiveg_ran::Environment,
    labels: &[usize],
    preds: &[usize],
) -> JobResult {
    let window_s = 1.0;
    let enc = |v: &[usize]| -> Vec<u8> { v.iter().map(|&x| x as u8).collect() };
    let strict = ClassMetrics::from_labels(&enc(labels), &enc(preds), 0u8);
    let series: Vec<_> = labels.iter().zip(preds).map(|(&t, &p)| (driver::to_ho(t), driver::to_ho(p))).collect();
    let tolerant = driver::metrics_tolerant_from(&series, spec.tol_windows);
    let (eps, evs) = window_preds_to_episodes(labels, preds, window_s);
    let event = driver::metrics_events_from(&eps, &evs, 2.0, 0.3, labels.len());
    JobResult {
        job: *job,
        env,
        windows: labels.len(),
        handovers: trace.handovers.len(),
        strict,
        tolerant,
        event,
        lead: LeadStats::default(),
        counters: Vec::new(),
    }
}

fn run_gbc_job(spec: &SweepSpec, job: &SweepJob, trace: &Trace, env: fiveg_ran::Environment) -> JobResult {
    let data = gbc_dataset(&[trace], 1.0);
    let (mut train, mut test) = data.split(0.6);
    if train.is_empty() || test.is_empty() {
        return score_windows(spec, job, trace, env, &[], &[]);
    }
    let norm = train.norm_params();
    train.normalize(&norm);
    test.normalize(&norm);
    let gbc = Gbc::train(&train, &GbcConfig::default());
    let preds: Vec<usize> = test.features.iter().map(|x| gbc.predict(x)).collect();
    score_windows(spec, job, trace, env, &test.labels, &preds)
}

fn run_lstm_job(spec: &SweepSpec, job: &SweepJob, trace: &Trace, env: fiveg_ran::Environment) -> JobResult {
    let (xs, ys) = lstm_sequences(&[trace], 1.0);
    let cut = xs.len() * 6 / 10;
    if cut == 0 || cut == xs.len() {
        return score_windows(spec, job, trace, env, &[], &[]);
    }
    let cfg = LstmConfig { epochs: spec.lstm_epochs, seed: job.rng_seed, ..Default::default() };
    let net = StackedLstm::train(&xs[..cut].to_vec(), &ys[..cut].to_vec(), &cfg);
    let preds: Vec<usize> = xs[cut..].iter().map(|x| net.predict(x)).collect();
    score_windows(spec, job, trace, env, &ys[cut..], &preds)
}

// ---------------------------------------------------------------------------
// The sweep itself
// ---------------------------------------------------------------------------

/// Wall-clock accounting of one sweep execution. Everything here is
/// nondeterministic by nature and therefore excluded from the default
/// report (opt in with `include_timing`).
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time, ms.
    pub total_ms: f64,
    /// Per-job wall time, ms (job-index order). The job that generates a
    /// scenario's trace pays the simulation cost for every sharer.
    pub job_ms: Vec<f64>,
}

/// Per-predictor aggregate over all of a sweep's jobs.
#[derive(Debug, Clone)]
pub struct PredictorRollup {
    /// Predictor label.
    pub predictor: SweepPredictor,
    /// Jobs aggregated.
    pub jobs: usize,
    /// Mean strict F1.
    pub mean_f1: f64,
    /// Mean tolerant F1.
    pub mean_tolerant_f1: f64,
    /// Mean event-matched F1.
    pub mean_event_f1: f64,
    /// Mean lead over jobs that produced one, ms.
    pub mean_lead_ms: f64,
}

/// A completed sweep: per-job results (job-index order) plus roll-ups.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The matrix that was run.
    pub spec: SweepSpec,
    /// Scenario count (trace cache size).
    pub scenarios: usize,
    /// Per-job outcomes in job-index order.
    pub jobs: Vec<JobResult>,
    /// Sim-side telemetry counters rolled up across scenarios (each
    /// scenario counted once, regardless of how many jobs replayed it).
    pub sim_counters: Vec<(String, u64)>,
    /// Predictor-side counters rolled up across jobs.
    pub predictor_counters: Vec<(String, u64)>,
    /// Per-predictor aggregates.
    pub rollups: Vec<PredictorRollup>,
    /// Wall-clock accounting for this execution.
    pub timing: SweepTiming,
}

/// Runs the sweep on `threads` workers. The returned result is identical
/// (modulo [`SweepResult::timing`]) for every `threads >= 1`.
pub fn run(spec: &SweepSpec, threads: usize) -> SweepResult {
    spec.validate().expect("invalid sweep spec");
    let cells = spec.cells();
    let scenarios: Vec<Scenario> = cells.iter().map(|c| spec.scenario(c)).collect();
    let jobs = spec.jobs();
    let cache = TraceCache::new(scenarios.len());

    let t0 = Instant::now();
    let outcomes: Vec<(JobResult, f64)> = run_ordered(jobs.len(), threads, |i| {
        let jt = Instant::now();
        let r = run_job(spec, &jobs[i], &scenarios, &cache);
        (r, jt.elapsed().as_secs_f64() * 1000.0)
    });
    let total_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut results = Vec::with_capacity(outcomes.len());
    let mut job_ms = Vec::with_capacity(outcomes.len());
    for (r, ms) in outcomes {
        results.push(r);
        job_ms.push(ms);
    }

    // scenario-side roll-up: every slot was generated by some job; fold
    // counters in scenario order so the merge is deterministic
    let mut sim_counters: BTreeMap<String, u64> = BTreeMap::new();
    for (id, s) in scenarios.iter().enumerate() {
        for (name, v) in cache.get_or_run_counted(id, s).1 {
            *sim_counters.entry(name).or_default() += v;
        }
    }
    let mut predictor_counters: BTreeMap<String, u64> = BTreeMap::new();
    for r in &results {
        for (name, v) in &r.counters {
            *predictor_counters.entry(name.clone()).or_default() += v;
        }
    }

    let rollups = spec
        .predictors
        .iter()
        .map(|&p| {
            let rs: Vec<&JobResult> = results.iter().filter(|r| r.job.predictor == p).collect();
            let mean_of = |f: &dyn Fn(&JobResult) -> f64| {
                if rs.is_empty() {
                    0.0
                } else {
                    rs.iter().map(|r| f(r)).sum::<f64>() / rs.len() as f64
                }
            };
            let with_lead: Vec<f64> = rs.iter().filter(|r| r.lead.n > 0).map(|r| r.lead.mean_ms).collect();
            PredictorRollup {
                predictor: p,
                jobs: rs.len(),
                mean_f1: mean_of(&|r| r.strict.f1),
                mean_tolerant_f1: mean_of(&|r| r.tolerant.f1),
                mean_event_f1: mean_of(&|r| r.event.f1),
                mean_lead_ms: if with_lead.is_empty() { 0.0 } else { fiveg_analysis::mean(&with_lead) },
            }
        })
        .collect();

    SweepResult {
        spec: spec.clone(),
        scenarios: scenarios.len(),
        jobs: results,
        sim_counters: sim_counters.into_iter().collect(),
        predictor_counters: predictor_counters.into_iter().collect(),
        rollups,
        timing: SweepTiming { threads: threads.max(1), total_ms, job_ms },
    }
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

fn arch_label(a: Arch) -> &'static str {
    match a {
        Arch::Lte => "LTE",
        Arch::Nsa => "NSA",
        Arch::Sa => "SA",
    }
}

fn write_metrics(j: &mut JsonBuf, m: &ClassMetrics) {
    j.open('{');
    j.key("precision");
    j.num(m.precision);
    j.key("recall");
    j.num(m.recall);
    j.key("f1");
    j.num(m.f1);
    j.key("accuracy");
    j.num(m.accuracy);
    j.close('}');
}

fn write_counters(j: &mut JsonBuf, counters: &[(String, u64)]) {
    j.open('{');
    for (name, v) in counters {
        j.key(name);
        j.uint(*v);
    }
    j.close('}');
}

impl SweepResult {
    /// Serializes the report. With `include_timing` the wall-clock section
    /// is appended; without it the bytes depend only on the spec — this is
    /// the form the CI determinism gate diffs across thread counts.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut j = JsonBuf::new();
        j.open('{');
        j.key("schema");
        j.str_val("fiveg-sweep/v1");
        j.key("name");
        j.str_val(&self.spec.name);

        j.key("matrix");
        j.open('{');
        j.key("routes");
        j.open('[');
        for r in &self.spec.routes {
            j.str_val(&r.label());
        }
        j.close(']');
        j.key("carriers");
        j.open('[');
        for c in &self.spec.carriers {
            j.str_val(&format!("{c:?}"));
        }
        j.close(']');
        j.key("archs");
        j.open('[');
        for a in &self.spec.archs {
            j.str_val(arch_label(*a));
        }
        j.close(']');
        j.key("faults");
        j.open('[');
        for f in &self.spec.faults {
            j.open('{');
            j.key("mr_loss_prob");
            j.num(f.mr_loss_prob);
            j.key("ho_failure_prob");
            j.num(f.ho_failure_prob);
            j.close('}');
        }
        j.close(']');
        j.key("seeds");
        j.open('[');
        for s in &self.spec.seeds {
            j.uint(*s);
        }
        j.close(']');
        j.key("predictors");
        j.open('[');
        for p in &self.spec.predictors {
            j.str_val(p.label());
        }
        j.close(']');
        j.key("duration_s");
        j.num(self.spec.duration_s);
        j.key("sample_hz");
        j.num(self.spec.sample_hz);
        j.key("tol_windows");
        j.uint(self.spec.tol_windows as u64);
        j.key("lstm_epochs");
        j.uint(self.spec.lstm_epochs as u64);
        j.close('}');

        j.key("scenarios");
        j.uint(self.scenarios as u64);

        j.key("jobs");
        j.open('[');
        for r in &self.jobs {
            j.open('{');
            j.key("job");
            j.uint(r.job.index as u64);
            j.key("scenario");
            j.uint(r.job.scenario_id as u64);
            j.key("route");
            j.str_val(&r.job.cell.route.label());
            j.key("carrier");
            j.str_val(&format!("{:?}", r.job.cell.carrier));
            j.key("arch");
            j.str_val(arch_label(r.job.cell.arch));
            j.key("env");
            j.str_val(&format!("{:?}", r.env));
            j.key("mr_loss_prob");
            j.num(r.job.cell.faults.mr_loss_prob);
            j.key("ho_failure_prob");
            j.num(r.job.cell.faults.ho_failure_prob);
            j.key("seed");
            j.uint(r.job.cell.seed);
            j.key("rng_seed");
            j.uint(r.job.rng_seed);
            j.key("predictor");
            j.str_val(r.job.predictor.label());
            j.key("windows");
            j.uint(r.windows as u64);
            j.key("handovers");
            j.uint(r.handovers as u64);
            j.key("strict");
            write_metrics(&mut j, &r.strict);
            j.key("tolerant");
            write_metrics(&mut j, &r.tolerant);
            j.key("event");
            write_metrics(&mut j, &r.event);
            j.key("lead_ms");
            j.open('{');
            j.key("n");
            j.uint(r.lead.n as u64);
            j.key("mean");
            j.num(r.lead.mean_ms);
            j.key("median");
            j.num(r.lead.median_ms);
            j.close('}');
            j.key("counters");
            write_counters(&mut j, &r.counters);
            j.close('}');
        }
        j.close(']');

        j.key("rollup");
        j.open('{');
        j.key("per_predictor");
        j.open('[');
        for r in &self.rollups {
            j.open('{');
            j.key("predictor");
            j.str_val(r.predictor.label());
            j.key("jobs");
            j.uint(r.jobs as u64);
            j.key("mean_f1");
            j.num(r.mean_f1);
            j.key("mean_tolerant_f1");
            j.num(r.mean_tolerant_f1);
            j.key("mean_event_f1");
            j.num(r.mean_event_f1);
            j.key("mean_lead_ms");
            j.num(r.mean_lead_ms);
            j.close('}');
        }
        j.close(']');
        j.key("sim_counters");
        write_counters(&mut j, &self.sim_counters);
        j.key("predictor_counters");
        write_counters(&mut j, &self.predictor_counters);
        j.close('}');

        if include_timing {
            j.key("timing");
            j.open('{');
            j.key("threads");
            j.uint(self.timing.threads as u64);
            j.key("total_ms");
            j.num(self.timing.total_ms);
            j.key("job_ms");
            j.open('[');
            for &ms in &self.timing.job_ms {
                j.num(ms);
            }
            j.close(']');
            j.close('}');
        }

        j.close('}');
        j.finish_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // pinned values: job seeds must never drift between releases
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn spec_enumeration_is_cartesian_and_ordered() {
        let spec = SweepSpec { seeds: vec![1, 2], ..SweepSpec::smoke() };
        let cells = spec.cells();
        assert_eq!(cells.len(), 1 * 1 * 2 * 1 * 2);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), cells.len() * spec.predictors.len());
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
        // predictor-major: first block covers every scenario once
        assert!(jobs[..cells.len()].iter().all(|job| job.predictor == spec.predictors[0]));
        let mut ids: Vec<usize> = jobs[..cells.len()].iter().map(|j| j.scenario_id).collect();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn validate_rejects_empty_axes_and_bad_faults() {
        let mut spec = SweepSpec::smoke();
        spec.predictors.clear();
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::smoke();
        spec.faults = vec![FaultConfig { mr_loss_prob: 1.5, ho_failure_prob: 0.0 }];
        assert!(spec.validate().is_err());
        assert!(SweepSpec::smoke().validate().is_ok());
        assert!(SweepSpec::demo().validate().is_ok());
    }

    #[test]
    fn run_ordered_matches_serial_map() {
        for threads in [1usize, 2, 3, 8] {
            let got = run_ordered(25, threads, |i| i * i + 1);
            let want: Vec<usize> = (0..25).map(|i| i * i + 1).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(run_ordered(0, 4, |i| i).is_empty());
    }

    // Journal ordering must survive the ordered merge: each job records its
    // own event journal, and concatenating the per-job journals in index
    // order yields the same bytes on any worker count — with every entry's
    // sequence number strictly increasing within its job.
    #[test]
    fn job_journals_survive_the_ordered_merge() {
        let journals = |threads: usize| -> String {
            run_ordered(4, threads, |i| {
                let tele = Telemetry::new(TelemetryConfig::deterministic());
                let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 3.0, 100 + i as u64)
                    .duration_s(60.0)
                    .sample_hz(5.0)
                    .build();
                s.run_instrumented(&tele);
                let entries = tele.events();
                assert!(!entries.is_empty(), "job {i} journaled nothing");
                for w in entries.windows(2) {
                    assert!(w[0].seq < w[1].seq, "job {i}: seq {} !< {}", w[0].seq, w[1].seq);
                }
                tele.journal_jsonl()
            })
            .concat()
        };
        let serial = journals(1);
        assert_eq!(serial, journals(4), "merged journals must not depend on thread count");
        assert_eq!(serial, journals(3), "merged journals must not depend on thread count");
    }

    #[test]
    fn smoke_sweep_is_thread_count_invariant() {
        let spec = SweepSpec { duration_s: 40.0, sample_hz: 5.0, ..SweepSpec::smoke() };
        let a = run(&spec, 1).to_json(false);
        let b = run(&spec, 4).to_json(false);
        assert_eq!(a, b, "sweep report must not depend on thread count");
        assert!(a.contains("\"schema\":\"fiveg-sweep/v1\""));
    }

    proptest::proptest! {
        // The merge invariant behind the whole harness: for any job list
        // and any worker count, pool output equals the serial map. Jobs
        // burn a tiny data-dependent amount of work so scheduling actually
        // interleaves differently across runs.
        #[test]
        fn run_ordered_is_worker_count_independent(
            items in proptest::collection::vec(0u64..1000, 0..64),
            threads in 1usize..9,
        ) {
            let f = |i: usize| {
                let mut acc = items[i];
                for _ in 0..(items[i] % 17) {
                    acc = splitmix64(acc);
                }
                (i, acc)
            };
            let serial: Vec<(usize, u64)> = (0..items.len()).map(f).collect();
            let pooled = run_ordered(items.len(), threads, f);
            proptest::prop_assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn timing_section_is_opt_in() {
        let spec = SweepSpec {
            routes: vec![RouteKind::Freeway(2.0)],
            archs: vec![Arch::Nsa],
            predictors: vec![SweepPredictor::Gbc],
            duration_s: 30.0,
            sample_hz: 5.0,
            ..SweepSpec::smoke()
        };
        let r = run(&spec, 2);
        assert!(!r.to_json(false).contains("\"timing\""));
        assert!(r.to_json(true).contains("\"timing\""));
        assert_eq!(r.timing.job_ms.len(), r.jobs.len());
        assert_eq!(r.scenarios, 1);
    }
}
