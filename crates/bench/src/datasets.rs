//! The paper's datasets, reproduced as scenarios (§7.3).
//!
//! * **D1** — "7× traces representing a 35-min walking loop of a tourist
//!   area ... only has 5G mmWave and LTE Mid-Band coverage" → OpX dense
//!   urban walking loops.
//! * **D2** — "collected by walking a 25 mins loop 10× in the city's
//!   downtown area ... has 5G Low-Band coverage as well" → same carrier,
//!   different city (different seed base), dense urban.
//!
//! Both are "for OpX logged @ 20 Hz".

use crate::sweep::{default_threads, parallel_traces};
use fiveg_ran::Carrier;
use fiveg_sim::{Scenario, ScenarioBuilder, Trace};

/// Builds the D1 dataset: 7 laps of a 35-minute walking loop.
///
/// `laps` defaults to the paper's 7; smaller values are used by quick test
/// runs. Each lap is its own trace (the paper treats them as 7 traces),
/// seeded independently, so they simulate in parallel.
pub fn d1_traces(laps: usize) -> Vec<Trace> {
    let scenarios: Vec<Scenario> = (0..laps)
        .map(|i| ScenarioBuilder::walking_loop(Carrier::OpX, 35.0, 1, 0xD1_0000 + i as u64).sample_hz(20.0).build())
        .collect();
    parallel_traces(&scenarios, default_threads())
}

/// Builds the D2 dataset: 10 laps of a 25-minute downtown loop.
pub fn d2_traces(laps: usize) -> Vec<Trace> {
    let scenarios: Vec<Scenario> = (0..laps)
        .map(|i| ScenarioBuilder::walking_loop(Carrier::OpX, 25.0, 1, 0xD2_0000 + i as u64).sample_hz(20.0).build())
        .collect();
    parallel_traces(&scenarios, default_threads())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_lap_shape() {
        let t = &d1_traces(1)[0];
        // ~35 minutes at 20 Hz
        assert!((t.meta.duration_s / 60.0 - 35.0).abs() < 3.0, "{}", t.meta.duration_s / 60.0);
        assert_eq!(t.meta.sample_hz, 20.0);
        assert!(!t.handovers.is_empty());
    }

    #[test]
    fn d2_differs_from_d1() {
        let a = &d1_traces(1)[0];
        let b = &d2_traces(1)[0];
        assert_ne!(a.meta.seed, b.meta.seed);
        assert!(b.meta.duration_s < a.meta.duration_s);
    }
}
