//! Handover vivisection harness: spans + oracle across a scenario matrix.
//!
//! This is the aggregation layer above `fiveg-trace`. Each matrix cell runs
//! a pinned fleet scenario with a [`VivisectObserver`] per UE — a span
//! assembler and a shadow oracle riding the same hook stream, the oracle's
//! first violation snapshotting the assembler's flight recorder — then
//! folds the per-UE [`SpanLog`]s in UE order and **reconciles** the span
//! counts against the engine's own telemetry counters: completed spans per
//! type must equal the `ho.<TYPE>` commit counters exactly, their total
//! must equal `sum_prefix("ho.")` and `sim.handovers`, and failed spans
//! must equal `faults.ho_failure`. A mismatch means the span layer dropped
//! or fabricated a handover and [`reconcile`] fails loudly — the
//! `ho_vivisect` binary exits nonzero on it.
//!
//! The report (`BENCH_vivisect.json`, schema `fiveg-vivisect/v1`) contains
//! only sim-time quantities — per-phase duration CDFs, per-type /
//! per-cause / per-cell-pair breakdowns, interruption totals — and no
//! thread count, wall clock or host detail, so it is byte-identical at any
//! `--threads` and across machines. The `vivisect-smoke` CI step diffs two
//! runs to lock that in.

use crate::report::JsonBuf;
use crate::sweep::run_ordered;
use fiveg_oracle::Oracle;
use fiveg_ran::{Arch, Carrier, HandoverRecord, HoPhase, HoType, RadioTech};
use fiveg_rrc::ReconfigAction;
use fiveg_sim::fleet::run_fleet_observed;
use fiveg_sim::{
    AttachReason, FaultConfig, FleetSpec, ScenarioBuilder, ServingCells, SimHook, Telemetry, TelemetryConfig, TickView,
};
use fiveg_telemetry::{CounterSnapshot, Histogram};
use fiveg_trace::{SpanAssembler, SpanLog, SpanOutcome};
use std::collections::BTreeMap;

/// Schema tag of the vivisection report.
pub const VIVISECT_SCHEMA: &str = "fiveg-vivisect/v1";

/// Span assembler + shadow oracle on one hook stream. The oracle's *first*
/// violation for this UE snapshots the assembler's flight recorder with
/// reason `oracle_violation`; subsequent violations only count.
pub struct VivisectObserver {
    oracle: Oracle,
    asm: SpanAssembler,
    seen: u64,
}

impl VivisectObserver {
    /// Observer for UE `ue` under `arch`; `seed` tags the oracle's
    /// violation reports.
    pub fn new(ue: u32, arch: Arch, seed: u64) -> VivisectObserver {
        VivisectObserver { oracle: Oracle::new(arch, seed), asm: SpanAssembler::new(ue, arch), seen: 0 }
    }

    /// The assembled span log and the oracle's violation count.
    pub fn finish(self) -> (SpanLog, u64) {
        let v = self.oracle.total_violations();
        (self.asm.finish(), v)
    }

    fn check(&mut self, t: f64) {
        let v = self.oracle.total_violations();
        if v > self.seen {
            if self.seen == 0 {
                self.asm.force_dump("oracle_violation", t);
            }
            self.seen = v;
        }
    }
}

impl SimHook for VivisectObserver {
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {
        self.oracle.on_attach(t, reason, serving);
        self.asm.on_attach(t, reason, serving);
        self.check(t);
    }

    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {
        self.oracle.on_decision(t, action);
        self.asm.on_decision(t, action);
        self.check(t);
    }

    fn on_ho_command(&mut self, t: f64) {
        self.oracle.on_ho_command(t);
        self.asm.on_ho_command(t);
        self.check(t);
    }

    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.oracle.on_ho_complete(t, rec, serving);
        self.asm.on_ho_complete(t, rec, serving);
        self.check(t);
    }

    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.oracle.on_ho_failure(t, rec, serving);
        self.asm.on_ho_failure(t, rec, serving);
        self.check(t);
    }

    fn on_sleep(&mut self, from_tick: u64, skipped: u64) {
        self.oracle.on_sleep(from_tick, skipped);
        self.asm.on_sleep(from_tick, skipped);
    }

    fn on_tick(&mut self, view: &TickView) {
        self.oracle.on_tick(view);
        self.asm.on_tick(view);
        self.check(view.t);
    }

    fn on_run_end(&mut self, t: f64, serving: ServingCells, phase: HoPhase, queued: usize) {
        self.oracle.on_run_end(t, serving, phase, queued);
        self.asm.on_run_end(t, serving, phase, queued);
        self.check(t);
    }
}

/// One cell of the vivisection matrix: a pinned fleet scenario.
#[derive(Debug, Clone)]
pub struct VivisectCell {
    /// Stable cell name, the report key.
    pub name: &'static str,
    /// Carrier under test.
    pub carrier: Carrier,
    /// Architecture.
    pub arch: Arch,
    /// Fleet size (1 = the single-UE hot path through the fleet engine).
    pub n_ues: u32,
    /// Route length, km.
    pub km: f64,
    /// Per-UE duration cap, s.
    pub duration_s: f64,
    /// Scenario seed.
    pub seed: u64,
    /// Fault injection for this cell.
    pub faults: FaultConfig,
}

/// The pinned matrix. Smoke keeps three cells (clean NSA fleet, clean SA
/// fleet, heavily faulted NSA single-UE); full mode widens the fleet, adds
/// the LTE baseline and a faulted fleet. Cell parameters are identical in
/// both modes so their rows are comparable across commits.
pub fn matrix(smoke: bool) -> Vec<VivisectCell> {
    let mut cells = vec![
        VivisectCell {
            name: "nsa_fleet_clean",
            carrier: Carrier::OpY,
            arch: Arch::Nsa,
            n_ues: 3,
            km: 4.0,
            duration_s: 60.0,
            seed: 301,
            faults: FaultConfig::NONE,
        },
        VivisectCell {
            name: "sa_fleet_clean",
            carrier: Carrier::OpY,
            arch: Arch::Sa,
            n_ues: 3,
            km: 4.0,
            duration_s: 60.0,
            seed: 302,
            faults: FaultConfig::NONE,
        },
        VivisectCell {
            name: "nsa_faulted",
            carrier: Carrier::OpY,
            arch: Arch::Nsa,
            n_ues: 1,
            km: 6.0,
            duration_s: 120.0,
            seed: 303,
            faults: FaultConfig { mr_loss_prob: 0.05, ho_failure_prob: 0.3 },
        },
    ];
    if !smoke {
        cells.push(VivisectCell {
            name: "lte_single_clean",
            carrier: Carrier::OpY,
            arch: Arch::Lte,
            n_ues: 1,
            km: 6.0,
            duration_s: 120.0,
            seed: 304,
            faults: FaultConfig::NONE,
        });
        cells.push(VivisectCell {
            name: "nsa_fleet_faulted",
            carrier: Carrier::OpY,
            arch: Arch::Nsa,
            n_ues: 10,
            km: 4.0,
            duration_s: 120.0,
            seed: 305,
            faults: FaultConfig { mr_loss_prob: 0.02, ho_failure_prob: 0.15 },
        });
    }
    cells
}

/// The result of one matrix cell.
pub struct CellOutcome {
    /// Which cell ran.
    pub cell: VivisectCell,
    /// UE-order-merged span log.
    pub log: SpanLog,
    /// The cell's telemetry counters (per-UE handles absorbed in UE order).
    pub counters: CounterSnapshot,
    /// Total oracle violations across the cell's UEs.
    pub violations: u64,
    /// Span-vs-counter reconciliation verdict.
    pub reconciled: Result<(), String>,
}

impl CellOutcome {
    /// True when the cell is fully healthy: spans reconcile, no causality
    /// anomalies, no oracle violations.
    pub fn healthy(&self) -> bool {
        self.reconciled.is_ok() && self.log.anomalies.is_empty() && self.violations == 0
    }
}

/// Runs one cell: fleet with a [`VivisectObserver`] per UE, logs merged in
/// UE order, counters snapshotted, spans reconciled. The inner fleet always
/// runs single-threaded — matrix parallelism is across cells
/// ([`run_matrix`]) — so nested thread pools never fight for cores.
pub fn run_cell(cell: &VivisectCell) -> CellOutcome {
    let base = ScenarioBuilder::freeway(cell.carrier, cell.arch, cell.km, cell.seed)
        .duration_s(cell.duration_s)
        .sample_hz(10.0)
        .faults(cell.faults)
        .build();
    let spec = FleetSpec::new(base, cell.n_ues).stagger_s(10.0).speed_jitter(0.1);
    let tele = Telemetry::new(TelemetryConfig::deterministic());
    let (arch, seed) = (cell.arch, cell.seed);
    let (_ft, observers) = run_fleet_observed(&spec, 1, &tele, |ue| VivisectObserver::new(ue, arch, seed));

    let mut log = SpanLog::default();
    let mut violations = 0;
    for o in observers {
        let (l, v) = o.finish();
        violations += v;
        log.absorb(l);
    }
    let counters = tele.counter_snapshot();
    let reconciled = reconcile(&log, &counters);
    CellOutcome { cell: cell.clone(), log, counters, violations, reconciled }
}

/// Runs the whole matrix, cells fanned out over `threads` workers, results
/// in matrix order regardless of completion order.
pub fn run_matrix(cells: &[VivisectCell], threads: usize) -> Vec<CellOutcome> {
    run_ordered(cells.len(), threads, |i| run_cell(&cells[i]))
}

/// Cross-checks the span log against the engine's telemetry counters.
///
/// The two sides never share code: counters are incremented by the engine
/// at commit, spans are assembled from the hook stream. Exact agreement —
/// per type, in total, and on failures — is therefore real evidence that
/// the span layer neither drops nor fabricates handovers.
pub fn reconcile(log: &SpanLog, counters: &CounterSnapshot) -> Result<(), String> {
    let mut total = 0u64;
    for (h, n) in log.completed_by_type() {
        let key = format!("ho.{}", h.acronym());
        let c = counters.get(&key);
        if c != n {
            return Err(format!("{key}: {n} completed spans vs counter {c}"));
        }
        total += n;
    }
    let by_prefix = counters.sum_prefix("ho.");
    if by_prefix != total {
        return Err(format!("ho.* counters sum to {by_prefix}, spans completed {total}"));
    }
    let commits = counters.get("sim.handovers");
    if commits != total {
        return Err(format!("sim.handovers is {commits}, spans completed {total}"));
    }
    let failed = log.count(SpanOutcome::Failed);
    let fail_ctr = counters.get("faults.ho_failure");
    if fail_ctr != failed {
        return Err(format!("faults.ho_failure is {fail_ctr}, failed spans {failed}"));
    }
    Ok(())
}

fn leg_str(leg: Option<RadioTech>) -> &'static str {
    match leg {
        Some(RadioTech::Lte) => "lte",
        Some(RadioTech::Nr) => "nr",
        None => "?",
    }
}

/// Writes a phase-duration CDF object from `h` under the current JSON
/// position: count plus min/p10/p25/p50/p75/p90/p95/p99/max/mean, all ms.
fn write_cdf(j: &mut JsonBuf, h: &Histogram, sum_ms: f64) {
    j.open('{');
    j.key("count");
    j.uint(h.count());
    j.key("min_ms");
    j.num(h.percentile(0.0));
    for (k, q) in
        [("p10", 0.10), ("p25", 0.25), ("p50", 0.50), ("p75", 0.75), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99)]
    {
        j.key(&format!("{k}_ms"));
        j.num(h.percentile(q));
    }
    j.key("max_ms");
    j.num(h.percentile(1.0));
    j.key("mean_ms");
    j.num(if h.count() == 0 { 0.0 } else { sum_ms / h.count() as f64 });
    j.close('}');
}

/// Builds the `fiveg-vivisect/v1` report. Deliberately **no** `threads`
/// field and no wall-clock metric: the report must be byte-identical at any
/// thread count.
pub fn report(mode: &str, outcomes: &[CellOutcome]) -> String {
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val(VIVISECT_SCHEMA);
    j.key("mode");
    j.str_val(mode);
    j.key("cells");
    j.open('[');
    for o in outcomes {
        write_cell(&mut j, o);
    }
    j.close(']');
    j.key("totals");
    j.open('{');
    for (key, f) in [
        ("spans", SpanOutcome::Completed),
        ("failed", SpanOutcome::Failed),
        ("orphaned", SpanOutcome::Orphaned),
        ("abandoned", SpanOutcome::Abandoned),
    ] {
        let n: u64 = outcomes.iter().map(|o| o.log.count(f)).sum();
        j.key(if key == "spans" { "completed" } else { key });
        j.uint(n);
    }
    j.key("anomalies");
    j.uint(outcomes.iter().map(|o| o.log.anomalies.len() as u64).sum());
    j.key("violations");
    j.uint(outcomes.iter().map(|o| o.violations).sum());
    j.key("dumps");
    j.uint(outcomes.iter().map(|o| o.log.dumps.len() as u64).sum());
    j.key("reconciled");
    j.bool_val(outcomes.iter().all(|o| o.reconciled.is_ok()));
    j.close('}');
    j.close('}');
    j.finish_line()
}

fn write_cell(j: &mut JsonBuf, o: &CellOutcome) {
    let c = &o.cell;
    j.open('{');
    j.key("name");
    j.str_val(c.name);
    j.key("carrier");
    j.str_val(&format!("{:?}", c.carrier));
    j.key("arch");
    j.str_val(c.arch.label());
    j.key("n_ues");
    j.uint(u64::from(c.n_ues));
    j.key("duration_s");
    j.num(c.duration_s);
    j.key("faulted");
    j.bool_val(c.faults.active());
    j.key("seed");
    j.uint(c.seed);

    for (key, outcome) in [
        ("completed", SpanOutcome::Completed),
        ("failed", SpanOutcome::Failed),
        ("orphaned", SpanOutcome::Orphaned),
        ("abandoned", SpanOutcome::Abandoned),
    ] {
        j.key(key);
        j.uint(o.log.count(outcome));
    }
    j.key("anomalies");
    j.uint(o.log.anomalies.len() as u64);
    j.key("violations");
    j.uint(o.violations);
    j.key("dumps");
    j.uint(o.log.dumps.len() as u64);
    j.key("reconciled");
    j.bool_val(o.reconciled.is_ok());
    if let Err(e) = &o.reconciled {
        j.key("reconcile_error");
        j.str_val(e);
    }

    // --- phase CDFs over completed spans (sim-time, ms)
    let mut trigger = Histogram::new();
    let mut prep = Histogram::new();
    let mut exec = Histogram::new();
    let mut completion = Histogram::new();
    let mut total = Histogram::new();
    let (mut sums, mut int_lte, mut int_nr) = ([0.0f64; 5], 0.0f64, 0.0f64);
    for s in o.log.spans.iter() {
        match s.outcome {
            SpanOutcome::Completed => {}
            SpanOutcome::Failed => {
                // a failed execution still halts the data plane until the
                // rollback lands — charge its window too
                let (l, n) = s.interruption_ms();
                int_lte += l;
                int_nr += n;
                continue;
            }
            _ => continue,
        }
        trigger.observe(s.trigger_ms());
        sums[0] += s.trigger_ms();
        if let Some(v) = s.prep_ms() {
            prep.observe(v);
            sums[1] += v;
        }
        if let Some(v) = s.exec_ms() {
            exec.observe(v);
            sums[2] += v;
        }
        if let Some(v) = s.completion_ms() {
            completion.observe(v);
            sums[3] += v;
        }
        if let Some(v) = s.total_ms() {
            total.observe(v);
            sums[4] += v;
        }
        let (l, n) = s.interruption_ms();
        int_lte += l;
        int_nr += n;
    }
    j.key("phases");
    j.open('{');
    for (key, h, sum) in [
        ("trigger", &trigger, sums[0]),
        ("preparation", &prep, sums[1]),
        ("execution", &exec, sums[2]),
        ("completion", &completion, sums[3]),
        ("total", &total, sums[4]),
    ] {
        j.key(key);
        write_cdf(j, h, sum);
    }
    j.close('}');

    j.key("interruption");
    j.open('{');
    j.key("lte_ms_total");
    j.num(int_lte);
    j.key("nr_ms_total");
    j.num(int_nr);
    j.close('}');

    // --- per-type rows (completed spans), HoType::ALL order, non-zero only
    j.key("by_type");
    j.open('[');
    for h in HoType::ALL {
        let mut hist = Histogram::new();
        let mut sum = 0.0;
        for s in o.log.spans.iter().filter(|s| s.outcome == SpanOutcome::Completed && s.ho_type == Some(h)) {
            if let Some(v) = s.total_ms() {
                hist.observe(v);
                sum += v;
            }
        }
        if hist.count() == 0 {
            continue;
        }
        j.open('{');
        j.key("type");
        j.str_val(h.acronym());
        j.key("durations");
        write_cdf(j, &hist, sum);
        j.close('}');
    }
    j.close(']');

    // --- per-cause counts (all spans: a cause that only ever fails or
    // orphans still shows up)
    let mut by_cause: BTreeMap<&str, u64> = BTreeMap::new();
    for s in o.log.spans.iter() {
        *by_cause.entry(s.cause).or_insert(0) += 1;
    }
    j.key("by_cause");
    j.open('[');
    for (cause, n) in by_cause {
        j.open('{');
        j.key("cause");
        j.str_val(cause);
        j.key("count");
        j.uint(n);
        j.close('}');
    }
    j.close(']');

    // --- per-cell-pair counts (completed spans; source/target are the
    // deployment's dense cell ids, `null` encoded as -1)
    let mut pairs: BTreeMap<(&str, i64, i64), u64> = BTreeMap::new();
    for s in o.log.spans.iter().filter(|s| s.outcome == SpanOutcome::Completed) {
        let key = (
            leg_str(s.leg),
            s.source.map(|c| i64::from(c.0)).unwrap_or(-1),
            s.target.map(|c| i64::from(c.0)).unwrap_or(-1),
        );
        *pairs.entry(key).or_insert(0) += 1;
    }
    j.key("by_cell_pair");
    j.open('[');
    for ((leg, src, dst), n) in pairs {
        j.open('{');
        j.key("leg");
        j.str_val(leg);
        j.key("source");
        j.num(src as f64);
        j.key("target");
        j.num(dst as f64);
        j.key("count");
        j.uint(n);
        j.close('}');
    }
    j.close(']');
    j.close('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_is_healthy_and_reconciles() {
        let cells = matrix(true);
        assert_eq!(cells.len(), 3);
        let outcomes = run_matrix(&cells, 1);
        for o in &outcomes {
            assert!(o.reconciled.is_ok(), "{}: {:?}", o.cell.name, o.reconciled);
            assert!(o.log.anomalies.is_empty(), "{}: {:?}", o.cell.name, o.log.anomalies);
            assert_eq!(o.violations, 0, "{}", o.cell.name);
            assert!(o.healthy());
        }
        // the matrix must actually exercise handovers, and the faulted cell
        // must produce failed spans — otherwise the reconciliation of
        // `faults.ho_failure` is vacuous
        let completed: u64 = outcomes.iter().map(|o| o.log.count(SpanOutcome::Completed)).sum();
        assert!(completed > 0, "matrix produced no handovers");
        let failed: u64 = outcomes.iter().map(|o| o.log.count(SpanOutcome::Failed)).sum();
        assert!(failed > 0, "faulted cell produced no failed spans");
    }

    #[test]
    fn report_is_thread_count_independent() {
        let cells = matrix(true);
        let r1 = report("smoke", &run_matrix(&cells, 1));
        let r2 = report("smoke", &run_matrix(&cells, 2));
        assert_eq!(r1, r2);
        assert!(r1.contains("\"schema\":\"fiveg-vivisect/v1\""));
        assert!(!r1.contains("\"threads\""));
    }

    #[test]
    fn reconcile_rejects_fabricated_and_dropped_spans() {
        let cells = matrix(true);
        let o = run_cell(&cells[0]);
        assert!(o.reconciled.is_ok());
        // dropping a completed span breaks the per-type equality
        let mut dropped = o.log.clone();
        let idx = dropped.spans.iter().position(|s| s.outcome == SpanOutcome::Completed).expect("has completed span");
        dropped.spans.remove(idx);
        assert!(reconcile(&dropped, &o.counters).is_err());
        // fabricating one breaks it the other way
        let mut fabricated = o.log.clone();
        let mut extra = fabricated.spans[0].clone();
        extra.seq += 1000;
        extra.outcome = SpanOutcome::Completed;
        fabricated.spans.push(extra);
        assert!(reconcile(&fabricated, &o.counters).is_err());
    }
}
