//! Perf-gate support: compare a fresh benchmark report against a committed
//! baseline (`BENCH_tick.json`, `BENCH_fleet.json`) and fail on regression.
//!
//! The reports are written by [`crate::report::JsonBuf`] — single-line JSON
//! with a fixed key order and no whitespace — so the extractor here is a
//! deliberately small string scanner instead of a JSON parser: it finds the
//! entry object by an anchor pair (`"path":"snapshot"`, `"n_ues":100,`) and
//! reads one numeric metric out of that same object. This keeps the gate
//! dependency-free, which matters twice: the bench crate stays lean, and the
//! offline `scripts/localcheck.sh` run (where `serde_json` is a
//! type-check-only stub) can execute the gate for real.
//!
//! Tolerance semantics follow the CI policy: a run **fails** only when the
//! current throughput drops below `baseline × (1 − tol)`. Improvements past
//! `baseline × (1 + tol)` are reported as a hint to refresh the committed
//! baseline, but do not fail the job — a faster machine must never break CI.

/// One gated comparison: a labelled throughput number against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// What is being compared, e.g. `snapshot ticks_per_sec` or
    /// `fleet[100] ue_ticks_per_sec`.
    pub what: String,
    /// The committed value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
}

impl Gate {
    /// `current / baseline` — above 1.0 means faster than the baseline.
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }

    /// True when the current value regressed past the tolerance band.
    pub fn regressed(&self, tol: f64) -> bool {
        self.current < self.baseline * (1.0 - tol)
    }

    /// True when the current value beats the baseline by more than the
    /// tolerance — time to re-commit the baseline file.
    pub fn improved(&self, tol: f64) -> bool {
        self.current > self.baseline * (1.0 + tol)
    }

    /// One human-readable verdict line for the job log.
    pub fn verdict(&self, tol: f64) -> String {
        let state = if self.regressed(tol) {
            "FAIL (regression)"
        } else if self.improved(tol) {
            "ok (faster; consider refreshing the baseline)"
        } else {
            "ok"
        };
        format!(
            "  {:<34} baseline {:>12.1}  current {:>12.1}  ratio {:>5.2}  {}",
            self.what,
            self.baseline,
            self.current,
            self.ratio(),
            state
        )
    }
}

/// Extracts the numeric value of `metric` from the entry object of `json`
/// identified by `anchor` (a literal substring such as `"path":"snapshot"`).
/// The metric must appear after the anchor and before the object's closing
/// brace — true for every report this crate writes, where the identifying
/// key is emitted first. Returns `None` when either the anchor or the
/// metric is absent, so callers can treat a missing entry as "not gated".
pub fn metric_after(json: &str, anchor: &str, metric: &str) -> Option<f64> {
    let rest = &json[json.find(anchor)? + anchor.len()..];
    let scope = &rest[..rest.find('}').unwrap_or(rest.len())];
    let key = format!("\"{metric}\":");
    let tail = &scope[scope.find(&key)? + key.len()..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// The anchor for a fleet-report entry of the given size. The trailing comma
/// is part of the anchor on purpose: without it `"n_ues":100` would also
/// match inside `"n_ues":1000`.
pub fn fleet_anchor(n_ues: u32) -> String {
    format!("\"n_ues\":{n_ues},")
}

/// Evaluates a set of gates against a tolerance, printing one verdict line
/// each, and returns whether every gate passed. An empty set passes — a
/// baseline that predates a metric must not fail the job that introduces it.
pub fn evaluate(gates: &[Gate], tol: f64) -> bool {
    let mut ok = true;
    for g in gates {
        println!("{}", g.verdict(tol));
        ok &= !g.regressed(tol);
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: &str = concat!(
        r#"{"schema":"fiveg-tick/v1","mode":"smoke","iters":3,"#,
        r#""paths":[{"path":"reference","ticks":1662,"elapsed_s":0.02,"ticks_per_sec":71642.0,"allocs_per_tick":17.0},"#,
        r#"{"path":"snapshot","ticks":1662,"elapsed_s":0.02,"ticks_per_sec":106960.0,"allocs_per_tick":3.0}],"#,
        r#""speedup":1.49}"#
    );

    const FLEET: &str = concat!(
        r#"{"schema":"fiveg-fleet/v1","sizes":[{"n_ues":1,"ue_ticks_per_sec":90000.0},"#,
        r#"{"n_ues":10,"ue_ticks_per_sec":85000.0},{"n_ues":100,"ue_ticks_per_sec":80000.0},"#,
        r#"{"n_ues":1000,"ue_ticks_per_sec":76000.0}]}"#
    );

    #[test]
    fn extracts_the_anchored_entry_not_its_neighbors() {
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "ticks_per_sec"), Some(106960.0));
        assert_eq!(metric_after(TICK, r#""path":"reference""#, "ticks_per_sec"), Some(71642.0));
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "allocs_per_tick"), Some(3.0));
    }

    #[test]
    fn fleet_anchor_disambiguates_prefix_sizes() {
        assert_eq!(metric_after(FLEET, &fleet_anchor(100), "ue_ticks_per_sec"), Some(80000.0));
        assert_eq!(metric_after(FLEET, &fleet_anchor(1000), "ue_ticks_per_sec"), Some(76000.0));
        assert_eq!(metric_after(FLEET, &fleet_anchor(1), "ue_ticks_per_sec"), Some(90000.0));
        assert_eq!(metric_after(FLEET, &fleet_anchor(10), "ue_ticks_per_sec"), Some(85000.0));
    }

    #[test]
    fn missing_anchor_or_metric_is_none_not_a_panic() {
        assert_eq!(metric_after(FLEET, &fleet_anchor(500), "ue_ticks_per_sec"), None);
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "nonexistent"), None);
        assert_eq!(metric_after("", r#""path":"snapshot""#, "ticks_per_sec"), None);
    }

    #[test]
    fn metric_lookup_stays_inside_the_anchored_object() {
        // "elapsed_s" exists only in the *next* object; the scan must stop
        // at the closing brace of the anchored one
        let j = r#"[{"n_ues":1,"a":2.0},{"n_ues":10,"elapsed_s":9.0}]"#;
        assert_eq!(metric_after(j, r#""n_ues":1,"#, "elapsed_s"), None);
    }

    #[test]
    fn tolerance_band_fails_only_on_regression() {
        let g = Gate { what: "x".into(), baseline: 100.0, current: 84.9 };
        assert!(g.regressed(0.15));
        let g = Gate { what: "x".into(), baseline: 100.0, current: 85.1 };
        assert!(!g.regressed(0.15));
        let g = Gate { what: "x".into(), baseline: 100.0, current: 300.0 };
        assert!(!g.regressed(0.15), "an improvement must never fail the gate");
        assert!(g.improved(0.15));
    }

    #[test]
    fn evaluate_aggregates_all_gates() {
        let pass = Gate { what: "a".into(), baseline: 100.0, current: 98.0 };
        let fail = Gate { what: "b".into(), baseline: 100.0, current: 50.0 };
        assert!(evaluate(&[pass.clone()], 0.15));
        assert!(!evaluate(&[pass, fail], 0.15));
        assert!(evaluate(&[], 0.15), "no gates means nothing to fail");
    }
}
