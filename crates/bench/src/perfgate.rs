//! Perf-gate support: compare a fresh benchmark report against a committed
//! baseline (`BENCH_tick.json`, `BENCH_fleet.json`) and fail on regression.
//!
//! The reports are written by [`crate::report::JsonBuf`] — single-line JSON
//! with a fixed key order and no whitespace — so the extractor here is a
//! deliberately small string scanner instead of a JSON parser: it finds the
//! entry object by a literal anchor (`"path":"snapshot"`, [`metric_after`])
//! or by the parsed value of its `"n_ues"` key ([`fleet_metric`]) and
//! reads one numeric metric out of that same object. This keeps the gate
//! dependency-free, which matters twice: the bench crate stays lean, and the
//! offline `scripts/localcheck.sh` run (where `serde_json` is a
//! type-check-only stub) can execute the gate for real.
//!
//! # What gets gated
//!
//! The committed baselines are recorded on the development machine while CI
//! runs on shared runners whose absolute speed differs and drifts run to
//! run by more than any sane tolerance — gating raw ticks/sec against them
//! would fail on a slow runner, not on a slow commit. The gates therefore
//! cover only **machine-independent** metrics:
//!
//! * work counts (`ticks`, `ue_ticks`): deterministic for a pinned
//!   workload, gated as a *band* — drift in either direction means the
//!   workload silently changed;
//! * allocation proxies (`allocs_per_tick`, `allocs_per_ue_tick`): counted
//!   by a deterministic global allocator, gated *lower-is-better*;
//! * the snapshot-vs-reference `speedup` ratio: both sides are measured in
//!   the same process on the same machine, so runner speed cancels to
//!   first order, gated *higher-is-better*; the fleet's fixed-vs-event
//!   `event_speedup` is gated the same way, and its `skip_ratio` — a
//!   deterministic work count in disguise — as a *band*.
//!
//! Before any of that, gating callers compare [`schema_of`] the baseline
//! against the schema string they themselves write and fail loudly on a
//! mismatch — cross-schema gating would silently compare rows whose
//! metrics no longer mean the same thing.
//!
//! Absolute throughput (ticks/sec) is still compared — via [`advise`] — but
//! only as a printed hint; it can never fail the job.
//!
//! Tolerance semantics per [`Better`] direction: a run **fails** only when
//! the current value leaves the tolerance band on its bad side. Moves past
//! the band on the good side are reported as a hint to refresh the
//! committed baseline, but do not fail the job.

/// Which direction of drift counts as a regression for a gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Throughput-like: regress when `current` drops below the band.
    Higher,
    /// Cost-like (allocation counts): regress when `current` rises above
    /// the band.
    Lower,
    /// Invariant-like (work counts): regress when `current` leaves the
    /// band in *either* direction — the workload itself changed.
    Band,
}

/// One gated comparison: a labelled metric against its committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// What is being compared, e.g. `snapshot allocs_per_tick` or
    /// `fleet[100] ue_ticks`.
    pub what: String,
    /// The committed value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
    /// Which drift direction fails the gate.
    pub better: Better,
}

impl Gate {
    /// `current / baseline` — above 1.0 means a larger current value.
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }

    /// True when the current value left the tolerance band on its bad side.
    pub fn regressed(&self, tol: f64) -> bool {
        let low = self.current < self.baseline * (1.0 - tol);
        let high = self.current > self.baseline * (1.0 + tol);
        match self.better {
            Better::Higher => low,
            Better::Lower => high,
            Better::Band => low || high,
        }
    }

    /// True when the current value beats the baseline by more than the
    /// tolerance — time to re-commit the baseline file. Never true for
    /// [`Better::Band`] gates, where any exit from the band is a failure.
    pub fn improved(&self, tol: f64) -> bool {
        match self.better {
            Better::Higher => self.current > self.baseline * (1.0 + tol),
            Better::Lower => self.current < self.baseline * (1.0 - tol),
            Better::Band => false,
        }
    }

    /// One human-readable verdict line for the job log.
    pub fn verdict(&self, tol: f64) -> String {
        let state = if self.regressed(tol) {
            "FAIL (regression)"
        } else if self.improved(tol) {
            "ok (better; consider refreshing the baseline)"
        } else {
            "ok"
        };
        format!(
            "  {:<34} baseline {:>12.1}  current {:>12.1}  ratio {:>5.2}  {}",
            self.what,
            self.baseline,
            self.current,
            self.ratio(),
            state
        )
    }
}

/// Extracts the report's `"schema"` string (e.g. `fiveg-fleet/v3`), `None`
/// when the key is absent. Gating callers must compare this against the
/// schema they write and **fail loudly on a mismatch**: the row extractors
/// below pair entries by anchor value, so a baseline from an older schema
/// generation would silently line up rows whose metrics mean different
/// things (a different pinned scenario, a renamed field) instead of
/// refusing to gate.
pub fn schema_of(json: &str) -> Option<&str> {
    const KEY: &str = "\"schema\":\"";
    let rest = &json[json.find(KEY)? + KEY.len()..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts the numeric value of `metric` from the entry object of `json`
/// identified by `anchor` (a literal substring such as `"path":"snapshot"`).
/// The metric must appear after the anchor and before the object's closing
/// brace — true for every report this crate writes, where the identifying
/// key is emitted first. Returns `None` when either the anchor or the
/// metric is absent, so callers can treat a missing entry as "not gated".
pub fn metric_after(json: &str, anchor: &str, metric: &str) -> Option<f64> {
    let rest = &json[json.find(anchor)? + anchor.len()..];
    let scope = &rest[..rest.find('}').unwrap_or(rest.len())];
    let key = format!("\"{metric}\":");
    let tail = &scope[scope.find(&key)? + key.len()..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// Extracts a top-of-report scalar such as `speedup`, which lives *outside*
/// any anchored entry object. Scans for the **last** occurrence of the key
/// so per-entry fields that happen to share a name never shadow the
/// report-level one (report-level keys are emitted after the entry arrays).
pub fn metric_anywhere(json: &str, metric: &str) -> Option<f64> {
    let key = format!("\"{metric}\":");
    let tail = &json[json.rfind(&key)? + key.len()..];
    let stop = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..stop].trim().parse::<f64>().ok()
}

/// Extracts the **string** value of `metric` from the entry object of
/// `json` identified by `anchor`, with the same scoping rules as
/// [`metric_after`]. This is how non-numeric gated fields — the serve
/// report's prediction-equivalence `equiv_digest` — are compared: string
/// gates are exact-match (a digest has no tolerance band). Returns `None`
/// when the anchor, the metric, or the closing quote is absent.
pub fn str_after<'a>(json: &'a str, anchor: &str, metric: &str) -> Option<&'a str> {
    let rest = &json[json.find(anchor)? + anchor.len()..];
    let scope = &rest[..rest.find('}').unwrap_or(rest.len())];
    let key = format!("\"{metric}\":\"");
    let tail = &scope[scope.find(&key)? + key.len()..];
    Some(&tail[..tail.find('"')?])
}

/// Extracts `metric` from the fleet-report entry whose `"n_ues"` **value**
/// equals `n_ues`. Every `"n_ues":` occurrence is parsed and compared
/// numerically, so the pairing is keyed by size — a reordered or extended
/// baseline can never line a measurement up against the wrong row, and a
/// prefix size (`100` vs `1000`) or a trailing `}` instead of `,` cannot
/// confuse the match the way a literal-substring anchor could. Like
/// [`metric_after`], the metric must follow the key inside the same object
/// (true for every report this crate writes, where `n_ues` is emitted
/// first). Returns `None` when the size or the metric is absent.
pub fn fleet_metric(json: &str, n_ues: u32, metric: &str) -> Option<f64> {
    const KEY: &str = "\"n_ues\":";
    let mut from = 0;
    while let Some(pos) = json[from..].find(KEY) {
        from += pos + KEY.len();
        let tail = &json[from..];
        let stop = tail.find([',', '}']).unwrap_or(tail.len());
        if tail[..stop].trim().parse::<u64>() != Ok(u64::from(n_ues)) {
            continue;
        }
        let scope = &tail[..tail.find('}').unwrap_or(tail.len())];
        let key = format!("\"{metric}\":");
        let m = &scope[scope.find(&key)? + key.len()..];
        let mstop = m.find([',', '}']).unwrap_or(m.len());
        return m[..mstop].trim().parse::<f64>().ok();
    }
    None
}

/// Evaluates a set of gates against a tolerance, printing one verdict line
/// each, and returns whether every gate passed. An empty set passes here —
/// callers that *expected* matches must treat zero gates as their own
/// failure (a reformatted baseline silently matching nothing must not turn
/// the gate into a no-op; see `fleet_bench`).
pub fn evaluate(gates: &[Gate], tol: f64) -> bool {
    let mut ok = true;
    for g in gates {
        println!("{}", g.verdict(tol));
        ok &= !g.regressed(tol);
    }
    ok
}

/// Prints a non-gating comparison line for a machine-dependent metric
/// (absolute throughput). The numbers are worth seeing next to the gated
/// verdicts, but a slow shared runner must never fail the job on them.
pub fn advise(what: &str, baseline: f64, current: f64) {
    println!(
        "  {:<34} baseline {:>12.1}  current {:>12.1}  ratio {:>5.2}  advisory (machine-dependent, not gated)",
        what,
        baseline,
        current,
        current / baseline
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: &str = concat!(
        r#"{"schema":"fiveg-tick/v2","mode":"smoke","iters":3,"#,
        r#""paths":[{"path":"reference","ticks":1662,"elapsed_s":0.02,"ticks_per_sec":71642.0,"allocs_per_tick":17.0},"#,
        r#"{"path":"snapshot","ticks":1662,"elapsed_s":0.02,"ticks_per_sec":106960.0,"allocs_per_tick":3.0}],"#,
        r#""speedup":1.49,"des_skip_floor":0.5,"#,
        r#""des":[{"des":"city-sa","ticks":600,"skipped_ticks":539,"sleeps":10,"skip_ratio":0.898,"ue_ticks_per_sec":1912.0},"#,
        r#"{"des":"walking-sa","ticks":600,"skipped_ticks":503,"sleeps":23,"skip_ratio":0.838,"ue_ticks_per_sec":35176.0}]}"#
    );

    const FLEET: &str = concat!(
        r#"{"schema":"fiveg-fleet/v2","sizes":[{"n_ues":1,"ue_ticks_per_sec":90000.0},"#,
        r#"{"n_ues":10,"ue_ticks_per_sec":85000.0},{"n_ues":100,"ue_ticks_per_sec":80000.0},"#,
        r#"{"n_ues":1000,"ue_ticks_per_sec":76000.0}]}"#
    );

    fn gate(baseline: f64, current: f64, better: Better) -> Gate {
        Gate { what: "x".into(), baseline, current, better }
    }

    #[test]
    fn schema_of_reads_the_version_string() {
        assert_eq!(schema_of(TICK), Some("fiveg-tick/v2"));
        assert_eq!(schema_of(FLEET), Some("fiveg-fleet/v2"));
        assert_eq!(schema_of(r#"{"schema":"fiveg-fleet/v3","sizes":[]}"#), Some("fiveg-fleet/v3"));
        assert_eq!(schema_of(r#"{"sizes":[]}"#), None, "missing schema must be None, not a panic");
        assert_eq!(schema_of(""), None);
    }

    #[test]
    fn extracts_the_anchored_entry_not_its_neighbors() {
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "ticks_per_sec"), Some(106960.0));
        assert_eq!(metric_after(TICK, r#""path":"reference""#, "ticks_per_sec"), Some(71642.0));
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "allocs_per_tick"), Some(3.0));
        // the v2 des entries anchor on their label key, so gates can pick a
        // scenario without being fooled by the array key or a neighbor entry
        assert_eq!(metric_after(TICK, r#""des":"city-sa""#, "skip_ratio"), Some(0.898));
        assert_eq!(metric_after(TICK, r#""des":"walking-sa""#, "skip_ratio"), Some(0.838));
        assert_eq!(metric_after(TICK, r#""des":"walking-sa""#, "ticks"), Some(600.0));
    }

    #[test]
    fn fleet_metric_disambiguates_prefix_sizes() {
        assert_eq!(fleet_metric(FLEET, 100, "ue_ticks_per_sec"), Some(80000.0));
        assert_eq!(fleet_metric(FLEET, 1000, "ue_ticks_per_sec"), Some(76000.0));
        assert_eq!(fleet_metric(FLEET, 1, "ue_ticks_per_sec"), Some(90000.0));
        assert_eq!(fleet_metric(FLEET, 10, "ue_ticks_per_sec"), Some(85000.0));
    }

    #[test]
    fn fleet_metric_is_keyed_by_value_not_position() {
        // entries deliberately out of size order, with an extra unrelated
        // size in the middle: the pairing must follow the n_ues value
        let reordered = concat!(
            r#"{"schema":"fiveg-fleet/v2","sizes":[{"n_ues":1000,"ue_ticks":9.0},"#,
            r#"{"n_ues":7,"ue_ticks":3.0},{"n_ues":100,"ue_ticks":5.0},{"n_ues":1,"ue_ticks":1.0}]}"#
        );
        assert_eq!(fleet_metric(reordered, 1, "ue_ticks"), Some(1.0));
        assert_eq!(fleet_metric(reordered, 100, "ue_ticks"), Some(5.0));
        assert_eq!(fleet_metric(reordered, 1000, "ue_ticks"), Some(9.0));
    }

    #[test]
    fn fleet_metric_matches_entries_closed_by_a_brace() {
        // n_ues as the only key: the value is terminated by '}' not ','
        let j = r#"[{"n_ues":10},{"n_ues":100,"ue_ticks":5.0}]"#;
        assert_eq!(fleet_metric(j, 100, "ue_ticks"), Some(5.0));
        assert_eq!(fleet_metric(j, 10, "ue_ticks"), None, "entry exists but lacks the metric");
    }

    #[test]
    fn missing_anchor_or_metric_is_none_not_a_panic() {
        assert_eq!(fleet_metric(FLEET, 500, "ue_ticks_per_sec"), None);
        assert_eq!(fleet_metric(FLEET, 100, "nonexistent"), None);
        assert_eq!(fleet_metric("", 100, "ue_ticks_per_sec"), None);
        assert_eq!(metric_after(TICK, r#""path":"snapshot""#, "nonexistent"), None);
        assert_eq!(metric_after("", r#""path":"snapshot""#, "ticks_per_sec"), None);
    }

    #[test]
    fn metric_lookup_stays_inside_the_anchored_object() {
        // "elapsed_s" exists only in the *next* object; the scan must stop
        // at the closing brace of the anchored one
        let j = r#"[{"n_ues":1,"a":2.0},{"n_ues":10,"elapsed_s":9.0}]"#;
        assert_eq!(metric_after(j, r#""n_ues":1,"#, "elapsed_s"), None);
    }

    #[test]
    fn str_after_reads_string_fields_inside_the_anchored_object() {
        let j = concat!(
            r#"{"schema":"fiveg-serve/v1","gated":{"sessions_completed":8,"#,
            r#""equiv_digest":"00f3a9b2c4d5e6f7","mismatches":0},"#,
            r#""advisory":{"note":"other"}}"#
        );
        assert_eq!(str_after(j, r#""gated":"#, "equiv_digest"), Some("00f3a9b2c4d5e6f7"));
        assert_eq!(str_after(j, r#""gated":"#, "note"), None, "scope ends at the first brace");
        assert_eq!(str_after(j, r#""advisory":"#, "note"), Some("other"));
        assert_eq!(str_after(j, r#""missing":"#, "equiv_digest"), None);
        assert_eq!(str_after(j, r#""gated":"#, "sessions_completed"), None, "numeric field is not a string");
        assert_eq!(str_after("", r#""gated":"#, "equiv_digest"), None);
    }

    #[test]
    fn metric_anywhere_reads_report_level_scalars() {
        assert_eq!(metric_anywhere(TICK, "speedup"), Some(1.49));
        assert_eq!(metric_anywhere(TICK, "iters"), Some(3.0));
        assert_eq!(metric_anywhere(TICK, "nonexistent"), None);
        assert_eq!(metric_anywhere("", "speedup"), None);
    }

    #[test]
    fn higher_is_better_fails_only_on_drop() {
        assert!(gate(100.0, 84.9, Better::Higher).regressed(0.15));
        assert!(!gate(100.0, 85.1, Better::Higher).regressed(0.15));
        let g = gate(100.0, 300.0, Better::Higher);
        assert!(!g.regressed(0.15), "an improvement must never fail the gate");
        assert!(g.improved(0.15));
    }

    #[test]
    fn lower_is_better_fails_only_on_rise() {
        assert!(gate(100.0, 115.1, Better::Lower).regressed(0.15));
        assert!(!gate(100.0, 114.9, Better::Lower).regressed(0.15));
        let g = gate(100.0, 50.0, Better::Lower);
        assert!(!g.regressed(0.15), "fewer allocations must never fail the gate");
        assert!(g.improved(0.15));
    }

    #[test]
    fn band_fails_on_drift_in_either_direction() {
        assert!(gate(100.0, 84.9, Better::Band).regressed(0.15));
        assert!(gate(100.0, 115.1, Better::Band).regressed(0.15));
        let inside = gate(100.0, 100.0, Better::Band);
        assert!(!inside.regressed(0.15));
        assert!(!gate(100.0, 200.0, Better::Band).improved(0.15), "a band gate never 'improves'");
    }

    #[test]
    fn evaluate_aggregates_all_gates() {
        let pass = gate(100.0, 98.0, Better::Higher);
        let fail = gate(100.0, 50.0, Better::Higher);
        assert!(evaluate(&[pass.clone()], 0.15));
        assert!(!evaluate(&[pass, fail], 0.15));
        assert!(evaluate(&[], 0.15), "no gates means nothing to fail");
    }
}
