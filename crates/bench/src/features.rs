//! Feature extraction for the offline baselines (§7.3).
//!
//! * GBC (Mei et al.): "lower layer information such as signal strength
//!   qualities of serving and neighboring cells" — per 1 s window we
//!   extract serving/neighbor RSRP/SINR statistics and slopes per leg.
//! * Stacked LSTM (Ozturk et al.): "the location information of the mobile
//!   device" — sequences of (x, y, speed).

use fiveg_baselines::Dataset;
use fiveg_sim::{Trace, TraceSample};

fn label_of(trace: &Trace, w_start: f64, window_s: f64) -> usize {
    trace
        .handovers
        .iter()
        .find(|h| h.t_command >= w_start && h.t_command < w_start + window_s)
        .map(|h| 1 + h.ho_type as usize)
        .unwrap_or(0)
}

fn window_samples<'a>(trace: &'a Trace, a: f64, b: f64) -> Vec<&'a TraceSample> {
    trace.samples.iter().filter(|s| s.t >= a && s.t < b).collect()
}

fn mean_opt(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        -140.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

fn slope(vals: &[f64]) -> f64 {
    if vals.len() < 2 {
        return 0.0;
    }
    (vals[vals.len() - 1] - vals[0]) / vals.len() as f64
}

/// Builds the GBC feature table over 1 s windows of a trace.
///
/// Features (per window): serving LTE RSRP mean/slope, serving LTE SINR
/// mean, best LTE neighbor − serving gap, serving NR RSRP mean/slope,
/// serving NR SINR mean/slope, best NR neighbor gap, NR attached flag,
/// neighbor counts.
pub fn gbc_dataset(traces: &[&Trace], window_s: f64) -> Dataset {
    let mut data = Dataset::new();
    for trace in traces {
        let mut t = 0.0;
        while t + window_s <= trace.meta.duration_s {
            let ws = window_samples(trace, t, t + window_s);
            if ws.is_empty() {
                t += window_s;
                continue;
            }
            let lte_rsrp: Vec<f64> = ws.iter().filter_map(|s| s.lte_rrs.map(|r| r.rsrp_dbm)).collect();
            let lte_sinr: Vec<f64> = ws.iter().filter_map(|s| s.lte_rrs.map(|r| r.sinr_db)).collect();
            let nr_rsrp: Vec<f64> = ws.iter().filter_map(|s| s.nr_rrs.map(|r| r.rsrp_dbm)).collect();
            let nr_sinr: Vec<f64> = ws.iter().filter_map(|s| s.nr_rrs.map(|r| r.sinr_db)).collect();
            let lte_gap: Vec<f64> = ws
                .iter()
                .filter_map(|s| {
                    let serving = s.lte_rrs?.rsrp_dbm;
                    let best = s.lte_neighbors.first()?.1.rsrp_dbm;
                    Some(best - serving)
                })
                .collect();
            let nr_gap: Vec<f64> = ws
                .iter()
                .filter_map(|s| {
                    let best = s.nr_neighbors.first()?.1.rsrp_dbm;
                    Some(best - s.nr_rrs.map(|r| r.rsrp_dbm).unwrap_or(-140.0))
                })
                .collect();
            let nr_attached = ws.iter().filter(|s| s.nr_cell.is_some()).count() as f64 / ws.len() as f64;
            let row = vec![
                mean_opt(&lte_rsrp),
                slope(&lte_rsrp),
                mean_opt(&lte_sinr),
                if lte_gap.is_empty() { 0.0 } else { mean_opt(&lte_gap) },
                mean_opt(&nr_rsrp),
                slope(&nr_rsrp),
                mean_opt(&nr_sinr),
                slope(&nr_sinr),
                if nr_gap.is_empty() { 0.0 } else { mean_opt(&nr_gap) },
                nr_attached,
                ws.iter().map(|s| s.lte_neighbors.len()).sum::<usize>() as f64 / ws.len() as f64,
                ws.iter().map(|s| s.nr_neighbors.len()).sum::<usize>() as f64 / ws.len() as f64,
            ];
            data.push(row, label_of(trace, t, window_s));
            t += window_s;
        }
    }
    data
}

/// Builds the LSTM sequence dataset: per window, a sequence of
/// (x, y, speed) triples (downsampled to ~10 steps), labelled like the GBC
/// windows.
pub fn lstm_sequences(traces: &[&Trace], window_s: f64) -> (Vec<Vec<Vec<f64>>>, Vec<usize>) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for trace in traces {
        // normalize locations to km so the net sees O(1) inputs
        let mut t = 0.0;
        let mut prev_pos: Option<(f64, f64)> = None;
        while t + window_s <= trace.meta.duration_s {
            let ws = window_samples(trace, t, t + window_s);
            if ws.len() >= 4 {
                let stride = (ws.len() / 10).max(1);
                let mut seq = Vec::new();
                for s in ws.iter().step_by(stride) {
                    let speed = prev_pos
                        .map(|(px, py)| ((s.pos.0 - px).powi(2) + (s.pos.1 - py).powi(2)).sqrt())
                        .unwrap_or(0.0);
                    prev_pos = Some(s.pos);
                    seq.push(vec![s.pos.0 / 1000.0, s.pos.1 / 1000.0, speed]);
                }
                xs.push(seq);
                ys.push(label_of(trace, t, window_s));
            }
            t += window_s;
        }
    }
    (xs, ys)
}

/// Number of classes used by the window labelling (no-HO + all HO types).
pub const NUM_CLASSES: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{Arch, Carrier};
    use fiveg_sim::ScenarioBuilder;

    fn trace() -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 6.0, 3).duration_s(180.0).sample_hz(20.0).build().run()
    }

    #[test]
    fn gbc_features_shape() {
        let t = trace();
        let d = gbc_dataset(&[&t], 1.0);
        assert!(d.len() > 150);
        assert_eq!(d.width(), 12);
        // imbalanced labels: mostly background
        let bg = d.labels.iter().filter(|&&l| l == 0).count();
        assert!(bg * 2 > d.len());
        // some HO labels present
        assert!(d.labels.iter().any(|&l| l != 0));
    }

    #[test]
    fn lstm_sequences_shape() {
        let t = trace();
        let (xs, ys) = lstm_sequences(&[&t], 1.0);
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty());
        for seq in &xs {
            assert!(!seq.is_empty());
            assert_eq!(seq[0].len(), 3);
        }
        assert!(ys.iter().all(|&l| l < NUM_CLASSES));
    }

    #[test]
    fn labels_match_between_featurizations() {
        let t = trace();
        let d = gbc_dataset(&[&t], 1.0);
        let (_, ys) = lstm_sequences(&[&t], 1.0);
        // same number of windows, same labels (both iterate the same grid)
        assert_eq!(d.labels.len(), ys.len());
        assert_eq!(d.labels.iter().filter(|&&l| l != 0).count(), ys.iter().filter(|&&l| l != 0).count());
    }
}
