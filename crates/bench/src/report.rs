//! Re-export of the deterministic JSON writer the benchmark reports use.
//!
//! [`JsonBuf`] moved to `fiveg-telemetry` (the dependency-free root of the
//! workspace) when the `fiveg-trace` flight recorder started emitting the
//! same byte-compared JSONL as the bench reports; this module keeps the
//! historical `fiveg_bench::report::JsonBuf` path working.

pub use fiveg_telemetry::json::JsonBuf;
