//! Shared infrastructure for the experiment harnesses.
//!
//! Every table and figure of the paper has a bench target (see
//! `crates/bench/benches/`); this library holds what they share:
//!
//! * [`fmt`] — aligned table printing with paper-vs-measured rows;
//! * [`datasets`] — the walking datasets D1/D2 and the drive scenarios;
//! * [`driver`] — replays a recorded [`fiveg_sim::Trace`] through Prognos
//!   the way the
//!   paper's trace-driven emulation does, producing per-window predictions
//!   and ground-truth labels;
//! * [`features`] — feature extraction for the GBC and LSTM baselines;
//! * [`sweep`] — the deterministic parallel sweep harness (scenario matrix
//!   → ordered job list → worker pool → `BENCH_sweep.json`);
//! * [`fuzz`] — the scenario-fuzz campaign driver behind `scenario_fuzz`
//!   (seeded case fan-out → oracle verdicts → corpus replay →
//!   `BENCH_fuzz.json`);
//! * [`perfgate`] — baseline comparison for the CI perf gate
//!   (`tick_bench`/`fleet_bench` `--baseline` flags);
//! * [`vivisect`] — the handover vivisection harness behind `ho_vivisect`
//!   (span assembly + shadow oracle per UE → telemetry reconciliation →
//!   `BENCH_vivisect.json`).

pub mod datasets;
pub mod driver;
pub mod features;
pub mod fmt;
pub mod fuzz;
pub mod perfgate;
pub mod report;
pub mod sweep;
pub mod vivisect;

pub use datasets::{d1_traces, d2_traces};
pub use driver::{label_windows, run_prognos, PrognosRun, WindowOutcome};
pub use features::{gbc_dataset, lstm_sequences};
pub use fuzz::{campaign_report, replay_corpus, run_campaign, FuzzOutcome, FUZZ_SCHEMA};
pub use perfgate::{evaluate, fleet_metric, metric_after, Gate};
pub use report::JsonBuf;
pub use sweep::{RouteKind, SweepPredictor, SweepResult, SweepSpec};
pub use vivisect::{
    matrix, reconcile, report as vivisect_report, run_cell, run_matrix, CellOutcome, VivisectCell, VivisectObserver,
    VIVISECT_SCHEMA,
};
