//! Console table formatting for experiment output.

pub use fiveg_telemetry::group_thousands;

/// Prints a titled section header.
pub fn header(title: &str) {
    let bar = "=".repeat(title.len().max(8) + 4);
    println!("\n{bar}\n| {title} |\n{bar}");
}

/// Prints a sub-section rule.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Prints an aligned table: `rows[i].len() == headers.len()`.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::from("|");
        for (w, c) in widths.iter().zip(cells) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out
    };
    let rule: String = {
        let mut out = String::from("+");
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out
    };
    println!("{rule}");
    println!("{}", line(headers.iter().map(|s| s.to_string()).collect()));
    println!("{rule}");
    for row in rows {
        println!("{}", line(row.clone()));
    }
    println!("{rule}");
}

/// A "paper says X, we measured Y" line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<52} paper: {paper:<18} measured: {measured}");
}

/// Formats a float with the given precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a count with thousands separators (shared with the telemetry
/// summary so all experiment output groups digits the same way).
pub fn count(n: usize) -> String {
    group_thousands(n as u64)
}

/// Prints a run's telemetry summary under a section rule.
pub fn telemetry(title: &str, tele: &fiveg_telemetry::Telemetry) {
    section(title);
    print!("{}", tele.summary());
}
