//! The fuzz campaign driver behind the `scenario_fuzz` binary.
//!
//! `fiveg-oracle` owns the per-case machinery (generation, dual-engine
//! differential run, invariant checks, shrinking); this module owns the
//! campaign: fanning cases across the worker pool deterministically
//! ([`crate::sweep::run_ordered`]), probing the Prognos predictor over the
//! traces of predictor-flagged cases, replaying the committed corpus, and
//! writing the `fiveg-fuzz/v1` report that the determinism CI byte-compares
//! across thread counts.

use crate::driver::run_prognos;
use crate::report::JsonBuf;
use crate::sweep::run_ordered;
use fiveg_oracle::{run_case, shrink, CaseResult, FuzzCase, RunOpts};
use prognos::PrognosConfig;
use std::path::Path;

/// Report schema tag; bump on layout changes.
pub const FUZZ_SCHEMA: &str = "fiveg-fuzz/v1";

/// One fuzz case's campaign outcome: the oracle verdict plus the predictor
/// probe, keyed for the report.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Case ordinal within the campaign (or corpus file stem on replay).
    pub label: String,
    /// The case that ran.
    pub case: FuzzCase,
    /// Oracle + differential verdict.
    pub result: CaseResult,
    /// Prediction windows Prognos produced over the trace, for cases fuzzed
    /// with the predictor dimension on (`None` otherwise). The probe gates
    /// nothing beyond "the predictor ran without panicking", but its count
    /// lands in the byte-compared report, so it must be deterministic too.
    pub prognos_windows: Option<u64>,
}

impl FuzzOutcome {
    /// True when the oracle, the differential check, and the probe all held.
    pub fn passed(&self) -> bool {
        self.result.passed()
    }
}

/// Runs one case end to end: oracle verdict, plus the Prognos probe when
/// the case carries the predictor dimension.
pub fn run_outcome(label: String, case: FuzzCase, opts: &RunOpts) -> FuzzOutcome {
    let result = run_case(&case, opts);
    let prognos_windows = case.prognos.then(|| {
        let trace = case.scenario().run();
        let (run, _) = run_prognos(&trace, PrognosConfig::default(), None, None);
        run.windows.len() as u64
    });
    FuzzOutcome { label, case, result, prognos_windows }
}

/// Runs the `cases`-case campaign for `fuzz_seed` on `threads` workers.
/// Output order (and content) is independent of the thread count.
pub fn run_campaign(fuzz_seed: u64, cases: u64, threads: usize, opts: &RunOpts) -> Vec<FuzzOutcome> {
    run_ordered(cases as usize, threads, |i| {
        run_outcome(format!("case{i:04}"), FuzzCase::generate(fuzz_seed, i as u64), opts)
    })
}

/// Replays every `*.toml` case under `dir` (sorted by file name). Missing
/// directory is an empty corpus, not an error; an unparseable case file is.
pub fn replay_corpus(dir: &Path, opts: &RunOpts) -> Result<Vec<FuzzOutcome>, String> {
    let mut files: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => {
            rd.filter_map(|e| e.ok().map(|e| e.path())).filter(|p| p.extension().is_some_and(|x| x == "toml")).collect()
        }
        Err(_) => return Ok(Vec::new()),
    };
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let label = path.file_stem().and_then(|s| s.to_str()).unwrap_or("case").to_string();
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let case = FuzzCase::parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(run_outcome(label, case, opts));
    }
    Ok(out)
}

/// Shrinks a failing case and writes the minimal repro into `dir` as
/// `shrunk-<seed16>.toml`, annotated with the first violation. Returns the
/// written path.
pub fn shrink_and_save(outcome: &FuzzOutcome, opts: &RunOpts, dir: &Path) -> Result<std::path::PathBuf, String> {
    let min = shrink(&outcome.case, opts);
    let why = outcome
        .result
        .divergence
        .clone()
        .or_else(|| outcome.result.violations.first().map(|v| v.to_string()))
        .unwrap_or_else(|| "unknown failure".into());
    let mut text = String::new();
    for line in why.lines() {
        text.push_str("# ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&min.to_toml());
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("shrunk-{:016x}.toml", min.seed));
    std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

/// Serializes campaign outcomes as the `fiveg-fuzz/v1` report. Contains no
/// wall-clock data, so equal campaigns produce equal bytes.
pub fn campaign_report(fuzz_seed: u64, roundtrip: bool, outcomes: &[FuzzOutcome]) -> String {
    let failed = outcomes.iter().filter(|o| !o.passed()).count() as u64;
    let mut j = JsonBuf::new();
    j.open('{');
    j.key("schema");
    j.str_val(FUZZ_SCHEMA);
    j.key("fuzz_seed");
    j.uint(fuzz_seed);
    j.key("roundtrip");
    j.uint(u64::from(roundtrip));
    j.key("cases");
    j.uint(outcomes.len() as u64);
    j.key("failed");
    j.uint(failed);
    j.key("results");
    j.open('[');
    for o in outcomes {
        j.open('{');
        j.key("label");
        j.str_val(&o.label);
        j.key("case");
        j.str_val(&o.case.label());
        j.key("ticks");
        j.uint(o.result.ticks as u64);
        j.key("handovers");
        j.uint(o.result.handovers as u64);
        j.key("ho_failures");
        j.uint(o.result.ho_failures);
        j.key("violations");
        j.uint(o.result.total_violations);
        if let Some(d) = &o.result.divergence {
            j.key("divergence");
            j.str_val(d);
        }
        if let Some(w) = o.prognos_windows {
            j.key("prognos_windows");
            j.uint(w);
        }
        j.key("pass");
        j.uint(u64::from(o.passed()));
        j.close('}');
    }
    j.close(']');
    j.close('}');
    j.finish_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Offline-safe opts (the stub harness has no runtime serde_json).
    fn opts() -> RunOpts {
        RunOpts { check_roundtrip: false }
    }

    #[test]
    fn campaign_is_deterministic_across_thread_counts() {
        let serial = campaign_report(77, false, &run_campaign(77, 4, 1, &opts()));
        let parallel = campaign_report(77, false, &run_campaign(77, 4, 3, &opts()));
        assert_eq!(serial, parallel);
        assert!(serial.contains(FUZZ_SCHEMA));
        assert!(serial.contains("\"cases\":4"));
    }

    #[test]
    fn clean_cases_report_pass() {
        let outcomes = run_campaign(77, 2, 1, &opts());
        for o in &outcomes {
            assert!(o.passed(), "{}: {:?} {:?}", o.label, o.result.violations, o.result.divergence);
        }
    }

    #[test]
    fn missing_corpus_directory_is_empty_not_fatal() {
        let out = replay_corpus(Path::new("tests/corpus-does-not-exist"), &opts()).unwrap();
        assert!(out.is_empty());
    }
}
