//! Replays traces through Prognos — the paper's trace-driven emulation.
//!
//! "We evaluate Prognos using trace-driven emulation. We collect logs from
//! operational cellular networks ... and replay the traces" (§7.3). The
//! driver walks a [`Trace`] tick by tick, feeding Prognos what the UE saw
//! (RRS snapshots, measurement reports, HO commands) and asking for a
//! prediction at every 1 s window boundary. Ground truth for a window is
//! the HO command (if any) falling inside it.

use fiveg_analysis::ClassMetrics;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, HoType};
use fiveg_rrc::MeasEvent;
use fiveg_sim::Trace;
use prognos::{LegSnapshot, Prognos, PrognosConfig, UeContext};

/// One evaluation window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowOutcome {
    /// Window start time, s.
    pub t: f64,
    /// Ground truth: the HO command inside this window, if any.
    pub truth: Option<HoType>,
    /// Prognos's prediction at the window start.
    pub pred: Option<HoType>,
    /// Prognos's ho_score at the window start.
    pub ho_score: f64,
    /// Estimated lead time reported with the prediction, s.
    pub lead_s: f64,
}

/// A maximal run of consecutive same-type positive predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// First prediction time, s.
    pub t_start: f64,
    /// Last prediction time, s.
    pub t_end: f64,
    /// Predicted HO type.
    pub ho: HoType,
}

/// Result of replaying one trace.
#[derive(Debug, Clone)]
pub struct PrognosRun {
    /// Per-window outcomes.
    pub windows: Vec<WindowOutcome>,
    /// Prediction episodes (the system predicts continuously at the sample
    /// rate; consecutive same-type positives form one episode).
    pub episodes: Vec<Episode>,
    /// Ground-truth HO command times and types.
    pub events: Vec<(f64, HoType)>,
    /// Running F1 sampled once a minute (time, F1-so-far) — Fig. 15.
    pub f1_timeline: Vec<(f64, f64)>,
    /// Per-HO prediction lead times, split by category: (is_5g_ho, lead_s).
    /// Lead is `t_command − first window that predicted this HO's type`.
    pub lead_times: Vec<(bool, f64)>,
    /// Patterns learned / evicted during the run.
    pub learned: u64,
    /// Patterns evicted during the run.
    pub evicted: u64,
}

impl PrognosRun {
    /// Classification metrics over all windows (background = no HO).
    pub fn metrics(&self) -> ClassMetrics {
        let (truth, pred) = self.label_vectors();
        ClassMetrics::from_labels(&truth, &pred, 0u8)
    }

    /// Tolerance-matched metrics: a positive prediction is a true positive
    /// when a HO of the predicted type occurs within `tol_windows` windows
    /// of it (event-prediction matching — an early warning is early, not
    /// wrong). Each truth event consumes at most the predictions in its
    /// tolerance span; unmatched positives are false positives, unmatched
    /// truths false negatives.
    pub fn metrics_tolerant(&self, tol_windows: usize) -> ClassMetrics {
        metrics_tolerant_from(&self.windows.iter().map(|w| (w.truth, w.pred)).collect::<Vec<_>>(), tol_windows)
    }

    /// Event-level metrics: the system predicts continuously; an HO counts
    /// as predicted (TP) when a same-type episode overlaps
    /// `[t_cmd − lookback_s, t_cmd + slack_s]`; unmatched episodes are false
    /// alarms. This is the natural evaluation for a continuous early-warning
    /// system (and the one consistent with the paper's lead-time analysis).
    pub fn metrics_events(&self, lookback_s: f64, slack_s: f64) -> ClassMetrics {
        metrics_events_from(&self.episodes, &self.events, lookback_s, slack_s, self.windows.len())
    }

    /// Encodes window outcomes as label vectors (0 = no HO).
    pub fn label_vectors(&self) -> (Vec<u8>, Vec<u8>) {
        let enc = |h: Option<HoType>| h.map(|x| 1 + x as u8).unwrap_or(0);
        (self.windows.iter().map(|w| enc(w.truth)).collect(), self.windows.iter().map(|w| enc(w.pred)).collect())
    }
}

/// Event-level matching of prediction episodes against truth HO commands.
pub fn metrics_events_from(
    episodes: &[Episode],
    events: &[(f64, HoType)],
    lookback_s: f64,
    slack_s: f64,
    total_windows: usize,
) -> ClassMetrics {
    // sub-150 ms blips are not actionable alarms; drop them
    let episodes: Vec<Episode> = episodes.iter().copied().filter(|e| e.t_end - e.t_start >= 0.15).collect();
    let episodes = &episodes[..];
    let mut used = vec![false; episodes.len()];
    let mut tp = 0usize;
    let mut fn_ = 0usize;
    for &(t_cmd, ho) in events {
        let hit = episodes
            .iter()
            .enumerate()
            .find(|(i, e)| !used[*i] && e.ho == ho && e.t_start <= t_cmd + slack_s && e.t_end >= t_cmd - lookback_s);
        match hit {
            Some((i, _)) => {
                used[i] = true;
                tp += 1;
            }
            None => fn_ += 1,
        }
    }
    let fp = used.iter().filter(|u| !**u).count();
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
    // accuracy: correct decisions per window — TPs and the quiet windows
    let wrong = fp + fn_;
    let accuracy =
        if total_windows == 0 { 0.0 } else { ((total_windows.saturating_sub(wrong)) as f64) / total_windows as f64 };
    ClassMetrics { precision, recall, f1, accuracy }
}

/// Tolerance-matched metrics over a window-aligned (truth, pred) series.
/// Shared by the Prognos run and the offline baselines so Table 3 compares
/// every approach under the same matching rule.
pub fn metrics_tolerant_from(series: &[(Option<HoType>, Option<HoType>)], tol_windows: usize) -> ClassMetrics {
    let n = series.len();
    let mut pred_used = vec![false; n];
    let mut tp = 0usize;
    let mut fn_ = 0usize;
    let mut correct_bg = 0usize;
    // match each truth event to the nearest same-type prediction within
    // [i - tol, i + tol]
    for i in 0..n {
        if let Some(t) = series[i].0 {
            let lo = i.saturating_sub(tol_windows);
            let hi = (i + tol_windows).min(n - 1);
            let hit = (lo..=hi).find(|&j| !pred_used[j] && series[j].1 == Some(t));
            match hit {
                Some(j) => {
                    pred_used[j] = true;
                    tp += 1;
                }
                None => fn_ += 1,
            }
        }
    }
    // remaining positive predictions are false alarms
    let mut fp = 0usize;
    for (i, w) in series.iter().enumerate() {
        if w.1.is_some() && !pred_used[i] {
            fp += 1;
        } else if w.1.is_none() && w.0.is_none() {
            correct_bg += 1;
        }
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 { 0.0 } else { 2.0 * precision * recall / (precision + recall) };
    let accuracy = if n == 0 { 0.0 } else { (tp + correct_bg) as f64 / n as f64 };
    ClassMetrics { precision, recall, f1, accuracy }
}

/// Decodes a window-classifier label (0 = background) back to a [`HoType`].
/// Inverse of the `1 + ho as usize` encoding used by the feature extractors.
pub fn to_ho(label: usize) -> Option<HoType> {
    if label == 0 {
        None
    } else {
        HoType::ALL.iter().copied().find(|h| 1 + *h as usize == label)
    }
}

/// Converts window-level baseline predictions into episodes + truth events
/// so offline classifiers are matched under exactly the same event rule as
/// Prognos ([`metrics_events_from`]). Consecutive same-type positive
/// windows form one episode.
pub fn window_preds_to_episodes(
    labels: &[usize],
    preds: &[usize],
    window_s: f64,
) -> (Vec<Episode>, Vec<(f64, HoType)>) {
    let mut episodes: Vec<Episode> = Vec::new();
    let mut events = Vec::new();
    for (i, (&truth, &pred)) in labels.iter().zip(preds).enumerate() {
        let t = i as f64 * window_s;
        if let Some(h) = to_ho(truth) {
            events.push((t, h));
        }
        if let Some(h) = to_ho(pred) {
            match episodes.last_mut() {
                Some(e) if e.ho == h && t - e.t_end <= window_s + 1e-9 => e.t_end = t,
                _ => episodes.push(Episode { t_start: t, t_end: t, ho: h }),
            }
        }
    }
    (episodes, events)
}

/// Labels the windows of a trace (ground truth only): used to evaluate the
/// offline baselines on exactly the same task.
pub fn label_windows(trace: &Trace, window_s: f64) -> Vec<(f64, Option<HoType>)> {
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < trace.meta.duration_s {
        let truth = trace.handovers.iter().find(|h| h.t_command >= t && h.t_command < t + window_s).map(|h| h.ho_type);
        out.push((t, truth));
        t += window_s;
    }
    out
}

/// Replays `trace` through a Prognos instance.
///
/// `carry` continues with an already-warm system (multi-lap datasets);
/// `bootstrap` seeds frequent patterns before the run (Fig. 15).
pub fn run_prognos(
    trace: &Trace,
    cfg: PrognosConfig,
    bootstrap: Option<Vec<(Vec<MeasEvent>, HoType)>>,
    carry: Option<(Prognos, f64)>,
) -> (PrognosRun, (Prognos, f64)) {
    run_prognos_scored(trace, cfg, bootstrap, carry, None)
}

/// Like [`run_prognos`], with a telemetry recorder installed on the
/// replayed system: Prognos prep/exec phase timings, predict-call
/// counters, and the issued/hit/miss prediction journal accumulate on
/// `tele` across the replay.
pub fn run_prognos_instrumented(
    trace: &Trace,
    cfg: PrognosConfig,
    tele: &fiveg_telemetry::Telemetry,
) -> (PrognosRun, (Prognos, f64)) {
    let mut pg = Prognos::new(cfg.clone());
    pg.set_telemetry(tele.clone());
    run_prognos(trace, cfg, None, Some((pg, 0.0)))
}

/// Like [`run_prognos`], with an optional calibrated ho_score table.
pub fn run_prognos_scored(
    trace: &Trace,
    cfg: PrognosConfig,
    bootstrap: Option<Vec<(Vec<MeasEvent>, HoType)>>,
    carry: Option<(Prognos, f64)>,
    scores: Option<prognos::HoScoreTable>,
) -> (PrognosRun, (Prognos, f64)) {
    let window_s = cfg.prediction_window_s;
    // a carried system keeps its own monotone clock across traces
    let t_base = carry.as_ref().map(|(_, b)| *b).unwrap_or(0.0);
    let mut pg = carry.map(|(pg, _)| pg).unwrap_or_else(|| {
        let mut pg = Prognos::new(cfg.clone());
        if let Some(pats) = bootstrap {
            pg.bootstrap(pats);
        }
        pg
    });
    pg.set_configs(trace.configs.clone());
    if let Some(sc) = scores {
        pg.set_scores(sc);
    }
    let learned0 = pg.learner().learned_total();
    let evicted0 = pg.learner().evicted_total();

    let dt = 1.0 / trace.meta.sample_hz;
    let mut windows: Vec<WindowOutcome> = Vec::new();
    let mut episodes: Vec<Episode> = Vec::new();
    let mut f1_timeline = Vec::new();
    let mut next_window = window_s;
    let mut next_f1 = 60.0;
    let mut rep_i = 0usize;
    let mut ho_i = 0usize;

    // Measurement-object groups are UE-visible (they come in MeasConfig):
    // LTE A3 is per carrier frequency; NR A3 under NSA is per gNB; SA NR A3
    // is per frequency. Encode the group as a u32 key.
    let freq_key = |cell: u32| {
        let band = &trace.cell(cell).band;
        let mut h: u32 = 0x811c9dc5;
        for b in band.bytes() {
            h = (h ^ b as u32).wrapping_mul(0x0100_0193);
        }
        h
    };
    let lte_obs = |cell: u32, rrs| prognos::CellObs {
        pci: fiveg_rrc::Pci(trace.cell(cell).pci),
        rrs,
        group: Some(freq_key(cell)),
    };
    let nr_obs = |cell: u32, rrs| prognos::CellObs {
        pci: fiveg_rrc::Pci(trace.cell(cell).pci),
        rrs,
        group: if trace.meta.arch == Arch::Nsa { Some(trace.cell(cell).tower) } else { Some(freq_key(cell)) },
    };

    for s in &trace.samples {
        // 1. radio snapshot
        let lte = LegSnapshot {
            serving: s.lte_cell.zip(s.lte_rrs).map(|(c, r)| lte_obs(c, r)),
            neighbors: s.lte_neighbors.iter().map(|&(c, r)| lte_obs(c, r)).collect(),
        };
        let nr = LegSnapshot {
            serving: s.nr_cell.zip(s.nr_rrs).map(|(c, r)| nr_obs(c, r)),
            neighbors: s.nr_neighbors.iter().map(|&(c, r)| nr_obs(c, r)).collect(),
        };
        pg.on_sample(t_base + s.t, &lte, &nr);

        // 2. deliver due measurement reports
        while rep_i < trace.reports.len() && trace.reports[rep_i].t <= s.t {
            pg.on_report(trace.reports[rep_i].event);
            rep_i += 1;
        }
        // 3. deliver due HO commands
        while ho_i < trace.handovers.len() && trace.handovers[ho_i].t_command <= s.t {
            pg.on_handover(trace.handovers[ho_i].ho_type);
            ho_i += 1;
        }

        // 4. predict continuously (every sample, like a deployed system)
        let nr_band: Option<BandClass> = s
            .nr_cell
            .map(|c| trace.cell(c).class)
            .or_else(|| s.nr_neighbors.first().map(|&(c, _)| trace.cell(c).class));
        let ctx = UeContext { arch: trace.meta.arch, has_scg: s.nr_cell.is_some(), nr_band };
        let p = pg.predict(t_base + s.t, &ctx);
        match (p.ho, episodes.last_mut()) {
            (Some(h), Some(e)) if e.ho == h && s.t - e.t_end <= 0.3 + dt => e.t_end = s.t,
            (Some(h), _) => episodes.push(Episode { t_start: s.t, t_end: s.t, ho: h }),
            (None, _) => {}
        }

        // window-grid record (for the strict metrics and the app hooks)
        if s.t + 1e-9 >= next_window {
            let w_start = next_window;
            let truth = trace
                .handovers
                .iter()
                .find(|h| h.t_command >= w_start && h.t_command < w_start + window_s)
                .map(|h| h.ho_type);
            windows.push(WindowOutcome { t: w_start, truth, pred: p.ho, ho_score: p.ho_score, lead_s: p.lead_s });
            next_window += window_s;
        }

        // 5. running F1 (once a minute), event-matched like Table 3
        if s.t >= next_f1 {
            let events_so_far: Vec<(f64, HoType)> =
                trace.handovers.iter().filter(|h| h.t_command <= s.t).map(|h| (h.t_command, h.ho_type)).collect();
            let m = metrics_events_from(&episodes, &events_so_far, 2.0, 0.3, windows.len());
            f1_timeline.push((s.t, m.f1));
            next_f1 += 60.0;
        }
    }

    // lead times: earliest overlapping same-type episode start before the
    // HO command
    let mut lead_times = Vec::new();
    for h in &trace.handovers {
        let lead = episodes
            .iter()
            .filter(|e| e.ho == h.ho_type && e.t_start <= h.t_command + 0.3 && e.t_end >= h.t_command - 2.0)
            .map(|e| (h.t_command - e.t_start).max(0.0))
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))));
        if let Some(lead) = lead {
            let is_5g = h.ho_type.category() == fiveg_ran::HoCategory::FiveG;
            lead_times.push((is_5g, lead));
        }
    }
    let events: Vec<(f64, HoType)> = trace.handovers.iter().map(|h| (h.t_command, h.ho_type)).collect();

    let run = PrognosRun {
        windows,
        episodes,
        events,
        f1_timeline,
        lead_times,
        learned: pg.learner().learned_total() - learned0,
        evicted: pg.learner().evicted_total() - evicted0,
    };
    (run, (pg, t_base + trace.meta.duration_s + 10.0))
}

/// Ground-truth throughput-change scores for the `-GT` app variants: for
/// time `t` inside a HO's influence window, the capacity a transfer
/// actually experiences across the HO (the execution-window mean) relative
/// to the pre-HO capacity; 1.0 elsewhere.
pub fn gt_score_fn(trace: &Trace) -> impl Fn(f64) -> f64 {
    let series = trace.bandwidth_series();
    let mean_in = move |series: &[(f64, f64)], a: f64, b: f64| -> f64 {
        let vals: Vec<f64> = series.iter().filter(|p| p.0 >= a && p.0 < b).map(|p| p.1).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let mut events: Vec<(f64, f64, f64)> = Vec::new(); // (start, end, score)
    for h in &trace.handovers {
        let pre = mean_in(&series, h.t_decision - 2.0, h.t_decision - 1.0);
        let through = mean_in(&series, h.t_decision, h.t_complete + 0.5);
        if pre > 1.0 {
            let score = (through / pre).clamp(0.05, 20.0);
            events.push((h.t_decision - 1.0, h.t_complete + 0.5, score));
        }
    }
    move |t: f64| events.iter().find(|(a, b, _)| t >= *a && t <= *b).map(|&(_, _, s)| s).unwrap_or(1.0)
}

/// Calibrates a [`prognos::HoScoreTable`] from a set of traces' observed
/// per-HO phase throughputs, scoring the *through-HO* capacity (execution
/// window) against the pre-HO capacity — the quantity an in-flight chunk
/// actually experiences when a predicted HO arrives.
pub fn calibrate_scores(traces: &[&Trace]) -> prognos::HoScoreTable {
    let mut samples = Vec::new();
    for t in traces {
        for p in fiveg_analysis::ho_phase_throughput(t) {
            samples.push((p.ho_type, p.nr_band, p.pre_mbps, p.exec_mbps));
        }
    }
    prognos::HoScoreTable::calibrate(&samples)
}

/// Prognos-derived score function for the `-PR` app variants: the window
/// ho_scores of a completed run, step-interpolated over time.
pub fn pr_score_fn(run: &PrognosRun) -> impl Fn(f64) -> f64 {
    let windows: Vec<(f64, f64)> = run.windows.iter().map(|w| (w.t, w.ho_score)).collect();
    move |t: f64| match windows.binary_search_by(|p| p.0.partial_cmp(&t).unwrap()) {
        Ok(i) => windows[i].1,
        Err(0) => 1.0,
        Err(i) => windows[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Carrier;
    use fiveg_sim::ScenarioBuilder;

    fn short_trace() -> Trace {
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 8.0, 7).duration_s(240.0).sample_hz(20.0).build().run()
    }

    #[test]
    fn driver_produces_windows_and_learns() {
        let t = short_trace();
        let (run, pg) = run_prognos(&t, PrognosConfig::default(), None, None);
        assert!(run.windows.len() > 200);
        assert!(pg.0.learner().phase_count() > 0);
        // some HO windows must exist in the truth
        assert!(run.windows.iter().any(|w| w.truth.is_some()));
    }

    #[test]
    fn carry_over_warm_start_improves_f1() {
        let t = short_trace();
        let (cold, carry) = run_prognos(&t, PrognosConfig::default(), None, None);
        let (warm, _) = run_prognos(&t, PrognosConfig::default(), None, Some(carry));
        assert!(warm.metrics().f1 >= cold.metrics().f1, "warm {} vs cold {}", warm.metrics().f1, cold.metrics().f1);
    }

    #[test]
    fn instrumented_replay_records_prognos_phases() {
        use fiveg_telemetry::{Telemetry, TelemetryConfig};
        let t = short_trace();
        let tele = Telemetry::new(TelemetryConfig::on());
        let (run, _) = run_prognos_instrumented(&t, PrognosConfig::default(), &tele);
        assert!(!run.windows.is_empty());
        assert!(tele.counter_value("prognos.predict_calls") > 0);
        let names: Vec<&str> = tele.phases().iter().map(|p| p.phase.name()).collect();
        assert!(names.contains(&"prognos_prep") && names.contains(&"prognos_exec"), "{names:?}");
    }

    #[test]
    fn label_windows_cover_duration() {
        let t = short_trace();
        let labels = label_windows(&t, 1.0);
        assert!((labels.len() as f64 - t.meta.duration_s).abs() < 2.0);
        let ho_windows = labels.iter().filter(|(_, h)| h.is_some()).count();
        assert!(ho_windows >= t.handovers.len() / 2);
    }

    #[test]
    fn gt_score_is_one_away_from_hos() {
        let t = short_trace();
        let f = gt_score_fn(&t);
        // far beyond the last HO
        assert_eq!(f(t.meta.duration_s + 100.0), 1.0);
    }

    // --- metrics_tolerant_from edge cases ---

    fn series(pairs: &[(usize, usize)]) -> Vec<(Option<HoType>, Option<HoType>)> {
        pairs.iter().map(|&(t, p)| (to_ho(t), to_ho(p))).collect()
    }

    #[test]
    fn tolerant_empty_series_is_all_zero() {
        let m = metrics_tolerant_from(&[], 2);
        assert_eq!((m.precision, m.recall, m.f1, m.accuracy), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn tolerant_zero_tolerance_is_strict_alignment() {
        // truth at 1, prediction at 2: a hit with tol 1, a miss with tol 0
        let s = series(&[(0, 0), (1, 0), (0, 1), (0, 0)]);
        let m0 = metrics_tolerant_from(&s, 0);
        assert_eq!(m0.recall, 0.0);
        assert_eq!(m0.precision, 0.0);
        let m1 = metrics_tolerant_from(&s, 1);
        assert_eq!(m1.recall, 1.0);
        assert_eq!(m1.precision, 1.0);
    }

    #[test]
    fn tolerant_boundary_truths_do_not_overflow() {
        // truths at both ends of the series with a tolerance wider than
        // the series itself: index arithmetic must saturate, not panic
        let s = series(&[(1, 0), (0, 0), (0, 1)]);
        let m = metrics_tolerant_from(&s, 10);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn tolerant_prediction_consumed_once() {
        // two truths share one same-type prediction within tolerance: only
        // one can match it, the other is a miss
        let s = series(&[(1, 0), (0, 1), (1, 0)]);
        let m = metrics_tolerant_from(&s, 1);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.precision, 1.0);
    }

    #[test]
    fn tolerant_wrong_type_within_span_is_no_match() {
        // a type-2 prediction near a type-1 truth: miss + false alarm
        let s = series(&[(1, 0), (0, 2), (0, 0)]);
        let m = metrics_tolerant_from(&s, 2);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.precision, 0.0);
        // background windows still count toward accuracy (index 2 only)
        assert!((m.accuracy - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tolerant_all_background_is_perfect_accuracy_zero_f1() {
        let s = series(&[(0, 0), (0, 0), (0, 0)]);
        let m = metrics_tolerant_from(&s, 2);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 0.0);
    }
}
