//! Fig. 4 — Live video conferencing (Zoom-like) during HOs, NSA low-band.
//!
//! Paper: average latency ×2.26 (up to ×14.5 worst-case) and packet loss
//! ×2.24 inside ±1 s HO windows versus no-HO periods.

use fiveg_apps::conferencing_report;
use fiveg_bench::fmt;
use fiveg_ran::Carrier;
use fiveg_sim::{ScenarioBuilder, Workload};

fn main() {
    fmt::header("Fig. 4 — video conferencing QoE around HOs (OpX NSA city drive)");

    // ~14-minute downtown loop like the paper's trace, 1 Mbps one-on-one call
    let mut lat_f = Vec::new();
    let mut worst_f = Vec::new();
    let mut loss_f = Vec::new();
    for seed in 41..44u64 {
        let t = ScenarioBuilder::city_loop(Carrier::OpX, seed)
            .duration_s(840.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 1.0, deadline_ms: 150.0 })
            .build()
            .run();
        if let Some(r) = conferencing_report(&t, 1.0) {
            println!(
                "  seed {seed}: HOs {:<3} latency {:.0} vs {:.0} ms  loss {:.3} vs {:.3}",
                r.ho_count, r.latency_ho_ms, r.latency_no_ho_ms, r.loss_ho, r.loss_no_ho
            );
            lat_f.push(r.latency_factor());
            worst_f.push(r.worst_latency_factor());
            if r.loss_no_ho > 0.003 {
                loss_f.push(r.loss_factor());
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    fmt::compare("average latency inflation during HOs", "2.26x", &format!("{:.2}x", mean(&lat_f)));
    fmt::compare(
        "worst-case latency inflation",
        "up to 14.5x",
        &format!("{:.1}x", worst_f.iter().cloned().fold(0.0, f64::max)),
    );
    if loss_f.is_empty() {
        fmt::compare("packet loss inflation during HOs", "2.24x", "no-HO loss was zero (cleaner than paper)");
    } else {
        fmt::compare("packet loss inflation during HOs", "2.24x", &format!("{:.2}x", mean(&loss_f)));
    }

    assert!(mean(&lat_f) > 1.3, "HOs must inflate conferencing latency");
    println!("\nOK fig04_conferencing");
}
