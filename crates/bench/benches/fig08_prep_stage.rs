//! Fig. 8 — HO preparation stage (T1) for OpY: LTE vs NSA vs SA.
//!
//! Paper: NSA T1 ≈ 48% longer than LTE; SA's median T1 is comparable to
//! (slightly better than) LTE's but with much larger variance.

use fiveg_analysis::DurationStats;
use fiveg_bench::fmt;
use fiveg_bench::sweep::{default_threads, run_ordered};
use fiveg_ran::{Arch, Carrier, HoType};
use fiveg_sim::{ScenarioBuilder, Telemetry, TelemetryConfig};

fn main() {
    fmt::header("Fig. 8 — HO preparation stage T1, OpY (LTE vs NSA vs SA)");

    // The three architecture legs are independent scenarios — simulate
    // them concurrently. The NSA leg runs instrumented: the ho.t1_ms
    // histogram and per-phase tick-loop timings corroborate the table.
    let tele = Telemetry::new(TelemetryConfig::on());
    let mk = |arch| ScenarioBuilder::freeway(Carrier::OpY, arch, 35.0, 81).duration_s(1100.0).sample_hz(10.0);
    let scenarios =
        [mk(Arch::Lte).build(), mk(Arch::Nsa).telemetry(TelemetryConfig::on()).build(), mk(Arch::Sa).build()];
    let mut traces = run_ordered(scenarios.len(), default_threads(), |i| match i {
        1 => scenarios[i].run_instrumented(&tele),
        i => scenarios[i].run(),
    });
    let (lte, nsa, sa) = {
        let sa = traces.pop().unwrap();
        let nsa = traces.pop().unwrap();
        (traces.pop().unwrap(), nsa, sa)
    };

    let mut rows = Vec::new();
    let mut push = |label: &str, s: DurationStats| {
        rows.push(vec![
            label.to_string(),
            s.count.to_string(),
            fmt::f(s.mean_ms, 0),
            fmt::f(s.median_ms, 0),
            fmt::f(s.p25_ms, 0),
            fmt::f(s.p75_ms, 0),
            fmt::f(s.std_ms, 0),
        ]);
    };
    let lte_t1 = DurationStats::t1(&lte.handovers, |h| h.ho_type == HoType::Lteh);
    push("LTEH (LTE)", lte_t1);
    push("LTEH (NSA)", DurationStats::t1(&nsa.handovers, |h| h.ho_type == HoType::Lteh));
    push("SCGA (NSA)", DurationStats::t1(&nsa.handovers, |h| h.ho_type == HoType::Scga));
    push("SCGM (NSA)", DurationStats::t1(&nsa.handovers, |h| h.ho_type == HoType::Scgm));
    push("SCGC (NSA)", DurationStats::t1(&nsa.handovers, |h| h.ho_type == HoType::Scgc));
    let sa_t1 = DurationStats::t1(&sa.handovers, |h| h.ho_type == HoType::Mcgh);
    push("MCGH (SA)", sa_t1);
    fmt::table(&["HO type", "n", "mean ms", "median", "p25", "p75", "std"], &rows);

    let nsa_t1 = DurationStats::t1(&nsa.handovers, |_| true);
    fmt::compare(
        "NSA T1 increase over LTE",
        "~48%",
        &format!("{:.0}%", (nsa_t1.mean_ms / lte_t1.mean_ms - 1.0) * 100.0),
    );
    fmt::compare(
        "SA median T1 vs LTE median",
        "comparable/slightly better",
        &format!("{:.0} vs {:.0} ms", sa_t1.median_ms, lte_t1.median_ms),
    );
    fmt::compare(
        "SA T1 std vs LTE T1 std (high variance)",
        "much larger",
        &format!("{:.0} vs {:.0} ms", sa_t1.std_ms, lte_t1.std_ms),
    );

    fmt::telemetry("telemetry (NSA leg, instrumented run)", &tele);

    assert!(nsa_t1.mean_ms > lte_t1.mean_ms * 1.2, "NSA T1 must exceed LTE T1");
    assert!(sa_t1.std_ms > lte_t1.std_ms * 1.5, "SA T1 must be high-variance");
    let t1_hist = tele.histogram_snapshot("ho.t1_ms").expect("instrumented run registers T1");
    assert!(t1_hist.count > 0, "instrumented run must observe T1 durations");
    println!("\nOK fig08_prep_stage");
}
