//! Fig. 18 — prediction lead time with vs without the report predictor.
//!
//! Paper: the report predictor lets Prognos fire ~931 ms earlier on average
//! (with a 1.2% accuracy cost); without it, predictions trail the actual
//! MR by only ~70 ms median.

use fiveg_analysis::{mean, median, percentile};
use fiveg_bench::driver::{run_prognos, run_prognos_instrumented};
use fiveg_bench::fmt;
use fiveg_bench::sweep::{default_threads, run_ordered};
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use prognos::PrognosConfig;

fn main() {
    fmt::header("Fig. 18 — prediction lead time (report predictor on/off)");

    // The three seeds are independent end-to-end pipelines (simulate +
    // replay twice) — run them concurrently, each with its own telemetry
    // handle, then absorb per-seed registries in seed order so the
    // accumulated counters/phase timings match the serial run.
    let tele = Telemetry::new(TelemetryConfig::on());
    let per_seed = run_ordered(3, default_threads(), |i| {
        let trace = fiveg_sim::ScenarioBuilder::walking_loop(fiveg_ran::Carrier::OpX, 30.0, 1, 0xF18 + i as u64)
            .sample_hz(20.0)
            .build()
            .run();
        let local = Telemetry::new(TelemetryConfig::on());
        let (on, _) = run_prognos_instrumented(&trace, PrognosConfig::default(), &local);
        let cfg_off = PrognosConfig { use_report_predictor: false, ..Default::default() };
        let (off, _) = run_prognos(&trace, cfg_off, None, None);
        let accs = (on.metrics_events(2.0, 0.3).accuracy, off.metrics_events(2.0, 0.3).accuracy);
        (on.lead_times, off.lead_times, accs, local)
    });
    let mut with_rp: Vec<(bool, f64)> = Vec::new();
    let mut without_rp: Vec<(bool, f64)> = Vec::new();
    let mut acc_with = Vec::new();
    let mut acc_without = Vec::new();
    for (on_leads, off_leads, (acc_on, acc_off), local) in per_seed {
        with_rp.extend(on_leads);
        without_rp.extend(off_leads);
        acc_with.push(acc_on);
        acc_without.push(acc_off);
        tele.absorb(&local);
    }

    let split = |v: &[(bool, f64)], is_5g: bool| -> Vec<f64> {
        v.iter().filter(|&&(g, _)| g == is_5g).map(|&(_, l)| l * 1000.0).collect()
    };
    fmt::section("lead time CDFs, ms (per correctly-anticipated HO)");
    let mut rows = Vec::new();
    for (label, v) in [
        ("LTE HOs w/ report predictor", split(&with_rp, false)),
        ("LTE HOs w/o report predictor", split(&without_rp, false)),
        ("5G HOs w/ report predictor", split(&with_rp, true)),
        ("5G HOs w/o report predictor", split(&without_rp, true)),
    ] {
        if v.is_empty() {
            continue;
        }
        rows.push(vec![
            label.into(),
            v.len().to_string(),
            fmt::f(percentile(&v, 25.0), 0),
            fmt::f(median(&v), 0),
            fmt::f(percentile(&v, 75.0), 0),
            fmt::f(mean(&v), 0),
        ]);
    }
    fmt::table(&["population", "n", "p25 ms", "median ms", "p75 ms", "mean ms"], &rows);

    let all = |v: &[(bool, f64)]| -> Vec<f64> { v.iter().map(|&(_, l)| l * 1000.0).collect() };
    let gain = mean(&all(&with_rp)) - mean(&all(&without_rp));
    fmt::compare("mean lead-time gain from the report predictor", "~931 ms", &format!("{gain:.0} ms"));
    let m = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    fmt::compare(
        "accuracy cost of the report predictor",
        "~1.2%",
        &format!("{:+.1}%", (m(&acc_with) - m(&acc_without)) * 100.0),
    );
    fmt::compare(
        "median lead w/o report predictor (reactive)",
        "~70 ms",
        &format!("{:.0} ms", median(&all(&without_rp))),
    );

    fmt::telemetry("telemetry (report-predictor-on replays)", &tele);

    assert!(gain > 200.0, "the report predictor must buy substantial lead time: {gain} ms");
    assert!(tele.counter_value("prognos.predict_calls") > 0, "replay must be instrumented");
    println!("\nOK fig18_leadtime");
}
