//! Criterion micro-benchmarks: the performance-sensitive paths of the
//! library. Prognos must be "light-weight" enough for real-time use on a
//! UE (§7.1) — its per-sample predict cost is the headline number here.

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_geo::{convex_hull, Point};
use fiveg_radio::Rrs;

mod helpers {
    pub use fiveg_ran::{Arch, Carrier};
    pub use fiveg_sim::ScenarioBuilder;
}

fn bench_prognos_predict(c: &mut Criterion) {
    use fiveg_rrc::{EventConfig, EventKind, MeasEvent, Pci};
    use prognos::{CellObs, LegSnapshot, Prognos, PrognosConfig, UeContext};

    let mut pg = Prognos::new(PrognosConfig::default());
    pg.set_configs(vec![
        EventConfig::typical(MeasEvent::lte(EventKind::A3)),
        EventConfig::typical(MeasEvent::nr(EventKind::A2)),
        EventConfig::typical(MeasEvent::nr(EventKind::B1)),
    ]);
    for _ in 0..10 {
        pg.on_report(MeasEvent::nr(EventKind::B1));
        pg.on_handover(fiveg_ran::HoType::Scga);
        pg.on_report(MeasEvent::nr(EventKind::A2));
        pg.on_handover(fiveg_ran::HoType::Scgr);
    }
    // fill histories with 8 cells at 20 Hz
    let rrs = |x: f64| Rrs { rsrp_dbm: x, rsrq_db: -10.0, sinr_db: 8.0 };
    for i in 0..21 {
        let t = i as f64 * 0.05;
        let obs = |p: u16, base: f64| CellObs { pci: Pci(p), rrs: rrs(base - t), group: Some(p as u32 / 4) };
        pg.on_sample(
            t,
            &LegSnapshot { serving: Some(obs(1, -90.0)), neighbors: (2..6).map(|p| obs(p, -95.0)).collect() },
            &LegSnapshot { serving: Some(obs(10, -92.0)), neighbors: (11..14).map(|p| obs(p, -97.0)).collect() },
        );
    }
    let ctx = UeContext { arch: helpers::Arch::Nsa, has_scg: true, nr_band: Some(fiveg_radio::BandClass::Low) };
    c.bench_function("prognos_predict_per_sample", |b| {
        b.iter(|| {
            let p = pg.predict(1.05, &ctx);
            std::hint::black_box(p)
        })
    });
}

fn bench_rrc_codec(c: &mut Criterion) {
    use fiveg_rrc::{decode, encode, EventKind, MeasEvent, NeighborMeas, Pci, RrcMessage};
    let msg = RrcMessage::MeasurementReport {
        event: MeasEvent::nr(EventKind::A3),
        serving_pci: Pci(77),
        serving_rrs: Rrs { rsrp_dbm: -101.5, rsrq_db: -11.0, sinr_db: 6.5 },
        neighbors: (0..4)
            .map(|i| NeighborMeas {
                pci: Pci(100 + i),
                rrs: Rrs { rsrp_dbm: -95.0 - i as f64, rsrq_db: -10.0, sinr_db: 8.0 },
            })
            .collect(),
    };
    c.bench_function("rrc_encode_measurement_report", |b| b.iter(|| std::hint::black_box(encode(&msg))));
    let bytes = encode(&msg);
    c.bench_function("rrc_decode_measurement_report", |b| {
        b.iter(|| std::hint::black_box(decode(bytes.clone()).unwrap()))
    });
}

fn bench_sim_tick_rate(c: &mut Criterion) {
    // full simulator throughput: samples simulated per wall second
    c.bench_function("sim_freeway_30s_at_10hz", |b| {
        b.iter(|| {
            let t = helpers::ScenarioBuilder::freeway(helpers::Carrier::OpY, helpers::Arch::Nsa, 2.0, 9)
                .duration_s(30.0)
                .sample_hz(10.0)
                .build()
                .run();
            std::hint::black_box(t.samples.len())
        })
    });
    // the same run with the deterministic instrumentation enabled
    // (counters + journal, no wall-clock timers): the overhead budget is
    // the delta against the bench above
    c.bench_function("sim_freeway_30s_at_10hz_telemetry", |b| {
        b.iter(|| {
            let t = helpers::ScenarioBuilder::freeway(helpers::Carrier::OpY, helpers::Arch::Nsa, 2.0, 9)
                .duration_s(30.0)
                .sample_hz(10.0)
                .telemetry(fiveg_sim::TelemetryConfig::deterministic())
                .build()
                .run();
            std::hint::black_box(t.samples.len())
        })
    });
}

fn bench_analysis_kernels(c: &mut Criterion) {
    let xs: Vec<f64> = (0..2000).map(|i| (i % 137) as f64 * 10.0).collect();
    let grid: Vec<f64> = (0..100).map(|i| i as f64 * 15.0).collect();
    c.bench_function("kde_density_2000x100", |b| {
        b.iter(|| std::hint::black_box(fiveg_analysis::kde_density(&xs, &grid, None)))
    });

    let pts: Vec<Point> = (0..500).map(|i| Point::new((i * 37 % 100) as f64, (i * 61 % 89) as f64)).collect();
    c.bench_function("convex_hull_500", |b| b.iter(|| std::hint::black_box(convex_hull(&pts))));
}

criterion_group!(benches, bench_prognos_predict, bench_rrc_codec, bench_sim_tick_rate, bench_analysis_kernels);
criterion_main!(benches);
