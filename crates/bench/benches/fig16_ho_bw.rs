//! Fig. 16 (and Appendix A.3) — per-HO-type throughput in the three phases
//! HO_pre / HO_exec / HO_post, mmWave NSA walking loop with bulk download.
//!
//! Paper: SCGA raises throughput ~17×; SCGR cuts it ~7×; horizontal HOs
//! (SCGM/SCGC/LTEH) lose 1.5–4.8× during execution; SCGM gains ~43% post;
//! LTEH ends ~4% lower.

use fiveg_analysis::tput_phases::{ho_phase_throughput, mean_phase};
use fiveg_bench::fmt;
use fiveg_ran::{Carrier, HoType};
use fiveg_sim::{ScenarioBuilder, Trace};

fn collect(seeds: std::ops::Range<u64>) -> Vec<fiveg_analysis::PhaseTput> {
    let mut all = Vec::new();
    for seed in seeds {
        let t: Trace = ScenarioBuilder::urban_walk_mmwave(Carrier::OpX, seed).sample_hz(20.0).build().run();
        // the figure is about mmWave NSA: keep mmWave-leg HOs and the 4G
        // anchor HOs of the same area
        all.extend(
            ho_phase_throughput(&t)
                .into_iter()
                .filter(|p| p.nr_band == Some(fiveg_radio::BandClass::MmWave) || p.nr_band.is_none()),
        );
    }
    all
}

fn main() {
    fmt::header("Fig. 16 — throughput around HOs by type (mmWave NSA walk, iPerf bulk)");
    let phases = collect(160..163);

    let mut rows = Vec::new();
    for ho in [HoType::Scgm, HoType::Scgc, HoType::Mnbh, HoType::Lteh, HoType::Scga, HoType::Scgr] {
        let n = phases.iter().filter(|p| p.ho_type == ho).count();
        if n == 0 {
            continue;
        }
        let pre = mean_phase(&phases, ho, |p| p.pre_mbps);
        let exec = mean_phase(&phases, ho, |p| p.exec_mbps);
        let post = mean_phase(&phases, ho, |p| p.post_mbps);
        rows.push(vec![ho.acronym().to_string(), n.to_string(), fmt::f(pre, 0), fmt::f(exec, 0), fmt::f(post, 0)]);
    }
    fmt::table(&["HO type", "n", "pre Mbps", "exec Mbps", "post Mbps"], &rows);

    let pre = |ho| mean_phase(&phases, ho, |p| p.pre_mbps);
    let exec = |ho| mean_phase(&phases, ho, |p| p.exec_mbps);
    let post = |ho| mean_phase(&phases, ho, |p| p.post_mbps);

    if pre(HoType::Scga) > 1.0 {
        fmt::compare("SCGA post/pre boost", "~17x", &format!("{:.1}x", post(HoType::Scga) / pre(HoType::Scga)));
    }
    if post(HoType::Scgr) > 1.0 {
        fmt::compare("SCGR pre/post cut", "~7x", &format!("{:.1}x", pre(HoType::Scgr) / post(HoType::Scgr)));
    }
    for ho in [HoType::Scgm, HoType::Scgc] {
        if exec(ho) > 1.0 {
            fmt::compare(
                &format!("{} throughput loss during execution", ho.acronym()),
                "1.5x - 4.8x",
                &format!("{:.1}x", pre(ho) / exec(ho)),
            );
        }
    }
    if pre(HoType::Scgm) > 1.0 {
        fmt::compare(
            "SCGM post-HO change",
            "+43%",
            &format!("{:+.0}%", (post(HoType::Scgm) / pre(HoType::Scgm) - 1.0) * 100.0),
        );
    }

    // shape assertions
    if pre(HoType::Scga) > 1.0 && post(HoType::Scga) > 1.0 {
        assert!(post(HoType::Scga) > pre(HoType::Scga) * 2.0, "SCGA must boost hard in mmWave");
    }
    // NOTE: our SCG release is quality-triggered, so the NR leg is already
    // degraded in the pre window — the paper's ~7x pre/post cut (RSRP-
    // triggered releases from a still-fast cell) does not fully reproduce;
    // see EXPERIMENTS.md. We only require that post-SCGR throughput is
    // LTE-bounded (no 5G-scale rates).
    if post(HoType::Scgr) > 1.0 {
        assert!(post(HoType::Scgr) < 400.0, "post-SCGR must be LTE-bounded");
    }
    if pre(HoType::Scgc) > 1.0 && exec(HoType::Scgc) > 0.0 {
        assert!(exec(HoType::Scgc) < pre(HoType::Scgc), "exec phase must dip");
    }
    println!("\nOK fig16_ho_bw");
}
