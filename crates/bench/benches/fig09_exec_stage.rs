//! Fig. 9 — HO execution stage (T2) across access technologies and bands.
//!
//! Paper: NSA T2 is 1.4–5.4× LTE's depending on HO type; mmWave T2 is
//! 42–45% larger than low-band within NSA.

use fiveg_analysis::DurationStats;
use fiveg_bench::fmt;
use fiveg_bench::sweep::{default_threads, run_ordered};
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier, HoType};
use fiveg_sim::{ScenarioBuilder, Telemetry, TelemetryConfig};

fn main() {
    fmt::header("Fig. 9 — HO execution stage T2 (tech + band comparison)");

    // Four independent scenarios, simulated concurrently: OpY freeway
    // (LTE vs NSA vs SA) plus the OpX dense city loop for the band
    // comparison. The dense run is instrumented: the ho.t2_ms histogram
    // and journal corroborate the table below.
    let tele = Telemetry::new(TelemetryConfig::on());
    let mk = |arch| ScenarioBuilder::freeway(Carrier::OpY, arch, 35.0, 91).duration_s(1100.0).sample_hz(10.0);
    let scenarios = [
        mk(Arch::Lte).build(),
        mk(Arch::Nsa).build(),
        mk(Arch::Sa).build(),
        ScenarioBuilder::city_loop_dense(Carrier::OpX, 92)
            .duration_s(1500.0)
            .sample_hz(10.0)
            .telemetry(TelemetryConfig::on())
            .build(),
    ];
    let mut traces = run_ordered(scenarios.len(), default_threads(), |i| match i {
        3 => scenarios[i].run_instrumented(&tele),
        i => scenarios[i].run(),
    });
    let (lte, nsa, sa, dense) = {
        let dense = traces.pop().unwrap();
        let sa = traces.pop().unwrap();
        let nsa = traces.pop().unwrap();
        (traces.pop().unwrap(), nsa, sa, dense)
    };

    let mut rows = Vec::new();
    let mut push = |label: &str, s: DurationStats| {
        rows.push(vec![
            label.to_string(),
            s.count.to_string(),
            fmt::f(s.mean_ms, 0),
            fmt::f(s.median_ms, 0),
            fmt::f(s.p25_ms, 0),
            fmt::f(s.p75_ms, 0),
        ]);
    };
    let lte_t2 = DurationStats::t2(&lte.handovers, |h| h.ho_type == HoType::Lteh);
    push("LTEH (LTE, mid-band)", lte_t2);
    push("LTEH (NSA)", DurationStats::t2(&nsa.handovers, |h| h.ho_type == HoType::Lteh));
    let scgc_t2 = DurationStats::t2(&nsa.handovers, |h| h.ho_type == HoType::Scgc);
    push("SCGC (NSA)", scgc_t2);
    push("SCGM (NSA)", DurationStats::t2(&nsa.handovers, |h| h.ho_type == HoType::Scgm));
    push("MCGH (SA, low-band)", DurationStats::t2(&sa.handovers, |_| true));
    let low_t2 =
        DurationStats::t2(&dense.handovers, |h| h.ho_type.is_horizontal() && h.nr_band == Some(BandClass::Low));
    let mm_t2 =
        DurationStats::t2(&dense.handovers, |h| h.ho_type.is_horizontal() && h.nr_band == Some(BandClass::MmWave));
    push("NSA horizontal, Low-Band (OpX city)", low_t2);
    push("NSA horizontal, mmWave (OpX city)", mm_t2);
    fmt::table(&["HO type", "n", "mean ms", "median", "p25", "p75"], &rows);

    let scgr_t2 = DurationStats::t2(&nsa.handovers, |h| h.ho_type == HoType::Scgr);
    fmt::compare(
        "NSA T2 / LTE T2 range (SCGR..SCGC)",
        "1.4x - 5.4x",
        &format!("{:.1}x - {:.1}x", scgr_t2.mean_ms / lte_t2.mean_ms, scgc_t2.mean_ms / lte_t2.mean_ms),
    );
    fmt::compare(
        "mmWave T2 increase over low-band (NSA)",
        "42-45%",
        &format!("{:.0}%", (mm_t2.mean_ms / low_t2.mean_ms - 1.0) * 100.0),
    );

    fmt::telemetry("telemetry (OpX dense city, instrumented run)", &tele);

    assert!(scgc_t2.mean_ms > lte_t2.mean_ms * 1.4, "NSA T2 must exceed LTE T2");
    if low_t2.count > 3 && mm_t2.count > 3 {
        assert!(mm_t2.mean_ms > low_t2.mean_ms * 1.2, "mmWave T2 must exceed low-band");
    }
    let t2_hist = tele.histogram_snapshot("ho.t2_ms").expect("instrumented run registers T2");
    assert!(t2_hist.count > 0, "instrumented run must observe T2 durations");
    println!("\nOK fig09_exec_stage");
}
