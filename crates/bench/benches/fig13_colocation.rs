//! Fig. 13 + §6.3 — eNB/gNB co-location: duration impact and prevalence.
//!
//! Paper: NSA HOs whose 4G and 5G PCIs are equal (co-located towers) are
//! ~13 ms shorter on average; co-location is observed in 5%–36% of NSA
//! low-band samples depending on carrier; same-PCI pairs are verified by
//! overlapping convex hulls.

use fiveg_analysis::{colocated_sample_fraction, same_pci_pairs_overlap, DurationStats};
use fiveg_bench::fmt;
use fiveg_ran::{Carrier, HoCategory};
use fiveg_sim::{ScenarioBuilder, Trace};

fn city(carrier: Carrier, seed: u64) -> Trace {
    ScenarioBuilder::city_loop(carrier, seed).duration_s(1400.0).sample_hz(10.0).build().run()
}

fn main() {
    fmt::header("Fig. 13 / §6.3 — eNB/gNB co-location");

    fmt::section("co-located sample fraction per carrier (paper: 5%-36%)");
    let mut traces = Vec::new();
    let mut rows = Vec::new();
    for (i, carrier) in Carrier::ALL.iter().enumerate() {
        let t = city(*carrier, 130 + i as u64);
        let f = colocated_sample_fraction(&t);
        let (verified, total) = same_pci_pairs_overlap(&t);
        rows.push(vec![carrier.to_string(), format!("{:.0}%", f * 100.0), format!("{verified}/{total}")]);
        traces.push(t);
    }
    fmt::table(&["carrier", "same-PCI samples", "hulls overlapping"], &rows);

    fmt::section("HO duration: same 4G/5G PCI vs different (NSA 5G HOs)");
    let mut same_all = Vec::new();
    let mut diff_all = Vec::new();
    for t in &traces {
        for h in &t.handovers {
            if h.nr_band.is_some() && h.ho_type.category() == HoCategory::FiveG {
                if h.co_located {
                    same_all.push(h.duration_ms());
                } else {
                    diff_all.push(h.duration_ms());
                }
            }
        }
    }
    let same = DurationStats::from_values(&same_all);
    let diff = DurationStats::from_values(&diff_all);
    fmt::table(
        &["group", "n", "mean ms", "median ms"],
        &[
            vec![
                "same PCI (co-located)".into(),
                same.count.to_string(),
                fmt::f(same.mean_ms, 0),
                fmt::f(same.median_ms, 0),
            ],
            vec!["diff PCI".into(), diff.count.to_string(), fmt::f(diff.mean_ms, 0), fmt::f(diff.median_ms, 0)],
        ],
    );
    fmt::compare(
        "cross-tower penalty (diff - same, mean)",
        "~13 ms",
        &format!("{:.0} ms", diff.mean_ms - same.mean_ms),
    );
    if same.count >= 5 && diff.count >= 5 {
        assert!(diff.mean_ms > same.mean_ms + 5.0, "co-located HOs must be shorter");
    }
    println!("\nOK fig13_colocation");
}
