//! Fig. 10 — Power/energy of handovers: LTE vs NSA low-band vs NSA mmWave.
//!
//! Paper: NSA HOs draw 1.2–2.3× the power of LTE HOs; a single mmWave HO
//! draws ~54% less power than a low-band HO (shorter PRACH) yet mmWave
//! costs 1.9–2.4× more energy per km (sheer HO frequency).

use fiveg_analysis::EnergyReport;
use fiveg_bench::fmt;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::ScenarioBuilder;
use fiveg_ue::PowerModel;

fn main() {
    fmt::header("Fig. 10 — HO power and energy per distance (OpX)");
    let model = PowerModel::default();

    // LTE mid-band freeway drive
    let lte =
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Lte, 30.0, 101).duration_s(900.0).sample_hz(10.0).build().run();
    // NSA low-band freeway drive
    let low =
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 30.0, 101).duration_s(900.0).sample_hz(10.0).build().run();
    // NSA mmWave city loops
    let mm = ScenarioBuilder::city_loop_dense(Carrier::OpX, 102).duration_s(1500.0).sample_hz(10.0).build().run();

    let r_lte = EnergyReport::over(&lte, &model, |_| true);
    let r_low = EnergyReport::over(&low, &model, |h| h.nr_band != Some(BandClass::MmWave));
    let r_mm = EnergyReport::over(&mm, &model, |h| h.nr_band == Some(BandClass::MmWave));

    fmt::table(
        &["scenario", "HOs", "mean HO power W", "energy J/km", "total mAh"],
        &[
            vec![
                "LTE (mid-band)".into(),
                r_lte.ho_count.to_string(),
                fmt::f(r_lte.mean_ho_power_w, 2),
                fmt::f(r_lte.j_per_km, 2),
                fmt::f(r_lte.total_mah, 2),
            ],
            vec![
                "NSA low-band".into(),
                r_low.ho_count.to_string(),
                fmt::f(r_low.mean_ho_power_w, 2),
                fmt::f(r_low.j_per_km, 2),
                fmt::f(r_low.total_mah, 2),
            ],
            vec![
                "NSA mmWave".into(),
                r_mm.ho_count.to_string(),
                fmt::f(r_mm.mean_ho_power_w, 2),
                fmt::f(r_mm.j_per_km, 2),
                fmt::f(r_mm.total_mah, 2),
            ],
        ],
    );

    fmt::compare(
        "NSA HO power vs LTE HO power",
        "1.2x - 2.3x",
        &format!("{:.1}x", r_low.mean_ho_power_w / r_lte.mean_ho_power_w),
    );
    fmt::compare(
        "single mmWave HO power vs low-band HO power",
        "-54%",
        &format!("{:.0}%", (r_mm.mean_ho_power_w / r_low.mean_ho_power_w - 1.0) * 100.0),
    );
    // compare per-km energies on comparable NR HOs
    let low_per_km = r_low.j_per_km;
    let mm_per_km = r_mm.j_per_km;
    fmt::compare("mmWave energy per km vs low-band", "1.9x - 2.4x", &format!("{:.1}x", mm_per_km / low_per_km));

    assert!(r_low.mean_ho_power_w > r_lte.mean_ho_power_w * 1.15);
    assert!(r_mm.mean_ho_power_w < r_low.mean_ho_power_w * 0.7);
    assert!(mm_per_km > low_per_km * 1.3);
    println!("\nOK fig10_energy");
}
