//! Table 4 — LTE/NR measurement events and their trigger conditions,
//! exercised against the implementation's trigger logic.

use fiveg_bench::fmt;
use fiveg_rrc::{EventConfig, EventKind, MeasEvent};

fn main() {
    fmt::header("Table 4 — measurement events (trigger logic verification)");

    let rows = vec![
        vec!["A1".into(), "serving better than threshold".into(), "Ms > thr".into()],
        vec!["A2".into(), "serving worse than threshold".into(), "Mp < thr".into()],
        vec!["A3 (A6)".into(), "neighbor offset better than serving".into(), "Mn > Mp + off".into()],
        vec!["A4 (B1)".into(), "inter-RAT neighbor better than threshold".into(), "Mn > thr".into()],
        vec![
            "A5".into(),
            "serving worse than thr1 AND neighbor better than thr2".into(),
            "Mp < thr1 && Mn > thr2".into(),
        ],
        vec!["P".into(), "periodic reporting".into(), "n/a".into()],
    ];
    fmt::table(&["Event", "Description", "Trigger"], &rows);

    // exercise each trigger condition on both sides of its boundary
    let mut checks = 0;
    let check = |kind: EventKind, serving: f64, neighbor: f64, expect: bool| {
        let c = EventConfig::typical(MeasEvent::lte(kind));
        assert_eq!(c.entered(serving, neighbor), expect, "{kind:?} serving={serving} neighbor={neighbor}");
    };
    // A1: thr -105, hys 1
    check(EventKind::A1, -100.0, -140.0, true);
    check(EventKind::A1, -105.5, -140.0, false);
    // A2: thr -115
    check(EventKind::A2, -120.0, -140.0, true);
    check(EventKind::A2, -110.0, -140.0, false);
    // A3: off 3
    check(EventKind::A3, -100.0, -95.0, true);
    check(EventKind::A3, -100.0, -98.5, false);
    // A4/B1: thr -110
    check(EventKind::A4, -140.0, -105.0, true);
    check(EventKind::A4, -60.0, -112.0, false);
    check(EventKind::B1, -140.0, -105.0, true);
    // A5: thr1 -112, thr2 -108
    check(EventKind::A5, -115.0, -105.0, true);
    check(EventKind::A5, -105.0, -105.0, false);
    check(EventKind::A5, -115.0, -111.0, false);
    // Periodic never enters
    check(EventKind::Periodic, -60.0, -60.0, false);
    checks += 13;

    println!("\n{checks} boundary checks passed on the implementation's trigger logic");
    println!("\nOK table4_events");
}
