//! Fig. 6 — Volumetric streaming QoE: low-band vs mmWave HOs.
//!
//! Paper: with HOs the median video bitrate drops 31% on low-band but 58%
//! on mmWave; network latency rises 41% (low) vs 107% (mmWave).

use fiveg_bench::fmt;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{FlowLog, ScenarioBuilder, Trace, Workload};

/// Mean CBR latency and achieved-rate proxy inside vs outside ±1 s HO
/// windows for a volumetric-rate stream.
fn split(t: &Trace) -> Option<(f64, f64, f64, f64)> {
    let samples = match &t.flow {
        FlowLog::Cbr(v) => v,
        _ => return None,
    };
    let in_ho = |x: f64| t.handovers.iter().any(|h| x >= h.t_decision - 1.0 && x <= h.t_complete + 1.0);
    let mut ho = (0.0, 0.0, 0usize);
    let mut no = (0.0, 0.0, 0usize);
    for s in samples {
        let slot = if in_ho(s.t) { &mut ho } else { &mut no };
        slot.0 += s.latency_ms;
        slot.1 += 1.0 - s.loss; // delivered fraction ≈ achievable bitrate share
        slot.2 += 1;
    }
    if ho.2 == 0 || no.2 == 0 {
        return None;
    }
    Some((ho.0 / ho.2 as f64, no.0 / no.2 as f64, ho.1 / ho.2 as f64, no.1 / no.2 as f64))
}

fn main() {
    fmt::header("Fig. 6 — volumetric streaming vs band (OpX, ViVo-rate stream)");

    // low-band exposure: NSA freeway; mmWave exposure: dense city walk
    let low = ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 25.0, 61)
        .duration_s(800.0)
        .sample_hz(20.0)
        .workload(Workload::Cbr { rate_mbps: 43.0, deadline_ms: 100.0 })
        .build()
        .run();
    let mm = ScenarioBuilder::walking_loop(Carrier::OpX, 35.0, 1, 62)
        .sample_hz(20.0)
        .workload(Workload::Cbr { rate_mbps: 110.0, deadline_ms: 100.0 })
        .build()
        .run();

    let (l_lat_ho, l_lat_no, l_rate_ho, l_rate_no) = split(&low).expect("low-band report");
    let (m_lat_ho, m_lat_no, m_rate_ho, m_rate_no) = split(&mm).expect("mmWave report");

    fmt::table(
        &["band", "latency w/o HO ms", "latency w/ HO ms", "delivered w/o HO", "delivered w/ HO"],
        &[
            vec![
                "Low-Band".into(),
                fmt::f(l_lat_no, 0),
                fmt::f(l_lat_ho, 0),
                fmt::f(l_rate_no, 2),
                fmt::f(l_rate_ho, 2),
            ],
            vec!["mmWave".into(), fmt::f(m_lat_no, 0), fmt::f(m_lat_ho, 0), fmt::f(m_rate_no, 2), fmt::f(m_rate_ho, 2)],
        ],
    );
    let l_bit_drop = (1.0 - l_rate_ho / l_rate_no) * 100.0;
    let m_bit_drop = (1.0 - m_rate_ho / m_rate_no) * 100.0;
    let l_lat_rise = (l_lat_ho / l_lat_no - 1.0) * 100.0;
    let m_lat_rise = (m_lat_ho / m_lat_no - 1.0) * 100.0;
    fmt::compare("bitrate degradation w/ HO, low-band", "-31%", &format!("{:.0}%", -l_bit_drop));
    fmt::compare("bitrate degradation w/ HO, mmWave", "-58%", &format!("{:.0}%", -m_bit_drop));
    fmt::compare("latency increase w/ HO, low-band", "+41%", &format!("{l_lat_rise:+.0}%"));
    fmt::compare("latency increase w/ HO, mmWave", "+107%", &format!("{m_lat_rise:+.0}%"));

    assert!(m_bit_drop > l_bit_drop, "mmWave HOs must degrade bitrate more than low-band");
    assert!(m_lat_rise > 0.0 && l_lat_rise > 0.0, "HOs must raise latency on both bands");
    println!("\nOK fig06_volumetric");
}
