//! Fig. 5 — Cloud gaming during HOs in NSA 5G.
//!
//! Paper: network latency ×2.26 and dropped frames ×2.6 during HOs; the
//! NSA-4C HO (MNBH) hurts more than the 5G-NR HO (SCGM): +16.8 ms latency
//! and +65% dropped frames.

use fiveg_apps::gaming_report;
use fiveg_bench::fmt;
use fiveg_ran::{Carrier, HoType};
use fiveg_sim::{FlowLog, ScenarioBuilder, Trace, Workload};

/// Mean CBR latency/drops in windows exclusive to `kinds`, restricted to
/// windows where the underlying path still had ≥ `min_cap` Mbps — the
/// paper's MNBH-vs-SCGM contrast presumes a capable absorbing leg.
fn type_stats(t: &Trace, kinds: &[HoType], min_cap: f64) -> Option<(f64, f64, usize)> {
    let samples = match &t.flow {
        FlowLog::Cbr(v) => v,
        _ => return None,
    };
    let mut lat = 0.0;
    let mut drops = 0.0;
    let mut n = 0usize;
    let mut events = 0usize;
    for h in &t.handovers {
        if !kinds.contains(&h.ho_type) {
            continue;
        }
        let (a, b) = (h.t_decision - 1.0, h.t_complete + 1.0);
        // exclusive window: no other HO overlaps
        if t.handovers.iter().any(|o| !std::ptr::eq(o, h) && o.t_decision - 1.0 < b && o.t_complete + 1.0 > a) {
            continue;
        }
        // capable-path precondition
        let caps: Vec<f64> = t.samples.iter().filter(|s| s.t >= a && s.t <= b).map(|s| s.capacity_mbps).collect();
        if caps.is_empty() || caps.iter().sum::<f64>() / (caps.len() as f64) < min_cap {
            continue;
        }
        events += 1;
        for s in samples.iter().filter(|s| s.t >= a && s.t <= b) {
            lat += s.latency_ms;
            drops += s.loss;
            n += 1;
        }
    }
    (n > 0).then(|| (lat / n as f64, drops / n as f64, events))
}

fn main() {
    fmt::header("Fig. 5 — cloud gaming QoE around HOs (OpX NSA dense city)");

    let mut lat_f = Vec::new();
    let mut drop_f = Vec::new();
    let mut mnbh_lat = Vec::new();
    let mut scgm_lat = Vec::new();
    let mut mnbh_drop = Vec::new();
    let mut scgm_drop = Vec::new();
    for seed in 51..55u64 {
        // dual-mode area: the 4G leg absorbs NR-side HOs, so the contrast
        // between MNBH (interrupts both radios) and SCGM (NR only) is clean
        let t = ScenarioBuilder::city_loop_dense(Carrier::OpX, seed)
            .duration_s(700.0)
            .sample_hz(20.0)
            .workload(Workload::Cbr { rate_mbps: 25.0, deadline_ms: 34.0 })
            .force_dual(true)
            .build()
            .run();
        if let Some(r) = gaming_report(&t, 1.0) {
            println!(
                "  seed {seed}: latency {:.0} vs {:.0} ms  drops {:.3} vs {:.3}",
                r.latency_ho_ms, r.latency_no_ho_ms, r.drops_ho, r.drops_no_ho
            );
            lat_f.push(r.latency_factor());
            if r.drops_no_ho > 1e-6 {
                drop_f.push(r.drop_factor());
            }
        }
        let m = type_stats(&t, &[HoType::Mnbh, HoType::Lteh], 30.0);
        let s2 = type_stats(&t, &[HoType::Scgm], 30.0);
        if let (Some((ml, md, me)), Some((sl, sd, se))) = (m, s2) {
            println!("           MNBH lat {ml:.0} ms / SCGM lat {sl:.0} ms ({me}/{se} clean events)");
            mnbh_lat.push(ml);
            scgm_lat.push(sl);
            mnbh_drop.push(md);
            scgm_drop.push(sd);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    fmt::compare("network latency inflation during HOs", "2.26x", &format!("{:.2}x", mean(&lat_f)));
    if !drop_f.is_empty() {
        fmt::compare("dropped-frame inflation during HOs", "2.6x", &format!("{:.2}x", mean(&drop_f)));
    }
    fmt::compare("MNBH extra latency over SCGM", "+16.8 ms", &format!("{:+.1} ms", mean(&mnbh_lat) - mean(&scgm_lat)));
    if mean(&scgm_drop) > 1e-6 {
        fmt::compare(
            "MNBH dropped frames vs SCGM",
            "+65%",
            &format!("{:+.0}%", (mean(&mnbh_drop) / mean(&scgm_drop) - 1.0) * 100.0),
        );
    }

    assert!(mean(&lat_f) > 1.3, "HOs must inflate gaming latency");
    if !mnbh_lat.is_empty() {
        assert!(mean(&mnbh_lat) > mean(&scgm_lat), "4G-anchor HOs must hurt more than NR-internal HOs");
    }
    println!("\nOK fig05_gaming");
}
