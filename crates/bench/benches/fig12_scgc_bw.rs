//! Fig. 12 + §6.2 — SCG Change (inter-gNB) throughput across HO phases.
//!
//! Paper: counter-intuitively, post-HO throughput is ~14% *lower* than
//! pre-HO on average — NSA's release+add SCGC optimizes each leg
//! independently and often lands on a cell with no overall improvement.

use fiveg_analysis::tput_phases::{ho_phase_throughput, mean_phase};
use fiveg_bench::fmt;
use fiveg_ran::{Carrier, HoType};
use fiveg_sim::ScenarioBuilder;

fn main() {
    fmt::header("Fig. 12 — SCGC throughput: pre / exec / post (mmWave walk)");

    let mut phases = Vec::new();
    for seed in 120..125u64 {
        let t = ScenarioBuilder::urban_walk_mmwave(Carrier::OpX, seed).sample_hz(20.0).build().run();
        phases
            .extend(ho_phase_throughput(&t).into_iter().filter(|p| p.nr_band == Some(fiveg_radio::BandClass::MmWave)));
    }
    let scgc: Vec<_> = phases.iter().filter(|p| p.ho_type == HoType::Scgc).collect();
    println!("  SCGC events observed: {}", scgc.len());

    let pre = mean_phase(&phases, HoType::Scgc, |p| p.pre_mbps);
    let exec = mean_phase(&phases, HoType::Scgc, |p| p.exec_mbps);
    let post = mean_phase(&phases, HoType::Scgc, |p| p.post_mbps);
    fmt::table(
        &["phase", "mean DL throughput Mbps"],
        &[
            vec!["HO_pre".into(), fmt::f(pre, 0)],
            vec!["HO_exec".into(), fmt::f(exec, 0)],
            vec!["HO_post".into(), fmt::f(post, 0)],
        ],
    );
    fmt::compare("post-HO vs pre-HO throughput", "-14%", &format!("{:+.0}%", (post / pre - 1.0) * 100.0));
    fmt::compare("execution-phase dip vs pre", "deep", &format!("{:.1}x lower", pre / exec.max(1.0)));

    assert!(!scgc.is_empty(), "need SCGC events");
    assert!(exec < pre, "throughput must dip during SCGC execution");
    assert!(
        post < pre * 2.0,
        "inter-gNB SCGC must not systematically boost throughput the way SCGA does (paper: -14%)"
    );
    println!("\nOK fig12_scgc_bw");
}
