//! Fig. 14c — real-time volumetric streaming with HO-aware rate adaptation.
//!
//! Paper: against the original ViVo and FESTIVE adaptation, the Prognos
//! variants improve content quality 15.1–36.2% while also trimming stall
//! time 0.24–3.67%; the QoE lands within 0.39–2.49% (quality) and
//! 0.01–0.25% (stall) of the ground-truth variants.

use fiveg_apps::abr::{AbrAlgorithm, TputCorrector};
use fiveg_apps::volumetric::{VolumetricConfig, VolumetricSession};
use fiveg_bench::driver::{calibrate_scores, gt_score_fn, run_prognos_scored};
use fiveg_bench::fmt;
use fiveg_ran::Carrier;
use fiveg_sim::{ScenarioBuilder, Workload};
use std::sync::Arc;

fn main() {
    fmt::header("Fig. 14c — volumetric streaming (ViVo / FESTIVE) with HO prediction");

    // saturating drives; volumetric sessions replay 180 s slices
    let mut sources = Vec::new();
    for seed in 145..148u64 {
        sources.push(
            ScenarioBuilder::city_loop(Carrier::OpX, seed)
                .duration_s(700.0)
                .sample_hz(20.0)
                .workload(Workload::Bulk(fiveg_link::Cca::Cubic))
                .build()
                .run(),
        );
    }
    let score_table = calibrate_scores(&sources.iter().collect::<Vec<_>>());
    let pr_series: Vec<Arc<Vec<(f64, f64)>>> = sources
        .iter()
        .map(|t| {
            let (run, _) =
                run_prognos_scored(t, prognos::PrognosConfig::default(), None, None, Some(score_table.clone()));
            Arc::new(run.windows.iter().map(|w| (w.t, w.ho_score)).collect())
        })
        .collect();
    let lookup = |series: &Arc<Vec<(f64, f64)>>, t: f64| -> f64 {
        match series.binary_search_by(|p| p.0.partial_cmp(&t).unwrap()) {
            Ok(i) => series[i].1,
            Err(0) => 1.0,
            Err(i) => series[i - 1].1,
        }
    };

    // slice 180 s windows
    let mut slices = Vec::new();
    for (si, t) in sources.iter().enumerate() {
        let series = t.bandwidth_series();
        let mut a = 0.0;
        while a + 180.0 <= t.meta.duration_s {
            let pts: Vec<(f64, f64)> =
                series.iter().filter(|p| p.0 >= a && p.0 < a + 180.0).map(|&(x, c)| (x - a, c)).collect();
            if pts.len() >= 2 {
                let bw = fiveg_apps::BandwidthTrace::new(pts);
                if bw.mean_mbps() < 400.0 && bw.min_mbps() > 2.0 {
                    slices.push((bw, a, si));
                }
            }
            a += 120.0;
        }
    }
    println!("  {} volumetric replay slices of 180 s", slices.len());

    let mut rows = Vec::new();
    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (label, quality, stall_frac)
    for (algo, algo_label) in [(AbrAlgorithm::RateBased, "ViVo"), (AbrAlgorithm::Festive, "FESTIVE")] {
        for variant in ["orig", "GT", "PR"] {
            let mut quality = 0.0;
            let mut stall = 0.0;
            for (bw, off, src) in &slices {
                let off = *off;
                let corrector: Option<TputCorrector> = match variant {
                    // clamped to the degradation side; see fig14ab_vod.rs
                    "GT" => {
                        let g = gt_score_fn(&sources[*src]);
                        Some(Box::new(move |t: f64| g(t + off)))
                    }
                    "PR" => {
                        let series = Arc::clone(&pr_series[*src]);
                        Some(Box::new(move |t: f64| lookup(&series, t + off)))
                    }
                    _ => None,
                };
                let r = VolumetricSession::new(VolumetricConfig { algorithm: algo, corrector, ..Default::default() })
                    .run(bw);
                quality += r.normalized_quality;
                stall += r.stall_frac;
            }
            let n = slices.len() as f64;
            let label = format!("{algo_label}-{variant}");
            rows.push(vec![label.clone(), format!("{:.3}", quality / n), format!("{:.2}%", stall / n * 100.0)]);
            results.push((label, quality / n, stall / n));
        }
    }
    fmt::table(&["algorithm", "norm. quality", "stall time %"], &rows);

    for algo in ["ViVo", "FESTIVE"] {
        let get = |v: &str| results.iter().find(|r| r.0 == format!("{algo}-{v}")).unwrap().clone();
        let (_, q0, s0) = get("orig");
        let (_, qp, sp) = get("PR");
        let (_, qg, _sg) = get("GT");
        fmt::compare(
            &format!("{algo}: quality change with Prognos"),
            "+15.1-36.2%",
            &format!("{:+.1}%", (qp / q0 - 1.0) * 100.0),
        );
        fmt::compare(
            &format!("{algo}: stall change with Prognos"),
            "-0.24 to -3.67 pp",
            &format!("{:+.2} pp", (sp - s0) * 100.0),
        );
        fmt::compare(
            &format!("{algo}: quality gap to ground truth"),
            "0.39-2.49%",
            &format!("{:.2}%", ((qg - qp) / qg.max(1e-9)).abs() * 100.0),
        );
    }

    // shape: the PR variants must not lose quality and must not add stalls
    // beyond noise
    for algo in ["ViVo", "FESTIVE"] {
        let get = |v: &str| results.iter().find(|r| r.0 == format!("{algo}-{v}")).unwrap().clone();
        let (_, q0, s0) = get("orig");
        let (_, qp, sp) = get("PR");
        // our exec-dip score is conservative-by-construction, so quality
        // holds roughly flat rather than gaining the paper's 15-36% (their
        // gain rides post-HO boosts that our HO dynamics put *before* the
        // HO; see EXPERIMENTS.md) — the stall trim does reproduce
        assert!(qp >= q0 * 0.95, "{algo}: Prognos must not tank quality ({qp} vs {q0})");
        assert!(sp <= s0 + 0.002, "{algo}: Prognos must not add stalls ({sp} vs {s0})");
    }
    println!("\nOK fig14c_volumetric");
}
