//! Fig. 14a/14b — 16K panoramic VoD with HO-aware rate adaptation.
//!
//! Paper: correcting the ABR throughput prediction with Prognos's ho_score
//! cuts stall time 34.6–58.6% without degrading quality (14a), and improves
//! throughput-prediction accuracy during HOs by 52.4–61.3% (14b); QoE lands
//! within a fraction of a percent of the ground-truth variant.

use fiveg_apps::abr::{AbrAlgorithm, TputCorrector};
use fiveg_apps::emulator::BandwidthTrace;
use fiveg_apps::vod::{VodConfig, VodSession};
use fiveg_bench::driver::{calibrate_scores, gt_score_fn, run_prognos_scored};
use fiveg_bench::fmt;
use fiveg_ran::Carrier;
use fiveg_sim::{ScenarioBuilder, Trace, Workload};

/// A sliced bandwidth trace plus its offset into the source sim trace.
struct Slice {
    bw: BandwidthTrace,
    offset_s: f64,
    source: usize,
}

/// Collects 240 s bandwidth traces from saturating drives (§7.4's method),
/// keeping the offsets so the HO-aware correctors line up.
fn collect_slices(sources: &[Trace]) -> Vec<Slice> {
    let mut out = Vec::new();
    for (si, t) in sources.iter().enumerate() {
        // the paper's bandwidth traces are 1 Hz throughput logs: bucket the
        // 20 Hz capacity series into 1 s means before slicing
        let raw = t.bandwidth_series();
        let secs = t.meta.duration_s as usize;
        let mut series: Vec<(f64, f64)> = Vec::with_capacity(secs);
        for sec in 0..secs {
            let (a, b) = (sec as f64, sec as f64 + 1.0);
            let vals: Vec<f64> = raw.iter().filter(|p| p.0 >= a && p.0 < b).map(|p| p.1).collect();
            if !vals.is_empty() {
                series.push((a, vals.iter().sum::<f64>() / vals.len() as f64));
            }
        }
        let mut a = 0.0;
        while a + 240.0 <= t.meta.duration_s {
            let pts: Vec<(f64, f64)> =
                series.iter().filter(|p| p.0 >= a && p.0 < a + 240.0).map(|&(x, c)| (x - a, c)).collect();
            if pts.len() >= 2 {
                let bw = BandwidthTrace::new(pts);
                if bw.mean_mbps() < 400.0 && bw.min_mbps() > 2.0 {
                    out.push(Slice { bw, offset_s: a, source: si });
                }
            }
            a += 60.0;
        }
    }
    out
}

fn main() {
    fmt::header("Fig. 14a/b — 16K panoramic VoD with HO prediction");

    // saturating drives over low-band + mmWave coverage (OpX, like §7.4)
    let mut sources = Vec::new();
    for seed in 140..143u64 {
        sources.push(
            ScenarioBuilder::city_loop(Carrier::OpX, seed)
                .duration_s(900.0)
                .sample_hz(20.0)
                .workload(Workload::Bulk(fiveg_link::Cca::Cubic))
                .build()
                .run(),
        );
    }
    // mmWave walking loops add the wild-fluctuation traces
    for seed in 143..145u64 {
        sources.push(
            ScenarioBuilder::urban_walk_mmwave(Carrier::OpX, seed).duration_s(900.0).sample_hz(20.0).build().run(),
        );
    }
    let slices = collect_slices(&sources);
    println!("  {} bandwidth traces of 240 s (paper: 40+)", slices.len());

    // Prognos ho_score step series per source trace (Arc'd so per-slice
    // corrector closures can share them)
    use std::sync::Arc;
    let score_table = calibrate_scores(&sources.iter().collect::<Vec<_>>());
    let pr_series: Vec<Arc<Vec<(f64, f64)>>> = sources
        .iter()
        .map(|t| {
            let (run, _) =
                run_prognos_scored(t, prognos::PrognosConfig::default(), None, None, Some(score_table.clone()));
            Arc::new(run.windows.iter().map(|w| (w.t, w.ho_score)).collect())
        })
        .collect();
    let lookup = |series: &Arc<Vec<(f64, f64)>>, t: f64| -> f64 {
        match series.binary_search_by(|p| p.0.partial_cmp(&t).unwrap()) {
            Ok(i) => series[i].1,
            Err(0) => 1.0,
            Err(i) => series[i - 1].1,
        }
    };
    let ho_window_fns: Vec<Vec<(f64, f64)>> = sources
        .iter()
        .map(|t| t.handovers.iter().map(|h| (h.t_decision - 1.0, h.t_complete + 1.0)).collect())
        .collect();

    let mut rows = Vec::new();
    let mut summaries: Vec<(String, f64, f64, f64, f64)> = Vec::new();
    for algo in [AbrAlgorithm::RateBased, AbrAlgorithm::FastMpc, AbrAlgorithm::RobustMpc] {
        for variant in ["orig", "GT", "PR"] {
            let mut stall = 0.0;
            let mut quality = 0.0;
            let mut mae = 0.0;
            let mut mae_ho = 0.0;
            let mut mae_ho_n = 0usize;
            for s in &slices {
                let off = s.offset_s;
                let src = s.source;
                let corrector: Option<TputCorrector> = match variant {
                    // Scores are clamped to the degradation side: a chunk
                    // whose download spans the HO cannot yet realize a
                    // post-HO *boost*, so acting on scores > 1 prematurely
                    // inflates the prediction and causes stalls. Anticipating
                    // deterioration is where the QoE win is.
                    "GT" => {
                        let g = gt_score_fn(&sources[src]);
                        Some(Box::new(move |t: f64| g(t + off)))
                    }
                    "PR" => {
                        let series = Arc::clone(&pr_series[src]);
                        Some(Box::new(move |t: f64| lookup(&series, t + off)))
                    }
                    _ => None,
                };
                let windows = ho_window_fns[src].clone();
                let ho_window: Box<dyn Fn(f64) -> bool + Send + Sync> =
                    Box::new(move |t: f64| windows.iter().any(|&(a, b)| t + off >= a && t + off <= b));
                let r = VodSession::new(VodConfig {
                    algorithm: algo,
                    corrector,
                    ho_window: Some(ho_window),
                    ..Default::default()
                })
                .run(&s.bw);
                stall += r.stall_frac;
                quality += r.normalized_bitrate;
                mae += r.pred_mae_mbps;
                if r.pred_mae_ho_mbps > 0.0 {
                    mae_ho += r.pred_mae_ho_mbps;
                    mae_ho_n += 1;
                }
            }
            let n = slices.len() as f64;
            let label = format!("{}-{}", algo.name(), variant);
            rows.push(vec![
                label.clone(),
                format!("{:.2}%", stall / n * 100.0),
                format!("{:.3}", quality / n),
                format!("{:.1}", mae / n),
                format!("{:.1}", if mae_ho_n > 0 { mae_ho / mae_ho_n as f64 } else { 0.0 }),
            ]);
            summaries.push((label, stall / n, quality / n, mae / n, mae_ho / mae_ho_n.max(1) as f64));
        }
    }
    fmt::table(&["algorithm", "stall time %", "norm. bitrate", "pred MAE Mbps", "MAE during HO"], &rows);

    // Fig. 14a headline: PR cuts stalls vs original without losing quality
    for algo in ["RB", "fastMPC", "robustMPC"] {
        let get = |v: &str| summaries.iter().find(|s| s.0 == format!("{algo}-{v}")).unwrap().clone();
        let (_, s0, q0, _, m0) = get("orig");
        let (_, sp, qp, _, mp) = get("PR");
        fmt::compare(
            &format!("{algo}: stall reduction with Prognos"),
            "34.6-58.6%",
            &format!("{:.0}%", (1.0 - sp / s0.max(1e-9)) * 100.0),
        );
        fmt::compare(
            &format!("{algo}: quality change with Prognos"),
            "+1.72% avg",
            &format!("{:+.1}%", (qp / q0 - 1.0) * 100.0),
        );
        if m0 > 0.0 {
            fmt::compare(
                &format!("{algo}: HO-window prediction MAE improvement"),
                "52.4-61.3%",
                &format!("{:.0}%", (1.0 - mp / m0) * 100.0),
            );
        }
    }

    // shape: PR must not be worse than original on stalls for MPC variants
    let get = |name: &str| summaries.iter().find(|s| s.0 == name).unwrap().1;
    assert!(get("fastMPC-PR") <= get("fastMPC-orig") + 1e-9, "Prognos must not increase fastMPC stalls");
    assert!(get("robustMPC-PR") <= get("robustMPC-orig") + 1e-9, "Prognos must not increase robustMPC stalls");
    println!("\nOK fig14ab_vod");
}
