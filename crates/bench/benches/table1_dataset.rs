//! Table 1 — Driving-dataset statistics per carrier.
//!
//! The paper's field trip covers 6,200 km+; this harness drives a scaled
//! subset (a freeway leg plus city segments per carrier) and reports the
//! same rows, plus per-km rates so the scaled counts can be compared with
//! the paper's full-trip totals.

use fiveg_analysis::DatasetInventory;
use fiveg_bench::fmt;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{ScenarioBuilder, Trace};

fn carrier_traces(carrier: Carrier, base_seed: u64) -> Vec<Trace> {
    let mut traces = Vec::new();
    // freeway legs (the paper: 4855-5560 km; we drive 60 km)
    traces.push(
        ScenarioBuilder::freeway(carrier, Arch::Nsa, 40.0, base_seed).duration_s(1300.0).sample_hz(10.0).build().run(),
    );
    traces.push(
        ScenarioBuilder::freeway(carrier, Arch::Lte, 20.0, base_seed + 1)
            .duration_s(650.0)
            .sample_hz(10.0)
            .build()
            .run(),
    );
    // SA leg for the carrier that deploys it
    if carrier.profile().supports_sa {
        traces.push(
            ScenarioBuilder::freeway(carrier, Arch::Sa, 20.0, base_seed + 2)
                .duration_s(650.0)
                .sample_hz(10.0)
                .build()
                .run(),
        );
    }
    // city segments (the paper: ~700 km over 4 cities; we drive 2 loops)
    traces.push(ScenarioBuilder::city_loop(carrier, base_seed + 3).duration_s(900.0).sample_hz(10.0).build().run());
    traces
        .push(ScenarioBuilder::city_loop_dense(carrier, base_seed + 4).duration_s(900.0).sample_hz(10.0).build().run());
    traces
}

fn main() {
    fmt::header("Table 1 — dataset statistics (scaled drive: ~65-70 km per carrier)");

    let mut rows = Vec::new();
    for (i, carrier) in Carrier::ALL.iter().enumerate() {
        let traces = carrier_traces(*carrier, 1000 + 100 * i as u64);
        let refs: Vec<&Trace> = traces.iter().collect();
        let inv = DatasetInventory::over(&refs);
        rows.push(vec![
            carrier.to_string(),
            fmt::count(inv.unique_towers),
            format!("{}", inv.nr_bands),
            format!("{}", inv.lte_bands),
            format!("{:.0}", inv.city_km),
            format!("{:.0}", inv.freeway_km),
            fmt::count(inv.lte_hos),
            fmt::count(inv.nsa_procedures),
            if carrier.profile().supports_sa { fmt::count(inv.sa_hos) } else { "N/A".into() },
            format!("{:.0}/{:.0}/{:.0}", inv.nr_minutes[0], inv.nr_minutes[1], inv.nr_minutes[2]),
            format!("{:.0}", inv.arch_minutes[0] + inv.arch_minutes[1] + inv.arch_minutes[2]),
        ]);
    }
    fmt::table(
        &[
            "carrier",
            "towers",
            "NR bands",
            "LTE bands",
            "city km",
            "fwy km",
            "4G HOs",
            "NSA procs",
            "SA HOs",
            "NR min (low/mid/mm)",
            "total min",
        ],
        &rows,
    );

    println!("\npaper (full 6,200 km trip) for comparison:");
    println!("  OpX: 3030 cells, 4 NR / 5 LTE bands, 7001 4G HOs, 4611 NSA procedures, SA N/A");
    println!("  OpY: 5535 cells, 2 NR / 9 LTE bands, 9500 4G HOs, 11107 NSA procedures, 465 SA HOs");
    println!("  OpZ: 3544 cells, 4 NR / 6 LTE bands, 7491 4G HOs, 6880 NSA procedures, SA N/A");
    println!("  (our drive is ~1% of the paper's mileage; compare per-km rates, band counts, and N/A placement)");

    // structural assertions
    assert_eq!(rows.len(), 3);
    assert_ne!(rows[1][8], "N/A", "OpY must have SA HOs");
    assert_eq!(rows[0][8], "N/A", "OpX has no SA");
    assert_eq!(rows[2][8], "N/A", "OpZ has no SA");
    println!("\nOK table1_dataset");
}
