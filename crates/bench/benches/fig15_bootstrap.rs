//! Fig. 15 — bootstrapping Prognos with frequent patterns (§9).
//!
//! Paper: cold-started Prognos needs 11–14 minutes before its F1 stabilizes
//! above 0.9; bootstrapped with the most frequent pattern per HO type it
//! reaches F1 ≈ 0.8 within 1.5 minutes.

use fiveg_bench::driver::run_prognos;
use fiveg_bench::fmt;
use fiveg_ran::HoType;
use fiveg_rrc::{EventKind, MeasEvent};
use prognos::PrognosConfig;

fn main() {
    fmt::header("Fig. 15 — startup F1 with and without pattern bootstrapping");

    // D1-style traces (the paper uses a 40-minute sample); several seeds to
    // average out early-window noise
    let traces: Vec<_> = (0..3u64)
        .map(|s| {
            fiveg_sim::ScenarioBuilder::walking_loop(fiveg_ran::Carrier::OpX, 40.0, 1, 0xF15 + s)
                .sample_hz(20.0)
                .build()
                .run()
        })
        .collect();
    let trace = &traces[0];
    println!("  trace: {:.0} min, {} HOs", trace.meta.duration_s / 60.0, fmt::count(trace.handovers.len()));

    // the most frequent pattern per HO type, as found empirically (§9:
    // "the most frequent patterns can be found empirically from our
    // collected dataset")
    let frequent = vec![
        (vec![MeasEvent::nr(EventKind::B1)], HoType::Scga),
        (vec![MeasEvent::nr(EventKind::A2)], HoType::Scgr),
        (vec![MeasEvent::nr(EventKind::A2), MeasEvent::nr(EventKind::B1)], HoType::Scgc),
        (vec![MeasEvent::nr(EventKind::A3)], HoType::Scgm),
        (vec![MeasEvent::lte(EventKind::A3)], HoType::Mnbh),
        (vec![MeasEvent::lte(EventKind::A3)], HoType::Scgr),
        (vec![MeasEvent::lte(EventKind::A3)], HoType::Lteh),
        (vec![MeasEvent::lte(EventKind::A5)], HoType::Lteh),
    ];

    let (cold, _) = run_prognos(trace, PrognosConfig::default(), None, None);
    let (warm, _) = run_prognos(trace, PrognosConfig::default(), Some(frequent.clone()), None);

    // minute-1 F1 averaged across seeds (the startup phase the paper's
    // bootstrapping targets)
    let minute1 = |boot: Option<Vec<(Vec<MeasEvent>, HoType)>>| -> f64 {
        let mut acc = 0.0;
        for t in &traces {
            let (run, _) = run_prognos(t, PrognosConfig::default(), boot.clone(), None);
            acc += run.f1_timeline.first().map(|&(_, f)| f).unwrap_or(0.0);
        }
        acc / traces.len() as f64
    };
    let m1_cold = minute1(None);
    let m1_warm = minute1(Some(frequent));

    fmt::section("running F1 over the 40-minute timeline (1-min samples)");
    let mut rows = Vec::new();
    for (c, w) in cold.f1_timeline.iter().zip(&warm.f1_timeline) {
        if (c.0 / 60.0).round() as u32 % 4 == 0 || c.0 < 300.0 {
            rows.push(vec![format!("{:.0}", c.0 / 60.0), fmt::f(c.1, 2), fmt::f(w.1, 2)]);
        }
    }
    fmt::table(&["minute", "F1 w/o bootstrap", "F1 w/ bootstrap"], &rows);

    let late = |run: &fiveg_bench::driver::PrognosRun| run.f1_timeline.last().map(|&(_, f)| f).unwrap_or(0.0);
    fmt::compare("minute-1 F1 w/o bootstrap (3-seed mean)", "≈0 for 11-14 min", &fmt::f(m1_cold, 2));
    fmt::compare("minute-1 F1 w/ bootstrap (3-seed mean)", "≥0.8 within 1.5 min", &fmt::f(m1_warm, 2));
    fmt::compare("final F1 w/o bootstrap", "converges", &fmt::f(late(&cold), 2));
    fmt::compare("final F1 w/ bootstrap", "converges", &fmt::f(late(&warm), 2));
    println!(
        "  pattern learning rate: {:.1} learned / {:.1} evicted per hour (paper: 9.1 / 8.3)",
        cold.learned as f64 / (trace.meta.duration_s / 3600.0),
        cold.evicted as f64 / (trace.meta.duration_s / 3600.0)
    );
    println!(
        "
NOTE: our synthetic policy space is far smaller than a real carrier's,"
    );
    println!("so the cold learner converges within ~1-2 minutes rather than the paper's");
    println!("11-14; bootstrapping therefore adds much less here (see EXPERIMENTS.md).");

    assert!(m1_warm + 0.15 >= m1_cold, "bootstrapping must not hurt the startup phase: {m1_warm} vs {m1_cold}");
    assert!((late(&warm) - late(&cold)).abs() < 0.2, "bootstrapping must not change converged behaviour");
    println!("\nOK fig15_bootstrap");
}
