//! Ablation: the carrier-side levers §6 says would mitigate NSA's HO cost.
//!
//! The paper's carrier-facing recommendations: (1) account for eNB/gNB
//! co-location when handing over (Fig. 13's 13 ms penalty), and (2) NSA's
//! forced SCG release on anchor changes shrinks low-band 5G coverage
//! (§6.1). This harness quantifies both on our simulator by sweeping the
//! deployment co-location probability — more co-location means shorter NSA
//! HOs *and* fewer forced releases.

use fiveg_analysis::coverage::{dwell_distances, CoverageKind};
use fiveg_analysis::frequency::{is_nsa_5g_procedure, km_per_ho};
use fiveg_analysis::{mean, DurationStats};
use fiveg_bench::fmt;
use fiveg_geo::{routes, Point};
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier, Environment, HoCategory};
use fiveg_sim::{Scenario, Workload};
use fiveg_ue::SpeedProfile;

/// Runs a freeway scenario against a deployment whose co-location
/// probability we control by varying the carrier... the probability is a
/// carrier profile constant, so the sweep compares the three carriers'
/// profiles (36% / 20% / 5%) on identical routes.
fn run(carrier: Carrier, seed: u64) -> fiveg_sim::Trace {
    let route = routes::curved_freeway(Point::ORIGIN, 0.2, 30_000.0, 15, 0.06);
    Scenario {
        route,
        carrier,
        env: Environment::Freeway,
        arch: Arch::Nsa,
        speed: SpeedProfile::freeway(130.0),
        seed,
        sample_hz: 10.0,
        max_duration_s: 900.0,
        workload: Workload::Idle,
        faults: fiveg_sim::FaultConfig::NONE,
        force_dual: None,
    }
    .run()
}

fn main() {
    fmt::header("Ablation — co-location and the NSA coverage/duration cost");

    let mut rows = Vec::new();
    for (carrier, coloc) in [(Carrier::OpX, 0.36), (Carrier::OpY, 0.20), (Carrier::OpZ, 0.05)] {
        let mut durs_co = Vec::new();
        let mut durs_non = Vec::new();
        let mut dwell = Vec::new();
        let mut ho_km = Vec::new();
        for seed in 0..3u64 {
            let t = run(carrier, 0xAB7 + seed);
            for h in &t.handovers {
                if h.nr_band.is_some() && h.ho_type.category() == HoCategory::FiveG {
                    if h.co_located {
                        durs_co.push(h.duration_ms());
                    } else {
                        durs_non.push(h.duration_ms());
                    }
                }
            }
            dwell.extend(dwell_distances(&t, CoverageKind::NrServing, Some(BandClass::Low)));
            ho_km.push(km_per_ho(&t, is_nsa_5g_procedure));
        }
        let co = DurationStats::from_values(&durs_co);
        let non = DurationStats::from_values(&durs_non);
        rows.push(vec![
            format!("{carrier} ({:.0}% co-located)", coloc * 100.0),
            format!("{} / {}", co.count, non.count),
            if co.count > 0 { fmt::f(co.mean_ms, 0) } else { "-".into() },
            fmt::f(non.mean_ms, 0),
            fmt::f(mean(&dwell), 0),
            fmt::f(mean(&ho_km), 2),
        ]);
    }
    fmt::table(
        &["carrier", "5G HOs co/non", "HO ms (co-located)", "HO ms (cross-tower)", "low-band dwell m", "km per 5G HO"],
        &rows,
    );

    println!("\nreading: co-located HOs avoid the cross-tower X2 penalty (~13 ms), and");
    println!("carriers with more co-location keep the SCG through more anchor changes.");
    println!("\nOK ablate_policy");
}
