//! §5.1 — Handover frequency and signaling overhead.
//!
//! Paper: on freeways, a 5G HO every 0.4 km (NSA) vs every 0.6 km (4G) vs
//! every 0.9 km (SA); by band, mmWave every 0.13 km, mid 0.35 km, low
//! 0.4 km. SA cuts HO signaling ~3.8× vs LTE; NSA mmWave PHY-layer
//! procedures are >5× low-band.

use fiveg_analysis::frequency::{is_4g_ho, is_nsa_5g_procedure, km_per_ho, phy_meas_per_km, signaling_msgs_per_km};
use fiveg_bench::fmt;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::{ScenarioBuilder, Trace};

fn freeway(carrier: Carrier, arch: Arch, seed: u64) -> Trace {
    ScenarioBuilder::freeway(carrier, arch, 40.0, seed).duration_s(1200.0).sample_hz(10.0).build().run()
}

fn main() {
    fmt::header("§5.1 Handover frequency (freeway drive, 40 km per run)");

    let nsa = freeway(Carrier::OpY, Arch::Nsa, 51);
    let lte = freeway(Carrier::OpY, Arch::Lte, 51);
    let sa = freeway(Carrier::OpY, Arch::Sa, 51);

    let nsa_km = km_per_ho(&nsa, is_nsa_5g_procedure);
    let lte_km = km_per_ho(&lte, |_| true);
    let sa_km = km_per_ho(&sa, |_| true);
    let nsa_4g_km = km_per_ho(&nsa, is_4g_ho);

    fmt::section("km per handover by architecture");
    fmt::compare("NSA 5G procedures (SCGA/SCGR/SCGM/SCGC)", "0.40 km", &format!("{nsa_km:.2} km"));
    fmt::compare("4G HOs (LTE-only drive)", "0.60 km", &format!("{lte_km:.2} km"));
    fmt::compare("4G HOs under NSA (LTEH+MNBH)", "—", &format!("{nsa_4g_km:.2} km"));
    fmt::compare("SA 5G HOs", "0.90 km", &format!("{sa_km:.2} km"));
    assert!(nsa_km < lte_km, "NSA must HO more often than LTE");
    assert!(lte_km < sa_km * 1.3, "SA should be the sparsest");

    // per-band NR frequency: city drives provide mid/mmWave exposure
    fmt::section("km per 5G HO by band (NSA; city drives for mid/mmWave)");
    let dense = ScenarioBuilder::city_loop_dense(Carrier::OpX, 52).duration_s(1500.0).sample_hz(10.0).build().run();
    let band_km = |t: &Trace, class: BandClass| km_per_ho(t, |h| is_nsa_5g_procedure(h) && h.nr_band == Some(class));
    let low = km_per_ho(&nsa, |h| is_nsa_5g_procedure(h) && h.nr_band == Some(BandClass::Low));
    let mid = band_km(&dense, BandClass::Mid);
    let mm = band_km(&dense, BandClass::MmWave);
    fmt::compare("low-band 5G HO spacing", "0.40 km", &format!("{low:.2} km"));
    fmt::compare("mid-band 5G HO spacing", "0.35 km", &format!("{mid:.2} km"));
    fmt::compare("mmWave 5G HO spacing", "0.13 km", &format!("{mm:.2} km"));

    fmt::section("signaling overhead per km");
    let rows = vec![
        vec![
            "LTE".into(),
            fmt::f(signaling_msgs_per_km(&lte), 1),
            fmt::f(phy_meas_per_km(&lte), 0),
            fmt::f(lte.signaling.bytes as f64 / (lte.meta.traveled_m / 1000.0), 0),
        ],
        vec![
            "NSA".into(),
            fmt::f(signaling_msgs_per_km(&nsa), 1),
            fmt::f(phy_meas_per_km(&nsa), 0),
            fmt::f(nsa.signaling.bytes as f64 / (nsa.meta.traveled_m / 1000.0), 0),
        ],
        vec![
            "SA".into(),
            fmt::f(signaling_msgs_per_km(&sa), 1),
            fmt::f(phy_meas_per_km(&sa), 0),
            fmt::f(sa.signaling.bytes as f64 / (sa.meta.traveled_m / 1000.0), 0),
        ],
    ];
    fmt::table(&["arch", "RRC+MAC msgs/km", "PHY meas/km", "bytes/km"], &rows);
    let sa_reduction = signaling_msgs_per_km(&lte) / signaling_msgs_per_km(&sa);
    fmt::compare("SA signaling reduction vs LTE", "~3.8x", &format!("{sa_reduction:.1}x"));

    // mmWave PHY-layer overhead vs low-band (NSA, dense city vs freeway)
    let mm_phy = phy_meas_per_km(&dense);
    let low_phy = phy_meas_per_km(&nsa);
    fmt::compare("NSA mmWave-area PHY meas vs low-band", ">5x", &format!("{:.1}x", mm_phy / low_phy));

    println!("\nOK sec51_frequency");
}
