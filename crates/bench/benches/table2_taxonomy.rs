//! Table 2 — Handover terminology: generated from the implementation's
//! `HoType` so the taxonomy in code provably matches the paper's.

use fiveg_bench::fmt;
use fiveg_ran::{HoCategory, HoType};

fn main() {
    fmt::header("Table 2 — handover taxonomy (generated from fiveg_ran::HoType)");

    let rows: Vec<Vec<String>> = [
        ("SCG Addition", HoType::Scga, true),
        ("SCG Release", HoType::Scgr, true),
        ("SCG Modification", HoType::Scgm, true),
        ("SCG Change", HoType::Scgc, true),
        ("MeNB HO", HoType::Mnbh, true),
        ("MCG HO (SA)", HoType::Mcgh, true),
        ("LTE HO (NSA)", HoType::Lteh, true),
        ("LTE HO (LTE)", HoType::Lteh, false),
    ]
    .iter()
    .map(|&(name, ho, in_nsa)| {
        vec![
            name.to_string(),
            ho.access_change(in_nsa).to_string(),
            match ho.category() {
                HoCategory::FourG => "4G".into(),
                HoCategory::FiveG => "5G".into(),
            },
            ho.acronym().to_string(),
        ]
    })
    .collect();
    fmt::table(&["Procedure Type", "Access Tech. Change", "4G/5G HO", "Acronym"], &rows);

    // verify the generated table against the paper's rows exactly
    let expect = [
        ("SCG Addition", "4G→5G", "5G", "SCGA"),
        ("SCG Release", "5G→4G", "5G", "SCGR"),
        ("SCG Modification", "5G→5G", "5G", "SCGM"),
        ("SCG Change", "5G→4G→5G", "5G", "SCGC"),
        ("MeNB HO", "5G→5G", "4G", "MNBH"),
        ("MCG HO (SA)", "5G→5G", "5G", "MCGH"),
        ("LTE HO (NSA)", "5G→5G", "4G", "LTEH"),
        ("LTE HO (LTE)", "4G→4G", "4G", "LTEH"),
    ];
    for (row, (name, change, cat, acr)) in rows.iter().zip(expect.iter()) {
        assert_eq!(row[0], *name);
        assert_eq!(row[1], *change, "{name}");
        assert_eq!(row[2], *cat, "{name}");
        assert_eq!(row[3], *acr, "{name}");
    }
    println!("\nall 8 rows match the paper exactly");
    println!("\nOK table2_taxonomy");
}
