//! §5.3 — The hourly HO energy budget.
//!
//! Paper: a phone at 130 km/h for one hour sees ≈553 NSA low-band 5G HOs
//! draining ≈34.7 mAh (4G: ≈3.4 mAh); in mmWave coverage ≈998 HOs drain
//! ≈81.7 mAh. Equivalent data: 34.7 mAh moves ≈4.3 GB down / 2.0 GB up on
//! low-band; 81.7 mAh ≈ 75.4 GB down on mmWave.

use fiveg_analysis::frequency::is_nsa_5g_procedure;
use fiveg_analysis::EnergyReport;
use fiveg_bench::fmt;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::ScenarioBuilder;
use fiveg_ue::power::joules_to_mah;
use fiveg_ue::PowerModel;

fn main() {
    fmt::header("§5.3 — hourly HO energy budget @ 130 km/h");
    let model = PowerModel::default();

    // one hour at 130 km/h = 130 km of freeway
    let nsa =
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Nsa, 130.0, 531).duration_s(3600.0).sample_hz(10.0).build().run();
    let lte =
        ScenarioBuilder::freeway(Carrier::OpX, Arch::Lte, 130.0, 531).duration_s(3600.0).sample_hz(10.0).build().run();

    let fiveg = EnergyReport::over(&nsa, &model, is_nsa_5g_procedure);
    let lteh = EnergyReport::over(&lte, &model, |_| true);

    fmt::compare("5G HOs per hour (NSA low-band)", "553", &fiveg.ho_count.to_string());
    fmt::compare("5G HO energy per hour", "34.7 mAh", &format!("{:.1} mAh", fiveg.total_mah));
    fmt::compare("4G HOs per hour", "~217", &lteh.ho_count.to_string());
    fmt::compare("4G HO energy per hour", "3.4 mAh", &format!("{:.1} mAh", lteh.total_mah));

    // mmWave: scale the dense-city HO rate to one hour of mmWave coverage
    let mm = ScenarioBuilder::city_loop_dense(Carrier::OpX, 532).duration_s(1800.0).sample_hz(10.0).build().run();
    let r_mm = EnergyReport::over(&mm, &model, |h| h.nr_band == Some(BandClass::MmWave));
    let per_hour = 3600.0 / mm.meta.duration_s;
    fmt::compare(
        "mmWave HOs per hour (city-rate extrapolation)",
        "998",
        &format!("{:.0}", r_mm.ho_count as f64 * per_hour),
    );
    fmt::compare("mmWave HO energy per hour", "81.7 mAh", &format!("{:.1} mAh", r_mm.total_mah * per_hour));

    // data-plane equivalents
    let dl_low = 34.7 * 3.85 * 3.6 / model.dl_energy_per_byte(BandClass::Low) / 1e9;
    let ul_low = 34.7 * 3.85 * 3.6 / model.ul_energy_per_byte(BandClass::Low) / 1e9;
    let dl_mm = 81.7 * 3.85 * 3.6 / model.dl_energy_per_byte(BandClass::MmWave) / 1e9;
    fmt::compare("34.7 mAh worth of low-band download", "4.3 GB", &format!("{dl_low:.1} GB"));
    fmt::compare("34.7 mAh worth of low-band upload", "2.0 GB", &format!("{ul_low:.1} GB"));
    fmt::compare("81.7 mAh worth of mmWave download", "75.4 GB", &format!("{dl_mm:.1} GB"));

    // sanity: totals in the paper's ballpark and ordered correctly
    assert!(fiveg.total_mah > lteh.total_mah * 3.0, "5G HO budget must dwarf 4G's");
    assert!((joules_to_mah(fiveg.total_j) - fiveg.total_mah).abs() < 1e-9);
    println!("\nOK sec53_energy_budget");
}
