//! Ablation: which parts of Prognos earn their keep?
//!
//! The paper argues the two-stage design (report predictor + decision
//! learner) beats a monolithic model and that the sanity checks and
//! freshness-based eviction matter (§7.1–7.2). This harness ablates the
//! knobs one at a time on a D1-style dataset:
//!
//! * report predictor off (reactive-only, the Fig. 18 baseline);
//! * similarity threshold sweep (precision/recall trade);
//! * learner freshness/eviction disabled (stale patterns linger);
//! * history window sweep for the RRS forecast.

use fiveg_bench::driver::{metrics_events_from, run_prognos, Episode};
use fiveg_bench::fmt;
use fiveg_ran::HoType;
use fiveg_sim::Trace;
use prognos::{LearnerConfig, PrognosConfig};

fn evaluate(traces: &[Trace], cfg: PrognosConfig) -> (f64, f64, f64, f64) {
    let mut carry = None;
    let mut episodes: Vec<Episode> = Vec::new();
    let mut events: Vec<(f64, HoType)> = Vec::new();
    let mut windows = 0usize;
    let mut t_off = 0.0;
    let mut lead_acc = 0.0;
    let mut lead_n = 0usize;
    for tr in traces {
        let (run, warm) = run_prognos(tr, cfg.clone(), None, carry.take());
        carry = Some(warm);
        episodes.extend(run.episodes.iter().map(|e| Episode {
            t_start: e.t_start + t_off,
            t_end: e.t_end + t_off,
            ho: e.ho,
        }));
        events.extend(run.events.iter().map(|&(t, h)| (t + t_off, h)));
        windows += run.windows.len();
        for &(_, l) in &run.lead_times {
            lead_acc += l;
            lead_n += 1;
        }
        t_off += tr.meta.duration_s + 10.0;
    }
    let m = metrics_events_from(&episodes, &events, 2.0, 0.3, windows);
    (m.f1, m.precision, m.recall, lead_acc / lead_n.max(1) as f64)
}

fn main() {
    fmt::header("Ablation — Prognos design choices (2-lap D1-style dataset)");
    let traces = fiveg_bench::d1_traces(2);

    let mut rows = Vec::new();
    let mut push = |label: &str, r: (f64, f64, f64, f64)| {
        rows.push(vec![
            label.to_string(),
            fmt::f(r.0, 3),
            fmt::f(r.1, 3),
            fmt::f(r.2, 3),
            format!("{:.0} ms", r.3 * 1000.0),
        ]);
        r.0
    };

    let base = push("full system", evaluate(&traces, PrognosConfig::default()));

    let reactive = push(
        "w/o report predictor (reactive)",
        evaluate(&traces, PrognosConfig { use_report_predictor: false, ..Default::default() }),
    );

    push(
        "min_similarity 0.05 (trigger-happy)",
        evaluate(&traces, PrognosConfig { min_similarity: 0.05, ..Default::default() }),
    );
    push(
        "min_similarity 0.6 (conservative)",
        evaluate(&traces, PrognosConfig { min_similarity: 0.6, ..Default::default() }),
    );

    push(
        "no eviction (freshness = forever)",
        evaluate(
            &traces,
            PrognosConfig {
                learner: LearnerConfig { freshness_phases: u64::MAX / 2, ..Default::default() },
                ..Default::default()
            },
        ),
    );

    push("history window 0.5 s", evaluate(&traces, PrognosConfig { history_window_s: 0.5, ..Default::default() }));
    push("history window 2.0 s", evaluate(&traces, PrognosConfig { history_window_s: 2.0, ..Default::default() }));
    push("no forecast damping", evaluate(&traces, PrognosConfig { forecast_cooloff_s: 0.0, ..Default::default() }));

    fmt::table(&["variant", "F1", "precision", "recall", "mean lead"], &rows);

    // headline ablation claims
    let lead_full: f64 = rows[0][4].trim_end_matches(" ms").parse().unwrap();
    let lead_reactive: f64 = rows[1][4].trim_end_matches(" ms").parse().unwrap();
    fmt::compare(
        "lead time, full vs reactive",
        "report predictor buys ~1 s",
        &format!("{lead_full:.0} vs {lead_reactive:.0} ms"),
    );
    assert!(lead_full > lead_reactive + 150.0, "the report predictor must buy substantial lead time");
    assert!(base > 0.0 && reactive > 0.0, "both variants must function");
    println!("\nOK ablate_prognos");
}
