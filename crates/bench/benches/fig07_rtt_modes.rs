//! Fig. 7 — TCP (BBR) RTT during HOs: dual mode vs 5G-only mode (§4.2).
//!
//! Paper: without HOs, 5G-only mode has lower RTT than dual mode (the dual
//! path detours core→eNB→gNB); during 5G HOs dual mode's median RTT barely
//! changes (1–4%) while 5G-only inflates 37–58%.

use fiveg_bench::fmt;
use fiveg_link::Cca;
use fiveg_ran::{Carrier, HoCategory};
use fiveg_sim::{FlowLog, ScenarioBuilder, Trace, Workload};

/// Median RTT inside and outside 5G-HO windows.
fn rtt_split(t: &Trace) -> (f64, f64) {
    let samples = match &t.flow {
        FlowLog::Tcp(v) => v,
        _ => panic!("expected TCP flow"),
    };
    let in_ho = |x: f64| {
        t.handovers
            .iter()
            .any(|h| h.ho_type.category() == HoCategory::FiveG && x >= h.t_decision && x <= h.t_complete + 0.5)
    };
    let mut ho: Vec<f64> = Vec::new();
    let mut no: Vec<f64> = Vec::new();
    for s in samples {
        if in_ho(s.t) {
            ho.push(s.rtt_ms);
        } else {
            no.push(s.rtt_ms);
        }
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if v.is_empty() {
            f64::NAN
        } else {
            v[v.len() / 2]
        }
    };
    (med(&mut no), med(&mut ho))
}

fn main() {
    fmt::header("Fig. 7 — TCP BBR RTT during HOs: dual vs 5G-only bearer");

    let run = |dual: bool| {
        ScenarioBuilder::city_loop(Carrier::OpX, 71)
            .duration_s(700.0)
            .sample_hz(20.0)
            .workload(Workload::Bulk(Cca::Bbr))
            .force_dual(dual)
            .build()
            .run()
    };
    let dual = run(true);
    let only = run(false);

    let (d_no, d_ho) = rtt_split(&dual);
    let (o_no, o_ho) = rtt_split(&only);

    fmt::table(
        &["mode", "median RTT w/o HO ms", "median RTT during 5G HO ms", "change"],
        &[
            vec!["dual".into(), fmt::f(d_no, 1), fmt::f(d_ho, 1), format!("{:+.0}%", (d_ho / d_no - 1.0) * 100.0)],
            vec!["5G-only".into(), fmt::f(o_no, 1), fmt::f(o_ho, 1), format!("{:+.0}%", (o_ho / o_no - 1.0) * 100.0)],
        ],
    );
    fmt::compare("5G-only RTT w/o HO vs dual (lower is the point)", "lower", &format!("{o_no:.1} vs {d_no:.1} ms"));
    fmt::compare("dual-mode median RTT change during 5G HOs", "1-4%", &format!("{:+.0}%", (d_ho / d_no - 1.0) * 100.0));
    fmt::compare(
        "5G-only median RTT change during 5G HOs",
        "+37-58%",
        &format!("{:+.0}%", (o_ho / o_no - 1.0) * 100.0),
    );

    assert!(o_no < d_no, "5G-only must have lower no-HO RTT than dual");
    let dual_change = (d_ho / d_no - 1.0).abs();
    let only_change = o_ho / o_no - 1.0;
    assert!(only_change > dual_change + 0.1, "5G-only must suffer far more during 5G HOs");
    println!("\nOK fig07_rtt_modes");
}
