//! Fig. 11 + §6.1 — the 5G coverage landscape and NSA's effective-coverage
//! reduction.
//!
//! Paper: per-cell coverage (dwell diameter) ≈1.4 km low-band, 0.73 km
//! mid-band, 0.15 km mmWave. Low-band NSA's *effective* coverage is 1.2–2×
//! smaller than the same band under SA (the mid-band NSA-4C anchor drags
//! the 5G leg through its own handovers); SA rides the same PCI for
//! 2000 m+ where NSA changes within ~1000 m.

use fiveg_analysis::coverage::{dwell_distances, CoverageKind};
use fiveg_analysis::{kde_density, mean};
use fiveg_bench::fmt;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, Carrier};
use fiveg_sim::ScenarioBuilder;

fn main() {
    fmt::header("Fig. 11 / §6.1 — coverage landscape");

    let nsa =
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Nsa, 45.0, 111).duration_s(1400.0).sample_hz(10.0).build().run();
    let sa =
        ScenarioBuilder::freeway(Carrier::OpY, Arch::Sa, 45.0, 111).duration_s(1400.0).sample_hz(10.0).build().run();
    let dense = ScenarioBuilder::city_loop_dense(Carrier::OpX, 112).duration_s(1500.0).sample_hz(10.0).build().run();

    let low_nsa = dwell_distances(&nsa, CoverageKind::NrServing, Some(BandClass::Low));
    let low_ideal = dwell_distances(&nsa, CoverageKind::NrIdeal, Some(BandClass::Low));
    let low_sa = dwell_distances(&sa, CoverageKind::NrServing, Some(BandClass::Low));
    let mid_nsa = dwell_distances(&nsa, CoverageKind::NrServing, Some(BandClass::Mid));
    let mid_ideal = dwell_distances(&nsa, CoverageKind::NrIdeal, Some(BandClass::Mid));
    let mm = dwell_distances(&dense, CoverageKind::NrServing, Some(BandClass::MmWave));

    fmt::section("mean dwell (effective coverage diameter) per band");
    fmt::compare(
        "low-band cell coverage (ideal/same-PCI-observed)",
        "1.4 km",
        &format!("{:.2} km", mean(&low_ideal) / 1000.0),
    );
    fmt::compare("mid-band cell coverage", "0.73 km", &format!("{:.2} km", mean(&mid_ideal) / 1000.0));
    fmt::compare("mmWave cell coverage", "0.15 km", &format!("{:.2} km", mean(&mm) / 1000.0));

    fmt::section("NSA effective-coverage reduction (low-band)");
    fmt::compare("low-band dwell under NSA", "~1000 m", &format!("{:.0} m", mean(&low_nsa)));
    fmt::compare("low-band dwell under SA", ">2000 m", &format!("{:.0} m", mean(&low_sa)));
    fmt::compare(
        "reduction factor (ideal vs NSA-actual)",
        "1.2x - 2x",
        &format!("{:.1}x", mean(&low_ideal) / mean(&low_nsa)),
    );
    fmt::compare(
        "mid-band reduction (slighter)",
        "slight",
        &format!("{:.1}x", mean(&mid_ideal) / mean(&mid_nsa).max(1.0)),
    );

    fmt::section("Fig. 11(a) density of low-band coverage (KDE, m)");
    let grid: Vec<f64> = (0..=12).map(|i| i as f64 * 300.0).collect();
    let d_nsa = kde_density(&low_nsa, &grid, None);
    let d_sa = kde_density(&low_sa, &grid, None);
    let d_ideal = kde_density(&low_ideal, &grid, None);
    let mut rows = Vec::new();
    for (i, g) in grid.iter().enumerate() {
        rows.push(vec![
            format!("{g:.0}"),
            format!("{:.5}", d_nsa[i]),
            format!("{:.5}", d_sa[i]),
            format!("{:.5}", d_ideal[i]),
        ]);
    }
    fmt::table(&["distance m", "w/ NSA", "w/ SA", "w/o NSA (ideal)"], &rows);

    assert!(mean(&low_ideal) > mean(&mid_ideal), "low must out-cover mid");
    assert!(mean(&mid_ideal) > mean(&mm), "mid must out-cover mmWave");
    assert!(mean(&low_ideal) > mean(&low_nsa) * 1.2, "NSA must reduce effective low-band coverage");
    assert!(mean(&low_sa) > mean(&low_nsa), "SA must out-dwell NSA on the same band");
    println!("\nOK fig11_coverage");
}
