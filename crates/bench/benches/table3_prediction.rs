//! Table 3 — Prognos vs GBC vs stacked LSTM on datasets D1 and D2.
//!
//! Paper: Prognos reaches F1 0.92/0.94 (D1/D2) with precision/recall in the
//! same range, while GBC sits at F1 0.40–0.48 and the stacked LSTM at
//! 0.24–0.28 — despite both sometimes posting high *accuracy* (the class-
//! imbalance trap). Baselines train on 60% of the corpus; Prognos trains
//! online (no split needed) and is evaluated on the same final 40%.
//!
//! Evaluation is event-matched (see `driver::metrics_events_from`): the
//! system predicts continuously, and an HO counts as predicted when a
//! same-type prediction episode overlaps its 2 s lookback window. The same
//! matching is applied to all three approaches.

use fiveg_baselines::{Gbc, GbcConfig, LstmConfig, StackedLstm};
use fiveg_bench::driver::{metrics_events_from, run_prognos, window_preds_to_episodes, Episode};
use fiveg_bench::features::{gbc_dataset, lstm_sequences};
use fiveg_bench::fmt;
use fiveg_ran::HoType;
use fiveg_sim::Trace;

fn evaluate_dataset(name: &str, traces: &[Trace], rows: &mut Vec<Vec<String>>) {
    let refs: Vec<&Trace> = traces.iter().collect();
    let window_s = 1.0;

    // --- Prognos: online, evaluated over the final 40% of windows
    let mut carry = None;
    let mut episodes: Vec<Episode> = Vec::new();
    let mut events: Vec<(f64, HoType)> = Vec::new();
    let mut t_off = 0.0;
    let mut total_windows = 0usize;
    for tr in traces {
        let (run, warm) = run_prognos(tr, prognos::PrognosConfig::default(), None, carry.take());
        carry = Some(warm);
        episodes.extend(run.episodes.iter().map(|e| Episode {
            t_start: e.t_start + t_off,
            t_end: e.t_end + t_off,
            ho: e.ho,
        }));
        events.extend(run.events.iter().map(|&(t, h)| (t + t_off, h)));
        total_windows += run.windows.len();
        t_off += tr.meta.duration_s + 10.0;
    }
    let cut_t = t_off * 0.6;
    let test_eps: Vec<Episode> = episodes.iter().copied().filter(|e| e.t_start >= cut_t).collect();
    let test_evs: Vec<(f64, HoType)> = events.iter().copied().filter(|&(t, _)| t >= cut_t).collect();
    let m = metrics_events_from(&test_eps, &test_evs, 2.0, 0.3, total_windows * 4 / 10);
    rows.push(vec![
        name.into(),
        "Prognos (ours)".into(),
        fmt::f(m.f1, 3),
        fmt::f(m.precision, 3),
        fmt::f(m.recall, 3),
        fmt::f(m.accuracy, 3),
    ]);

    // --- GBC: offline 60/40 chronological split
    let data = gbc_dataset(&refs, window_s);
    let (mut train, mut test) = data.split(0.6);
    let norm = train.norm_params();
    train.normalize(&norm);
    test.normalize(&norm);
    let gbc = Gbc::train(&train, &GbcConfig::default());
    let preds: Vec<usize> = test.features.iter().map(|x| gbc.predict(x)).collect();
    let (eps, evs) = window_preds_to_episodes(&test.labels, &preds, window_s);
    let m = metrics_events_from(&eps, &evs, 2.0, 0.3, test.labels.len());
    rows.push(vec![
        name.into(),
        "GBC".into(),
        fmt::f(m.f1, 3),
        fmt::f(m.precision, 3),
        fmt::f(m.recall, 3),
        fmt::f(m.accuracy, 3),
    ]);

    // --- stacked LSTM: offline 60/40 split over location sequences
    let (xs, ys) = lstm_sequences(&refs, window_s);
    let cut = xs.len() * 6 / 10;
    let net = StackedLstm::train(
        &xs[..cut].to_vec(),
        &ys[..cut].to_vec(),
        &LstmConfig { epochs: 25, learning_rate: 0.02, ..Default::default() },
    );
    let preds: Vec<usize> = xs[cut..].iter().map(|x| net.predict(x)).collect();
    let (eps, evs) = window_preds_to_episodes(&ys[cut..], &preds, window_s);
    let m = metrics_events_from(&eps, &evs, 2.0, 0.3, ys.len() - cut);
    rows.push(vec![
        name.into(),
        "Stacked LSTM".into(),
        fmt::f(m.f1, 3),
        fmt::f(m.precision, 3),
        fmt::f(m.recall, 3),
        fmt::f(m.accuracy, 3),
    ]);
}

fn main() {
    fmt::header("Table 3 — HO prediction on D1/D2 (event-matched evaluation)");

    // scaled datasets: paper uses 7 and 10 laps; we use 4 and 5 for runtime
    let d1 = fiveg_bench::d1_traces(4);
    let d2 = fiveg_bench::d2_traces(5);
    println!(
        "  D1: {} laps, {} HOs | D2: {} laps, {} HOs",
        d1.len(),
        d1.iter().map(|t| t.handovers.len()).sum::<usize>(),
        d2.len(),
        d2.iter().map(|t| t.handovers.len()).sum::<usize>(),
    );

    let mut rows = Vec::new();
    evaluate_dataset("D1", &d1, &mut rows);
    evaluate_dataset("D2", &d2, &mut rows);
    fmt::table(&["dataset", "method", "F1", "precision", "recall", "accuracy"], &rows);

    println!("\npaper: D1 — GBC 0.475 / LSTM 0.284 / Prognos 0.919");
    println!("       D2 — GBC 0.396 / LSTM 0.241 / Prognos 0.936");

    // shape assertion: Prognos must beat both baselines on F1 per dataset
    for chunk in rows.chunks(3) {
        let f1 = |i: usize| chunk[i][2].parse::<f64>().unwrap();
        assert!(
            f1(0) > f1(1) && f1(0) > f1(2),
            "{}: Prognos F1 {} must beat GBC {} and LSTM {}",
            chunk[0][0],
            f1(0),
            f1(1),
            f1(2)
        );
    }
    println!("\nOK table3_prediction");
}
