//! Convenience runners: a scenario or fleet with a span assembler attached.
//!
//! These wrap the engine's hooked entry points so callers get spans without
//! wiring the [`SpanAssembler`] themselves. The fleet runner merges per-UE
//! logs in UE order with [`SpanLog::absorb`]; since the merge is
//! order-independent the resulting log is byte-identical at any thread
//! count — the same contract the fleet's telemetry absorption gives.

use crate::assembler::SpanAssembler;
use crate::span::SpanLog;
use fiveg_sim::fleet::{run_fleet_observed, FleetSpec, FleetTrace};
use fiveg_sim::{run_hooked, run_reference_hooked, Scenario, Telemetry, Trace};

/// Runs `s` on the snapshot radio path with a span assembler attached.
pub fn trace_run(s: &Scenario, tele: &Telemetry) -> (Trace, SpanLog) {
    let mut asm = SpanAssembler::new(0, s.arch);
    let trace = run_hooked(s, tele, &mut asm);
    (trace, asm.finish())
}

/// [`trace_run`] on the retained naive radio path (the differential-testing
/// reference). A correct engine yields the same spans on both paths.
pub fn trace_run_reference(s: &Scenario, tele: &Telemetry) -> (Trace, SpanLog) {
    let mut asm = SpanAssembler::new(0, s.arch);
    let trace = run_reference_hooked(s, tele, &mut asm);
    (trace, asm.finish())
}

/// Runs a fleet with one span assembler per UE and merges their logs in UE
/// order. The merged [`SpanLog`] is byte-identical at any `threads`.
pub fn run_fleet_traced(spec: &FleetSpec, threads: usize, tele: &Telemetry) -> (FleetTrace, SpanLog) {
    let arch = spec.base.arch;
    let (ft, assemblers) = run_fleet_observed(spec, threads, tele, |ue| SpanAssembler::new(ue, arch));
    let mut log = SpanLog::default();
    for asm in assemblers {
        log.absorb(asm.finish());
    }
    (ft, log)
}
