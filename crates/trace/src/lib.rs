//! # fiveg-trace — causal handover tracing
//!
//! The observability layer of the mobility simulator: it turns the flat
//! [`SimHook`](fiveg_sim::SimHook) event stream into **per-handover spans**
//! decomposed into the control-plane phases the paper vivisects —
//! trigger, preparation (T1), execution (T2), completion — with
//! data-interruption time charged to each radio the procedure halts.
//!
//! Three pieces:
//!
//! * [`HoSpan`] / [`SpanLog`] ([`span`]) — the span model. Spans are keyed
//!   by `(ue, seq)` and carry the vivisection dimensions (leg, source →
//!   target cell, cause, trigger events, outcome); [`SpanLog::absorb`]
//!   merges per-UE logs order-independently, so fleet aggregates are
//!   byte-identical at any thread count.
//! * [`SpanAssembler`] ([`assembler`]) — a [`SimHook`](fiveg_sim::SimHook)
//!   that assembles spans causally, reproducing the NSA compound procedure
//!   (forced SCGR chaining into a back-dated LTEH) and flagging — never
//!   papering over — events that cannot follow the current span state.
//! * [`FlightRecorder`] ([`recorder`]) — a bounded ring of recent events
//!   that dumps a deterministic `fiveg-flightrec/v1` JSONL document (last
//!   N events + in-flight and recent spans with full phase timelines) on
//!   oracle violations or RLF/fault storms.
//!
//! Everything is sim-time only: no wall clocks, no thread identity, no
//! allocation-order dependence. Two runs of the same scenario produce
//! byte-identical spans and dumps regardless of host or parallelism — the
//! property the `vivisect-smoke` CI step locks in.

pub mod assembler;
pub mod recorder;
pub mod runners;
pub mod span;

pub use assembler::{SpanAssembler, MAX_STORM_DUMPS, STORM_THRESHOLD, STORM_WINDOW_S};
pub use recorder::{FlightRecorder, RecEvent, DEFAULT_CAPACITY, DUMP_RECENT_SPANS, FLIGHTREC_SCHEMA};
pub use runners::{run_fleet_traced, trace_run, trace_run_reference};
pub use span::{Dump, HoSpan, SpanAnomaly, SpanLog, SpanOutcome, CAUSE_CHAINED};
