//! The handover span: one causally-assembled HO procedure with its
//! paper-aligned phase timeline.
//!
//! A span is keyed by `(ue, seq)` — the `seq`-th procedure the assembler
//! opened for that UE — and carries the vivisection dimensions the paper
//! slices by: the reconfiguring leg, the source→target cell pair on that
//! leg, and the *cause* (the policy action that opened it, or the chained
//! follow-up of a compound procedure). All timestamps are sim-time seconds;
//! nothing in a span depends on wall-clock or thread count.

use fiveg_ran::{CellId, HoType, RadioTech};
use fiveg_telemetry::JsonBuf;

/// Cause key of a span opened by a deferred chained follow-up (the LTEH the
/// state machine queues behind a forced SCG release under NSA).
pub const CAUSE_CHAINED: &str = "chained";

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Still in flight. Only the assembler's open span carries this value
    /// (it appears in flight-recorder dumps); closed spans in a
    /// [`SpanLog`] never do.
    Open,
    /// The HO committed (`on_ho_complete`).
    Completed,
    /// Fault injection failed the execution (`on_ho_failure`); the engine
    /// rolled back to the source cells.
    Failed,
    /// The run ended while the span was still open — a legitimate mid-HO
    /// run end, not an anomaly.
    Orphaned,
    /// The assembler abandoned the span after a causality anomaly (an event
    /// arrived that cannot follow the span's current state). Abandoned
    /// spans are never counted as handovers.
    Abandoned,
}

impl SpanOutcome {
    /// Stable snake_case name, for reports and dumps.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Open => "open",
            SpanOutcome::Completed => "completed",
            SpanOutcome::Failed => "failed",
            SpanOutcome::Orphaned => "orphaned",
            SpanOutcome::Abandoned => "abandoned",
        }
    }
}

/// One handover procedure, vivisected.
///
/// Phase timeline (all sim-time):
///
/// ```text
/// t_trigger ──► t_decision ──► t_command ──► t_complete ──► t_settled
///    trigger        preparation     execution      completion
/// ```
///
/// * **trigger** — from the measurement tick that produced the triggering
///   report to the policy decision (for chained spans: from the parent
///   completion to the deferred start, which the state machine back-dates
///   to zero width);
/// * **preparation** — decision → HO command (the paper's T1);
/// * **execution** — command → completion/failure (the paper's T2; the
///   data plane of the interrupted radios is halted here);
/// * **completion** — commit → end of the tick that sealed the span (config
///   re-delivery and measurement restart).
///
/// Data interruption is accounted from [`HoSpan::interrupts`]: the
/// execution window, charged to each radio whose data plane it halts.
#[derive(Debug, Clone)]
pub struct HoSpan {
    /// UE index (0 for single-UE runs).
    pub ue: u32,
    /// Per-UE span ordinal, in causal order.
    pub seq: u32,
    /// Cause key: the opening action's label (`ReconfigAction::label`) or
    /// [`CAUSE_CHAINED`] for the deferred follow-up of a compound HO.
    pub cause: &'static str,
    /// The procedure type, known once the record arrives (completion or
    /// failure). `None` on spans that never got that far.
    pub ho_type: Option<HoType>,
    /// The leg whose serving cell the procedure reconfigures.
    pub leg: Option<RadioTech>,
    /// Serving cell on `leg` when the span opened.
    pub source: Option<CellId>,
    /// Serving cell on `leg` after the commit (`None` for SCGR and for
    /// spans that never committed).
    pub target: Option<CellId>,
    /// `+`-joined labels of the measurement events in the trigger phase.
    pub trigger: String,
    /// Which radios' data planes the execution stage interrupts
    /// (lte, nr) — from the committed record; `(false, false)` until known.
    pub interrupts: (bool, bool),
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Measurement tick behind the triggering report (chain-arm time for
    /// chained spans).
    pub t_trigger: f64,
    /// Policy decision / deferred chain start.
    pub t_decision: f64,
    /// HO command (exact model time from the record once sealed).
    pub t_command: Option<f64>,
    /// Commit or failure time.
    pub t_complete: Option<f64>,
    /// End of the tick that sealed the span.
    pub t_settled: Option<f64>,
}

impl HoSpan {
    /// Trigger phase, ms.
    pub fn trigger_ms(&self) -> f64 {
        ((self.t_decision - self.t_trigger) * 1000.0).max(0.0)
    }

    /// Preparation phase (T1), ms.
    pub fn prep_ms(&self) -> Option<f64> {
        self.t_command.map(|c| (c - self.t_decision) * 1000.0)
    }

    /// Execution phase (T2), ms.
    pub fn exec_ms(&self) -> Option<f64> {
        match (self.t_command, self.t_complete) {
            (Some(c), Some(e)) => Some((e - c) * 1000.0),
            _ => None,
        }
    }

    /// Decision → completion, ms (the paper's HO duration).
    pub fn total_ms(&self) -> Option<f64> {
        self.t_complete.map(|e| (e - self.t_decision) * 1000.0)
    }

    /// Completion phase: commit → end of the sealing tick, ms.
    pub fn completion_ms(&self) -> Option<f64> {
        match (self.t_complete, self.t_settled) {
            (Some(e), Some(s)) => Some(((s - e) * 1000.0).max(0.0)),
            _ => None,
        }
    }

    /// Data-interruption charged to each radio, ms: the execution window on
    /// every leg this HO type halts. `(0, 0)` until the span sealed.
    pub fn interruption_ms(&self) -> (f64, f64) {
        let exec = self.exec_ms().unwrap_or(0.0);
        let (lte, nr) = self.interrupts;
        (if lte { exec } else { 0.0 }, if nr { exec } else { 0.0 })
    }

    /// Writes the span as one JSON object (the flight-recorder dump format).
    pub fn write_json(&self, j: &mut JsonBuf) {
        fn opt_num(j: &mut JsonBuf, v: Option<f64>) {
            match v {
                Some(v) => j.num(v),
                None => j.null(),
            }
        }
        j.open('{');
        j.key("ue");
        j.uint(self.ue as u64);
        j.key("seq");
        j.uint(self.seq as u64);
        j.key("cause");
        j.str_val(self.cause);
        j.key("ho_type");
        match self.ho_type {
            Some(h) => j.str_val(h.acronym()),
            None => j.null(),
        }
        j.key("leg");
        match self.leg {
            Some(RadioTech::Lte) => j.str_val("lte"),
            Some(RadioTech::Nr) => j.str_val("nr"),
            None => j.null(),
        }
        j.key("source");
        match self.source {
            Some(c) => j.uint(c.0 as u64),
            None => j.null(),
        }
        j.key("target");
        match self.target {
            Some(c) => j.uint(c.0 as u64),
            None => j.null(),
        }
        j.key("trigger");
        j.str_val(&self.trigger);
        j.key("outcome");
        j.str_val(self.outcome.name());
        j.key("t_trigger");
        j.num(self.t_trigger);
        j.key("t_decision");
        j.num(self.t_decision);
        j.key("t_command");
        opt_num(j, self.t_command);
        j.key("t_complete");
        opt_num(j, self.t_complete);
        j.key("t_settled");
        opt_num(j, self.t_settled);
        j.key("trigger_ms");
        j.num(self.trigger_ms());
        j.key("prep_ms");
        opt_num(j, self.prep_ms());
        j.key("exec_ms");
        opt_num(j, self.exec_ms());
        j.key("completion_ms");
        opt_num(j, self.completion_ms());
        let (int_lte, int_nr) = self.interruption_ms();
        j.key("interruption_lte_ms");
        j.num(int_lte);
        j.key("interruption_nr_ms");
        j.num(int_nr);
        j.close('}');
    }
}

/// A causality breach in the hook stream: an event arrived that cannot
/// follow the assembler's current span state. A correct engine never
/// produces these; the oracle mutation self-test proves a corrupted stream
/// does.
#[derive(Debug, Clone)]
pub struct SpanAnomaly {
    /// UE index.
    pub ue: u32,
    /// Per-UE anomaly ordinal (merge key alongside `ue`).
    pub seq: u32,
    /// Sim-time of the offending event.
    pub t: f64,
    /// Stable anomaly class, e.g. `complete_without_command`.
    pub kind: &'static str,
    /// Human-readable context.
    pub detail: String,
}

/// One flight-recorder dump, serialized at trigger time.
#[derive(Debug, Clone)]
pub struct Dump {
    /// UE index.
    pub ue: u32,
    /// Per-UE dump ordinal (merge key alongside `ue`).
    pub seq: u32,
    /// Sim-time of the trigger.
    pub t: f64,
    /// Why the recorder dumped (`oracle_violation`, `rlf_fault_storm`, …).
    pub reason: String,
    /// The dump document: JSONL, one meta line + one line per recorded
    /// event + one line per open/recent span.
    pub jsonl: String,
}

/// The merged, order-independent result of one or many assemblers.
///
/// Spans, anomalies and dumps are each keyed by `(ue, seq)`; [`absorb`]
/// re-sorts on that key, so merging per-UE logs in *any* order yields
/// byte-identical aggregates — the same contract `Telemetry::absorb` gives
/// the fleet's counters.
///
/// [`absorb`]: SpanLog::absorb
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    /// Closed spans, sorted by `(ue, seq)`.
    pub spans: Vec<HoSpan>,
    /// Causality anomalies, sorted by `(ue, seq)`.
    pub anomalies: Vec<SpanAnomaly>,
    /// Flight-recorder dumps, sorted by `(ue, seq)`.
    pub dumps: Vec<Dump>,
}

impl SpanLog {
    /// Folds `other` into `self`, keeping every collection sorted by
    /// `(ue, seq)`. Keys are unique per assembler, so the merge is
    /// commutative and associative.
    pub fn absorb(&mut self, other: SpanLog) {
        self.spans.extend(other.spans);
        self.spans.sort_by_key(|s| (s.ue, s.seq));
        self.anomalies.extend(other.anomalies);
        self.anomalies.sort_by_key(|a| (a.ue, a.seq));
        self.dumps.extend(other.dumps);
        self.dumps.sort_by_key(|d| (d.ue, d.seq));
    }

    /// Spans with the given outcome.
    pub fn count(&self, outcome: SpanOutcome) -> u64 {
        self.spans.iter().filter(|s| s.outcome == outcome).count() as u64
    }

    /// Committed spans per HO type, in [`HoType::ALL`] order (types with no
    /// spans are included with a zero count, so reconciliation against the
    /// per-type telemetry counters is positional).
    pub fn completed_by_type(&self) -> [(HoType, u64); HoType::ALL.len()] {
        let mut out = HoType::ALL.map(|h| (h, 0u64));
        for s in &self.spans {
            if s.outcome == SpanOutcome::Completed {
                if let Some(h) = s.ho_type {
                    if let Some(slot) = out.iter_mut().find(|(t, _)| *t == h) {
                        slot.1 += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ue: u32, seq: u32) -> HoSpan {
        HoSpan {
            ue,
            seq,
            cause: "scg_addition",
            ho_type: Some(HoType::Scga),
            leg: Some(RadioTech::Nr),
            source: None,
            target: Some(CellId(3)),
            trigger: "NR-B1".into(),
            interrupts: (false, true),
            outcome: SpanOutcome::Completed,
            t_trigger: 9.9,
            t_decision: 10.0,
            t_command: Some(10.064),
            t_complete: Some(10.152),
            t_settled: Some(10.2),
        }
    }

    #[test]
    fn phase_arithmetic() {
        let s = span(0, 0);
        assert!((s.trigger_ms() - 100.0).abs() < 1e-6);
        assert!((s.prep_ms().unwrap() - 64.0).abs() < 1e-6);
        assert!((s.exec_ms().unwrap() - 88.0).abs() < 1e-6);
        assert!((s.total_ms().unwrap() - 152.0).abs() < 1e-6);
        assert!((s.completion_ms().unwrap() - 48.0).abs() < 1e-6);
        let (lte, nr) = s.interruption_ms();
        assert_eq!(lte, 0.0);
        assert!((nr - 88.0).abs() < 1e-6);
    }

    #[test]
    fn absorb_is_order_independent() {
        let mut a = SpanLog::default();
        a.spans.push(span(0, 0));
        a.spans.push(span(0, 1));
        let mut b = SpanLog::default();
        b.spans.push(span(2, 0));
        let mut c = SpanLog::default();
        c.spans.push(span(1, 0));

        let mut fwd = SpanLog::default();
        fwd.absorb(a.clone());
        fwd.absorb(b.clone());
        fwd.absorb(c.clone());
        let mut rev = SpanLog::default();
        rev.absorb(c);
        rev.absorb(b);
        rev.absorb(a);
        let keys = |l: &SpanLog| l.spans.iter().map(|s| (s.ue, s.seq)).collect::<Vec<_>>();
        assert_eq!(keys(&fwd), keys(&rev));
        assert_eq!(keys(&fwd), vec![(0, 0), (0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn write_json_is_stable() {
        let mut j = JsonBuf::new();
        span(7, 3).write_json(&mut j);
        let s = j.as_str();
        assert!(s.starts_with("{\"ue\":7,\"seq\":3,\"cause\":\"scg_addition\""), "{s}");
        assert!(s.contains("\"prep_ms\":"), "{s}");
        assert!(s.contains("\"interruption_nr_ms\":"), "{s}");
    }

    #[test]
    fn completed_by_type_counts_positionally() {
        let mut log = SpanLog::default();
        log.spans.push(span(0, 0));
        let mut failed = span(0, 1);
        failed.outcome = SpanOutcome::Failed;
        log.spans.push(failed);
        let by = log.completed_by_type();
        let scga = by.iter().find(|(h, _)| *h == HoType::Scga).unwrap();
        assert_eq!(scga.1, 1);
        assert_eq!(by.iter().map(|(_, n)| n).sum::<u64>(), 1);
    }
}
