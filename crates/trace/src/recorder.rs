//! Bounded flight recorder: the last N hook events, dumpable as JSONL.
//!
//! The recorder is the crash-dump half of the tracing subsystem. The
//! [`crate::SpanAssembler`] feeds it a compact line per hook event; it keeps
//! a fixed-capacity ring (old events fall off the front, a drop counter
//! remembers how many) and, when asked, serializes the ring plus the spans
//! in flight into one self-contained `fiveg-flightrec/v1` JSONL document.
//! Dump documents are pure sim-time — no wall clocks, no thread IDs — so a
//! dump taken at the same sim state is byte-identical regardless of thread
//! count or host.

use crate::span::{Dump, HoSpan};
use fiveg_telemetry::JsonBuf;
use std::collections::VecDeque;

/// Default ring capacity: at the standard 10 Hz tick rate this holds ~25 s
/// of history even when every tick is recorded, comfortably spanning the
/// storm-detection window.
pub const DEFAULT_CAPACITY: usize = 256;

/// How many recently-closed spans a dump carries alongside the open one.
pub const DUMP_RECENT_SPANS: usize = 4;

/// Schema tag of the dump document's header line.
pub const FLIGHTREC_SCHEMA: &str = "fiveg-flightrec/v1";

/// One recorded hook event.
#[derive(Debug, Clone)]
pub struct RecEvent {
    /// Sim-time, s.
    pub t: f64,
    /// Stable event class (`attach`, `decision`, `command`, `complete`,
    /// `failure`, `tick`, `anomaly`, `run_end`).
    pub kind: &'static str,
    /// Deterministic context string built only from sim data.
    pub detail: String,
}

/// Fixed-capacity event ring with a drop counter.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: VecDeque<RecEvent>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder { ring: VecDeque::with_capacity(cap.max(1)), cap: cap.max(1), dropped: 0 }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&mut self, t: f64, kind: &'static str, detail: String) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(RecEvent { t, kind, detail });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the ring plus the in-flight and recent spans into one
    /// `fiveg-flightrec/v1` JSONL document:
    ///
    /// 1. a header line (`schema`, `ue`, `seq`, `reason`, `t`, event and
    ///    span tallies, the eviction count);
    /// 2. one `{"event":…}` line per ring entry, oldest first;
    /// 3. one `{"span":…}` line per span — the open span (if any) first,
    ///    then up to [`DUMP_RECENT_SPANS`] most recently closed spans,
    ///    newest last — each with its full phase timeline
    ///    ([`HoSpan::write_json`]).
    #[allow(clippy::too_many_arguments)]
    pub fn dump(&self, ue: u32, seq: u32, reason: &str, t: f64, open: Option<&HoSpan>, recent: &[HoSpan]) -> Dump {
        let recent = &recent[recent.len().saturating_sub(DUMP_RECENT_SPANS)..];
        let n_spans = recent.len() + usize::from(open.is_some());
        let mut out = String::new();

        let mut j = JsonBuf::new();
        j.open('{');
        j.key("schema");
        j.str_val(FLIGHTREC_SCHEMA);
        j.key("ue");
        j.uint(ue as u64);
        j.key("seq");
        j.uint(seq as u64);
        j.key("reason");
        j.str_val(reason);
        j.key("t");
        j.num(t);
        j.key("events");
        j.uint(self.ring.len() as u64);
        j.key("spans");
        j.uint(n_spans as u64);
        j.key("dropped");
        j.uint(self.dropped);
        j.close('}');
        out.push_str(&j.finish_line());

        for ev in &self.ring {
            let mut j = JsonBuf::new();
            j.open('{');
            j.key("event");
            j.open('{');
            j.key("t");
            j.num(ev.t);
            j.key("kind");
            j.str_val(ev.kind);
            j.key("detail");
            j.str_val(&ev.detail);
            j.close('}');
            j.close('}');
            out.push_str(&j.finish_line());
        }

        let spans = open.into_iter().chain(recent.iter());
        for span in spans {
            let mut j = JsonBuf::new();
            j.open('{');
            j.key("span");
            span.write_json(&mut j);
            j.close('}');
            out.push_str(&j.finish_line());
        }

        Dump { ue, seq, t, reason: reason.to_string(), jsonl: out }
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanOutcome;
    use fiveg_ran::{HoType, RadioTech};

    fn mk_span(seq: u32) -> HoSpan {
        HoSpan {
            ue: 0,
            seq,
            cause: "scg_addition",
            ho_type: Some(HoType::Scga),
            leg: Some(RadioTech::Nr),
            source: None,
            target: None,
            trigger: "NR-B1".into(),
            interrupts: (false, true),
            outcome: SpanOutcome::Completed,
            t_trigger: 0.0,
            t_decision: 0.1,
            t_command: Some(0.2),
            t_complete: Some(0.3),
            t_settled: Some(0.4),
        }
    }

    #[test]
    fn ring_evicts_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(i as f64, "tick", String::new());
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let d = r.dump(0, 0, "test", 5.0, None, &[]);
        assert!(d.jsonl.contains("\"dropped\":2"), "{}", d.jsonl);
        // oldest surviving event is t=2
        assert!(d.jsonl.contains("\"t\":2,\"kind\":\"tick\""), "{}", d.jsonl);
        assert!(!d.jsonl.contains("\"t\":1,\"kind\":\"tick\""), "{}", d.jsonl);
    }

    #[test]
    fn dump_is_jsonl_with_header_events_spans() {
        let mut r = FlightRecorder::new(8);
        r.record(0.1, "decision", "scg_addition".into());
        r.record(0.2, "command", String::new());
        let closed = [mk_span(0), mk_span(1)];
        let open = mk_span(2);
        let d = r.dump(3, 0, "oracle_violation", 0.25, Some(&open), &closed);
        let lines: Vec<&str> = d.jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + 2 + 3);
        assert!(lines[0].starts_with("{\"schema\":\"fiveg-flightrec/v1\""), "{}", lines[0]);
        assert!(lines[0].contains("\"reason\":\"oracle_violation\""));
        assert!(lines[0].contains("\"spans\":3"));
        assert!(lines[1].starts_with("{\"event\":{\"t\":0.1,\"kind\":\"decision\""));
        // open span first, then recent closed spans
        assert!(lines[3].starts_with("{\"span\":{\"ue\":0,\"seq\":2"), "{}", lines[3]);
        assert!(lines[4].contains("\"seq\":0"));
        assert!(lines[5].contains("\"seq\":1"));
        // full phase timeline present on span lines
        assert!(lines[3].contains("\"prep_ms\":") && lines[3].contains("\"exec_ms\":"));
    }

    #[test]
    fn recent_spans_are_capped() {
        let r = FlightRecorder::new(4);
        let closed: Vec<HoSpan> = (0..10).map(mk_span).collect();
        let d = r.dump(0, 1, "storm", 1.0, None, &closed);
        let span_lines = d.jsonl.lines().filter(|l| l.starts_with("{\"span\":")).count();
        assert_eq!(span_lines, DUMP_RECENT_SPANS);
        // the *newest* spans survive
        assert!(d.jsonl.contains("\"seq\":9"));
        assert!(!d.jsonl.contains("\"seq\":5"));
    }
}
