//! The span assembler: a [`SimHook`] that turns the flat engine event
//! stream into causally-linked [`HoSpan`]s.
//!
//! One assembler watches one UE. It mirrors just enough of the engine's
//! handover state machine to know which event can legally follow which:
//! a decision opens a span, the command moves it into execution, the
//! completion (or fault-injected failure) seals it with the *exact* model
//! times carried by the [`HandoverRecord`]. The NSA compound procedure is
//! reproduced causally: an anchor change with an SCG attached opens a
//! forced-SCGR span (cause `lte_handover`), and its successful completion
//! arms a chained LTEH span that the state machine begins without a new
//! decision — the assembler opens it at the chained HO command and
//! back-dates its start to the parent's completion, exactly as the state
//! machine does.
//!
//! Events that cannot follow the current span state (a completion with no
//! command in flight, a command with no decision, …) are **never** papered
//! over with a fabricated span: the assembler records a [`SpanAnomaly`],
//! abandons the orphaned span if one is open, and resynchronizes. The
//! oracle's mutation self-test injects exactly such corruptions and asserts
//! they surface here.
//!
//! Every event is also fed to a bounded [`FlightRecorder`]; an RLF/fault
//! storm (≥ [`STORM_THRESHOLD`] adverse events within [`STORM_WINDOW_S`])
//! or an external trigger ([`SpanAssembler::force_dump`], wired to oracle
//! violations) snapshots it into a deterministic JSONL crash dump.

use crate::recorder::FlightRecorder;
use crate::span::{HoSpan, SpanAnomaly, SpanLog, SpanOutcome, CAUSE_CHAINED};
use fiveg_ran::{Arch, HandoverRecord, HoPhase, RadioTech};
use fiveg_rrc::ReconfigAction;
use fiveg_sim::hook::{AttachReason, ServingCells, SimHook, TickView};
use std::collections::VecDeque;

/// Sliding window for the adverse-event storm detector, s.
pub const STORM_WINDOW_S: f64 = 10.0;

/// Adverse events (RLF reattaches + fault-injected HO failures) within the
/// window that declare a storm and trigger a flight-recorder dump.
pub const STORM_THRESHOLD: usize = 3;

/// Storm dumps are capped per UE so a pathological run cannot grow the
/// span log without bound. Forced dumps (oracle violations) ignore the cap.
pub const MAX_STORM_DUMPS: u32 = 4;

/// Tolerance when cross-checking the observed decision time against the
/// sealed record's `t_decision` (they are the same `f64` in a correct
/// stream).
const T_EPS: f64 = 1e-6;

/// An in-flight span plus the assembler-side state that is not part of the
/// span itself.
struct OpenSpan {
    span: HoSpan,
    /// `on_ho_command` seen — execution running.
    commanded: bool,
    /// This is the forced SCGR of an NSA compound procedure: success arms
    /// a chained LTEH.
    chains: bool,
}

/// Per-UE causal span assembler. Implements [`SimHook`]; drive it through
/// `run_hooked` / `run_fleet_observed` and collect the result with
/// [`SpanAssembler::finish`].
pub struct SpanAssembler {
    ue: u32,
    arch: Arch,
    serving: ServingCells,
    /// Time of the previous tick — the measurement instant behind the next
    /// decision's triggering report.
    last_tick_t: f64,
    open: Option<OpenSpan>,
    /// Completion time of a forced SCGR whose chained LTEH has not begun
    /// yet.
    chain_armed: Option<f64>,
    next_seq: u32,
    anomaly_seq: u32,
    dump_seq: u32,
    log: SpanLog,
    recorder: FlightRecorder,
    /// Indices into `log.spans` awaiting their sealing tick's end time.
    settle_pending: Vec<usize>,
    /// Recent adverse-event times (pruned to [`STORM_WINDOW_S`]).
    adverse: VecDeque<f64>,
    storm_active: bool,
    storm_dumps: u32,
}

impl SpanAssembler {
    /// An assembler for UE `ue` running under `arch` (the scenario's
    /// architecture — needed to recognize the NSA compound procedure).
    pub fn new(ue: u32, arch: Arch) -> SpanAssembler {
        SpanAssembler {
            ue,
            arch,
            serving: ServingCells { lte: None, nr: None },
            last_tick_t: 0.0,
            open: None,
            chain_armed: None,
            next_seq: 0,
            anomaly_seq: 0,
            dump_seq: 0,
            log: SpanLog::default(),
            recorder: FlightRecorder::default(),
            settle_pending: Vec::new(),
            adverse: VecDeque::new(),
            storm_active: false,
            storm_dumps: 0,
        }
    }

    /// The UE this assembler watches.
    pub fn ue(&self) -> u32 {
        self.ue
    }

    /// The log assembled so far (closed spans, anomalies, dumps).
    pub fn log(&self) -> &SpanLog {
        &self.log
    }

    /// The span currently in flight, if any.
    pub fn open_span(&self) -> Option<&HoSpan> {
        self.open.as_ref().map(|o| &o.span)
    }

    /// Closes any in-flight span as [`SpanOutcome::Orphaned`] and returns
    /// the assembled log.
    pub fn finish(mut self) -> SpanLog {
        if self.open.is_some() {
            self.close_orphaned();
        }
        self.log
    }

    /// Snapshots the flight recorder right now, tagged `reason`. Wired by
    /// the oracle harness to invariant violations; ignores the storm-dump
    /// cap.
    pub fn force_dump(&mut self, reason: &str, t: f64) {
        self.take_dump(reason, t);
    }

    // --- internals -------------------------------------------------------

    /// The leg a decision reconfigures, and whether the state machine will
    /// convert it into a forced SCGR with a chained LTEH (NSA anchor change
    /// while an SCG is attached).
    fn action_leg(&self, action: &ReconfigAction) -> (RadioTech, bool) {
        match action {
            ReconfigAction::LteHandover { .. } if self.arch == Arch::Nsa && self.serving.nr.is_some() => {
                (RadioTech::Nr, true)
            }
            ReconfigAction::LteHandover { .. } | ReconfigAction::MenbHandover { .. } => (RadioTech::Lte, false),
            _ => (RadioTech::Nr, false),
        }
    }

    fn serving_on(&self, leg: RadioTech) -> Option<fiveg_ran::CellId> {
        match leg {
            RadioTech::Lte => self.serving.lte,
            RadioTech::Nr => self.serving.nr,
        }
    }

    fn anomaly(&mut self, t: f64, kind: &'static str, detail: String) {
        self.recorder.record(t, "anomaly", format!("{kind}: {detail}"));
        self.log.anomalies.push(SpanAnomaly { ue: self.ue, seq: self.anomaly_seq, t, kind, detail });
        self.anomaly_seq += 1;
    }

    /// Closes the open span as [`SpanOutcome::Abandoned`] after a causality
    /// anomaly. Abandoned spans keep their observed (tick-quantized) times
    /// and never count as handovers.
    fn abandon_open(&mut self, t: f64) {
        if let Some(mut o) = self.open.take() {
            o.span.outcome = SpanOutcome::Abandoned;
            self.recorder.record(t, "abandon", format!("span #{}", o.span.seq));
            self.log.spans.push(o.span);
        }
    }

    fn close_orphaned(&mut self) {
        if let Some(mut o) = self.open.take() {
            o.span.outcome = SpanOutcome::Orphaned;
            self.log.spans.push(o.span);
        }
    }

    /// Seals the open span from the engine's [`HandoverRecord`] — the
    /// record's model times are exact where the hook times are quantized to
    /// the tick that delivered them, so the record wins.
    fn seal_open(&mut self, t: f64, rec: &HandoverRecord, outcome: SpanOutcome) {
        let mut o = match self.open.take() {
            Some(o) => o,
            None => return,
        };
        if (rec.t_decision - o.span.t_decision).abs() > T_EPS {
            self.anomaly(
                t,
                "record_mismatch",
                format!("record t_decision {} vs observed {}", rec.t_decision, o.span.t_decision),
            );
        }
        let s = &mut o.span;
        s.ho_type = Some(rec.ho_type);
        s.leg = Some(rec.ho_type.leg());
        s.interrupts = rec.interrupts;
        s.t_decision = rec.t_decision;
        s.t_command = Some(rec.t_command);
        s.t_complete = Some(rec.t_complete);
        s.outcome = outcome;
        if !rec.trigger_phase.is_empty() {
            let labels: Vec<String> = rec.trigger_phase.iter().map(|e| e.label()).collect();
            s.trigger = labels.join("+");
        }
        if outcome == SpanOutcome::Completed {
            s.target = self.serving_on(rec.ho_type.leg());
            if o.chains {
                self.chain_armed = Some(rec.t_complete);
            }
        }
        self.settle_pending.push(self.log.spans.len());
        self.log.spans.push(o.span);
    }

    fn take_dump(&mut self, reason: &str, t: f64) {
        let open = self.open.as_ref().map(|o| &o.span);
        let d = self.recorder.dump(self.ue, self.dump_seq, reason, t, open, &self.log.spans);
        self.dump_seq += 1;
        self.log.dumps.push(d);
    }

    /// Registers an adverse event (RLF reattach / fault-injected failure)
    /// and dumps the recorder when a storm threshold is freshly crossed.
    fn adverse(&mut self, t: f64) {
        self.prune_adverse(t);
        self.adverse.push_back(t);
        if self.adverse.len() >= STORM_THRESHOLD && !self.storm_active {
            self.storm_active = true;
            if self.storm_dumps < MAX_STORM_DUMPS {
                self.storm_dumps += 1;
                self.take_dump("rlf_fault_storm", t);
            }
        }
    }

    fn prune_adverse(&mut self, t: f64) {
        while self.adverse.front().is_some_and(|&a| a < t - STORM_WINDOW_S) {
            self.adverse.pop_front();
        }
        if self.storm_active && self.adverse.len() < STORM_THRESHOLD {
            // window drained: re-arm so the *next* storm dumps again
            self.storm_active = false;
        }
    }

    fn fmt_serving(s: ServingCells) -> String {
        let cell = |c: Option<fiveg_ran::CellId>| c.map(|c| c.0.to_string()).unwrap_or_else(|| "-".into());
        format!("lte={} nr={}", cell(s.lte), cell(s.nr))
    }
}

impl SimHook for SpanAssembler {
    fn on_attach(&mut self, t: f64, reason: AttachReason, serving: ServingCells) {
        match reason {
            AttachReason::Initial => {
                self.recorder.record(t, "attach", format!("initial {}", Self::fmt_serving(serving)));
                self.last_tick_t = t;
            }
            AttachReason::Reattach { leg, rlf } => {
                let leg_s = match leg {
                    RadioTech::Lte => "lte",
                    RadioTech::Nr => "nr",
                };
                self.recorder.record(
                    t,
                    "attach",
                    format!("reattach leg={leg_s} rlf={rlf} {}", Self::fmt_serving(serving)),
                );
                // the engine gates reattaches on an idle state machine, so
                // one arriving mid-span means the stream is corrupt
                if self.open.is_some() || self.chain_armed.is_some() {
                    self.anomaly(t, "reattach_during_ho", format!("leg={leg_s} rlf={rlf}"));
                    self.abandon_open(t);
                    self.chain_armed = None;
                }
                if rlf {
                    self.adverse(t);
                }
            }
        }
        self.serving = serving;
    }

    fn on_decision(&mut self, t: f64, action: &ReconfigAction) {
        self.recorder.record(t, "decision", action.label().to_string());
        if self.chain_armed.take().is_some() {
            self.anomaly(t, "decision_while_chained", action.label().to_string());
        }
        if self.open.is_some() {
            self.anomaly(t, "decision_while_open", action.label().to_string());
            self.abandon_open(t);
        }
        let (leg, chains) = self.action_leg(action);
        let span = HoSpan {
            ue: self.ue,
            seq: self.next_seq,
            cause: action.label(),
            ho_type: None,
            leg: Some(leg),
            source: self.serving_on(leg),
            target: None,
            trigger: String::new(),
            interrupts: (false, false),
            outcome: SpanOutcome::Open,
            t_trigger: self.last_tick_t,
            t_decision: t,
            t_command: None,
            t_complete: None,
            t_settled: None,
        };
        self.next_seq += 1;
        self.open = Some(OpenSpan { span, commanded: false, chains });
    }

    fn on_ho_command(&mut self, t: f64) {
        self.recorder.record(t, "command", String::new());
        if let Some(o) = self.open.as_mut() {
            if o.commanded {
                self.anomaly(t, "duplicate_command", "command while already executing".into());
            } else {
                o.commanded = true;
                // tick-quantized; replaced by the record's exact time at seal
                o.span.t_command = Some(t);
            }
        } else if let Some(armed_t) = self.chain_armed.take() {
            // the chained LTEH of an NSA compound procedure: no decision
            // fires — the state machine begins it on its own, back-dated to
            // the parent's completion
            let span = HoSpan {
                ue: self.ue,
                seq: self.next_seq,
                cause: CAUSE_CHAINED,
                ho_type: None,
                leg: Some(RadioTech::Lte),
                source: self.serving.lte,
                target: None,
                trigger: String::new(),
                interrupts: (false, false),
                outcome: SpanOutcome::Open,
                t_trigger: armed_t,
                t_decision: armed_t,
                t_command: Some(t),
                t_complete: None,
                t_settled: None,
            };
            self.next_seq += 1;
            self.open = Some(OpenSpan { span, commanded: true, chains: false });
        } else {
            self.anomaly(t, "command_without_decision", "no span open, no chain armed".into());
        }
    }

    fn on_ho_complete(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.recorder.record(t, "complete", format!("{} {}", rec.ho_type.acronym(), Self::fmt_serving(serving)));
        self.serving = serving;
        match &self.open {
            Some(o) if o.commanded => self.seal_open(t, rec, SpanOutcome::Completed),
            Some(_) => {
                // completion with no execution in flight: the stream is out
                // of order — abandon, never fabricate
                self.anomaly(t, "complete_without_command", format!("{} before its command", rec.ho_type.acronym()));
                self.abandon_open(t);
            }
            None => {
                self.anomaly(t, "complete_without_decision", format!("{} with no span open", rec.ho_type.acronym()));
            }
        }
    }

    fn on_ho_failure(&mut self, t: f64, rec: &HandoverRecord, serving: ServingCells) {
        self.recorder.record(t, "failure", format!("{} {}", rec.ho_type.acronym(), Self::fmt_serving(serving)));
        self.serving = serving;
        // the engine aborts any chained follow-up on failure
        self.chain_armed = None;
        match &self.open {
            Some(o) if o.commanded => self.seal_open(t, rec, SpanOutcome::Failed),
            Some(_) => {
                self.anomaly(t, "failure_without_command", format!("{} before its command", rec.ho_type.acronym()));
                self.abandon_open(t);
            }
            None => {
                self.anomaly(t, "failure_without_command", format!("{} with no span open", rec.ho_type.acronym()));
            }
        }
        self.adverse(t);
    }

    fn on_tick(&mut self, view: &TickView) {
        let phase = match view.phase {
            HoPhase::Idle => "idle",
            HoPhase::Preparing => "preparing",
            HoPhase::Executing => "executing",
        };
        self.recorder.record(view.t, "tick", format!("#{} phase={} queued={}", view.tick, phase, view.queued));
        for idx in self.settle_pending.drain(..) {
            self.log.spans[idx].t_settled = Some(view.t);
        }
        self.serving = view.serving;
        self.last_tick_t = view.t;
        self.prune_adverse(view.t);
    }

    fn on_run_end(&mut self, t: f64, serving: ServingCells, _phase: HoPhase, queued: usize) {
        self.recorder.record(t, "run_end", format!("queued={} {}", queued, Self::fmt_serving(serving)));
        for idx in self.settle_pending.drain(..) {
            self.log.spans[idx].t_settled = Some(t);
        }
        self.close_orphaned();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{CellId, HoType, StageSample};
    use fiveg_rrc::Pci;

    fn serving(lte: Option<u32>, nr: Option<u32>) -> ServingCells {
        ServingCells { lte: lte.map(CellId), nr: nr.map(CellId) }
    }

    fn rec(ho_type: HoType, t_decision: f64, t1_ms: f64, t2_ms: f64) -> HandoverRecord {
        let t_command = t_decision + t1_ms / 1000.0;
        HandoverRecord {
            ho_type,
            arch: Arch::Nsa,
            nr_band: None,
            t_decision,
            t_command,
            t_complete: t_command + t2_ms / 1000.0,
            stages: StageSample { t1_ms, t2_ms },
            source_lte: Some(Pci(1)),
            source_nr: None,
            target: Some(Pci(2)),
            co_located: false,
            same_pci: false,
            trigger_phase: vec![],
            interrupts: ho_type.interrupts(),
        }
    }

    fn tick(n: u64, t: f64, s: ServingCells, phase: HoPhase, queued: usize) -> TickView {
        TickView { tick: n, t, serving: s, phase, queued, lte_rrs: None, nr_rrs: None, capacity_mbps: 0.0 }
    }

    /// Decision → command → complete assembles one completed span with the
    /// record's exact times and the post-HO target.
    #[test]
    fn assembles_a_simple_span() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), None));
        a.on_tick(&tick(1, 0.1, serving(Some(1), None), HoPhase::Idle, 0));
        let action = ReconfigAction::ScgAddition { nr_target: Pci(7) };
        a.on_decision(0.2, &action);
        a.on_tick(&tick(2, 0.2, serving(Some(1), None), HoPhase::Preparing, 0));
        a.on_ho_command(0.3);
        a.on_tick(&tick(3, 0.3, serving(Some(1), None), HoPhase::Executing, 0));
        let r = rec(HoType::Scga, 0.2, 64.0, 88.0);
        a.on_ho_complete(0.4, &r, serving(Some(1), Some(9)));
        a.on_tick(&tick(4, 0.4, serving(Some(1), Some(9)), HoPhase::Idle, 0));
        a.on_run_end(0.5, serving(Some(1), Some(9)), HoPhase::Idle, 0);

        let log = a.finish();
        assert!(log.anomalies.is_empty(), "{:?}", log.anomalies);
        assert_eq!(log.spans.len(), 1);
        let s = &log.spans[0];
        assert_eq!(s.outcome, SpanOutcome::Completed);
        assert_eq!(s.cause, "scg_addition");
        assert_eq!(s.ho_type, Some(HoType::Scga));
        assert_eq!(s.leg, Some(RadioTech::Nr));
        assert_eq!(s.target, Some(CellId(9)));
        // sealed with the record's exact times, not the quantized hook times
        assert_eq!(s.t_command, Some(r.t_command));
        assert_eq!(s.t_complete, Some(r.t_complete));
        assert_eq!(s.t_settled, Some(0.4));
        assert!((s.trigger_ms() - 100.0).abs() < 1e-6);
    }

    /// The NSA compound procedure yields two causally-linked spans: the
    /// forced SCGR (cause `lte_handover`) and the chained LTEH whose start
    /// is back-dated to the parent's completion.
    #[test]
    fn chains_the_nsa_compound_procedure() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), Some(9)));
        a.on_tick(&tick(1, 0.1, serving(Some(1), Some(9)), HoPhase::Idle, 0));
        // anchor change with SCG attached → forced SCGR + queued LTEH
        a.on_decision(0.2, &ReconfigAction::LteHandover { target: Pci(2) });
        let scgr = rec(HoType::Scgr, 0.2, 30.0, 40.0);
        a.on_ho_command(0.3);
        a.on_ho_complete(0.3, &scgr, serving(Some(1), None));
        // the chained LTEH fires no decision; first evidence is its command
        let mut lteh = rec(HoType::Lteh, scgr.t_complete, 50.0, 60.0);
        lteh.trigger_phase = vec![];
        a.on_ho_command(0.4);
        a.on_ho_complete(0.5, &lteh, serving(Some(2), None));
        a.on_tick(&tick(5, 0.5, serving(Some(2), None), HoPhase::Idle, 0));
        a.on_run_end(0.6, serving(Some(2), None), HoPhase::Idle, 0);

        let log = a.finish();
        assert!(log.anomalies.is_empty(), "{:?}", log.anomalies);
        assert_eq!(log.spans.len(), 2);
        let parent = &log.spans[0];
        assert_eq!(parent.ho_type, Some(HoType::Scgr));
        assert_eq!(parent.cause, "lte_handover");
        assert_eq!(parent.target, None);
        let chained = &log.spans[1];
        assert_eq!(chained.ho_type, Some(HoType::Lteh));
        assert_eq!(chained.cause, CAUSE_CHAINED);
        // zero-width trigger+prep gap back-dated to the parent completion
        assert_eq!(chained.t_trigger, parent.t_complete.unwrap());
        assert_eq!(chained.t_decision, lteh.t_decision);
        assert_eq!(chained.target, Some(CellId(2)));
    }

    /// An out-of-order stream (completion before its command) is flagged,
    /// the span is abandoned, and nothing is fabricated.
    #[test]
    fn out_of_order_completion_is_flagged_not_fabricated() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), None));
        a.on_decision(0.2, &ReconfigAction::ScgAddition { nr_target: Pci(7) });
        // completion arrives with no command in flight
        let r = rec(HoType::Scga, 0.2, 64.0, 88.0);
        a.on_ho_complete(0.4, &r, serving(Some(1), Some(9)));
        // ...and the held-back command follows
        a.on_ho_command(0.4);
        a.on_run_end(0.5, serving(Some(1), Some(9)), HoPhase::Idle, 0);

        let log = a.finish();
        assert_eq!(log.count(SpanOutcome::Completed), 0);
        assert_eq!(log.count(SpanOutcome::Abandoned), 1);
        let kinds: Vec<&str> = log.anomalies.iter().map(|an| an.kind).collect();
        assert!(kinds.contains(&"complete_without_command"), "{kinds:?}");
        assert!(kinds.contains(&"command_without_decision"), "{kinds:?}");
    }

    /// A fault-injected failure seals the span as Failed with no target.
    #[test]
    fn failure_seals_span_as_failed() {
        let mut a = SpanAssembler::new(0, Arch::Sa);
        a.on_attach(0.0, AttachReason::Initial, serving(None, Some(9)));
        a.on_decision(0.2, &ReconfigAction::McgHandover { target: Pci(3) });
        a.on_ho_command(0.3);
        let r = rec(HoType::Mcgh, 0.2, 64.0, 88.0);
        a.on_ho_failure(0.4, &r, serving(None, Some(9)));
        a.on_run_end(0.5, serving(None, Some(9)), HoPhase::Idle, 0);

        let log = a.finish();
        assert!(log.anomalies.is_empty(), "{:?}", log.anomalies);
        assert_eq!(log.count(SpanOutcome::Failed), 1);
        assert_eq!(log.spans[0].target, None);
        assert_eq!(log.spans[0].ho_type, Some(HoType::Mcgh));
    }

    /// Three adverse events inside the window trigger exactly one storm
    /// dump; the detector re-arms only after the window drains.
    #[test]
    fn storm_detector_dumps_once_per_storm() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), None));
        for t in [1.0, 2.0, 3.0, 4.0] {
            a.on_attach(t, AttachReason::Reattach { leg: RadioTech::Lte, rlf: true }, serving(Some(1), None));
        }
        assert_eq!(a.log().dumps.len(), 1);
        assert_eq!(a.log().dumps[0].reason, "rlf_fault_storm");
        // window drains past t=13 → re-armed; a fresh storm dumps again
        a.on_tick(&tick(1, 20.0, serving(Some(1), None), HoPhase::Idle, 0));
        for t in [21.0, 22.0, 23.0] {
            a.on_attach(t, AttachReason::Reattach { leg: RadioTech::Lte, rlf: true }, serving(Some(1), None));
        }
        let log = a.finish();
        assert_eq!(log.dumps.len(), 2);
    }

    /// A forced dump carries the open span with its timeline so far.
    #[test]
    fn force_dump_contains_open_span_timeline() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), None));
        a.on_decision(0.2, &ReconfigAction::ScgAddition { nr_target: Pci(7) });
        a.on_ho_command(0.3);
        a.force_dump("oracle_violation", 0.35);
        let log = a.finish();
        assert_eq!(log.dumps.len(), 1);
        let d = &log.dumps[0];
        assert_eq!(d.reason, "oracle_violation");
        assert!(d.jsonl.contains("\"outcome\":\"open\""), "{}", d.jsonl);
        assert!(d.jsonl.contains("\"cause\":\"scg_addition\""), "{}", d.jsonl);
        assert!(d.jsonl.contains("\"t_command\":0.3"), "{}", d.jsonl);
    }

    /// A run ending mid-HO closes the span as Orphaned — not an anomaly.
    #[test]
    fn run_end_orphans_open_span() {
        let mut a = SpanAssembler::new(0, Arch::Nsa);
        a.on_attach(0.0, AttachReason::Initial, serving(Some(1), None));
        a.on_decision(0.2, &ReconfigAction::ScgAddition { nr_target: Pci(7) });
        a.on_run_end(0.3, serving(Some(1), None), HoPhase::Preparing, 0);
        let log = a.finish();
        assert!(log.anomalies.is_empty());
        assert_eq!(log.count(SpanOutcome::Orphaned), 1);
    }
}
