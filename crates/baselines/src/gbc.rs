//! Multi-class gradient boosting classifier (the Mei et al. baseline).
//!
//! Standard softmax boosting: per round, fit one regression tree per class
//! to the negative gradient of the cross-entropy loss (one-hot minus
//! predicted probability), and add it with a learning rate.

use crate::data::Dataset;
use crate::tree::{RegressionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Booster hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GbcConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Weak-learner shape.
    pub tree: TreeConfig,
    /// Weight gradients by inverse class frequency (softened by sqrt) —
    /// needed on HO data where positives are ~2% of windows.
    pub balanced: bool,
}

impl Default for GbcConfig {
    fn default() -> Self {
        Self { rounds: 40, learning_rate: 0.3, tree: TreeConfig::default(), balanced: true }
    }
}

/// A trained gradient-boosted classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbc {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    /// Class-prior log-odds initialization.
    base: Vec<f64>,
    learning_rate: f64,
    num_classes: usize,
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / z).collect()
}

impl Gbc {
    /// Trains on `data` (labels in `0..num_classes`).
    pub fn train(data: &Dataset, cfg: &GbcConfig) -> Self {
        let n = data.len();
        let k = data.num_classes().max(2);
        assert!(n > 0, "empty training set");
        // prior log-probabilities as the base score
        let mut counts = vec![1.0f64; k]; // +1 smoothing
        for &l in &data.labels {
            counts[l] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let base: Vec<f64> = counts.iter().map(|c| (c / total).ln()).collect();

        // softened inverse-frequency class weights
        let weights: Vec<f64> = if cfg.balanced {
            counts.iter().map(|&c| (total / (k as f64 * c)).sqrt().min(30.0)).collect()
        } else {
            vec![1.0; k]
        };
        let mut logits: Vec<Vec<f64>> = vec![base.clone(); n];
        let mut trees: Vec<Vec<RegressionTree>> = Vec::with_capacity(cfg.rounds);
        for _ in 0..cfg.rounds {
            let mut round = Vec::with_capacity(k);
            // per-class gradients
            let probs: Vec<Vec<f64>> = logits.iter().map(|l| softmax(l)).collect();
            for c in 0..k {
                let grad: Vec<f64> = (0..n)
                    .map(|i| {
                        let w = weights[data.labels[i]];
                        w * ((if data.labels[i] == c { 1.0 } else { 0.0 }) - probs[i][c])
                    })
                    .collect();
                let tree = RegressionTree::fit(&data.features, &grad, &cfg.tree);
                for i in 0..n {
                    logits[i][c] += cfg.learning_rate * tree.predict(&data.features[i]);
                }
                round.push(tree);
            }
            trees.push(round);
        }
        Self { trees, base, learning_rate: cfg.learning_rate, num_classes: k }
    }

    /// Class probabilities for one row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut logits = self.base.clone();
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                logits[c] += self.learning_rate * tree.predict(row);
            }
        }
        softmax(&logits)
    }

    /// Hard prediction: the argmax class.
    pub fn predict(&self, row: &[f64]) -> usize {
        let p = self.predict_proba(row);
        p.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).map(|(i, _)| i).unwrap_or(0)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_dataset() -> Dataset {
        // 3 well-separated 2-D blobs
        let mut d = Dataset::new();
        for i in 0..60 {
            let j = (i * 37) % 60; // deterministic scatter
            let (cx, cy, label) = match i % 3 {
                0 => (0.0, 0.0, 0),
                1 => (10.0, 0.0, 1),
                _ => (0.0, 10.0, 2),
            };
            d.push(vec![cx + (j % 5) as f64 * 0.2, cy + (j % 7) as f64 * 0.2], label);
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let d = blob_dataset();
        let g = Gbc::train(&d, &GbcConfig::default());
        let correct = d.features.iter().zip(&d.labels).filter(|(x, &y)| g.predict(x) == y).count();
        assert!(correct >= 58, "{correct}/60");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = blob_dataset();
        let g = Gbc::train(&d, &GbcConfig { rounds: 5, ..Default::default() });
        let p = g.predict_proba(&[5.0, 5.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn majority_prior_wins_with_zero_rounds() {
        let mut d = Dataset::new();
        for i in 0..20 {
            d.push(vec![i as f64], usize::from(i >= 18));
        }
        let g = Gbc::train(&d, &GbcConfig { rounds: 0, ..Default::default() });
        // class 0 dominates the prior
        assert_eq!(g.predict(&[19.0]), 0);
    }

    #[test]
    fn imbalanced_classes_still_learnable() {
        // 5% positives but cleanly separable
        let mut d = Dataset::new();
        for i in 0..200 {
            let label = usize::from(i % 20 == 0);
            let x = if label == 1 { 100.0 } else { (i % 50) as f64 };
            d.push(vec![x], label);
        }
        let g = Gbc::train(&d, &GbcConfig::default());
        assert_eq!(g.predict(&[100.0]), 1);
        assert_eq!(g.predict(&[10.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = Gbc::train(&Dataset::new(), &GbcConfig::default());
    }
}
