//! Comparative HO prediction approaches (§7.3), implemented from scratch.
//!
//! The paper compares Prognos against two recent techniques:
//!
//! * a **Gradient Boosting Classifier** (Mei et al. \[49\]) over lower-layer
//!   features (serving/neighbor signal qualities) — [`gbc`], built on the
//!   CART regression trees of [`tree`];
//! * a **stacked LSTM** (Ozturk et al. \[57\]) over UE location sequences —
//!   [`lstm`], two LSTM layers plus a softmax head, trained with Adam/BPTT.
//!
//! Both are *offline-trained* (the paper uses a 60/40 split) — the very
//! property Prognos's online design criticizes. No external ML crate is
//! available offline, so the math lives here; both models are deliberately
//! faithful-but-small (the paper's baselines are modest models too).

pub mod data;
pub mod gbc;
pub mod lstm;
pub mod tree;

pub use data::Dataset;
pub use gbc::{Gbc, GbcConfig};
pub use lstm::{LstmConfig, StackedLstm};
pub use tree::RegressionTree;
