//! Tabular/sequence datasets for the baseline models.

use serde::{Deserialize, Serialize};

/// A labelled dataset: one feature row (or one sequence of rows for the
/// LSTM) per window, with an integer class label (0 = "no HO").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows must share a length.
    pub features: Vec<Vec<f64>>,
    /// Class labels aligned with `features`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one example.
    pub fn push(&mut self, row: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), row.len(), "inconsistent feature width");
        }
        self.features.push(row);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per row (0 when empty).
    pub fn width(&self) -> usize {
        self.features.first().map(|r| r.len()).unwrap_or(0)
    }

    /// Number of distinct classes (max label + 1).
    pub fn num_classes(&self) -> usize {
        self.labels.iter().copied().max().map(|m| m + 1).unwrap_or(0)
    }

    /// Chronological train/test split at `train_frac` (the paper uses 60%
    /// for training, 40% for testing — chronological, not shuffled, since
    /// these are time series).
    pub fn split(&self, train_frac: f64) -> (Dataset, Dataset) {
        let cut = ((self.len() as f64) * train_frac.clamp(0.0, 1.0)).round() as usize;
        let train = Dataset { features: self.features[..cut].to_vec(), labels: self.labels[..cut].to_vec() };
        let test = Dataset { features: self.features[cut..].to_vec(), labels: self.labels[cut..].to_vec() };
        (train, test)
    }

    /// Per-feature z-normalization parameters from this dataset.
    pub fn norm_params(&self) -> Vec<(f64, f64)> {
        let w = self.width();
        let n = self.len().max(1) as f64;
        (0..w)
            .map(|j| {
                let mean = self.features.iter().map(|r| r[j]).sum::<f64>() / n;
                let var = self.features.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / n;
                (mean, var.sqrt().max(1e-9))
            })
            .collect()
    }

    /// Applies z-normalization in place.
    pub fn normalize(&mut self, params: &[(f64, f64)]) {
        for row in &mut self.features {
            for (x, &(m, s)) in row.iter_mut().zip(params) {
                *x = (*x - m) / s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, 2.0 * i as f64], usize::from(i % 3 == 0));
        }
        d
    }

    #[test]
    fn push_and_shape() {
        let d = sample();
        assert_eq!(d.len(), 10);
        assert_eq!(d.width(), 2);
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rejects_ragged_rows() {
        let mut d = sample();
        d.push(vec![1.0], 0);
    }

    #[test]
    fn chronological_split() {
        let d = sample();
        let (tr, te) = d.split(0.6);
        assert_eq!(tr.len(), 6);
        assert_eq!(te.len(), 4);
        assert_eq!(tr.features[5][0], 5.0);
        assert_eq!(te.features[0][0], 6.0);
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let mut d = sample();
        let p = d.norm_params();
        d.normalize(&p);
        for j in 0..2 {
            let mean = d.features.iter().map(|r| r[j]).sum::<f64>() / 10.0;
            let var = d.features.iter().map(|r| r[j] * r[j]).sum::<f64>() / 10.0;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::new();
        assert!(d.is_empty());
        assert_eq!(d.num_classes(), 0);
        assert_eq!(d.width(), 0);
    }
}
