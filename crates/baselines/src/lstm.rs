//! Stacked LSTM classifier (the Ozturk et al. baseline).
//!
//! Two LSTM layers over a feature sequence (the paper feeds UE location
//! sequences), a softmax head on the last hidden state, cross-entropy loss,
//! full backpropagation-through-time, Adam optimizer. Written from scratch
//! because no ML crate is available offline; kept small (hidden size ~24)
//! like the original.

use fiveg_radio::DetRng;
use serde::{Deserialize, Serialize};

/// Row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    fn glorot(rows: usize, cols: usize, rng: &mut DetRng) -> Self {
        let scale = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.range(-scale, scale)).collect();
        Self { rows, cols, data }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// y += self * x
    fn mv_add(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[r] += acc;
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// One LSTM layer's parameters (gate order: i, f, g, o).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LstmLayer {
    w: Mat, // 4H x I
    u: Mat, // 4H x H
    b: Vec<f64>,
    hidden: usize,
}

/// Per-timestep cache for BPTT.
struct StepCache {
    x: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c_prev: Vec<f64>,
    h_prev: Vec<f64>,
    tanh_c: Vec<f64>,
}

impl LstmLayer {
    fn new(input: usize, hidden: usize, rng: &mut DetRng) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        // forget-gate bias init at 1.0 (standard trick for gradient flow)
        for x in b[hidden..2 * hidden].iter_mut() {
            *x = 1.0;
        }
        Self { w: Mat::glorot(4 * hidden, input, rng), u: Mat::glorot(4 * hidden, hidden, rng), b, hidden }
    }

    fn forward(&self, xs: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<StepCache>) {
        let h = self.hidden;
        let mut hs = Vec::with_capacity(xs.len());
        let mut caches = Vec::with_capacity(xs.len());
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for x in xs {
            let mut z = self.b.clone();
            self.w.mv_add(x, &mut z);
            self.u.mv_add(&h_prev, &mut z);
            let mut i = vec![0.0; h];
            let mut f = vec![0.0; h];
            let mut g = vec![0.0; h];
            let mut o = vec![0.0; h];
            let mut c = vec![0.0; h];
            let mut tanh_c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for k in 0..h {
                i[k] = sigmoid(z[k]);
                f[k] = sigmoid(z[h + k]);
                g[k] = z[2 * h + k].tanh();
                o[k] = sigmoid(z[3 * h + k]);
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
                tanh_c[k] = c[k].tanh();
                h_new[k] = o[k] * tanh_c[k];
            }
            caches.push(StepCache { x: x.clone(), i, f, g, o, c_prev: c_prev.clone(), h_prev: h_prev.clone(), tanh_c });
            hs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        (hs, caches)
    }

    /// BPTT. `dhs[t]` is dL/dh_t coming from above (head and/or next layer).
    /// Returns dL/dx per timestep; accumulates parameter grads in `grads`.
    fn backward(&self, caches: &[StepCache], dhs: &[Vec<f64>], grads: &mut LayerGrads) -> Vec<Vec<f64>> {
        let h = self.hidden;
        let t_len = caches.len();
        let input = self.w.cols;
        let mut dxs = vec![vec![0.0; input]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let cache = &caches[t];
            let mut dh = dhs[t].clone();
            for k in 0..h {
                dh[k] += dh_next[k];
            }
            let mut dz = vec![0.0; 4 * h];
            let mut dc = dc_next.clone();
            for k in 0..h {
                let do_ = dh[k] * cache.tanh_c[k];
                dc[k] += dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                let di = dc[k] * cache.g[k];
                let df = dc[k] * cache.c_prev[k];
                let dg = dc[k] * cache.i[k];
                dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                dz[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                dz[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                dz[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
                dc_next[k] = dc[k] * cache.f[k];
            }
            // parameter grads and downstream deltas
            for r in 0..4 * h {
                grads.b[r] += dz[r];
                for c_ in 0..input {
                    *grads.w.at_mut(r, c_) += dz[r] * cache.x[c_];
                }
                for c_ in 0..h {
                    *grads.u.at_mut(r, c_) += dz[r] * cache.h_prev[c_];
                }
            }
            for c_ in 0..input {
                let mut acc = 0.0;
                for r in 0..4 * h {
                    acc += self.w.at(r, c_) * dz[r];
                }
                dxs[t][c_] = acc;
            }
            for c_ in 0..h {
                let mut acc = 0.0;
                for r in 0..4 * h {
                    acc += self.u.at(r, c_) * dz[r];
                }
                dh_next[c_] = acc;
            }
        }
        dxs
    }
}

#[derive(Debug, Clone)]
struct LayerGrads {
    w: Mat,
    u: Mat,
    b: Vec<f64>,
}

impl LayerGrads {
    fn zeros_like(l: &LstmLayer) -> Self {
        Self { w: Mat::zeros(l.w.rows, l.w.cols), u: Mat::zeros(l.u.rows, l.u.cols), b: vec![0.0; l.b.len()] }
    }
}

/// Network hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// PRNG seed for initialization.
    pub seed: u64,
    /// Weight the loss by softened inverse class frequency (HO windows are
    /// rare; without this the net collapses to the background class).
    pub balanced: bool,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self { hidden: 24, epochs: 12, learning_rate: 0.01, seed: 7, balanced: true }
    }
}

/// The stacked (2-layer) LSTM classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackedLstm {
    l1: LstmLayer,
    l2: LstmLayer,
    w_out: Mat, // K x H
    b_out: Vec<f64>,
    num_classes: usize,
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / z).collect()
}

/// Adam state for one flat parameter vector.
struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: i32,
    lr: f64,
}

impl Adam {
    fn new(n: usize, lr: f64) -> Self {
        Self { m: vec![0.0; n], v: vec![0.0; n], t: 0, lr }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let b1t = 1.0 - B1.powi(self.t);
        let b2t = 1.0 - B2.powi(self.t);
        for k in 0..params.len() {
            // clip to keep BPTT stable
            let g = grads[k].clamp(-5.0, 5.0);
            self.m[k] = B1 * self.m[k] + (1.0 - B1) * g;
            self.v[k] = B2 * self.v[k] + (1.0 - B2) * g * g;
            params[k] -= self.lr * (self.m[k] / b1t) / ((self.v[k] / b2t).sqrt() + EPS);
        }
    }
}

impl StackedLstm {
    /// Trains on sequences: `xs[i]` is a `T × input` sequence with label
    /// `ys[i]` in `0..num_classes`.
    pub fn train(xs: &[Vec<Vec<f64>>], ys: &[usize], cfg: &LstmConfig) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert!(!xs.is_empty(), "empty training set");
        let input = xs[0][0].len();
        let k = ys.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = DetRng::new(cfg.seed);
        let mut net = StackedLstm {
            l1: LstmLayer::new(input, cfg.hidden, &mut rng),
            l2: LstmLayer::new(cfg.hidden, cfg.hidden, &mut rng),
            w_out: Mat::glorot(k, cfg.hidden, &mut rng),
            b_out: vec![0.0; k],
            num_classes: k,
        };
        // softened inverse-frequency class weights
        let weights: Vec<f64> = if cfg.balanced {
            let mut counts = vec![1.0f64; k];
            for &y in ys {
                counts[y] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            counts.iter().map(|&c| (total / (k as f64 * c)).sqrt().min(30.0)).collect()
        } else {
            vec![1.0; k]
        };
        let n_params = |l: &LstmLayer| l.w.data.len() + l.u.data.len() + l.b.len();
        let mut adam = Adam::new(
            n_params(&net.l1) + n_params(&net.l2) + net.w_out.data.len() + net.b_out.len(),
            cfg.learning_rate,
        );
        let order: Vec<usize> = (0..xs.len()).collect();
        for _epoch in 0..cfg.epochs {
            // accumulate gradients over the (small) dataset in minibatches
            for chunk in order.chunks(16) {
                let mut g1 = LayerGrads::zeros_like(&net.l1);
                let mut g2 = LayerGrads::zeros_like(&net.l2);
                let mut gw = Mat::zeros(net.w_out.rows, net.w_out.cols);
                let mut gb = vec![0.0; net.b_out.len()];
                for &i in chunk {
                    let (h1, c1) = net.l1.forward(&xs[i]);
                    let (h2, c2) = net.l2.forward(&h1);
                    let last = h2.last().unwrap();
                    let mut logits = net.b_out.clone();
                    net.w_out.mv_add(last, &mut logits);
                    let probs = softmax(&logits);
                    // dL/dlogit = (p - onehot), weighted by the class weight
                    let w = weights[ys[i]];
                    let mut dlast = vec![0.0; net.l2.hidden];
                    for c in 0..net.num_classes {
                        let d = w * (probs[c] - if ys[i] == c { 1.0 } else { 0.0 });
                        gb[c] += d;
                        for j in 0..net.l2.hidden {
                            *gw.at_mut(c, j) += d * last[j];
                            dlast[j] += d * net.w_out.at(c, j);
                        }
                    }
                    let mut dh2 = vec![vec![0.0; net.l2.hidden]; h2.len()];
                    *dh2.last_mut().unwrap() = dlast;
                    let dx2 = net.l2.backward(&c2, &dh2, &mut g2);
                    net.l1.backward(&c1, &dx2, &mut g1);
                }
                // flatten params + grads and take an Adam step
                let scale = 1.0 / chunk.len() as f64;
                let mut params: Vec<f64> = Vec::new();
                let mut grads: Vec<f64> = Vec::new();
                for (p, g) in [
                    (&mut net.l1.w.data, &g1.w.data),
                    (&mut net.l1.u.data, &g1.u.data),
                    (&mut net.l1.b, &g1.b),
                    (&mut net.l2.w.data, &g2.w.data),
                    (&mut net.l2.u.data, &g2.u.data),
                    (&mut net.l2.b, &g2.b),
                    (&mut net.w_out.data, &gw.data),
                    (&mut net.b_out, &gb),
                ] {
                    params.extend(p.iter());
                    grads.extend(g.iter().map(|x| x * scale));
                }
                adam.step(&mut params, &grads);
                // write back
                let mut off = 0;
                for p in [
                    &mut net.l1.w.data,
                    &mut net.l1.u.data,
                    &mut net.l1.b,
                    &mut net.l2.w.data,
                    &mut net.l2.u.data,
                    &mut net.l2.b,
                    &mut net.w_out.data,
                    &mut net.b_out,
                ] {
                    let len = p.len();
                    p.copy_from_slice(&params[off..off + len]);
                    off += len;
                }
            }
        }
        net
    }

    /// Class probabilities for one sequence.
    pub fn predict_proba(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let (h1, _) = self.l1.forward(xs);
        let (h2, _) = self.l2.forward(&h1);
        let last = h2.last().expect("empty sequence");
        let mut logits = self.b_out.clone();
        self.w_out.mv_add(last, &mut logits);
        softmax(&logits)
    }

    /// Hard prediction.
    pub fn predict(&self, xs: &[Vec<f64>]) -> usize {
        self.predict_proba(xs)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sequences rising vs falling: a minimal temporal classification task.
    fn slope_dataset(n: usize) -> (Vec<Vec<Vec<f64>>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let up = i % 2 == 0;
            let jitter = (i % 5) as f64 * 0.1;
            let seq: Vec<Vec<f64>> = (0..10)
                .map(|t| {
                    let v = if up { t as f64 } else { 9.0 - t as f64 };
                    vec![v * 0.1 + jitter]
                })
                .collect();
            xs.push(seq);
            ys.push(usize::from(up));
        }
        (xs, ys)
    }

    #[test]
    fn learns_temporal_direction() {
        let (xs, ys) = slope_dataset(40);
        let net = StackedLstm::train(
            &xs,
            &ys,
            &LstmConfig { hidden: 12, epochs: 30, learning_rate: 0.02, seed: 3, balanced: false },
        );
        let correct = xs.iter().zip(&ys).filter(|(x, &y)| net.predict(x) == y).count();
        assert!(correct >= 36, "{correct}/40");
    }

    #[test]
    fn probabilities_valid() {
        let (xs, ys) = slope_dataset(10);
        let net = StackedLstm::train(&xs, &ys, &LstmConfig { epochs: 2, ..Default::default() });
        let p = net.predict_proba(&xs[0]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = slope_dataset(10);
        let cfg = LstmConfig { epochs: 3, ..Default::default() };
        let a = StackedLstm::train(&xs, &ys, &cfg);
        let b = StackedLstm::train(&xs, &ys, &cfg);
        assert_eq!(a.predict_proba(&xs[3]), b.predict_proba(&xs[3]));
    }

    #[test]
    fn training_reduces_loss() {
        let (xs, ys) = slope_dataset(20);
        let loss = |net: &StackedLstm| -> f64 {
            xs.iter().zip(&ys).map(|(x, &y)| -net.predict_proba(x)[y].max(1e-12).ln()).sum::<f64>() / xs.len() as f64
        };
        let early = StackedLstm::train(&xs, &ys, &LstmConfig { epochs: 1, ..Default::default() });
        let late = StackedLstm::train(&xs, &ys, &LstmConfig { epochs: 25, ..Default::default() });
        assert!(loss(&late) < loss(&early), "{} vs {}", loss(&late), loss(&early));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = StackedLstm::train(&[], &[], &LstmConfig::default());
    }
}
