//! CART regression trees: the weak learner of the gradient booster.

use serde::{Deserialize, Serialize};

/// A binary regression tree fit by variance reduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RegressionTree {
    /// Terminal node with a predicted value.
    Leaf {
        /// Prediction.
        value: f64,
    },
    /// Internal split: `x[feature] <= threshold` goes left.
    Node {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left subtree (<=).
        left: Box<RegressionTree>,
        /// Right subtree (>).
        right: Box<RegressionTree>,
    },
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Candidate thresholds tried per feature (quantile grid).
    pub candidate_splits: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 3, min_samples_split: 10, candidate_splits: 16 }
    }
}

impl RegressionTree {
    /// Fits a tree to `(features, targets)` on the given row subset.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], cfg: &TreeConfig) -> Self {
        assert_eq!(features.len(), targets.len());
        let idx: Vec<usize> = (0..features.len()).collect();
        Self::grow(features, targets, &idx, cfg, 0)
    }

    fn mean(targets: &[f64], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64
    }

    fn sse(targets: &[f64], idx: &[usize]) -> f64 {
        let m = Self::mean(targets, idx);
        idx.iter().map(|&i| (targets[i] - m).powi(2)).sum()
    }

    fn grow(features: &[Vec<f64>], targets: &[f64], idx: &[usize], cfg: &TreeConfig, depth: usize) -> Self {
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
            return RegressionTree::Leaf { value: Self::mean(targets, idx) };
        }
        let parent_sse = Self::sse(targets, idx);
        if parent_sse < 1e-12 {
            return RegressionTree::Leaf { value: Self::mean(targets, idx) };
        }
        let width = features[0].len();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for f in 0..width {
            // quantile threshold candidates
            let mut vals: Vec<f64> = idx.iter().map(|&i| features[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // candidate thresholds: quantile grid over the distinct values,
            // excluding the maximum (x <= max never splits)
            let usable = vals.len() - 1;
            let step = (usable as f64 / cfg.candidate_splits as f64).max(1.0);
            let mut k = 0.0;
            while (k as usize) < usable {
                let thr = vals[k as usize];
                let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| features[i][f] <= thr);
                if !l.is_empty() && !r.is_empty() {
                    let gain = parent_sse - Self::sse(targets, &l) - Self::sse(targets, &r);
                    if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 1e-12) {
                        best = Some((f, thr, gain));
                    }
                }
                k += step;
            }
        }
        match best {
            None => RegressionTree::Leaf { value: Self::mean(targets, idx) },
            Some((feature, threshold, _)) => {
                let (l, r): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| features[i][feature] <= threshold);
                RegressionTree::Node {
                    feature,
                    threshold,
                    left: Box::new(Self::grow(features, targets, &l, cfg, depth + 1)),
                    right: Box::new(Self::grow(features, targets, &r, cfg, depth + 1)),
                }
            }
        }
    }

    /// Predicts for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        match self {
            RegressionTree::Leaf { value } => *value,
            RegressionTree::Node { feature, threshold, left, right } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    /// Tree depth (leaves have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            RegressionTree::Leaf { .. } => 1,
            RegressionTree::Node { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..40).map(|i| if i < 20 { -1.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit(&features, &targets, &TreeConfig::default());
        assert_eq!(t.predict(&[5.0]), -1.0);
        assert_eq!(t.predict(&[35.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..200).map(|i| (i as f64).sin()).collect();
        let t = RegressionTree::fit(&features, &targets, &TreeConfig { max_depth: 2, ..Default::default() });
        assert!(t.depth() <= 3); // depth counts the leaf level
    }

    #[test]
    fn constant_targets_give_leaf() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let targets = vec![7.0; 30];
        let t = RegressionTree::fit(&features, &targets, &TreeConfig::default());
        assert_eq!(t, RegressionTree::Leaf { value: 7.0 });
    }

    #[test]
    fn small_node_not_split() {
        let features: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = vec![0.0, 0.0, 1.0, 1.0, 1.0];
        let t = RegressionTree::fit(&features, &targets, &TreeConfig { min_samples_split: 10, ..Default::default() });
        assert!(matches!(t, RegressionTree::Leaf { .. }));
    }

    #[test]
    fn uses_the_informative_feature() {
        // feature 0 is noise-ish, feature 1 carries the signal
        let features: Vec<Vec<f64>> = (0..60).map(|i| vec![(i * 7 % 13) as f64, (i % 2) as f64]).collect();
        let targets: Vec<f64> = (0..60).map(|i| (i % 2) as f64 * 10.0).collect();
        let t = RegressionTree::fit(&features, &targets, &TreeConfig::default());
        match t {
            RegressionTree::Node { feature, .. } => assert_eq!(feature, 1),
            _ => panic!("expected a split"),
        }
    }

    #[test]
    fn prediction_reduces_training_error() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| (i / 25) as f64).collect();
        let t = RegressionTree::fit(&features, &targets, &TreeConfig::default());
        let mean = targets.iter().sum::<f64>() / 100.0;
        let base: f64 = targets.iter().map(|y| (y - mean).powi(2)).sum();
        let fit: f64 = features.iter().zip(&targets).map(|(x, y)| (y - t.predict(x)).powi(2)).sum();
        assert!(fit < base / 4.0, "fit {fit} vs base {base}");
    }
}
