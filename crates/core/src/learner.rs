//! Stage 2: online learning of the carrier's HO decision logic (§7.2).
//!
//! "We call the learned decision logic a *pattern*: a unique sequence of
//! MRs repeatedly triggering a specific type of HO." The input stream is
//! split into *phases* — the MRs since the last HO command, ending in a HO.
//! The learner is an online adaptation of PrefixSpan: rather than mining a
//! static database, it maintains the pattern set incrementally,
//! incrementing support for re-observed sequences, inserting new ones, and
//! evicting patterns that have not been seen recently (the *freshness*
//! threshold), which keeps the set small and adaptive to policy changes
//! across regions. New patterns are learned at ~9/hour and evicted at
//! ~8/hour in the paper's datasets — the store stays compact.

use fiveg_ran::HoType;
use fiveg_rrc::MeasEvent;
use serde::{Deserialize, Serialize};

/// One learned decision rule: an MR sequence that triggers a HO type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    /// The MR event sequence (most recent last).
    pub seq: Vec<MeasEvent>,
    /// The HO type it triggers.
    pub ho: HoType,
    /// How many times this exact (seq → ho) has been observed.
    pub support: u64,
    /// Phase counter value when last observed (freshness).
    pub last_seen_phase: u64,
}

/// Learner tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Patterns not observed for this many phases are evicted.
    pub freshness_phases: u64,
    /// Hard cap on stored patterns (oldest evicted first past this).
    pub max_patterns: usize,
    /// Longest sequence retained (longer phases keep their suffix).
    pub max_seq_len: usize,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        Self { freshness_phases: 200, max_patterns: 64, max_seq_len: 4 }
    }
}

/// The online pattern store.
#[derive(Debug, Clone)]
pub struct DecisionLearner {
    cfg: LearnerConfig,
    patterns: Vec<Pattern>,
    phase_count: u64,
    learned_total: u64,
    evicted_total: u64,
}

impl DecisionLearner {
    /// Creates an empty learner.
    pub fn new(cfg: LearnerConfig) -> Self {
        Self { cfg, patterns: Vec::new(), phase_count: 0, learned_total: 0, evicted_total: 0 }
    }

    /// Seeds the learner with known-frequent patterns (§9: "bootstrapping
    /// the system with the most frequent pattern for each HO type can make
    /// predictions reliable" during startup).
    pub fn bootstrap(&mut self, patterns: impl IntoIterator<Item = (Vec<MeasEvent>, HoType)>) {
        for (seq, ho) in patterns {
            let seq = self.truncate(seq);
            if !self.patterns.iter().any(|p| p.seq == seq && p.ho == ho) {
                self.patterns.push(Pattern { seq, ho, support: 3, last_seen_phase: self.phase_count });
            }
        }
    }

    fn truncate(&self, mut seq: Vec<MeasEvent>) -> Vec<MeasEvent> {
        if seq.len() > self.cfg.max_seq_len {
            seq.drain(0..seq.len() - self.cfg.max_seq_len);
        }
        seq
    }

    /// Feeds one completed phase: the MR sequence that ended in `ho`.
    ///
    /// Empty sequences are ignored (HOs we never saw reports for carry no
    /// learnable pattern).
    pub fn observe_phase(&mut self, seq: &[MeasEvent], ho: HoType) {
        self.phase_count += 1;
        if seq.is_empty() {
            return;
        }
        let seq = self.truncate(seq.to_vec());
        if let Some(p) = self.patterns.iter_mut().find(|p| p.seq == seq && p.ho == ho) {
            p.support += 1;
            p.last_seen_phase = self.phase_count;
        } else {
            self.learned_total += 1;
            self.patterns.push(Pattern { seq, ho, support: 1, last_seen_phase: self.phase_count });
        }
        self.evict();
    }

    fn evict(&mut self) {
        let phase = self.phase_count;
        let fresh = self.cfg.freshness_phases;
        let before = self.patterns.len();
        self.patterns.retain(|p| phase.saturating_sub(p.last_seen_phase) <= fresh);
        self.evicted_total += (before - self.patterns.len()) as u64;
        // hard cap: drop the stalest
        while self.patterns.len() > self.cfg.max_patterns {
            let stalest =
                self.patterns.iter().enumerate().min_by_key(|(_, p)| p.last_seen_phase).map(|(i, _)| i).unwrap();
            self.patterns.remove(stalest);
            self.evicted_total += 1;
        }
    }

    /// Patterns whose sequence matches the *tail* of `current` (a pattern
    /// of length k matches when it equals the last k events), with their
    /// similarity scores. Sorted best-first.
    ///
    /// Similarity is "a function of its support count, length and
    /// freshness": log-scaled support, a bonus per matched event, and decay
    /// with staleness.
    pub fn candidates(&self, current: &[MeasEvent]) -> Vec<(&Pattern, f64)> {
        if current.is_empty() {
            return vec![];
        }
        let max_support = self.patterns.iter().map(|p| p.support).max().unwrap_or(1) as f64;
        let mut out: Vec<(&Pattern, f64)> = self
            .patterns
            .iter()
            .filter(|p| p.seq.len() <= current.len() && current[current.len() - p.seq.len()..] == p.seq[..])
            .map(|p| {
                let support = (1.0 + p.support as f64).ln() / (1.0 + max_support).ln();
                let length = p.seq.len() as f64 / self.cfg.max_seq_len as f64;
                let age = self.phase_count.saturating_sub(p.last_seen_phase) as f64;
                let freshness = (-age / self.cfg.freshness_phases as f64).exp();
                (p, 0.5 * support + 0.3 * length + 0.2 * freshness)
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when no patterns are stored.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Completed phases observed.
    pub fn phase_count(&self) -> u64 {
        self.phase_count
    }

    /// Total patterns ever learned (for the §7.3 learning-rate stats).
    pub fn learned_total(&self) -> u64 {
        self.learned_total
    }

    /// Total patterns ever evicted.
    pub fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    /// Read access to the stored patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_rrc::{EventKind, MeasEvent};

    fn ev(kind: EventKind) -> MeasEvent {
        MeasEvent::nr(kind)
    }

    #[test]
    fn learns_and_increments_support() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
        l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
        assert_eq!(l.len(), 1);
        assert_eq!(l.patterns()[0].support, 2);
    }

    #[test]
    fn distinguishes_same_seq_different_ho() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[ev(EventKind::A2)], HoType::Scgr);
        l.observe_phase(&[ev(EventKind::A2)], HoType::Scgm);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn empty_phase_is_ignored() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[], HoType::Scga);
        assert!(l.is_empty());
        assert_eq!(l.phase_count(), 1);
    }

    #[test]
    fn candidates_match_tail() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[ev(EventKind::A2), ev(EventKind::B1)], HoType::Scgc);
        l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
        // current phase [A2, B1]: both patterns match its tail
        let c = l.candidates(&[ev(EventKind::A2), ev(EventKind::B1)]);
        assert_eq!(c.len(), 2);
        // the longer exact match should rank first (length bonus)
        assert_eq!(c[0].0.ho, HoType::Scgc);
        // current phase [B1] alone: only SCGA matches
        let c = l.candidates(&[ev(EventKind::B1)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].0.ho, HoType::Scga);
    }

    #[test]
    fn higher_support_ranks_higher() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        for _ in 0..10 {
            l.observe_phase(&[ev(EventKind::A3)], HoType::Scgm);
        }
        l.observe_phase(&[ev(EventKind::A3)], HoType::Mcgh);
        let c = l.candidates(&[ev(EventKind::A3)]);
        assert_eq!(c[0].0.ho, HoType::Scgm);
        assert!(c[0].1 > c[1].1);
    }

    #[test]
    fn stale_patterns_are_evicted() {
        let mut l = DecisionLearner::new(LearnerConfig { freshness_phases: 5, ..Default::default() });
        l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
        for _ in 0..10 {
            l.observe_phase(&[ev(EventKind::A3)], HoType::Scgm);
        }
        assert!(l.candidates(&[ev(EventKind::B1)]).is_empty(), "stale pattern must be gone");
        assert!(l.evicted_total() >= 1);
    }

    #[test]
    fn max_patterns_cap_holds() {
        let mut l = DecisionLearner::new(LearnerConfig { max_patterns: 3, freshness_phases: 1000, max_seq_len: 4 });
        let kinds = [EventKind::A1, EventKind::A2, EventKind::A3, EventKind::A4, EventKind::A5];
        for (i, k) in kinds.iter().enumerate() {
            let ho = if i % 2 == 0 { HoType::Scga } else { HoType::Scgr };
            l.observe_phase(&[ev(*k)], ho);
        }
        assert!(l.len() <= 3);
    }

    #[test]
    fn long_phases_keep_suffix() {
        let mut l = DecisionLearner::new(LearnerConfig { max_seq_len: 2, ..Default::default() });
        l.observe_phase(&[ev(EventKind::A1), ev(EventKind::A2), ev(EventKind::B1)], HoType::Scgc);
        assert_eq!(l.patterns()[0].seq, vec![ev(EventKind::A2), ev(EventKind::B1)]);
    }

    #[test]
    fn bootstrap_seeds_patterns() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.bootstrap(vec![(vec![ev(EventKind::B1)], HoType::Scga)]);
        assert_eq!(l.len(), 1);
        assert_eq!(l.patterns()[0].support, 3);
        let c = l.candidates(&[ev(EventKind::B1)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn empty_current_has_no_candidates() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
        assert!(l.candidates(&[]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fiveg_rrc::{EventKind, EventRat};
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = MeasEvent> {
        (
            prop_oneof![Just(EventRat::Lte), Just(EventRat::Nr)],
            prop_oneof![Just(EventKind::A2), Just(EventKind::A3), Just(EventKind::A5), Just(EventKind::B1)],
        )
            .prop_map(|(rat, kind)| MeasEvent { rat, kind })
    }

    fn arb_ho() -> impl Strategy<Value = HoType> {
        prop_oneof![
            Just(HoType::Scga),
            Just(HoType::Scgr),
            Just(HoType::Scgm),
            Just(HoType::Scgc),
            Just(HoType::Mnbh),
            Just(HoType::Lteh),
        ]
    }

    proptest! {
        #[test]
        fn pattern_store_invariants(
            phases in proptest::collection::vec(
                (proptest::collection::vec(arb_event(), 0..6), arb_ho()),
                1..60,
            )
        ) {
            let cfg = LearnerConfig { max_patterns: 16, freshness_phases: 30, max_seq_len: 3 };
            let mut l = DecisionLearner::new(cfg);
            for (seq, ho) in &phases {
                l.observe_phase(seq, *ho);
            }
            // store bounded
            prop_assert!(l.len() <= 16);
            // support never exceeds observed phases
            for p in l.patterns() {
                prop_assert!(p.support as usize <= phases.len());
                prop_assert!(p.seq.len() <= 3);
                prop_assert!(!p.seq.is_empty());
                prop_assert!(p.last_seen_phase <= l.phase_count());
            }
            // phase counter advanced exactly once per phase
            prop_assert_eq!(l.phase_count(), phases.len() as u64);
        }

        #[test]
        fn candidates_are_sorted_and_tail_matching(
            phases in proptest::collection::vec(
                (proptest::collection::vec(arb_event(), 1..4), arb_ho()),
                1..40,
            ),
            query in proptest::collection::vec(arb_event(), 1..5),
        ) {
            let mut l = DecisionLearner::new(LearnerConfig::default());
            for (seq, ho) in &phases {
                l.observe_phase(seq, *ho);
            }
            let cands = l.candidates(&query);
            for w in cands.windows(2) {
                prop_assert!(w[0].1 >= w[1].1, "similarity must be sorted desc");
            }
            for (p, _) in &cands {
                prop_assert!(p.seq.len() <= query.len());
                prop_assert_eq!(&query[query.len() - p.seq.len()..], &p.seq[..]);
            }
        }
    }
}
