//! RRS history buffers: the raw material of the report predictor.

use fiveg_radio::Rrs;
use fiveg_rrc::{MeasQuantity, Pci};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One observed cell: identity, quality, and (when known) its measurement
/// -object group — the gNB for NR cells under NSA. Intra-frequency A3 is
/// configured per group, so the report predictor must respect it too.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellObs {
    /// Physical cell id.
    pub pci: Pci,
    /// Measured quality.
    pub rrs: Rrs,
    /// Measurement-object group (gNB id); `None` = ungrouped.
    pub group: Option<u32>,
}

/// What the UE observes on one radio leg at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LegSnapshot {
    /// Serving cell, if attached on this leg.
    pub serving: Option<CellObs>,
    /// Measurable neighbor cells.
    pub neighbors: Vec<CellObs>,
}

impl LegSnapshot {
    /// An empty snapshot (leg not measurable).
    pub fn empty() -> Self {
        Self { serving: None, neighbors: Vec::new() }
    }

    /// Convenience: a snapshot from RSRP values only (RSRQ/SINR filled with
    /// neutral values, no grouping); handy in tests and simple integrations.
    pub fn from_rsrp(serving: Option<(Pci, f64)>, neighbors: Vec<(Pci, f64)>) -> Self {
        let wrap = |rsrp: f64| Rrs { rsrp_dbm: rsrp, rsrq_db: -10.0, sinr_db: 10.0 };
        Self {
            serving: serving.map(|(p, r)| CellObs { pci: p, rrs: wrap(r), group: None }),
            neighbors: neighbors.into_iter().map(|(p, r)| CellObs { pci: p, rrs: wrap(r), group: None }).collect(),
        }
    }
}

/// Fixed-duration sliding history of RRS per cell.
///
/// Cells that stop being reported age out once their newest sample falls
/// outside the window, so the map stays bounded by the measurable set.
#[derive(Debug, Clone)]
pub struct RrsHistory {
    window_s: f64,
    series: HashMap<Pci, Vec<(f64, Rrs)>>,
    groups: HashMap<Pci, Option<u32>>,
}

impl RrsHistory {
    /// Creates a history holding `window_s` seconds per cell.
    pub fn new(window_s: f64) -> Self {
        assert!(window_s > 0.0);
        Self { window_s, series: HashMap::new(), groups: HashMap::new() }
    }

    /// Records a snapshot at time `t`.
    pub fn push(&mut self, t: f64, snap: &LegSnapshot) {
        if let Some(c) = snap.serving {
            self.series.entry(c.pci).or_default().push((t, c.rrs));
            self.groups.insert(c.pci, c.group);
        }
        for c in &snap.neighbors {
            self.series.entry(c.pci).or_default().push((t, c.rrs));
            self.groups.insert(c.pci, c.group);
        }
        // trim old samples; drop cells that vanished entirely
        let cutoff = t - self.window_s;
        self.series.retain(|_, v| {
            v.retain(|&(ts, _)| ts >= cutoff);
            !v.is_empty()
        });
        let series = &self.series;
        self.groups.retain(|pci, _| series.contains_key(pci));
    }

    /// The measurement-object group last reported for `pci`.
    pub fn group(&self, pci: Pci) -> Option<u32> {
        self.groups.get(&pci).copied().flatten()
    }

    /// The recorded series for `pci` (time-ordered), if any.
    pub fn series(&self, pci: Pci) -> Option<&[(f64, Rrs)]> {
        self.series.get(&pci).map(|v| v.as_slice())
    }

    /// One quantity's values, for the smoothing/regression pipeline.
    pub fn values(&self, pci: Pci, q: MeasQuantity) -> Vec<f64> {
        let pick = |r: &Rrs| match q {
            MeasQuantity::Rsrp => r.rsrp_dbm,
            MeasQuantity::Rsrq => r.rsrq_db,
            MeasQuantity::Sinr => r.sinr_db,
        };
        self.series.get(&pci).map(|v| v.iter().map(|(_, x)| pick(x)).collect()).unwrap_or_default()
    }

    /// Cells currently in the history.
    pub fn cells(&self) -> impl Iterator<Item = Pci> + '_ {
        self.series.keys().copied()
    }

    /// Clears everything (e.g. after a HO invalidates the radio context).
    pub fn clear(&mut self) {
        self.series.clear();
        self.groups.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(serving: (u16, f64), neighbors: &[(u16, f64)]) -> LegSnapshot {
        LegSnapshot::from_rsrp(Some((Pci(serving.0), serving.1)), neighbors.iter().map(|&(p, r)| (Pci(p), r)).collect())
    }

    #[test]
    fn records_serving_and_neighbors() {
        let mut h = RrsHistory::new(1.0);
        h.push(0.0, &snap((1, -90.0), &[(2, -100.0)]));
        assert_eq!(h.values(Pci(1), MeasQuantity::Rsrp), vec![-90.0]);
        assert_eq!(h.values(Pci(2), MeasQuantity::Rsrp), vec![-100.0]);
        assert!(h.values(Pci(3), MeasQuantity::Rsrp).is_empty());
    }

    #[test]
    fn window_trims_old_samples() {
        let mut h = RrsHistory::new(1.0);
        for i in 0..40 {
            let t = i as f64 * 0.05;
            h.push(t, &snap((1, -90.0 - i as f64 * 0.1), &[]));
        }
        let v = h.values(Pci(1), MeasQuantity::Rsrp);
        // 1 s window at 20 Hz => ~21 samples
        assert!(v.len() <= 22, "{}", v.len());
        assert!((v[0] - -90.0).abs() > 0.5, "oldest samples must be gone");
    }

    #[test]
    fn vanished_cells_age_out() {
        let mut h = RrsHistory::new(0.5);
        h.push(0.0, &snap((1, -90.0), &[(2, -100.0)]));
        for i in 1..20 {
            h.push(i as f64 * 0.1, &snap((1, -90.0), &[]));
        }
        assert!(h.values(Pci(2), MeasQuantity::Rsrp).is_empty());
        assert!(!h.values(Pci(1), MeasQuantity::Rsrp).is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut h = RrsHistory::new(1.0);
        h.push(0.0, &snap((1, -90.0), &[]));
        h.clear();
        assert_eq!(h.cells().count(), 0);
    }

    #[test]
    fn series_is_time_ordered() {
        let mut h = RrsHistory::new(2.0);
        for i in 0..10 {
            h.push(i as f64 * 0.05, &snap((7, -80.0 - i as f64), &[]));
        }
        let s = h.series(Pci(7)).unwrap();
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }
}
