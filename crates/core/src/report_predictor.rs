//! Stage 1: predicting measurement reports before they fire (§7.2).
//!
//! "Using MRs after they have been triggered only leaves a few milliseconds
//! — 70 ms in the median case — for the application to take any decision
//! proactively." The report predictor buys ~1 s of lead time: it smooths
//! each cell's recent RSRP with a triangular kernel, extrapolates it with a
//! linear fit, and evaluates the Table 4 trigger conditions (including TTT)
//! over the forecast horizon.

use crate::history::RrsHistory;
use fiveg_radio::smoothing::{linear_fit, triangular_smooth};
use fiveg_rrc::{EventConfig, EventKind, MeasEvent, Pci};
use serde::{Deserialize, Serialize};

/// A measurement report the predictor expects to fire soon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedReport {
    /// The event expected to trigger.
    pub event: MeasEvent,
    /// The neighbor expected to satisfy it (None for serving-only events).
    pub neighbor: Option<Pci>,
    /// Seconds from "now" until the trigger condition (incl. TTT) is met.
    pub eta_s: f64,
}

/// Configuration and state of the report predictor for one radio leg.
#[derive(Debug, Clone)]
pub struct ReportPredictor {
    /// Forecast horizon, s (the paper uses 1 s).
    pub prediction_window_s: f64,
    /// Triangular smoothing half-width, samples.
    pub smooth_half_width: usize,
    /// Nominal sampling interval of the history, s.
    pub sample_dt_s: f64,
    /// Extra margin (dB) the forecast must clear beyond the configured
    /// hysteresis — suppresses borderline false alarms from noisy slopes.
    pub margin_db: f64,
}

impl Default for ReportPredictor {
    fn default() -> Self {
        Self { prediction_window_s: 1.0, smooth_half_width: 3, sample_dt_s: 0.05, margin_db: 2.0 }
    }
}

impl ReportPredictor {
    /// Forecast of one cell's RSRP `horizon_steps` samples past the end of
    /// its history: smooth, fit, extrapolate.
    ///
    /// Short histories (a cell that just entered the measured set) carry no
    /// usable trend — an OLS slope over a handful of noisy samples swings
    /// by tens of dB/s — so they forecast persistence instead.
    fn forecast(&self, series: &[f64], horizon_steps: f64) -> f64 {
        if series.is_empty() {
            return -140.0;
        }
        let min_len = ((0.6 * self.prediction_window_s / self.sample_dt_s) as usize).max(4);
        if series.len() < min_len {
            return series[series.len() - 1];
        }
        let smoothed = triangular_smooth(series, self.smooth_half_width);
        let xs: Vec<f64> = (0..smoothed.len()).map(|i| i as f64).collect();
        let fit = linear_fit(&xs, &smoothed);
        fit.at((series.len() - 1) as f64 + horizon_steps)
    }

    /// Predicts which configured events will trigger within the prediction
    /// window, given the leg's RRS history, the serving cell, and the
    /// configured events.
    pub fn predict(&self, history: &RrsHistory, serving: Option<Pci>, configs: &[EventConfig]) -> Vec<PredictedReport> {
        let mut out = Vec::new();
        let steps = (self.prediction_window_s / self.sample_dt_s).round().max(1.0);

        for cfg in configs {
            if cfg.event.kind == EventKind::Periodic {
                continue;
            }
            // evaluate against a hardened copy: the forecast must clear the
            // configured hysteresis plus our margin
            let mut hard = *cfg;
            hard.hysteresis_db += self.margin_db;
            // the forecast runs on the quantity this event compares
            let serving_series = serving.map(|p| history.values(p, cfg.quantity)).unwrap_or_default();
            // events that compare the serving cell need a serving history;
            // only A4/B1 (pure neighbor thresholds) work without one
            let needs_serving = !matches!(cfg.event.kind, EventKind::A4 | EventKind::B1);
            if needs_serving && serving_series.is_empty() {
                continue;
            }
            // scan the horizon in quarters; a trigger counts only when the
            // condition both enters at quarter q AND persists at the window
            // end (approximating the sustained-for-TTT requirement)
            let end_h = steps;
            let s_end = self.forecast(&serving_series, end_h);
            let mut fire_eta: Option<f64> = None;
            let mut best_neighbor: Option<Pci> = None;
            'horizon: for q in 1..=4u32 {
                let h = steps * q as f64 / 4.0;
                let s_pred = self.forecast(&serving_series, h);
                // serving-only events
                match cfg.event.kind {
                    EventKind::A1 | EventKind::A2 => {
                        if hard.entered(s_pred, -140.0) && hard.entered(s_end, -140.0) {
                            fire_eta = Some(self.prediction_window_s * q as f64 / 4.0);
                            break 'horizon;
                        }
                    }
                    _ => {
                        // neighbor events: evaluate each candidate neighbor
                        let serving_group = serving.and_then(|p| history.group(p));
                        for pci in history.cells() {
                            if Some(pci) == serving {
                                continue;
                            }
                            // A3 measObjects are per group (gNB under NSA)
                            if cfg.event.kind == EventKind::A3
                                && serving_group.is_some()
                                && history.group(pci) != serving_group
                            {
                                continue;
                            }
                            let series = history.values(pci, cfg.quantity);
                            let n_pred = self.forecast(&series, h);
                            let n_end = self.forecast(&series, end_h);
                            if hard.entered(s_pred, n_pred) && hard.entered(s_end, n_end) {
                                fire_eta = Some(self.prediction_window_s * q as f64 / 4.0);
                                best_neighbor = Some(pci);
                                break 'horizon;
                            }
                        }
                    }
                }
            }
            if let Some(eta) = fire_eta {
                // TTT delays the report past the condition onset; keep only
                // reports expected to actually fire within this window so
                // predictions align with the evaluation grid
                let eta = eta + cfg.ttt_ms as f64 / 1000.0;
                if eta <= self.prediction_window_s {
                    out.push(PredictedReport { event: cfg.event, neighbor: best_neighbor, eta_s: eta });
                }
            }
        }
        out.sort_by(|a, b| a.eta_s.partial_cmp(&b.eta_s).unwrap());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::LegSnapshot;
    use fiveg_rrc::{EventConfig, EventRat, MeasEvent};

    fn feed_history(serving_slope: f64, neighbor_slope: f64, serving_start: f64, neighbor_start: f64) -> RrsHistory {
        let mut h = RrsHistory::new(1.0);
        for i in 0..21 {
            let t = i as f64 * 0.05;
            h.push(
                t,
                &LegSnapshot::from_rsrp(
                    Some((Pci(1), serving_start + serving_slope * t)),
                    vec![(Pci(2), neighbor_start + neighbor_slope * t)],
                ),
            );
        }
        h
    }

    fn cfg(kind: EventKind, ttt_ms: u32) -> EventConfig {
        let mut c = EventConfig::typical(MeasEvent { rat: EventRat::Nr, kind });
        c.ttt_ms = ttt_ms;
        c
    }

    #[test]
    fn predicts_a2_on_declining_serving() {
        // serving at -112 dropping 4 dB/s crosses the -115/-1 hys threshold soon
        let h = feed_history(-4.0, 0.0, -112.0, -120.0);
        let rp = ReportPredictor::default();
        let preds = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 0)]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].event.kind, EventKind::A2);
        assert!(preds[0].neighbor.is_none());
    }

    #[test]
    fn no_prediction_for_stable_serving() {
        let h = feed_history(0.0, 0.0, -95.0, -120.0);
        let rp = ReportPredictor::default();
        assert!(rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 0)]).is_empty());
    }

    #[test]
    fn predicts_a3_on_rising_neighbor() {
        // neighbor rising 5 dB/s from 1 dB below serving crosses offset soon
        let h = feed_history(0.0, 5.0, -100.0, -101.0);
        let rp = ReportPredictor::default();
        let preds = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A3, 0)]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].neighbor, Some(Pci(2)));
    }

    #[test]
    fn ttt_extends_eta() {
        let h = feed_history(-6.0, 0.0, -113.0, -130.0);
        let rp = ReportPredictor::default();
        let no_ttt = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 0)]);
        let with_ttt = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 320)]);
        assert!(!no_ttt.is_empty() && !with_ttt.is_empty());
        assert!(with_ttt[0].eta_s > no_ttt[0].eta_s + 0.3);
    }

    #[test]
    fn b1_evaluates_neighbors_only() {
        // strong serving, neighbor rising past B1 threshold (-110)
        let h = feed_history(0.0, 8.0, -70.0, -113.0);
        let rp = ReportPredictor::default();
        let preds = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::B1, 0)]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].event.kind, EventKind::B1);
    }

    #[test]
    fn short_history_predicts_persistence() {
        let mut h = RrsHistory::new(1.0);
        h.push(0.0, &LegSnapshot::from_rsrp(Some((Pci(1), -120.0)), vec![]));
        let rp = ReportPredictor::default();
        // single sample below A2 threshold: persistence forecast still fires
        let preds = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 0)]);
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn predictions_sorted_by_eta() {
        // both A2 (serving falling) and A3 (neighbor rising) will fire
        let h = feed_history(-5.0, 6.0, -113.0, -100.0);
        let rp = ReportPredictor::default();
        let preds = rp.predict(&h, Some(Pci(1)), &[cfg(EventKind::A2, 320), cfg(EventKind::A3, 0)]);
        assert!(preds.len() >= 2);
        for w in preds.windows(2) {
            assert!(w[0].eta_s <= w[1].eta_s);
        }
    }
}
