//! # Prognos — the paper's 4G/5G handover prediction system (§7)
//!
//! Prognos forecasts handovers and their types from UE-observable signals
//! only: RRS readings, measurement-event configurations, measurement
//! reports, and past HOs. No carrier cooperation, no offline training. The
//! two-stage pipeline (Fig. 17) decouples:
//!
//! 1. **Report prediction** ([`report_predictor`]): triangular-kernel
//!    smoothing + linear regression forecast the serving/neighbor RRS over
//!    the next prediction window; the Table 4 trigger conditions (with TTT)
//!    applied to the forecast yield *predicted measurement reports* ~1 s
//!    before they fire.
//! 2. **Decision learning** ([`learner`]): an online, PrefixSpan-inspired
//!    pattern store learns which MR sequences each carrier turns into which
//!    HO type, with support counting, freshness-based eviction, and
//!    optional bootstrapping with frequent patterns (§9/Fig. 15).
//!
//! The [`predictor`] matches the (predicted + observed) MR sequence of the
//! current phase against the learned patterns, applies sanity checks from
//! the radio context (an SCGM cannot happen without an SCG, etc.), and
//! emits the predicted HO type plus a [`score::HoScoreTable`]-derived
//! `ho_score` ∈ (0, ∞): the expected multiplicative change in network
//! capacity (1 = no change, 0.4 = −60%).
//!
//! The [`Prognos`] facade wires the stages together behind an online API:
//! feed it samples/configs/reports/HOs as they happen; ask it for a
//! [`Prognosis`] whenever the application needs one.

pub mod history;
pub mod learner;
pub mod predictor;
pub mod prognos;
pub mod report_predictor;
pub mod score;

pub use history::{CellObs, LegSnapshot, RrsHistory};
pub use learner::{DecisionLearner, LearnerConfig, Pattern};
pub use predictor::{HandoverPredictor, Prediction, UeContext};
pub use prognos::{Prognos, PrognosConfig, Prognosis};
pub use report_predictor::{PredictedReport, ReportPredictor};
pub use score::HoScoreTable;
