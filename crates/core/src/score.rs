//! `ho_score`: the expected throughput change of a predicted HO (§7.2).
//!
//! "Prognos generates a ho_score ∈ (0, ∞). This value represents expected
//! improvement or degradation in throughput ... empirically calculated from
//! results reported in Fig. 16: the median change in network capacity using
//! the ratio of throughput before and after HO."

use fiveg_radio::BandClass;
use fiveg_ran::HoType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Post/pre throughput ratio per (HO type, band class of the NR leg).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoScoreTable {
    table: HashMap<(HoType, BandClass), f64>,
    /// Fallback per HO type when no band-specific entry exists.
    by_type: HashMap<HoType, f64>,
}

impl HoScoreTable {
    /// The paper's Fig. 16-derived defaults (mmWave NSA measurements):
    /// SCGA ≈ ×17 (4G→5G), SCGR ≈ ÷7, SCGM ≈ +43% post-HO, SCGC ≈ −14%,
    /// LTEH ≈ −4%, MCGH/MNBH near unity.
    pub fn paper_defaults() -> Self {
        let mut by_type = HashMap::new();
        by_type.insert(HoType::Scga, 17.0);
        by_type.insert(HoType::Scgr, 1.0 / 7.0);
        by_type.insert(HoType::Scgm, 1.43);
        by_type.insert(HoType::Scgc, 0.86);
        by_type.insert(HoType::Lteh, 0.96);
        by_type.insert(HoType::Mnbh, 0.92);
        by_type.insert(HoType::Mcgh, 1.0);
        let mut table = HashMap::new();
        // low-band SCGA is a far smaller boost than mmWave
        table.insert((HoType::Scga, BandClass::Low), 2.5);
        table.insert((HoType::Scga, BandClass::Mid), 6.0);
        table.insert((HoType::Scga, BandClass::MmWave), 17.0);
        table.insert((HoType::Scgr, BandClass::Low), 0.4);
        table.insert((HoType::Scgr, BandClass::Mid), 0.2);
        table.insert((HoType::Scgr, BandClass::MmWave), 1.0 / 7.0);
        Self { table, by_type }
    }

    /// Builds a table from observed (ho, band, pre, post) samples — the
    /// calibration path used when traces are available: the score is the
    /// median post/pre ratio per key.
    pub fn calibrate(samples: &[(HoType, Option<BandClass>, f64, f64)]) -> Self {
        let mut buckets: HashMap<(HoType, Option<BandClass>), Vec<f64>> = HashMap::new();
        for &(ho, band, pre, post) in samples {
            if pre > 1e-3 {
                buckets.entry((ho, band)).or_default().push(post / pre);
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let mut table = HashMap::new();
        let mut by_type: HashMap<HoType, Vec<f64>> = HashMap::new();
        for ((ho, band), mut v) in buckets {
            let m = median(&mut v);
            if let Some(b) = band {
                table.insert((ho, b), m);
            }
            by_type.entry(ho).or_default().push(m);
        }
        let by_type = by_type.into_iter().map(|(ho, mut v)| (ho, median(&mut v))).collect();
        Self { table, by_type }
    }

    /// The score for a predicted HO. `None` band falls back to the per-type
    /// value; unknown types return 1.0 (no expected change).
    pub fn score(&self, ho: HoType, band: Option<BandClass>) -> f64 {
        if let Some(b) = band {
            if let Some(&s) = self.table.get(&(ho, b)) {
                return s;
            }
        }
        self.by_type.get(&ho).copied().unwrap_or(1.0)
    }

    /// The "no HO" score.
    pub const NO_HO: f64 = 1.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_shape() {
        let t = HoScoreTable::paper_defaults();
        assert!(t.score(HoType::Scga, Some(BandClass::MmWave)) > 10.0);
        assert!(t.score(HoType::Scgr, Some(BandClass::MmWave)) < 0.2);
        assert!(t.score(HoType::Scgm, None) > 1.0);
        assert!(t.score(HoType::Scgc, None) < 1.0);
        // low-band SCGA boost much smaller than mmWave
        assert!(t.score(HoType::Scga, Some(BandClass::Low)) < t.score(HoType::Scga, Some(BandClass::MmWave)) / 3.0);
    }

    #[test]
    fn unknown_type_is_unity() {
        let t = HoScoreTable { table: HashMap::new(), by_type: HashMap::new() };
        assert_eq!(t.score(HoType::Scga, None), 1.0);
    }

    #[test]
    fn calibrate_computes_median_ratio() {
        let samples = vec![
            (HoType::Scgr, Some(BandClass::Low), 100.0, 40.0),
            (HoType::Scgr, Some(BandClass::Low), 200.0, 100.0),
            (HoType::Scgr, Some(BandClass::Low), 100.0, 30.0),
        ];
        let t = HoScoreTable::calibrate(&samples);
        let s = t.score(HoType::Scgr, Some(BandClass::Low));
        assert!((s - 0.4).abs() < 1e-9, "{s}");
    }

    #[test]
    fn calibrate_ignores_zero_pre() {
        let samples = vec![(HoType::Scga, Some(BandClass::Low), 0.0, 100.0)];
        let t = HoScoreTable::calibrate(&samples);
        assert_eq!(t.score(HoType::Scga, Some(BandClass::Low)), 1.0);
    }

    #[test]
    fn band_fallback_to_type() {
        let samples = vec![(HoType::Scgm, None, 100.0, 150.0)];
        let t = HoScoreTable::calibrate(&samples);
        assert!((t.score(HoType::Scgm, Some(BandClass::Low)) - 1.5).abs() < 1e-9);
    }
}
