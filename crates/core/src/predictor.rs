//! Stage 3: the handover predictor (§7.2).
//!
//! "The predicted sequence is matched against all the learned HO patterns
//! ... the HO type is predicted based on the pattern which has the highest
//! similarity", with sanity checks from the radio context ("an SCGM HO
//! prediction cannot be made when a device is using LTE") that cut the
//! action space and prevent nonsense predictions.

use crate::learner::DecisionLearner;
use fiveg_radio::BandClass;
use fiveg_ran::{Arch, HoType};
use fiveg_rrc::MeasEvent;
use serde::{Deserialize, Serialize};

/// Radio context used for prediction sanity checks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeContext {
    /// Architecture the UE currently operates under.
    pub arch: Arch,
    /// True when an SCG (NR leg) is attached.
    pub has_scg: bool,
    /// Band class of the current/candidate NR leg.
    pub nr_band: Option<BandClass>,
}

impl UeContext {
    /// Is a prediction of `ho` possible in this state?
    pub fn admits(&self, ho: HoType) -> bool {
        match (self.arch, ho) {
            // SA only does MCG handovers
            (Arch::Sa, HoType::Mcgh) => true,
            (Arch::Sa, _) => false,
            // pure LTE only does LTE handovers
            (Arch::Lte, HoType::Lteh) => true,
            (Arch::Lte, _) => false,
            // NSA: SCG procedures require/forbid an attached SCG
            (Arch::Nsa, HoType::Scga) => !self.has_scg,
            (Arch::Nsa, HoType::Scgr | HoType::Scgm | HoType::Scgc | HoType::Mnbh) => self.has_scg,
            (Arch::Nsa, HoType::Lteh) => true,
            (Arch::Nsa, HoType::Mcgh) => false,
        }
    }
}

/// A handover prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted HO type; `None` = "no HO expected".
    pub ho: Option<HoType>,
    /// Similarity score of the winning pattern (0 when no HO).
    pub confidence: f64,
    /// Expected seconds until the HO command (from predicted-report ETAs;
    /// 0 when the pattern completed on actual reports).
    pub lead_s: f64,
}

impl Prediction {
    /// The "no HO" prediction.
    pub const NO_HO: Prediction = Prediction { ho: None, confidence: 0.0, lead_s: 0.0 };
}

/// Matches MR sequences against learned patterns under context sanity.
#[derive(Debug, Clone, Copy)]
pub struct HandoverPredictor {
    /// Minimum similarity for a positive prediction.
    pub min_similarity: f64,
}

impl Default for HandoverPredictor {
    fn default() -> Self {
        Self { min_similarity: 0.25 }
    }
}

impl HandoverPredictor {
    /// Predicts from the current phase's event sequence (observed MRs plus
    /// any predicted ones appended by the caller).
    pub fn predict(&self, learner: &DecisionLearner, seq: &[MeasEvent], ctx: &UeContext, lead_s: f64) -> Prediction {
        if seq.is_empty() {
            return Prediction::NO_HO;
        }
        let candidates = learner.candidates(seq);
        for (p, sim) in candidates {
            if sim < self.min_similarity {
                break; // sorted best-first
            }
            if ctx.admits(p.ho) {
                return Prediction { ho: Some(p.ho), confidence: sim, lead_s };
            }
        }
        Prediction::NO_HO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learner::LearnerConfig;
    use fiveg_rrc::EventKind;

    fn ev(kind: EventKind) -> MeasEvent {
        MeasEvent::nr(kind)
    }

    fn trained_learner() -> DecisionLearner {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        for _ in 0..5 {
            l.observe_phase(&[ev(EventKind::B1)], HoType::Scga);
            l.observe_phase(&[ev(EventKind::A2)], HoType::Scgr);
            l.observe_phase(&[ev(EventKind::A2), ev(EventKind::B1)], HoType::Scgc);
        }
        l
    }

    const NSA_WITH_SCG: UeContext = UeContext { arch: Arch::Nsa, has_scg: true, nr_band: Some(BandClass::Low) };
    const NSA_NO_SCG: UeContext = UeContext { arch: Arch::Nsa, has_scg: false, nr_band: Some(BandClass::Low) };

    #[test]
    fn context_gates_scg_procedures() {
        assert!(NSA_NO_SCG.admits(HoType::Scga));
        assert!(!NSA_WITH_SCG.admits(HoType::Scga));
        assert!(NSA_WITH_SCG.admits(HoType::Scgr));
        assert!(!NSA_NO_SCG.admits(HoType::Scgm));
        let sa = UeContext { arch: Arch::Sa, has_scg: false, nr_band: None };
        assert!(sa.admits(HoType::Mcgh));
        assert!(!sa.admits(HoType::Scga));
        let lte = UeContext { arch: Arch::Lte, has_scg: false, nr_band: None };
        assert!(lte.admits(HoType::Lteh));
        assert!(!lte.admits(HoType::Mnbh));
    }

    #[test]
    fn predicts_learned_pattern() {
        let l = trained_learner();
        let p = HandoverPredictor::default();
        let pred = p.predict(&l, &[ev(EventKind::B1)], &NSA_NO_SCG, 0.8);
        assert_eq!(pred.ho, Some(HoType::Scga));
        assert_eq!(pred.lead_s, 0.8);
        assert!(pred.confidence > 0.25);
    }

    #[test]
    fn sanity_check_redirects_to_admissible_pattern() {
        let l = trained_learner();
        let p = HandoverPredictor::default();
        // with an SCG attached, B1 alone cannot mean SCGA; no other pattern
        // matches a bare [B1] tail except SCGA -> no HO predicted
        let pred = p.predict(&l, &[ev(EventKind::B1)], &NSA_WITH_SCG, 0.0);
        assert_eq!(pred.ho, None);
        // but [A2, B1] means SCGC, which is admissible with an SCG
        let pred = p.predict(&l, &[ev(EventKind::A2), ev(EventKind::B1)], &NSA_WITH_SCG, 0.0);
        assert_eq!(pred.ho, Some(HoType::Scgc));
    }

    #[test]
    fn empty_sequence_is_no_ho() {
        let l = trained_learner();
        let p = HandoverPredictor::default();
        assert_eq!(p.predict(&l, &[], &NSA_NO_SCG, 0.0), Prediction::NO_HO);
    }

    #[test]
    fn unknown_sequence_is_no_ho() {
        let l = trained_learner();
        let p = HandoverPredictor::default();
        let pred = p.predict(&l, &[ev(EventKind::A5)], &NSA_WITH_SCG, 0.0);
        assert_eq!(pred.ho, None);
    }

    #[test]
    fn similarity_threshold_filters_weak_patterns() {
        let mut l = DecisionLearner::new(LearnerConfig::default());
        l.observe_phase(&[ev(EventKind::A2)], HoType::Scgr);
        // raise the bar so a support-1 pattern cannot clear it
        let p = HandoverPredictor { min_similarity: 0.99 };
        let pred = p.predict(&l, &[ev(EventKind::A2)], &NSA_WITH_SCG, 0.0);
        assert_eq!(pred.ho, None);
    }
}
