//! The Prognos facade: the online system of Fig. 17.
//!
//! Feed it what the UE observes; ask for a [`Prognosis`] whenever needed:
//!
//! ```
//! use prognos::{Prognos, PrognosConfig, LegSnapshot, UeContext};
//! use fiveg_ran::Arch;
//! use fiveg_rrc::{EventConfig, EventKind, MeasEvent, Pci};
//!
//! let mut pg = Prognos::new(PrognosConfig::default());
//! pg.set_configs(vec![EventConfig::typical(MeasEvent::nr(EventKind::B1))]);
//! let ctx = UeContext { arch: Arch::Nsa, has_scg: false, nr_band: None };
//! pg.on_sample(
//!     0.05,
//!     &LegSnapshot::empty(),
//!     &LegSnapshot::from_rsrp(None, vec![(Pci(7), -108.0)]),
//! );
//! let prognosis = pg.predict(0.05, &ctx);
//! assert_eq!(prognosis.ho_score, 1.0); // nothing learned yet: no HO
//! ```

use crate::history::{LegSnapshot, RrsHistory};
use crate::learner::{DecisionLearner, LearnerConfig};
use crate::predictor::{HandoverPredictor, Prediction, UeContext};
use crate::report_predictor::ReportPredictor;
use crate::score::HoScoreTable;
use fiveg_ran::HoType;
use fiveg_rrc::{EventConfig, EventRat, MeasEvent, Pci};
use fiveg_telemetry::{Event, Phase, Telemetry};
use serde::{Deserialize, Serialize};

/// Prognos configuration.
#[derive(Debug, Clone)]
pub struct PrognosConfig {
    /// History window fed to the RRS predictor, s (paper: 1 s).
    pub history_window_s: f64,
    /// Prediction window, s (paper: 1 s).
    pub prediction_window_s: f64,
    /// Nominal sampling interval, s (paper logs @ 20 Hz).
    pub sample_dt_s: f64,
    /// Use the report predictor (stage 1). Disabling it reproduces the
    /// "w/o report predictor" baseline of Fig. 18.
    pub use_report_predictor: bool,
    /// Decision-learner tuning.
    pub learner: LearnerConfig,
    /// Minimum pattern similarity for a positive prediction.
    pub min_similarity: f64,
    /// After a forecast report fails to materialize, suppress forecasts of
    /// that event for this long (false-alarm damping), s.
    pub forecast_cooloff_s: f64,
}

impl Default for PrognosConfig {
    fn default() -> Self {
        Self {
            history_window_s: 1.0,
            prediction_window_s: 1.0,
            sample_dt_s: 0.05,
            use_report_predictor: true,
            learner: LearnerConfig::default(),
            min_similarity: 0.7,
            forecast_cooloff_s: 0.0,
        }
    }
}

/// Prognos's answer to "what happens in the next prediction window?".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prognosis {
    /// Predicted HO type (`None` = no HO expected).
    pub ho: Option<HoType>,
    /// Expected multiplicative throughput change (1 = no change).
    pub ho_score: f64,
    /// Pattern similarity backing the prediction.
    pub confidence: f64,
    /// Estimated lead time until the HO, s.
    pub lead_s: f64,
}

/// The online HO prediction system.
#[derive(Debug, Clone)]
pub struct Prognos {
    cfg: PrognosConfig,
    lte_history: RrsHistory,
    nr_history: RrsHistory,
    lte_serving: Option<Pci>,
    nr_serving: Option<Pci>,
    configs: Vec<EventConfig>,
    learner: DecisionLearner,
    predictor: HandoverPredictor,
    report_predictor: ReportPredictor,
    scores: HoScoreTable,
    /// Actual MRs observed in the current phase.
    phase: Vec<MeasEvent>,
    /// Outstanding forecasts: (event, deadline by which it must fire).
    pending_forecasts: Vec<(MeasEvent, f64)>,
    /// Last forecast-based positive: (type, time) — forecast predictions
    /// are emitted only once two consecutive windows agree.
    last_forecast_positive: Option<(HoType, f64)>,
    /// Events whose forecasts are damped until the given time.
    suppress_until: std::collections::HashMap<MeasEvent, f64>,
    telemetry: Telemetry,
    /// Last sim-time seen (`on_sample`/`predict`); stamps hit/miss events,
    /// since `on_handover` carries no time.
    last_t: f64,
    /// Outstanding positive prediction awaiting its HO: (type, t issued).
    tele_last_positive: Option<(HoType, f64)>,
}

impl Prognos {
    /// Creates the system.
    pub fn new(cfg: PrognosConfig) -> Self {
        let report_predictor = ReportPredictor {
            prediction_window_s: cfg.prediction_window_s,
            smooth_half_width: 3,
            sample_dt_s: cfg.sample_dt_s,
            margin_db: 2.0,
        };
        Self {
            lte_history: RrsHistory::new(cfg.history_window_s),
            nr_history: RrsHistory::new(cfg.history_window_s),
            lte_serving: None,
            nr_serving: None,
            configs: Vec::new(),
            learner: DecisionLearner::new(cfg.learner),
            predictor: HandoverPredictor { min_similarity: cfg.min_similarity },
            report_predictor,
            scores: HoScoreTable::paper_defaults(),
            phase: Vec::new(),
            pending_forecasts: Vec::new(),
            last_forecast_positive: None,
            suppress_until: std::collections::HashMap::new(),
            telemetry: Telemetry::disabled(),
            last_t: 0.0,
            tele_last_positive: None,
            cfg,
        }
    }

    /// Installs a telemetry recorder (disabled by default): prep/exec stage
    /// timers plus prediction issued/hit/miss journal events.
    pub fn set_telemetry(&mut self, tele: Telemetry) {
        self.telemetry = tele;
    }

    /// Installs the measurement-event configurations (from `MeasConfig`).
    pub fn set_configs(&mut self, configs: Vec<EventConfig>) {
        self.configs = configs;
    }

    /// Replaces the ho_score table (e.g. one calibrated from local traces).
    pub fn set_scores(&mut self, scores: HoScoreTable) {
        self.scores = scores;
    }

    /// Seeds the decision learner with frequent patterns (Fig. 15).
    pub fn bootstrap(&mut self, patterns: impl IntoIterator<Item = (Vec<MeasEvent>, HoType)>) {
        self.learner.bootstrap(patterns);
    }

    /// Feeds one tick of radio observations.
    pub fn on_sample(&mut self, t: f64, lte: &LegSnapshot, nr: &LegSnapshot) {
        self.last_t = t;
        self.lte_serving = lte.serving.map(|c| c.pci);
        self.nr_serving = nr.serving.map(|c| c.pci);
        self.lte_history.push(t, lte);
        self.nr_history.push(t, nr);
    }

    /// Feeds an observed (actual) measurement report.
    pub fn on_report(&mut self, event: MeasEvent) {
        self.phase.push(event);
        // the forecast materialized: clear its pending entry and damping
        self.pending_forecasts.retain(|(e, _)| *e != event);
        self.suppress_until.remove(&event);
    }

    /// Feeds an observed HO command: closes the phase and teaches the
    /// learner.
    pub fn on_handover(&mut self, ho: HoType) {
        if self.telemetry.is_enabled() {
            match self.tele_last_positive.take() {
                Some((h, t_issued)) if h == ho => {
                    self.telemetry.incr("prognos.hits");
                    self.telemetry.record(
                        self.last_t,
                        Event::PredictionHit { ho_type: ho.acronym().to_string(), lead_s: self.last_t - t_issued },
                    );
                }
                other => {
                    self.telemetry.incr("prognos.misses");
                    self.telemetry.record(
                        self.last_t,
                        Event::PredictionMiss {
                            predicted: other.map(|(h, _)| h.acronym().to_string()),
                            actual: ho.acronym().to_string(),
                        },
                    );
                }
            }
        }
        let phase = std::mem::take(&mut self.phase);
        self.learner.observe_phase(&phase, ho);
        // the radio context changed: forecasts start fresh
        self.pending_forecasts.clear();
        self.suppress_until.clear();
    }

    /// Access to the learner (pattern statistics, §7.3 learning rates).
    pub fn learner(&self) -> &DecisionLearner {
        &self.learner
    }

    /// Predicts what happens within the next prediction window.
    ///
    /// The observed phase is extended with predicted reports in every
    /// prefix-length combination and the best-scoring admissible match
    /// wins — a spurious low-confidence forecast appended at the end must
    /// not mask a strong observed pattern.
    pub fn predict(&mut self, t: f64, ctx: &UeContext) -> Prognosis {
        self.last_t = t;
        self.telemetry.incr("prognos.predict_calls");
        // expire unfulfilled forecasts into the suppression map
        let cooloff = self.cfg.forecast_cooloff_s;
        let mut expired = Vec::new();
        self.pending_forecasts.retain(|&(e, deadline)| {
            if t > deadline {
                expired.push(e);
                false
            } else {
                true
            }
        });
        for e in expired {
            self.suppress_until.insert(e, t + cooloff);
        }

        let mut variants: Vec<(Vec<MeasEvent>, f64)> = vec![(self.phase.clone(), 0.0)];
        if self.cfg.use_report_predictor {
            // stage 1 ("prep"): forecast upcoming MRs from signal histories
            let _prep = self.telemetry.phase(Phase::PrognosPrep);
            let mut predicted = Vec::new();
            let lte_cfgs: Vec<EventConfig> =
                self.configs.iter().filter(|c| c.event.rat == EventRat::Lte).copied().collect();
            let nr_cfgs: Vec<EventConfig> =
                self.configs.iter().filter(|c| c.event.rat == EventRat::Nr).copied().collect();
            for p in self.report_predictor.predict(&self.lte_history, self.lte_serving, &lte_cfgs) {
                predicted.push(p);
            }
            for p in self.report_predictor.predict(&self.nr_history, self.nr_serving, &nr_cfgs) {
                predicted.push(p);
            }
            // drop damped events; register the rest as outstanding
            predicted.retain(|p| self.suppress_until.get(&p.event).map(|&u| t >= u).unwrap_or(true));
            for p in &predicted {
                if !self.pending_forecasts.iter().any(|(e, _)| *e == p.event) {
                    self.pending_forecasts.push((p.event, t + p.eta_s + 0.5));
                }
            }
            predicted.sort_by(|a, b| a.eta_s.partial_cmp(&b.eta_s).unwrap());
            // one variant per predicted-report prefix; also one per single
            // predicted event (concurrent triggers compete independently)
            let mut prefix = self.phase.clone();
            for p in &predicted {
                if prefix.last() != Some(&p.event) {
                    prefix.push(p.event);
                    variants.push((prefix.clone(), p.eta_s));
                }
                let mut single = self.phase.clone();
                if single.last() != Some(&p.event) {
                    single.push(p.event);
                    variants.push((single, p.eta_s));
                }
            }
        }
        // stage 2 ("exec"): match variants against learned patterns
        let exec_guard = self.telemetry.phase(Phase::PrognosExec);
        let mut best = Prediction::NO_HO;
        for (seq, lead) in &variants {
            let pred = self.predictor.predict(&self.learner, seq, ctx, *lead);
            if pred.ho.is_some() && pred.confidence > best.confidence {
                best = pred;
            }
        }
        // Forecast-based positives (no observed MR backing them) that are
        // not imminent must be confirmed by two consecutive agreeing
        // predictions — distant-forecast blips are the dominant false-alarm
        // source, while imminent crossings (small ETA) are reliable.
        if let Some(h) = best.ho {
            let observed_backed = {
                let pred0 = self.predictor.predict(&self.learner, &variants[0].0, ctx, 0.0);
                pred0.ho == Some(h)
            };
            let imminent = best.lead_s < 0.5;
            if !observed_backed && !imminent {
                let confirmed = matches!(self.last_forecast_positive, Some((lh, lt)) if lh == h && t - lt <= 1.6);
                self.last_forecast_positive = Some((h, t));
                if !confirmed {
                    best = Prediction::NO_HO;
                }
            } else if !observed_backed {
                self.last_forecast_positive = Some((h, t));
            }
        } else {
            self.last_forecast_positive = None;
        }
        drop(exec_guard);
        if self.telemetry.is_enabled() {
            if let Some(h) = best.ho {
                // journal one event per prediction episode, not per call
                let new_episode = !matches!(self.tele_last_positive, Some((lh, _)) if lh == h);
                if new_episode {
                    self.telemetry.incr("prognos.predictions_issued");
                    self.telemetry.record(
                        t,
                        Event::PredictionIssued {
                            ho_type: h.acronym().to_string(),
                            lead_s: best.lead_s,
                            confidence: best.confidence,
                        },
                    );
                    self.tele_last_positive = Some((h, t));
                }
            }
        }
        Prognosis {
            ho: best.ho,
            ho_score: best.ho.map(|h| self.scores.score(h, ctx.nr_band)).unwrap_or(HoScoreTable::NO_HO),
            confidence: best.confidence,
            lead_s: best.lead_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::Arch;
    use fiveg_rrc::EventKind;

    fn nr_ev(kind: EventKind) -> MeasEvent {
        MeasEvent::nr(kind)
    }

    fn nsa_ctx(has_scg: bool) -> UeContext {
        UeContext { arch: Arch::Nsa, has_scg, nr_band: Some(fiveg_radio::BandClass::Low) }
    }

    fn trained() -> Prognos {
        let mut pg = Prognos::new(PrognosConfig::default());
        pg.set_configs(vec![EventConfig::typical(nr_ev(EventKind::B1)), EventConfig::typical(nr_ev(EventKind::A2))]);
        for _ in 0..5 {
            pg.on_report(nr_ev(EventKind::B1));
            pg.on_handover(HoType::Scga);
            pg.on_report(nr_ev(EventKind::A2));
            pg.on_handover(HoType::Scgr);
        }
        pg
    }

    #[test]
    fn cold_system_predicts_no_ho() {
        let mut pg = Prognos::new(PrognosConfig::default());
        let p = pg.predict(0.0, &nsa_ctx(false));
        assert_eq!(p.ho, None);
        assert_eq!(p.ho_score, 1.0);
    }

    #[test]
    fn predicts_from_observed_report() {
        let mut pg = trained();
        pg.on_report(nr_ev(EventKind::B1));
        let p = pg.predict(10.0, &nsa_ctx(false));
        assert_eq!(p.ho, Some(HoType::Scga));
        assert!(p.ho_score > 1.0, "SCGA should boost throughput: {}", p.ho_score);
    }

    #[test]
    fn predicts_from_forecast_signal() {
        // no observed MR yet: a rising NR neighbor should produce a
        // predicted B1 and hence a predicted SCGA with positive lead time
        let mut pg = trained();
        for i in 0..21 {
            let t = i as f64 * 0.05;
            pg.on_sample(
                t,
                &LegSnapshot::from_rsrp(Some((Pci(1), -95.0)), vec![]),
                // rising toward the B1 threshold (-110 typical)
                &LegSnapshot::from_rsrp(None, vec![(Pci(7), -114.0 + 6.0 * t)]),
            );
        }
        let p = pg.predict(1.0, &nsa_ctx(false));
        assert_eq!(p.ho, Some(HoType::Scga));
        assert!(p.lead_s > 0.0, "forecast prediction must have lead time");
    }

    #[test]
    fn report_predictor_off_needs_actual_reports() {
        let cfg = PrognosConfig { use_report_predictor: false, ..Default::default() };
        let mut pg = Prognos::new(cfg);
        pg.set_configs(vec![EventConfig::typical(nr_ev(EventKind::B1))]);
        for _ in 0..5 {
            pg.on_report(nr_ev(EventKind::B1));
            pg.on_handover(HoType::Scga);
        }
        for i in 0..21 {
            let t = i as f64 * 0.05;
            pg.on_sample(
                t,
                &LegSnapshot::from_rsrp(Some((Pci(1), -95.0)), vec![]),
                &LegSnapshot::from_rsrp(None, vec![(Pci(7), -114.0 + 6.0 * t)]),
            );
        }
        // without the report predictor the rising neighbor is invisible
        assert_eq!(pg.predict(1.0, &nsa_ctx(false)).ho, None);
        // an actual report triggers the prediction
        pg.on_report(nr_ev(EventKind::B1));
        assert_eq!(pg.predict(1.0, &nsa_ctx(false)).ho, Some(HoType::Scga));
    }

    #[test]
    fn sanity_check_blocks_impossible_prediction() {
        let mut pg = trained();
        pg.on_report(nr_ev(EventKind::B1));
        // SCG already attached: SCGA impossible
        let p = pg.predict(10.0, &nsa_ctx(true));
        assert_eq!(p.ho, None);
    }

    #[test]
    fn handover_closes_phase() {
        let mut pg = trained();
        pg.on_report(nr_ev(EventKind::B1));
        pg.on_handover(HoType::Scga);
        // phase cleared: cold prediction again (no fresh signal)
        let p = pg.predict(20.0, &nsa_ctx(true));
        assert_eq!(p.ho, None);
    }

    #[test]
    fn bootstrap_enables_immediate_predictions() {
        let mut pg = Prognos::new(PrognosConfig::default());
        pg.bootstrap(vec![(vec![nr_ev(EventKind::B1)], HoType::Scga)]);
        pg.on_report(nr_ev(EventKind::B1));
        assert_eq!(pg.predict(0.0, &nsa_ctx(false)).ho, Some(HoType::Scga));
    }

    #[test]
    fn scgr_prediction_scores_below_one() {
        let mut pg = trained();
        pg.on_report(nr_ev(EventKind::A2));
        let p = pg.predict(10.0, &nsa_ctx(true));
        assert_eq!(p.ho, Some(HoType::Scgr));
        assert!(p.ho_score < 1.0);
    }
}
