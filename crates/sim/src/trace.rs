//! The dataset format: what a drive/walk produces.
//!
//! A [`Trace`] is the simulator's equivalent of one XCAL + 5G Tracker log:
//! periodic cross-layer samples, the RRC event stream (MRs, HO records),
//! signaling tallies and the cell dictionary needed to interpret PCIs.
//! Serializable with serde (JSON via `save`/`load`) so experiments can be
//! recorded once and replayed, like the paper's released dataset.

use fiveg_link::{CbrSample, TcpSample};
use fiveg_radio::{BandClass, Rrs};
use fiveg_ran::{Arch, Carrier, Environment, HandoverRecord};
use fiveg_rrc::{EventConfig, MeasEvent, SignalingTally};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// One entry of the trace's cell dictionary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDictEntry {
    /// Dense cell id (index into the dictionary).
    pub cell: u32,
    /// Physical cell id.
    pub pci: u16,
    /// True for NR cells.
    pub is_nr: bool,
    /// 3GPP band name ("n71", "b2", ...).
    pub band: String,
    /// Band class.
    pub class: BandClass,
    /// Site position (x, y) meters.
    pub site: (f64, f64),
    /// Hosting tower id.
    pub tower: u32,
    /// Tower hosts both eNB and gNB.
    pub co_located: bool,
}

/// One periodic cross-layer sample (default 20 Hz, like 5G Tracker).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Time, s.
    pub t: f64,
    /// UE position, m.
    pub pos: (f64, f64),
    /// Distance traveled, m.
    pub dist_m: f64,
    /// Serving LTE cell (dictionary index).
    pub lte_cell: Option<u32>,
    /// Serving NR cell (dictionary index).
    pub nr_cell: Option<u32>,
    /// Serving LTE quality.
    pub lte_rrs: Option<Rrs>,
    /// Serving NR quality.
    pub nr_rrs: Option<Rrs>,
    /// Strongest LTE neighbors (cell idx, rrs), strongest first, ≤4.
    pub lte_neighbors: Vec<(u32, Rrs)>,
    /// Strongest NR neighbors, ≤4.
    pub nr_neighbors: Vec<(u32, Rrs)>,
    /// Composed downlink capacity, Mbps.
    pub capacity_mbps: f64,
    /// Composed base RTT, ms.
    pub base_rtt_ms: f64,
    /// Data plane currently interrupted by a HO execution.
    pub interrupted: bool,
    /// Dual-mode bearer active.
    pub dual_mode: bool,
}

/// A logged measurement report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MrRecord {
    /// Fire time, s.
    pub t: f64,
    /// The event.
    pub event: MeasEvent,
    /// Serving cell PCI at fire time.
    pub serving_pci: u16,
    /// Reported neighbor PCIs (strongest/satisfying first).
    pub neighbor_pcis: Vec<u16>,
}

/// Scenario metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Carrier simulated.
    pub carrier: Carrier,
    /// Environment of the deployment.
    pub env: Environment,
    /// Architecture in effect.
    pub arch: Arch,
    /// Scenario seed.
    pub seed: u64,
    /// Sampling rate, Hz.
    pub sample_hz: f64,
    /// Wall duration simulated, s.
    pub duration_s: f64,
    /// Route length, m.
    pub route_len_m: f64,
    /// Distance actually traveled, m.
    pub traveled_m: f64,
}

/// A complete recorded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Scenario metadata.
    pub meta: TraceMeta,
    /// Cell dictionary (indexed by dense cell id).
    pub cells: Vec<CellDictEntry>,
    /// Periodic samples.
    pub samples: Vec<TraceSample>,
    /// Measurement reports in time order.
    pub reports: Vec<MrRecord>,
    /// Completed handovers in time order.
    pub handovers: Vec<HandoverRecord>,
    /// Signaling tally for the run.
    pub signaling: SignalingTally,
    /// Measurement-event configurations active during the run (the UE sees
    /// these in `MeasConfig` messages; Prognos needs them).
    pub configs: Vec<EventConfig>,
    /// Radio link failures (coverage losses requiring reattach).
    pub rlf_count: u64,
    /// Injected handover failures that occurred.
    pub ho_failures: u64,
    /// Workload observations, if a flow ran.
    pub flow: FlowLog,
}

/// Recorded workload samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlowLog {
    /// No workload beyond keep-alives.
    None,
    /// Bulk TCP download samples.
    Tcp(Vec<TcpSample>),
    /// CBR stream samples.
    Cbr(Vec<CbrSample>),
}

impl Trace {
    /// Serializes to JSON at `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        let data = serde_json::to_vec(self).map_err(std::io::Error::other)?;
        f.write_all(&data)
    }

    /// Loads a JSON trace from `path`.
    pub fn load(path: &Path) -> std::io::Result<Trace> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        serde_json::from_slice(&buf).map_err(std::io::Error::other)
    }

    /// Handovers per traveled kilometer.
    pub fn hos_per_km(&self) -> f64 {
        if self.meta.traveled_m <= 0.0 {
            return 0.0;
        }
        self.handovers.len() as f64 / (self.meta.traveled_m / 1000.0)
    }

    /// The capacity series as (t, Mbps) pairs — the "bandwidth trace" fed to
    /// the ABR emulation (§7.4).
    pub fn bandwidth_series(&self) -> Vec<(f64, f64)> {
        self.samples.iter().map(|s| (s.t, s.capacity_mbps)).collect()
    }

    /// Looks up a dictionary entry by dense id.
    pub fn cell(&self, idx: u32) -> &CellDictEntry {
        &self.cells[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_ran::{HoType, StageSample};

    fn tiny_trace() -> Trace {
        Trace {
            meta: TraceMeta {
                carrier: Carrier::OpX,
                env: Environment::Freeway,
                arch: Arch::Nsa,
                seed: 1,
                sample_hz: 20.0,
                duration_s: 1.0,
                route_len_m: 1000.0,
                traveled_m: 500.0,
            },
            cells: vec![CellDictEntry {
                cell: 0,
                pci: 101,
                is_nr: false,
                band: "b2".into(),
                class: BandClass::Mid,
                site: (10.0, 20.0),
                tower: 0,
                co_located: false,
            }],
            samples: vec![TraceSample {
                t: 0.0,
                pos: (0.0, 0.0),
                dist_m: 0.0,
                lte_cell: Some(0),
                nr_cell: None,
                lte_rrs: Some(Rrs { rsrp_dbm: -90.0, rsrq_db: -10.0, sinr_db: 12.0 }),
                nr_rrs: None,
                lte_neighbors: vec![],
                nr_neighbors: vec![],
                capacity_mbps: 55.0,
                base_rtt_ms: 34.0,
                interrupted: false,
                dual_mode: false,
            }],
            reports: vec![],
            handovers: vec![HandoverRecord {
                ho_type: HoType::Lteh,
                arch: Arch::Nsa,
                nr_band: None,
                t_decision: 0.2,
                t_command: 0.27,
                t_complete: 0.37,
                stages: StageSample { t1_ms: 70.0, t2_ms: 100.0 },
                source_lte: Some(fiveg_rrc::Pci(101)),
                source_nr: None,
                target: Some(fiveg_rrc::Pci(102)),
                co_located: false,
                same_pci: false,
                trigger_phase: vec![],
                interrupts: (true, true),
            }],
            signaling: SignalingTally::new(),
            configs: vec![],
            rlf_count: 0,
            ho_failures: 0,
            flow: FlowLog::None,
        }
    }

    #[test]
    fn json_round_trip() {
        let t = tiny_trace();
        let dir = std::env::temp_dir().join("fiveg_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hos_per_km() {
        let t = tiny_trace();
        // 1 HO over 0.5 km
        assert!((t.hos_per_km() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hos_per_km_zero_distance() {
        let mut t = tiny_trace();
        t.meta.traveled_m = 0.0;
        assert_eq!(t.hos_per_km(), 0.0);
    }

    #[test]
    fn bandwidth_series_shape() {
        let t = tiny_trace();
        let b = t.bandwidth_series();
        assert_eq!(b, vec![(0.0, 55.0)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fiveg_link::{CbrSample, TcpSample};
    use fiveg_ran::{HoType, StageSample};
    use fiveg_rrc::{EventKind, Pci};
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    // Finite floats only: NaN breaks PartialEq and the round-trip assert,
    // and traces never contain non-finite values.
    fn fin() -> impl Strategy<Value = f64> {
        -1.0e9..1.0e9f64
    }

    fn arb_rrs() -> impl Strategy<Value = Rrs> {
        (-160.0..0.0f64, -30.0..0.0f64, -20.0..40.0f64).prop_map(|(rsrp_dbm, rsrq_db, sinr_db)| Rrs {
            rsrp_dbm,
            rsrq_db,
            sinr_db,
        })
    }

    fn arb_event() -> impl Strategy<Value = MeasEvent> {
        (
            prop_oneof![
                Just(EventKind::A1),
                Just(EventKind::A2),
                Just(EventKind::A3),
                Just(EventKind::A4),
                Just(EventKind::A5),
                Just(EventKind::B1),
                Just(EventKind::Periodic),
            ],
            any::<bool>(),
        )
            .prop_map(|(kind, nr)| if nr { MeasEvent::nr(kind) } else { MeasEvent::lte(kind) })
    }

    fn arb_sample() -> impl Strategy<Value = TraceSample> {
        (
            (fin(), (fin(), fin()), fin(), any::<Option<u32>>(), any::<Option<u32>>()),
            proptest::option::of(arb_rrs()),
            proptest::option::of(arb_rrs()),
            proptest::collection::vec((any::<u32>(), arb_rrs()), 0..4),
            proptest::collection::vec((any::<u32>(), arb_rrs()), 0..4),
            (fin(), fin(), any::<bool>(), any::<bool>()),
        )
            .prop_map(
                |(
                    (t, pos, dist_m, lte_cell, nr_cell),
                    lte_rrs,
                    nr_rrs,
                    lte_neighbors,
                    nr_neighbors,
                    (capacity_mbps, base_rtt_ms, interrupted, dual_mode),
                )| TraceSample {
                    t,
                    pos,
                    dist_m,
                    lte_cell,
                    nr_cell,
                    lte_rrs,
                    nr_rrs,
                    lte_neighbors,
                    nr_neighbors,
                    capacity_mbps,
                    base_rtt_ms,
                    interrupted,
                    dual_mode,
                },
            )
    }

    fn arb_handover() -> impl Strategy<Value = HandoverRecord> {
        (
            proptest::sample::select(HoType::ALL.to_vec()),
            (0.0..1.0e4f64, 0.0..500.0f64, 0.0..500.0f64),
            (any::<Option<u16>>(), any::<Option<u16>>(), any::<Option<u16>>()),
            (any::<bool>(), any::<bool>(), any::<(bool, bool)>()),
            proptest::collection::vec(arb_event(), 0..4),
        )
            .prop_map(|(ho_type, (t0, t1_ms, t2_ms), (sl, sn, tg), (co, same, ints), phase)| HandoverRecord {
                ho_type,
                arch: Arch::Nsa,
                nr_band: None,
                t_decision: t0,
                t_command: t0 + t1_ms / 1000.0,
                t_complete: t0 + (t1_ms + t2_ms) / 1000.0,
                stages: StageSample { t1_ms, t2_ms },
                source_lte: sl.map(Pci),
                source_nr: sn.map(Pci),
                target: tg.map(Pci),
                co_located: co,
                same_pci: same,
                trigger_phase: phase,
                interrupts: ints,
            })
    }

    fn arb_flow() -> impl Strategy<Value = FlowLog> {
        prop_oneof![
            Just(FlowLog::None),
            proptest::collection::vec(
                (fin(), fin(), fin(), any::<bool>())
                    .prop_map(|(t, goodput_mbps, rtt_ms, lost)| { TcpSample { t, goodput_mbps, rtt_ms, lost } }),
                0..6
            )
            .prop_map(FlowLog::Tcp),
            proptest::collection::vec(
                (fin(), fin(), 0.0..=1.0f64).prop_map(|(t, latency_ms, loss)| CbrSample { t, latency_ms, loss }),
                0..6
            )
            .prop_map(FlowLog::Cbr),
        ]
    }

    fn arb_trace() -> impl Strategy<Value = Trace> {
        (
            (any::<u64>(), fin(), fin(), fin(), fin()),
            proptest::collection::vec(arb_sample(), 0..8),
            proptest::collection::vec(
                (fin(), arb_event(), any::<u16>(), proptest::collection::vec(any::<u16>(), 0..4)).prop_map(
                    |(t, event, serving_pci, neighbor_pcis)| MrRecord { t, event, serving_pci, neighbor_pcis },
                ),
                0..6,
            ),
            proptest::collection::vec(arb_handover(), 0..6),
            (any::<u64>(), any::<u64>(), arb_flow()),
        )
            .prop_map(|((seed, hz, dur, len, trav), samples, reports, handovers, (rlf, hf, flow))| Trace {
                meta: TraceMeta {
                    carrier: Carrier::OpY,
                    env: Environment::Urban,
                    arch: Arch::Nsa,
                    seed,
                    sample_hz: hz,
                    duration_s: dur,
                    route_len_m: len,
                    traveled_m: trav,
                },
                cells: vec![],
                samples,
                reports,
                handovers,
                signaling: SignalingTally::new(),
                configs: vec![],
                rlf_count: rlf,
                ho_failures: hf,
                flow,
            })
    }

    static CASE: AtomicU64 = AtomicU64::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn save_load_round_trips(trace in arb_trace()) {
            let dir = std::env::temp_dir().join("fiveg_trace_proptest");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!(
                "case_{}_{}.json",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
            trace.save(&path).unwrap();
            let back = Trace::load(&path).unwrap();
            std::fs::remove_file(&path).ok();
            prop_assert_eq!(back, trace);
        }
    }
}
