//! Deterministic scenario simulator.
//!
//! Everything the paper records with XCAL + 5G Tracker on a drive, this
//! crate produces synthetically: 20 Hz cross-layer samples (position, PCIs,
//! RRS, bands, capacity), measurement reports, HO records with stage
//! timings, and signaling tallies. A [`Scenario`] wires together:
//!
//! ```text
//! MobilityDriver ──▶ position ──▶ Deployment (RRS per cell)
//!                                   │
//!                       MeasEngine (LTE leg, NR leg)
//!                                   │ triggered reports
//!                       HoPolicy (carrier decision logic)
//!                                   │ HO decisions
//!                       RanStateMachine (T1/T2, Table 2 transitions)
//!                                   │ connection snapshots
//!                       link::compose + flows ──▶ Trace
//! ```
//!
//! * [`scenario`] — builders for the study's scenarios (city loops, freeway
//!   legs, walking datasets D1/D2, cross-country segments);
//! * [`engine`] — the tick loop;
//! * [`trace`] — the serialized dataset format;
//! * [`fault`] — fault injection (MR loss, HO failures) in the smoltcp
//!   tradition of making adverse conditions reproducible;
//! * [`hook`] — observation hooks for external invariant checkers;
//! * [`cache`] — once-per-scenario trace sharing for parallel sweeps;
//! * [`fleet`] — N load-coupled UEs against one shared deployment;
//! * [`wheel`] — the hierarchical calendar-wheel [`EventQueue`] behind the
//!   event-driven engine mode.

pub mod cache;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod hook;
pub mod scenario;
pub mod trace;
pub mod wheel;

pub use cache::TraceCache;
pub use engine::{
    run_des, run_des_instrumented, run_hooked, run_reference, run_reference_hooked, run_reference_instrumented,
    run_stepped_summary, DesSummary,
};
pub use fault::FaultConfig;
pub use fiveg_telemetry::{Telemetry, TelemetryConfig};
pub use fleet::{
    run_fleet, run_fleet_exec, run_fleet_exec_instrumented, run_fleet_exec_observed, run_fleet_instrumented,
    run_fleet_observed, CellLoadView, FleetExec, FleetMeta, EngineMode, FleetSpec, FleetTrace, LoadSummary, SchedSummary,
    ShardMap, UePlan, UeSummary,
};
pub use hook::{AttachReason, ServingCells, SimHook, TickView};
pub use scenario::{Scenario, ScenarioBuilder, Workload};
pub use trace::{CellDictEntry, FlowLog, MrRecord, Trace, TraceMeta, TraceSample};
pub use wheel::EventQueue;
