//! Scenario definitions and builders.
//!
//! A scenario is "one drive/walk with one phone on one carrier": a route, a
//! speed profile, the service architecture in the area, a workload, and a
//! seed. Presets cover the paper's recurring setups:
//!
//! * [`ScenarioBuilder::city_loop`] — downtown driving loop (Zoom/gaming
//!   experiments, §4.1);
//! * [`ScenarioBuilder::freeway`] — interstate leg (HO frequency/energy,
//!   §5.1/§5.3);
//! * [`ScenarioBuilder::walking_loop`] — the D1/D2 walking datasets (§7.3);
//! * [`ScenarioBuilder::urban_walk_mmwave`] — the §6.2 mmWave walking loop.

use crate::engine;
use crate::fault::FaultConfig;
use crate::trace::Trace;
use fiveg_geo::{routes, Point, Polyline};
use fiveg_link::Cca;
use fiveg_ran::{Arch, Carrier, Environment};
use fiveg_telemetry::{Telemetry, TelemetryConfig};
use fiveg_ue::SpeedProfile;

/// The traffic the UE runs during the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Keep-alive pings only (energy experiments).
    Idle,
    /// Saturating iPerf-style download.
    Bulk(Cca),
    /// Constant-bitrate real-time stream (rate, per-frame deadline).
    Cbr {
        /// Stream rate, Mbps.
        rate_mbps: f64,
        /// Frame deadline, ms.
        deadline_ms: f64,
    },
}

/// A fully specified scenario, ready to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Route driven/walked.
    pub route: Polyline,
    /// Carrier under test.
    pub carrier: Carrier,
    /// Deployment environment.
    pub env: Environment,
    /// Service architecture.
    pub arch: Arch,
    /// Speed profile.
    pub speed: SpeedProfile,
    /// Scenario seed (controls deployment, channel, stage draws).
    pub seed: u64,
    /// Sampling/tick rate, Hz.
    pub sample_hz: f64,
    /// Hard cap on simulated time, s (route end also stops the run).
    pub max_duration_s: f64,
    /// UE workload.
    pub workload: Workload,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Instrumentation (off by default; deterministic when on).
    pub telemetry: TelemetryConfig,
    /// Forces the NSA bearer mode everywhere (`Some(true)` = dual,
    /// `Some(false)` = 5G-only); `None` follows the deployment's per-area
    /// configuration. Used by the §4.2 mode comparison.
    pub force_dual: Option<bool>,
}

impl Scenario {
    /// Runs the scenario to completion and returns the recorded trace.
    pub fn run(&self) -> Trace {
        engine::run(self)
    }

    /// Runs the scenario recording into a caller-owned [`Telemetry`] handle,
    /// so counters, the event journal and the summary stay inspectable
    /// after the run.
    pub fn run_instrumented(&self, tele: &Telemetry) -> Trace {
        engine::run_instrumented(self, tele)
    }
}

/// Fluent builder over [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    s: Scenario,
}

impl ScenarioBuilder {
    /// Fully custom scenario starting from sensible defaults.
    pub fn new(route: Polyline, carrier: Carrier, env: Environment, arch: Arch, seed: u64) -> Self {
        Self {
            s: Scenario {
                route,
                carrier,
                env,
                arch,
                speed: SpeedProfile::freeway(100.0),
                seed,
                sample_hz: 20.0,
                max_duration_s: 3600.0,
                workload: Workload::Idle,
                faults: FaultConfig::NONE,
                telemetry: TelemetryConfig::OFF,
                force_dual: None,
            },
        }
    }

    /// Downtown driving loop: 2 km × 1 km block, NSA, city speeds.
    pub fn city_loop(carrier: Carrier, seed: u64) -> Self {
        let route = routes::repeat_loop(&routes::rectangular_loop(Point::ORIGIN, 2000.0, 1000.0), 8);
        let mut b = Self::new(route, carrier, Environment::Urban, Arch::Nsa, seed);
        b.s.speed = SpeedProfile::city(50.0);
        b
    }

    /// Dense-core driving loop with mmWave coverage.
    pub fn city_loop_dense(carrier: Carrier, seed: u64) -> Self {
        let route = routes::repeat_loop(&routes::rectangular_loop(Point::ORIGIN, 1200.0, 800.0), 10);
        let mut b = Self::new(route, carrier, Environment::UrbanDense, Arch::Nsa, seed);
        b.s.speed = SpeedProfile::city(40.0);
        b
    }

    /// Interstate freeway leg of `km` kilometers at 130 km/h.
    pub fn freeway(carrier: Carrier, arch: Arch, km: f64, seed: u64) -> Self {
        let route = routes::curved_freeway(Point::ORIGIN, 0.2, km * 1000.0, (km / 2.0).max(2.0) as usize, 0.06);
        let mut b = Self::new(route, carrier, Environment::Freeway, arch, seed);
        b.s.speed = SpeedProfile::freeway(130.0);
        b
    }

    /// Walking loop of `minutes` minutes (datasets D1/D2; tourist-area and
    /// downtown loops). Dense urban so mmWave is present where the carrier
    /// deploys it.
    pub fn walking_loop(carrier: Carrier, minutes: f64, laps: usize, seed: u64) -> Self {
        // perimeter sized so one lap takes `minutes` at walking pace
        let perimeter = SpeedProfile::walking().mean_mps() * minutes * 60.0;
        let w = perimeter * 0.3;
        let h = perimeter / 2.0 - w;
        let route = routes::repeat_loop(&routes::rectangular_loop(Point::ORIGIN, w, h), laps);
        let mut b = Self::new(route, carrier, Environment::UrbanDense, Arch::Nsa, seed);
        b.s.speed = SpeedProfile::walking();
        b.s.max_duration_s = minutes * 60.0 * laps as f64 + 60.0;
        b
    }

    /// The §6.2 bulk-download mmWave walking loop (35+ minutes).
    pub fn urban_walk_mmwave(carrier: Carrier, seed: u64) -> Self {
        let mut b = Self::walking_loop(carrier, 35.0, 1, seed);
        b.s.workload = Workload::Bulk(Cca::Cubic);
        b
    }

    /// Overrides the service architecture (the route presets default to
    /// NSA; sweeps vary this axis independently).
    pub fn arch(mut self, arch: Arch) -> Self {
        self.s.arch = arch;
        self
    }

    /// Overrides the speed profile.
    pub fn speed(mut self, profile: SpeedProfile) -> Self {
        self.s.speed = profile;
        self
    }

    /// Caps simulated time, s.
    pub fn duration_s(mut self, secs: f64) -> Self {
        self.s.max_duration_s = secs;
        self
    }

    /// Sets the sampling rate, Hz.
    pub fn sample_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0);
        self.s.sample_hz = hz;
        self
    }

    /// Sets the UE workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.s.workload = w;
        self
    }

    /// Sets fault injection.
    pub fn faults(mut self, f: FaultConfig) -> Self {
        self.s.faults = f;
        self
    }

    /// Enables/configures telemetry (see [`TelemetryConfig`]).
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.s.telemetry = cfg;
        self
    }

    /// Forces the NSA bearer mode for the whole area (§4.2's comparison).
    pub fn force_dual(mut self, dual: bool) -> Self {
        self.s.force_dual = Some(dual);
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> Scenario {
        self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let s = ScenarioBuilder::city_loop(Carrier::OpX, 1).build();
        assert_eq!(s.sample_hz, 20.0);
        assert_eq!(s.arch, Arch::Nsa);
        assert_eq!(s.workload, Workload::Idle);
        assert_eq!(s.telemetry, TelemetryConfig::OFF);
    }

    #[test]
    fn telemetry_opt_in() {
        let s = ScenarioBuilder::city_loop(Carrier::OpX, 1).telemetry(TelemetryConfig::on()).build();
        assert!(s.telemetry.enabled);
    }

    #[test]
    fn walking_loop_duration_matches() {
        let s = ScenarioBuilder::walking_loop(Carrier::OpX, 35.0, 1, 2).build();
        let lap_time = s.route.length() / SpeedProfile::walking().mean_mps();
        assert!((lap_time - 35.0 * 60.0).abs() < 10.0, "lap {lap_time}s");
    }

    #[test]
    fn freeway_length() {
        let s = ScenarioBuilder::freeway(Carrier::OpY, Arch::Sa, 25.0, 3).build();
        assert!((s.route.length() - 25_000.0).abs() < 1.0);
    }

    #[test]
    fn builder_overrides_apply() {
        let s = ScenarioBuilder::city_loop(Carrier::OpZ, 4)
            .duration_s(120.0)
            .sample_hz(10.0)
            .workload(Workload::Bulk(Cca::Bbr))
            .build();
        assert_eq!(s.max_duration_s, 120.0);
        assert_eq!(s.sample_hz, 10.0);
        assert_eq!(s.workload, Workload::Bulk(Cca::Bbr));
    }

    #[test]
    fn arch_override_applies_to_presets() {
        let s = ScenarioBuilder::city_loop(Carrier::OpX, 9).arch(Arch::Sa).build();
        assert_eq!(s.arch, Arch::Sa);
    }
}
