//! Hierarchical calendar-wheel event queue for per-UE wakeups.
//!
//! The event-driven engine ([`crate::fleet::EngineMode::EventDriven`])
//! needs one data structure: "wake UE *u* at tick *t*", amortized O(1)
//! per operation, no steady-state allocation, deterministic pop order.
//! [`EventQueue`] is the classic two-level calendar wheel specialized to
//! that shape:
//!
//! * **Level 1 — the near wheel.** A fixed ring of `slots` buckets, one
//!   per simulation tick (100 ms at the committed 10 Hz bench rate); the
//!   entry for tick `t` lives in bucket `t % slots`. Buckets are drained
//!   in place and reused, so scheduling allocates nothing once the ring
//!   has warmed up.
//! * **Level 2 — the overflow.** Entries more than a full wheel
//!   revolution ahead park in a flat vector and are promoted into the
//!   ring as soon as their tick comes within the horizon. The fleet's
//!   sleep planner is capped below one revolution, so this level stays
//!   empty in production; it exists so the queue is correct for any
//!   horizon, which is what the property suite exercises.
//!
//! Reschedules and cancels are **lazy**: the queue never searches a
//! bucket. Each UE's live wakeup is recorded in an `armed` map, every
//! queued entry carries the `(tick, seq)` it was armed with, and a drained
//! entry only fires if it still matches the map. A superseded or canceled
//! entry is dropped, at the latest one revolution after it was queued, for
//! the cost of a map probe.
//!
//! Pop order is total and documented: within a call to
//! [`EventQueue::pop_due`], events fire in nondecreasing `tick`, ties
//! broken by `(ue, seq)` — so a drain is stable under bucket insertion
//! order, and byte-determinism of the fleet does not depend on *when* a
//! UE's sleep was planned within a tick.
//!
//! The contract asserted here (and property-tested below): call
//! [`EventQueue::pop_due`] once per tick in nondecreasing tick order, and
//! every armed wakeup fires exactly once, at exactly its tick — across
//! reschedules, cancels and arbitrarily many wheel wrap-arounds.

use std::collections::HashMap;

/// A queued wakeup: the tick it is due, the UE it wakes, and the arm
/// sequence number that decides whether it is still live.
#[derive(Clone, Copy, Debug)]
struct Entry {
    tick: u64,
    ue: u32,
    seq: u64,
}

/// Two-level calendar wheel keyed on absolute ticks. See the module docs
/// for the design; see [`crate::fleet`] for the production wiring.
#[derive(Default)]
pub struct EventQueue {
    /// Level 1: bucket `t % slots.len()` holds the entries due at tick
    /// `t` for the current revolution (plus lazily-dropped stale ones).
    slots: Vec<Vec<Entry>>,
    /// Level 2: entries at or beyond one revolution from `now`.
    overflow: Vec<Entry>,
    /// UE → `(tick, seq)` of its single live wakeup. A drained entry
    /// fires only if it matches; this is what makes reschedule/cancel
    /// O(1) without bucket searches.
    armed: HashMap<u32, (u64, u64)>,
    /// Reusable drain batch, sorted by `(tick, ue, seq)` before firing.
    due: Vec<Entry>,
    /// The tick most recently handed to [`EventQueue::pop_due`].
    now: u64,
    /// Whether `pop_due` has run at least once (gates the monotonicity
    /// and strictly-future asserts, so tick 0 can be scheduled up front).
    started: bool,
    /// Arm counter; strictly increasing, so `(tick, seq)` identifies one
    /// specific `schedule` call.
    seq: u64,
}

impl EventQueue {
    /// An empty queue with `slots` near-wheel buckets (one per tick).
    /// `slots` bounds nothing semantically — longer horizons overflow to
    /// level 2 — it only sets how much scheduling stays allocation-free.
    pub fn with_slots(slots: usize) -> EventQueue {
        assert!(slots > 0, "a calendar wheel needs at least one slot");
        EventQueue { slots: (0..slots).map(|_| Vec::new()).collect(), ..EventQueue::default() }
    }

    /// Arms (or re-arms) `ue`'s wakeup at absolute tick `tick`,
    /// superseding any previous wakeup for the same UE. `tick` must be
    /// strictly after the last drained tick.
    pub fn schedule(&mut self, ue: u32, tick: u64) {
        let n = self.slots.len() as u64;
        assert!(n > 0, "schedule on a slotless EventQueue");
        assert!(!self.started || tick > self.now, "scheduled a wakeup at or before the drained tick");
        self.seq += 1;
        let e = Entry { tick, ue, seq: self.seq };
        self.armed.insert(ue, (tick, self.seq));
        if tick < self.now + n {
            self.slots[(tick % n) as usize].push(e);
        } else {
            self.overflow.push(e);
        }
    }

    /// Disarms `ue`'s pending wakeup, if any. Lazy: the queued entry is
    /// dropped when its bucket is next drained.
    pub fn cancel(&mut self, ue: u32) {
        self.armed.remove(&ue);
    }

    /// The tick `ue` is currently armed to wake at, if any.
    pub fn armed_at(&self, ue: u32) -> Option<u64> {
        self.armed.get(&ue).map(|&(tick, _)| tick)
    }

    /// True when no wakeup is armed.
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Number of armed wakeups.
    pub fn len(&self) -> usize {
        self.armed.len()
    }

    /// Drains tick `now`: calls `fire(ue)` once for every wakeup due at
    /// `now`, in nondecreasing `tick` with ties broken by `(ue, seq)`,
    /// and disarms each fired entry. Must be called with nondecreasing
    /// `now`; calling it for **every** tick is what guarantees a wakeup
    /// fires exactly at its tick (a skipped tick defers its wakeups to
    /// the bucket's next drain, one revolution later).
    pub fn pop_due(&mut self, now: u64, mut fire: impl FnMut(u32)) {
        let n = self.slots.len() as u64;
        assert!(n > 0, "pop_due on a slotless EventQueue");
        assert!(!self.started || now >= self.now, "pop_due ticks must be nondecreasing");
        self.started = true;
        self.now = now;
        // Promote overflow entries that now fit inside one revolution;
        // stale ones (superseded or canceled while parked) are dropped
        // here instead of ever touching the ring.
        let mut i = 0;
        while i < self.overflow.len() {
            let e = self.overflow[i];
            if e.tick < now + n {
                self.overflow.swap_remove(i);
                if self.armed.get(&e.ue) == Some(&(e.tick, e.seq)) {
                    self.slots[(e.tick % n) as usize].push(e);
                }
            } else {
                i += 1;
            }
        }
        self.due.clear();
        for e in self.slots[(now % n) as usize].drain(..) {
            // An entry lands in the ring only within one revolution of
            // its tick, and this bucket's first drain at or after that
            // point is the tick itself — so nothing here is future-dated
            // (`e.tick < now` only if the caller skipped ticks; the
            // wakeup then fires late rather than being dropped).
            debug_assert!(e.tick <= now);
            if self.armed.get(&e.ue) == Some(&(e.tick, e.seq)) {
                self.due.push(e);
            }
        }
        self.due.sort_unstable_by_key(|e| (e.tick, e.ue, e.seq));
        for k in 0..self.due.len() {
            let e = self.due[k];
            self.armed.remove(&e.ue);
            fire(e.ue);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue, t: u64) -> Vec<u32> {
        let mut fired = Vec::new();
        q.pop_due(t, |ue| fired.push(ue));
        fired
    }

    #[test]
    fn fires_at_the_exact_tick() {
        let mut q = EventQueue::with_slots(16);
        q.schedule(7, 3);
        q.schedule(1, 5);
        q.schedule(4, 3);
        let mut log = Vec::new();
        for t in 0..8 {
            for ue in drain(&mut q, t) {
                log.push((t, ue));
            }
        }
        assert_eq!(log, vec![(3, 4), (3, 7), (5, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_ties_break_by_ue_not_insertion_order() {
        let mut q = EventQueue::with_slots(8);
        for ue in [9u32, 2, 30, 5] {
            q.schedule(ue, 4);
        }
        for t in 0..4 {
            assert!(drain(&mut q, t).is_empty());
        }
        assert_eq!(drain(&mut q, 4), vec![2, 5, 9, 30]);
    }

    #[test]
    fn reschedule_supersedes_and_cancel_disarms() {
        let mut q = EventQueue::with_slots(8);
        q.schedule(1, 3);
        q.schedule(2, 3);
        q.schedule(1, 6); // supersedes 1@3
        q.cancel(2); // disarms 2@3 entirely
        assert_eq!(q.armed_at(1), Some(6));
        assert_eq!(q.armed_at(2), None);
        assert_eq!(q.len(), 1);
        let mut log = Vec::new();
        for t in 0..8 {
            for ue in drain(&mut q, t) {
                log.push((t, ue));
            }
        }
        assert_eq!(log, vec![(6, 1)]);
    }

    #[test]
    fn rearm_after_fire_works_across_revolutions() {
        let mut q = EventQueue::with_slots(4);
        let mut t = 0u64;
        q.schedule(0, 3);
        let mut fires = 0;
        while !q.is_empty() {
            t += 1;
            for ue in drain(&mut q, t) {
                fires += 1;
                if fires < 5 {
                    // re-arm 3 ticks out: every wake lands in a bucket
                    // the previous revolution already used
                    q.schedule(ue, t + 3);
                }
            }
        }
        assert_eq!(fires, 5);
        assert_eq!(t, 3 + 4 * 3);
    }

    #[test]
    fn far_events_park_in_overflow_until_promoted() {
        let mut q = EventQueue::with_slots(4);
        q.schedule(1, 21); // > one revolution out at schedule time
        q.schedule(2, 23);
        q.cancel(2); // canceled while still parked in level 2
        let mut log = Vec::new();
        for t in 0..32 {
            for ue in drain(&mut q, t) {
                log.push((t, ue));
            }
        }
        assert_eq!(log, vec![(21, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "at or before the drained tick")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::with_slots(8);
        q.pop_due(5, |_| {});
        q.schedule(0, 5);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn time_cannot_run_backwards() {
        let mut q = EventQueue::with_slots(8);
        q.pop_due(5, |_| {});
        q.pop_due(4, |_| {});
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Reference model: each UE's single live wakeup tick. Advancing
        /// one tick fires exactly the UEs mapped to it, UE-sorted.
        fn expect_at(model: &mut HashMap<u32, u64>, t: u64) -> Vec<u32> {
            let mut due: Vec<u32> = model.iter().filter(|&(_, &tk)| tk == t).map(|(&ue, _)| ue).collect();
            due.sort_unstable();
            for ue in &due {
                model.remove(ue);
            }
            due
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Any interleaving of schedule / reschedule / cancel /
            /// advance matches the map model tick for tick: events fire
            /// in nondecreasing time, UE-ordered within a tick, exactly
            /// once, and none are dropped — across wheel sizes small
            /// enough that every case wraps and overflows.
            #[test]
            fn model_equivalence(
                slots in 2usize..24,
                ops in proptest::collection::vec((0u8..4u8, 0u32..8u32, 1u64..40u64), 1..80),
            ) {
                let mut q = EventQueue::with_slots(slots);
                let mut model: HashMap<u32, u64> = HashMap::new();
                let mut t = 0u64;
                for (kind, ue, delta) in ops {
                    match kind {
                        // schedule (an insert or a supersede, model-blind)
                        0 | 1 => {
                            q.schedule(ue, t + delta);
                            model.insert(ue, t + delta);
                        }
                        2 => {
                            q.cancel(ue);
                            model.remove(&ue);
                        }
                        // advance a few ticks, draining each one
                        _ => {
                            for _ in 0..delta.min(9) {
                                t += 1;
                                let fired = drain(&mut q, t);
                                prop_assert_eq!(&fired, &expect_at(&mut model, t));
                            }
                        }
                    }
                    prop_assert_eq!(q.len(), model.len());
                }
                // run the clock out: every still-armed wakeup must fire
                // at exactly its modeled tick, and then both are empty
                let horizon = model.values().copied().max().unwrap_or(t);
                while t < horizon {
                    t += 1;
                    let fired = drain(&mut q, t);
                    prop_assert_eq!(&fired, &expect_at(&mut model, t));
                }
                prop_assert!(q.is_empty());
                prop_assert!(model.is_empty());
            }

            /// A due event is never dropped: N distinct UEs armed at
            /// arbitrary horizons (many past the wheel's one-revolution
            /// mark) all fire, each exactly once, at its own tick.
            #[test]
            fn never_drops_a_due_event(
                slots in 2usize..16,
                horizons in proptest::collection::vec(1u64..200u64, 1..32),
            ) {
                let mut q = EventQueue::with_slots(slots);
                for (ue, &h) in horizons.iter().enumerate() {
                    q.schedule(ue as u32, h);
                }
                let mut fired_at: HashMap<u32, u64> = HashMap::new();
                for t in 0..=200u64 {
                    for ue in drain(&mut q, t) {
                        prop_assert!(fired_at.insert(ue, t).is_none());
                    }
                }
                for (ue, &h) in horizons.iter().enumerate() {
                    prop_assert_eq!(fired_at.get(&(ue as u32)).copied(), Some(h));
                }
                prop_assert!(q.is_empty());
            }

            /// Wrap-around stress: a tiny wheel, long run, every UE
            /// re-arming on fire. Global fire order stays nondecreasing
            /// in time and the queue never misses a beat.
            #[test]
            fn survives_wrap_around(
                slots in 2usize..6,
                stride in 1u64..11,
                ues in 1u32..6,
            ) {
                let mut q = EventQueue::with_slots(slots);
                for ue in 0..ues {
                    q.schedule(ue, 1 + (ue as u64) % stride);
                }
                let mut last = 0u64;
                let mut fires = 0u64;
                for t in 1..=64u64 {
                    let batch = drain(&mut q, t);
                    for ue in batch {
                        prop_assert!(t >= last);
                        last = t;
                        fires += 1;
                        if t + stride <= 64 {
                            q.schedule(ue, t + stride);
                        }
                    }
                }
                // each UE fires roughly every `stride` ticks for 64 ticks
                prop_assert!(fires >= (ues as u64) * (64 / stride).saturating_sub(1));
                prop_assert!(q.is_empty());
            }
        }
    }
}
